"""Legacy setup shim.

The execution environment has no network and no ``wheel`` package, so
PEP-660 editable installs cannot build; this file lets
``pip install -e .`` fall back to ``setup.py develop``.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of Focus: parallel NGS assembly on distributed overlap "
        "graphs enriched with biological knowledge (IPDPSW 2017)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10", "networkx>=3.0"],
)
