"""Ablation — multilevel/hybrid partitioning vs naive baselines.

Hash partitioning (what k-mer-distributed de Bruijn assemblers do) and
BFS block chunking vs the knowledge-enriched hybrid partitioning, all
measured as edge cut on the overlap graph G0 at k = 16.
"""

from repro.baselines.naive_partition import bfs_block_partition, hash_partition
from repro.bench.reporting import format_table
from repro.partition.metrics import edge_cut, edge_cut_fraction

K = 16


def test_ablation_naive_partitioners(benchmark, prepared, partition_sweep, write_result):
    results = {}

    def run_all():
        for name, prep in prepared.items():
            g0 = prep.g0
            cut_hash = edge_cut(g0, hash_partition(g0.n_nodes, K, seed=0))
            cut_bfs = edge_cut(g0, bfs_block_partition(g0, K))
            cut_hyb = partition_sweep[(name, K)]["hybrid"].cut_g0
            results[name] = (cut_hash, cut_bfs, cut_hyb, g0.total_edge_weight)

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for name, (cut_hash, cut_bfs, cut_hyb, total) in results.items():
        rows.append(
            [
                name,
                f"{100 * cut_hash / total:.2f}%",
                f"{100 * cut_bfs / total:.2f}%",
                f"{100 * cut_hyb / total:.3f}%",
                f"{cut_hash / cut_hyb:.0f}x",
            ]
        )
    table = format_table(
        ["Data set", "Hash cut", "BFS-block cut", "Hybrid cut", "Hash/Hybrid"], rows
    )
    write_result("ablation_naive_partition", table)

    for name, (cut_hash, cut_bfs, cut_hyb, total) in results.items():
        # Hash partitioning cuts nearly everything (~1 - 1/k of edges).
        assert cut_hash / total > 0.5
        # Structure-aware beats structure-blind...
        assert cut_bfs < cut_hash
        # ...and the multilevel hybrid partitioning beats both by a lot.
        assert cut_hyb < 0.2 * cut_bfs, f"{name}: hybrid not clearly better"
