"""Fig. 4 — graph partitioning speedup vs processor count.

Paper: partitioning each hybrid graph set into 16 partitions with an
increasing number of processors; speedup rises and levels off around
8-10 processors (2^(log2 16 - 1) = 8 concurrent bisection tasks in the
widest step, ~10 graph levels in the k-way refinement stage).  Each
point averages three runs (random greedy-growing seeds vary runtimes).

Here every bisection/k-way task's serial duration is *measured* during
real partitioning runs, and T(p) comes from replaying the task DAG on
p processors with LPT list scheduling (see repro.mpi.schedule) — the
deterministic form of the paper's processor assignment, immune to the
sub-millisecond thread-timing noise of our much smaller graphs.  The
live SimCluster execution path is exercised separately by
tests/distributed/test_partition_parallel.py.
"""

import numpy as np

from repro.bench.reporting import format_series, format_table
from repro.mpi.schedule import speedup_curve
from repro.partition.multilevel import partition_via_hybrid
from repro.partition.recursive import PartitionConfig

K_PARTS = 16
PROCS = (1, 2, 4, 6, 8, 10, 12, 16)
RUNS = 3


def _mean_speedups(prep):
    per_run = []
    for r in range(RUNS):
        result = partition_via_hybrid(prep.mls, prep.hyb, K_PARTS, PartitionConfig(seed=r))
        per_run.append(dict(speedup_curve(result.tasks, PROCS)))
    return {p: float(np.mean([run[p] for run in per_run])) for p in PROCS}


def test_fig4_partition_speedup(benchmark, prepared, write_result):
    curves = {}

    def run_all():
        for name, prep in prepared.items():
            curves[name] = _mean_speedups(prep)

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    lines = []
    for name, speedups in curves.items():
        rows.append([name] + [f"{speedups[p]:.2f}x" for p in PROCS])
        lines.append(
            format_series(f"speedup_{name}", list(PROCS), [speedups[p] for p in PROCS], "p")
        )
    table = format_table(["Data set"] + [f"p={p}" for p in PROCS], rows)
    write_result("fig4_partition_speedup", table + "\n\n" + "\n\n".join(lines))

    for name, s in curves.items():
        assert s[1] == 1.0
        # Rising region: real parallel gains by 8 processors.  The
        # magnitude is Amdahl-bounded by the serial step-0 bisection
        # (~35% of the work on our small hybrid graphs), so assert the
        # paper's *shape* — clear gains, monotone rise — not its scale.
        assert s[8] > 1.25, f"{name}: speedup at p=8 only {s[8]:.2f}"
        assert s[8] > s[2] > s[1], f"{name}: curve not rising"
        assert s[4] > 1.2, f"{name}: no gain at p=4"
        # Saturation: the paper's levelling-off at ~8-10 processors.
        assert s[16] <= 1.3 * s[8], f"{name}: no saturation ({s[16]:.2f} vs {s[8]:.2f})"
