"""Ablation — parallel read alignment over subset pairs (paper §II-B).

Focus splits the read set into subsets and farms each subset pair out
to a processor.  This bench measures the virtual runtime of the
alignment stage on 1-8 simulated ranks (D1 reads, 4 subsets = 10
independent pair tasks) and checks the expected speedup shape: gains
up to the task-granularity limit, then saturation.
"""

import numpy as np

from repro.align.overlapper import OverlapConfig, OverlapDetector
from repro.bench.reporting import format_series, format_table
from repro.mpi.cluster import SimCluster

from conftest import FAST_NET

RANKS = (1, 2, 4, 8)
N_SUBSETS = 4  # -> 10 subset-pair tasks


def test_ablation_parallel_alignment(benchmark, datasets, write_result):
    reads = datasets[0].reads
    detector = OverlapDetector(OverlapConfig(min_overlap=50, n_subsets=N_SUBSETS))
    times = {}
    counts = {}

    def run_all():
        for p in RANKS:
            cluster = SimCluster(p, cost_model=FAST_NET, deadlock_timeout=600.0)
            results, stats = cluster.run(detector.find_overlaps_parallel, reads)
            times[p] = stats.elapsed
            counts[p] = len(results[0])

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    speedups = {p: times[1] / times[p] for p in RANKS}
    table = format_table(
        ["Ranks", "Virtual time (s)", "Speedup"],
        [[p, f"{times[p]:.3f}", f"{speedups[p]:.2f}x"] for p in RANKS],
    )
    series = format_series(
        "alignment_speedup", list(RANKS), [speedups[p] for p in RANKS], "p"
    )
    write_result("ablation_parallel_alignment", table + "\n\n" + series)

    # Same overlaps at every rank count.
    assert len(set(counts.values())) == 1
    # Parallel alignment pays off and keeps paying with more ranks.
    # Ten unequal tasks + per-thread-clock variance put wide error bars
    # on the exact factors (observed 1.3-1.9x at p=2, 1.9-2.8x at p=4,
    # 3.2-4.3x at p=8 across runs), so assert the robust shape only.
    assert speedups[2] > 1.15
    assert speedups[4] > 1.5
    assert speedups[8] > 2.5
    assert speedups[8] > speedups[4] > speedups[2]
