"""Table I — dataset characteristics.

Paper: three Illumina gut-microbiome SRA runs, ~5 Gbases each, 100 bp
reads.  Here: three synthetic gut communities (D1-D3) over the same
ten genera, 100 bp reads, scaled to pure-Python-assembly size.  The
bench regenerates the table and measures dataset construction cost.
"""

from repro.bench.datasets import STANDARD_SPECS, build_dataset
from repro.bench.reporting import format_table


def test_table1_dataset_characteristics(benchmark, datasets, write_result):
    rows = []
    for ds in datasets:
        rows.append(
            [
                ds.name,
                f"seed:{ds.spec.seed}",
                f"{ds.total_bases / 1e6:.2f} Mb",
                f"{ds.read_length} bp",
                ds.n_reads,
                len(ds.community.genomes),
            ]
        )
    table = format_table(
        ["Data set", "Source (SRA substitute)", "Size", "Read length", "Reads", "Genomes"],
        rows,
    )
    write_result("table1_datasets", table)

    # Shape checks mirroring Table I: three datasets, same read length,
    # comparable sizes (the paper's runs are 4.93-5.02 Gb, ~2% spread;
    # multinomial sampling keeps ours within a few percent too).
    assert len(datasets) == 3
    assert all(ds.read_length == 100 for ds in datasets)
    sizes = [ds.total_bases for ds in datasets]
    assert max(sizes) / min(sizes) < 1.15
    for ds in datasets:
        genera = {g.meta["genus"] for g in ds.community.genomes}
        assert len(genera) == 10

    # Benchmark: rebuilding D1 from its spec.
    benchmark.pedantic(build_dataset, args=(STANDARD_SPECS[0],), rounds=1, iterations=1)
