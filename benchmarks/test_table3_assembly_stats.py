"""Table III — assembly statistics across partition counts.

Paper: for each dataset, N50, max contig length and contig count are
essentially invariant as the hybrid graph is cut into 4, 16, 32 or 64
partitions — partitioning does not change assembly quality.
"""

from repro.bench.reporting import format_table

K_VALUES = (4, 16, 32, 64)


def test_table3_assembly_stats(benchmark, prepared, assembler, write_result):
    results = {}

    def run_all():
        for name, prep in prepared.items():
            for k in K_VALUES:
                results[(name, k)] = assembler.finish(prep, n_partitions=k).stats

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [
        [
            name,
            k,
            results[(name, k)].n50,
            results[(name, k)].max_contig,
            results[(name, k)].n_contigs,
        ]
        for name in prepared
        for k in K_VALUES
    ]
    table = format_table(
        ["Data set", "Part. Num.", "N50 (bp)", "Max Contig (bp)", "Num. of Contigs"], rows
    )
    write_result("table3_assembly_stats", table)

    # Shape: per dataset, stats are consistent across partition counts.
    # The paper's N50 varies by <1%, contig counts by a few hundred in
    # ~10^5; on our small graphs allow ~15% relative wobble.
    for name in prepared:
        stats = [results[(name, k)] for k in K_VALUES]
        n50s = [s.n50 for s in stats]
        maxes = [s.max_contig for s in stats]
        counts = [s.n_contigs for s in stats]
        assert min(n50s) > 0
        assert max(n50s) <= 1.2 * min(n50s), f"{name}: N50 unstable {n50s}"
        assert max(maxes) <= 1.2 * min(maxes), f"{name}: max contig unstable {maxes}"
        assert max(counts) <= 1.25 * min(counts), f"{name}: contig count unstable {counts}"
