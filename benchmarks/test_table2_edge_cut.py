"""Table II — edge cut of the hybrid vs overlap-graph partitionings.

Paper: for each dataset and k in {8, 16, 32, 64}, the edge cut (on
the original overlap graph) of the partition obtained through the
hybrid graph set vs through full multilevel un-coarsening.  The
hybrid partitioning won 10 of 12 cells, and no cut exceeded 0.43% of
the overlap graph's total edge weight.
"""

from repro.bench.reporting import format_table
from repro.partition.metrics import edge_cut
from repro.partition.recursive import PartitionConfig

from conftest import K_SWEEP


def test_table2_edge_cut(benchmark, prepared, partition_sweep, write_result):
    rows = []
    hybrid_wins = 0
    cells = 0
    max_h_fraction = 0.0
    max_m_fraction = 0.0
    for name, prep in prepared.items():
        total_ew = prep.g0.total_edge_weight
        for k in K_SWEEP:
            runs = partition_sweep[(name, k)]
            cut_h = runs["hybrid"].cut_g0
            cut_m = runs["multilevel"].cut_g0
            cells += 1
            hybrid_wins += cut_h <= cut_m
            max_h_fraction = max(max_h_fraction, cut_h / total_ew)
            max_m_fraction = max(max_m_fraction, cut_m / total_ew)
            rows.append(
                [
                    k,
                    name,
                    f"{cut_h:.0f}",
                    f"{cut_m:.0f}",
                    f"{100 * cut_h / total_ew:.3f}%",
                ]
            )
    table = format_table(
        ["Part. Num", "Data set", "Edge Cut (Hyb.)", "Edge Cut (Ovl.)", "Hyb. cut / total"],
        rows,
    )
    footer = (
        f"hybrid wins {hybrid_wins}/{cells} cells; max cut fraction of total edge "
        f"weight: hybrid {100 * max_h_fraction:.3f}%, multilevel {100 * max_m_fraction:.3f}%"
    )
    write_result("table2_edge_cut", table + "\n" + footer)

    # Shape: hybrid wins the majority of cells (paper: 10/12) and its
    # cuts stay a tiny fraction of total edge weight (paper: <= 0.43%).
    # Our multilevel baseline degrades at k=64 on these much smaller
    # graphs (~180 reads/part), so it gets a looser bound.
    assert hybrid_wins >= cells * 2 // 3
    assert max_h_fraction <= 0.005
    assert max_m_fraction <= 0.05

    # Benchmark the G0 edge-cut computation itself.
    prep = next(iter(prepared.values()))
    labels = partition_sweep[(next(iter(prepared)), 16)]["hybrid"].labels_g0
    benchmark.pedantic(edge_cut, args=(prep.g0, labels), rounds=3, iterations=1)
