"""Ablation — the greedy-growing edge-weight balance bound (paper: 1.03).

Sweeps the bound that hands growth from one partition to the other.
A bound of 1.0 forces strict alternation; large bounds let one side
grow greedily.  We report initial-bisection edge cut and node balance
on the hybrid graph of D1, averaged over seeds.
"""

import numpy as np

from repro.bench.reporting import format_table
from repro.partition.greedy_growing import greedy_grow_bisection
from repro.partition.metrics import edge_cut, node_weight_balance

BOUNDS = (1.0, 1.03, 1.2, 2.0)
SEEDS = range(5)


def test_ablation_greedy_balance_bound(benchmark, prepared, write_result):
    graph = prepared["D1"].hyb.hybrid
    results = {}

    def run_all():
        for bound in BOUNDS:
            cuts, balances = [], []
            for seed in SEEDS:
                labels = greedy_grow_bisection(
                    graph, np.random.default_rng(seed), edge_balance=bound
                )
                cuts.append(edge_cut(graph, labels))
                balances.append(node_weight_balance(graph, labels, 2))
            results[bound] = (float(np.mean(cuts)), float(np.mean(balances)))

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [
        [bound, f"{results[bound][0]:.0f}", f"{results[bound][1]:.3f}"] for bound in BOUNDS
    ]
    write_result(
        "ablation_balance",
        format_table(["Edge balance bound", "Mean cut", "Mean node balance"], rows),
    )

    # Every bound must keep node weight near-balanced (the node-weight
    # stop rule dominates), and all runs must produce valid bisections.
    for bound in BOUNDS:
        assert results[bound][1] <= 1.35
        assert results[bound][0] > 0
