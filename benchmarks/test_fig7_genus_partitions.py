"""Fig. 7 — distribution of major genera across 16 graph partitions.

Paper: reads are classified to genera with BWA against the HMP gut
reference; the fraction of each genus's reads per partition is far
from uniform (genera concentrate in few partitions), and genera of the
same phylum (e.g. Roseburia / Clostridium / Eubacterium, all
Firmicutes) show correlated partition profiles.

Here the classifier is the k-mer voter against the simulated reference
genomes, partitions come from the 16-way hybrid partitioning, and the
heat map is rendered in ASCII.
"""

import numpy as np

from repro.analysis.classify import KmerClassifier
from repro.analysis.community import (
    genus_partition_matrix,
    max_fraction_per_genus,
    normalized_entropy_per_genus,
    phylum_colocation,
)
from repro.analysis.heatmap import render_heatmap
from repro.partition.multilevel import partition_via_hybrid
from repro.partition.recursive import PartitionConfig
from repro.simulate.taxonomy import PHYLUM_OF

K_PARTS = 16


def _analyse(ds, prep):
    part = partition_via_hybrid(prep.mls, prep.hyb, K_PARTS, PartitionConfig(seed=0))
    read_parts = part.labels_finest[prep.hyb.base_maps[0]]
    classifier = KmerClassifier(ds.community.reference_database(), k=21)
    genus_labels = [m.get("genus") for m in prep.reads.meta]
    predicted = classifier.classify_readset(prep.reads)
    genera = sorted({g.meta["genus"] for g in ds.community.genomes})
    matrix = genus_partition_matrix(predicted, read_parts, genera, K_PARTS)
    truth_matrix = genus_partition_matrix(genus_labels, read_parts, genera, K_PARTS)
    agree = np.mean(
        [p == t for p, t in zip(predicted, genus_labels) if t is not None and p is not None]
    )
    return genera, matrix, truth_matrix, float(agree)


def test_fig7_genus_partition_distribution(benchmark, datasets, prepared, write_result):
    analysis = {}

    def run_all():
        for ds in datasets:
            analysis[ds.name] = _analyse(ds, prepared[ds.name])

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    blocks = []
    for name, (genera, matrix, _truth, agree) in analysis.items():
        maxf = max_fraction_per_genus(matrix)
        ent = normalized_entropy_per_genus(matrix)
        same, cross = phylum_colocation(matrix, genera, PHYLUM_OF)
        blocks.append(
            f"--- {name} (classifier/truth agreement {agree:.3f}) ---\n"
            + render_heatmap(matrix, genera)
            + f"\nmean max-fraction {maxf.mean():.3f} (uniform floor {1 / K_PARTS:.3f})"
            + f"\nmean normalised entropy {ent.mean():.3f} (uniform = 1.0)"
            + f"\nprofile correlation same-phylum {same:.3f} vs cross-phylum {cross:.3f}"
        )
    write_result("fig7_genus_partitions", "\n\n".join(blocks))

    for name, (genera, matrix, truth_matrix, agree) in analysis.items():
        # The BWA-substitute classifier must be accurate on its own refs.
        assert agree > 0.9, f"{name}: classifier agreement {agree}"
        # Concentration: distributions are far from uniform (paper's
        # central qualitative observation).
        maxf = max_fraction_per_genus(matrix)
        assert maxf.mean() > 3.0 / K_PARTS, f"{name}: genera not concentrated"
        assert normalized_entropy_per_genus(matrix).mean() < 0.9
        # Phylum co-location: same-phylum genera correlate more.
        same, cross = phylum_colocation(matrix, genera, PHYLUM_OF)
        assert same > cross, f"{name}: no phylum co-location ({same} vs {cross})"
        # Ground-truth labels tell the same story (classifier not doing
        # the work by itself).
        t_same, t_cross = phylum_colocation(truth_matrix, genera, PHYLUM_OF)
        assert t_same > t_cross
