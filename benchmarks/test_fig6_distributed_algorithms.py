"""Fig. 6 — distributed graph trimming and traversal runtimes.

Paper: the distributed trimming pass (transitive reduction, dead-end
trimming, bubble popping, containment removal) gets markedly faster as
the hybrid graph is split over 8 -> 64 partitions; graph traversal is
very cheap and roughly flat in the partition count.

Here each stage runs on the simulated cluster with one rank per
partition; plotted runtimes are virtual elapsed seconds, averaged over
three repetitions.  To give the workers non-trivial per-rank work we
trim a *lightly coarsened* hybrid graph (few coarsening levels keep
thousands of nodes) — the paper's hybrid graphs likewise hold far more
nodes per partition than our default benchmark datasets produce.
"""

import numpy as np
import pytest

from repro.bench.reporting import format_table
from repro.distributed.containment import containment_removal
from repro.distributed.dgraph import DistributedAssemblyGraph, enrich_hybrid
from repro.distributed.transitive import transitive_reduction
from repro.distributed.traversal import maximal_paths
from repro.distributed.trimming import pop_bubbles, trim_dead_ends
from repro.graph.coarsen import CoarsenConfig, build_multilevel_set
from repro.graph.hybrid import build_hybrid_set
from repro.mpi.cluster import SimCluster
from repro.partition.multilevel import partition_via_hybrid
from repro.partition.recursive import PartitionConfig

from conftest import FAST_NET, K_SWEEP

RUNS = 5


@pytest.fixture(scope="module")
def big_hybrids(prepared):
    """name -> (HybridAssembly, hybrid set) with light coarsening."""
    out = {}
    for name, prep in prepared.items():
        mls = build_multilevel_set(prep.g0, CoarsenConfig(max_levels=3, seed=0))
        hyb = build_hybrid_set(mls, prep.reads.lengths)
        asm = enrich_hybrid(hyb, prep.g0, prep.reads)
        out[name] = (mls, hyb, asm)
    return out


def _run_stages(mls, hyb, asm, k):
    """Median (trim, traversal) virtual seconds over RUNS repetitions."""
    part = partition_via_hybrid(mls, hyb, k, PartitionConfig(seed=0))
    trims, travs = [], []
    for _ in range(RUNS):
        dag = DistributedAssemblyGraph(asm, part.labels_finest)
        cluster = SimCluster(k, cost_model=FAST_NET, deadlock_timeout=300.0)
        trim = 0.0
        for stage in (transitive_reduction, containment_removal, trim_dead_ends, pop_bubbles):
            _, stats = cluster.run(stage, dag)
            trim += stats.elapsed
        _, stats = cluster.run(maximal_paths, dag)
        trims.append(trim)
        travs.append(stats.elapsed)
    return float(np.median(trims)), float(np.median(travs))


def test_fig6_distributed_algorithms(benchmark, big_hybrids, write_result):
    results = {}

    def run_all():
        for name, (mls, hyb, asm) in big_hybrids.items():
            for k in K_SWEEP:
                results[(name, k)] = _run_stages(mls, hyb, asm, k)

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [
        [name, k, f"{results[(name, k)][0] * 1e3:.2f}", f"{results[(name, k)][1] * 1e3:.2f}"]
        for name in big_hybrids
        for k in K_SWEEP
    ]
    sizes = {name: big_hybrids[name][1].hybrid.n_nodes for name in big_hybrids}
    table = format_table(
        ["Data set", "Partitions", "Trimming (virtual ms)", "Traversal (virtual ms)"], rows
    )
    table += "\nhybrid graph sizes: " + ", ".join(f"{n}={s}" for n, s in sizes.items())
    write_result("fig6_distributed_algorithms", table)

    for name in big_hybrids:
        trims = np.array([results[(name, k)][0] for k in K_SWEEP])
        travs = np.array([results[(name, k)][1] for k in K_SWEEP])
        # Trimming gets faster with more partitions (paper: steep drop).
        assert trims[-1] < 0.75 * trims[0], f"{name}: trimming did not speed up {trims}"
        # Traversal is much cheaper than trimming and roughly flat.
        assert travs[0] < 0.6 * trims[0], f"{name}: traversal not cheap {travs[0]} vs {trims[0]}"
        assert travs.max() < 8 * max(travs.min(), 1e-6), f"{name}: traversal not flat {travs}"
