"""Shared fixtures for the paper-reproduction benchmarks.

The expensive, partition-count-independent pipeline stages (dataset
generation, read alignment, graph/hybrid construction) run once per
session and are shared by every bench.  Each bench writes the table or
figure series it regenerates into ``benchmarks/results/`` so the
numbers quoted in EXPERIMENTS.md are reproducible artifacts.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.bench.datasets import standard_datasets
from repro.core.config import AssemblyConfig
from repro.core.focus import FocusAssembler
from repro.mpi.timing import CommCostModel

RESULTS_DIR = Path(__file__).parent / "results"

#: fast interconnect model so sub-millisecond compute tasks are not
#: swamped by synthetic latency.
FAST_NET = CommCostModel(alpha=1e-6, beta=1e-9)


@pytest.fixture(scope="session")
def datasets():
    """The three standard gut-community datasets D1-D3 (Table I)."""
    return standard_datasets()


@pytest.fixture(scope="session")
def assembler():
    return FocusAssembler(AssemblyConfig(), cost_model=FAST_NET)


@pytest.fixture(scope="session")
def prepared(datasets, assembler):
    """name -> PreparedAssembly, aligned and graph-built once."""
    return {ds.name: assembler.prepare(ds.reads) for ds in datasets}


K_SWEEP = (8, 16, 32, 64)


@pytest.fixture(scope="session")
def partition_sweep(prepared):
    """(dataset, k) -> {'hybrid': PartitionResult, 'multilevel': ...}.

    The Fig. 5 / Table II runs: each dataset's hybrid and multilevel
    graph sets partitioned into 8, 16, 32 and 64 parts.
    """
    from repro.partition.multilevel import partition_via_hybrid, partition_via_multilevel
    from repro.partition.recursive import PartitionConfig

    cfg = PartitionConfig(seed=0)
    out = {}
    for name, prep in prepared.items():
        for k in K_SWEEP:
            out[(name, k)] = {
                "hybrid": partition_via_hybrid(prep.mls, prep.hyb, k, cfg),
                "multilevel": partition_via_multilevel(prep.mls, k, cfg),
            }
    return out


@pytest.fixture(scope="session")
def write_result():
    RESULTS_DIR.mkdir(exist_ok=True)

    def _write(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        print(f"\n=== {name} ===\n{text}\n")

    return _write
