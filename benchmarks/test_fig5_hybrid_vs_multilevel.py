"""Fig. 5 — hybrid vs multilevel graph set partitioning runtime.

Paper: for k in {8, 16, 32, 64}, partitioning the hybrid graph set
took roughly *half* the runtime of partitioning the multilevel graph
set (full un-coarsening to the overlap graph), on every dataset.

Our hybrid graph is relatively even smaller than the paper's (smaller
datasets coarsen further), so the gap is larger; the asserted shape is
the paper's direction — hybrid strictly faster everywhere.
"""

from repro.bench.reporting import format_table
from repro.partition.multilevel import partition_via_hybrid
from repro.partition.recursive import PartitionConfig

from conftest import K_SWEEP


def test_fig5_hybrid_vs_multilevel_runtime(
    benchmark, prepared, partition_sweep, write_result
):
    rows = []
    for name in prepared:
        for k in K_SWEEP:
            runs = partition_sweep[(name, k)]
            t_h = runs["hybrid"].wall_time
            t_m = runs["multilevel"].wall_time
            rows.append([name, k, f"{t_h:.3f}", f"{t_m:.3f}", f"{t_m / t_h:.1f}x"])
    table = format_table(
        ["Data set", "Partitions", "Hybrid (s)", "Multilevel (s)", "Ratio"], rows
    )
    write_result("fig5_hybrid_vs_multilevel", table)

    # Shape: hybrid partitioning beats full un-coarsening everywhere
    # (paper: ~2x; here the hybrid graph is proportionally smaller).
    for name in prepared:
        for k in K_SWEEP:
            runs = partition_sweep[(name, k)]
            assert runs["hybrid"].wall_time < runs["multilevel"].wall_time, (
                f"{name} k={k}: hybrid not faster"
            )

    # Benchmark one representative hybrid partitioning call.
    prep = next(iter(prepared.values()))
    benchmark.pedantic(
        partition_via_hybrid,
        args=(prep.mls, prep.hyb, 16, PartitionConfig(seed=1)),
        rounds=1,
        iterations=1,
    )
