"""Ablation — the best-representative contiguity criterion.

The hybrid graph keeps a coarse node only if its read cluster lays out
into one contiguous contig; otherwise it descends to finer levels.
This bench quantifies (a) how often the criterion actually fires (the
coarsest clusters that *fail* and force descent) and (b) the
compression the verified hybrid graph achieves over the overlap graph.
Without the criterion ("always trust the coarsest level"), repeat- and
phylum-tangled clusters admit no layout and contig construction would
be unsound — exactly the failures counted here.
"""

from repro.bench.reporting import format_table
from repro.graph.contigs import cluster_layout_offsets


def test_ablation_hybrid_criterion(benchmark, prepared, write_result):
    rows = []
    checks = {}

    def run_all():
        for name, prep in prepared.items():
            top = prep.mls.n_levels - 1
            clusters = prep.mls.clusters_at_level(top)
            failing = sum(
                1
                for c in clusters
                if c.size > 1 and cluster_layout_offsets(prep.g0, c) is None
            )
            rep_levels = prep.hyb.rep_level
            checks[name] = (failing, len(clusters))
            rows.append(
                [
                    name,
                    len(clusters),
                    failing,
                    prep.hyb.hybrid.n_nodes,
                    prep.g0.n_nodes,
                    f"{prep.g0.n_nodes / prep.hyb.hybrid.n_nodes:.1f}x",
                    int(rep_levels.min()),
                    int(rep_levels.max()),
                ]
            )

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    table = format_table(
        [
            "Data set",
            "Coarsest clusters",
            "Fail contiguity",
            "Hybrid nodes",
            "G0 nodes",
            "Compression",
            "Min rep level",
            "Max rep level",
        ],
        rows,
    )
    write_result("ablation_hybrid", table)

    for name, (failing, total) in checks.items():
        prep = prepared[name]
        # The criterion is not vacuous: metagenome data tangles some
        # coarsest clusters (repeats + shared ancestry), forcing descent.
        assert failing > 0, f"{name}: criterion never fired"
        # But linearity dominates: most coarsest clusters are clean and
        # the hybrid graph stays far smaller than the overlap graph.
        assert failing < total
        assert prep.hyb.hybrid.n_nodes < prep.g0.n_nodes / 5
        # Descent happened: representatives exist below the top level.
        assert prep.hyb.rep_level.min() < prep.mls.n_levels - 1
