"""Ablation — Kernighan-Lin early-stop window and diagonal-scan budget.

The paper stops a KL pass after 50 exchanges without improving the
maximal partial gain and prunes pair evaluation with a diagonal scan.
We sweep the stall window and the scan budget on D1's hybrid graph,
reporting refined edge cut and runtime.
"""

import time

import numpy as np

from repro.bench.reporting import format_table
from repro.partition.greedy_growing import greedy_grow_bisection
from repro.partition.kl import kl_refine_bisection
from repro.partition.metrics import edge_cut

WINDOWS = (5, 50, 500)
SCANS = (20, 400, 4000)


def test_ablation_kl_parameters(benchmark, prepared, write_result):
    graph = prepared["D1"].hyb.hybrid
    labels = greedy_grow_bisection(graph, np.random.default_rng(0))
    base_cut = edge_cut(graph, labels)
    results = {}

    def run_all():
        for window in WINDOWS:
            for scan in SCANS:
                t0 = time.perf_counter()
                refined, gain = kl_refine_bisection(
                    graph, labels, stall_window=window, max_scan=scan
                )
                dt = time.perf_counter() - t0
                results[(window, scan)] = (edge_cut(graph, refined), gain, dt)

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [
        [w, s, f"{results[(w, s)][0]:.0f}", f"{results[(w, s)][1]:.0f}", f"{results[(w, s)][2]:.4f}"]
        for w in WINDOWS
        for s in SCANS
    ]
    table = format_table(
        ["Stall window", "Scan budget", "Refined cut", "Gain", "Seconds"], rows
    )
    write_result("ablation_kl", f"initial cut {base_cut:.0f}\n" + table)

    for key, (cut, gain, _) in results.items():
        # Refinement never worsens the cut, and the bookkeeping holds.
        assert cut <= base_cut + 1e-9, f"{key} worsened the cut"
        assert gain >= 0
    # The paper's settings (50, 400) should match the most generous
    # budget's quality within 20% - the early stop is nearly free.
    paper = results[(50, 400)][0]
    best = min(cut for cut, _, _ in results.values())
    assert paper <= 1.2 * max(best, 1.0)
