"""Ablation — spectral read correction before assembly.

Correcting substitution errors against the k-mer spectrum before
overlap detection should recover contiguity lost to error-broken
overlaps.  Compares the Focus assembly of error-laden reads with and
without correction (plus the clean-reads ceiling), validated against
the true genome with the QUAST-lite evaluator.
"""

import numpy as np

from repro import AssemblyConfig, FocusAssembler
from repro.analysis.accuracy import evaluate_assembly
from repro.bench.reporting import format_table
from repro.correct.corrector import ReadCorrector
from repro.correct.spectrum import KmerSpectrum
from repro.mpi.timing import CommCostModel
from repro.simulate.genome import Genome, random_genome
from repro.simulate.reads import ReadSimConfig, ReadSimulator

FAST = CommCostModel(alpha=1e-6, beta=1e-9)
ERROR_RATE = 0.012


def test_ablation_read_correction(benchmark, write_result):
    genome = Genome("g", random_genome(12_000, np.random.default_rng(17)))
    sim_noisy = ReadSimulator(
        ReadSimConfig(read_length=100, coverage=14, seed=17, flat_error_rate=ERROR_RATE)
    )
    sim_clean = ReadSimulator(
        ReadSimConfig(read_length=100, coverage=14, seed=17, flat_error_rate=0.0)
    )
    noisy = sim_noisy.simulate_genome(genome)
    clean = sim_clean.simulate_genome(genome)

    results = {}

    def run_all():
        assembler = FocusAssembler(AssemblyConfig(n_partitions=4), cost_model=FAST)
        spectrum = KmerSpectrum(noisy, k=21)
        corrected, stats = ReadCorrector(spectrum).correct_readset(noisy)
        for name, reads in (("noisy", noisy), ("corrected", corrected), ("clean", clean)):
            res = assembler.assemble(reads)
            report = evaluate_assembly(res.contigs, [genome], min_identity=0.9)
            results[name] = (res.stats, report)
        results["correction_stats"] = stats

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    cs = results["correction_stats"]
    rows = [
        [
            name,
            results[name][0].n_contigs,
            results[name][0].n50,
            f"{results[name][1].genome_fraction:.3f}",
            f"{results[name][1].mean_identity:.4f}",
        ]
        for name in ("noisy", "corrected", "clean")
    ]
    table = format_table(
        ["Reads", "Contigs", "N50", "Genome fraction", "Identity"], rows
    )
    table += (
        f"\ncorrection: {cs.n_corrected} reads fixed ({cs.n_bases_changed} bases), "
        f"{cs.n_uncorrectable} uncorrectable of {cs.n_reads}"
    )
    write_result("ablation_correction", table)

    noisy_stats, noisy_rep = results["noisy"]
    corr_stats, corr_rep = results["corrected"]
    # Correction repairs contiguity lost to errors...
    assert corr_stats.n50 >= noisy_stats.n50
    assert corr_stats.n_contigs <= noisy_stats.n_contigs
    # ...improves consensus identity, and something was actually fixed.
    assert corr_rep.mean_identity >= noisy_rep.mean_identity
    assert cs.n_corrected > 0.3 * cs.n_reads * (1 - np.exp(-100 * ERROR_RATE))
