"""Compressed sparse row adjacency construction.

All O(E) graph kernels (matching, partition gains, trimming) scan CSR
arrays rather than Python dict-of-dict structures.
"""

from __future__ import annotations

import numpy as np

__all__ = ["build_csr"]


def build_csr(
    n_nodes: int, eu: np.ndarray, ev: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Symmetric CSR adjacency from an undirected edge list.

    Each edge ``(eu[i], ev[i])`` appears in both endpoints' adjacency.

    Returns
    -------
    (indptr, indices, edge_ids):
        ``indices[indptr[v]:indptr[v+1]]`` are v's neighbours and
        ``edge_ids[...]`` the corresponding rows of the edge list.
    """
    eu = np.asarray(eu, dtype=np.int64)
    ev = np.asarray(ev, dtype=np.int64)
    if eu.shape != ev.shape:
        raise ValueError("eu and ev must have equal length")
    if eu.size and (min(eu.min(), ev.min()) < 0 or max(eu.max(), ev.max()) >= n_nodes):
        raise ValueError("edge endpoint out of range")
    if (eu == ev).any():
        raise ValueError("self-loops are not allowed")
    m = eu.size
    if m == 0:
        # Edgeless graph (empty partition / isolated nodes): the same
        # int64 triple shape as the populated path, so downstream sparse
        # views never special-case it.  (np.arange defaults to intp —
        # int32 on some platforms — hence the explicit dtypes.)
        empty = np.empty(0, dtype=np.int64)
        return np.zeros(n_nodes + 1, dtype=np.int64), empty, empty
    src = np.concatenate([eu, ev])
    dst = np.concatenate([ev, eu])
    eids = np.concatenate([np.arange(m, dtype=np.int64), np.arange(m, dtype=np.int64)])
    order = np.argsort(src, kind="stable")
    src, dst, eids = src[order], dst[order], eids[order]
    indptr = np.zeros(n_nodes + 1, dtype=np.int64)
    np.add.at(indptr, src + 1, 1)
    np.cumsum(indptr, out=indptr)
    return indptr, dst, eids
