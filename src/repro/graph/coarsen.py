"""Multilevel graph coarsening (paper §II-C, §III).

Repeated heavy-edge matching + node merging turns the overlap graph G0
into a multilevel graph set ``{G0, G1, ..., Gn}`` with
``|V(Gn)| <= ... <= |V(G0)|``.  Coarse node weights are the summed
weights of their constituents; coarse edge weights sum the crossing
fine edges, so the total edge weight *not* hidden inside coarse nodes
is preserved level to level.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.matching import heavy_edge_matching
from repro.graph.overlap_graph import OverlapGraph

__all__ = ["CoarsenConfig", "MultilevelGraphSet", "coarsen_once", "build_multilevel_set"]


@dataclass(frozen=True)
class CoarsenConfig:
    """Stopping rules for coarsening."""

    #: stop when a graph has at most this many nodes.
    min_nodes: int = 64
    #: stop when a round shrinks the node count by less than this factor.
    min_reduction: float = 0.05
    #: hard cap on the number of levels (n+1 graphs).
    max_levels: int = 12
    seed: int = 0

    def __post_init__(self) -> None:
        if self.min_nodes < 1:
            raise ValueError("min_nodes must be positive")
        if not 0.0 < self.min_reduction < 1.0:
            raise ValueError("min_reduction must be in (0, 1)")
        if self.max_levels < 1:
            raise ValueError("max_levels must be >= 1")


def coarsen_once(
    graph: OverlapGraph, rng: np.random.Generator
) -> tuple[OverlapGraph, np.ndarray]:
    """One matching + merge step; returns (coarse graph, fine->coarse map)."""
    match = heavy_edge_matching(graph, rng)
    n = graph.n_nodes
    # Assign coarse ids: each pair (v, match[v]) with v <= match[v] gets one id.
    reps = np.minimum(np.arange(n), match)
    uniq, mapping = np.unique(reps, return_inverse=True)
    n_coarse = uniq.size
    node_w = np.zeros(n_coarse, dtype=np.int64)
    np.add.at(node_w, mapping, graph.node_weights)
    cu = mapping[graph.eu]
    cv = mapping[graph.ev]
    keep = cu != cv
    coarse = OverlapGraph(
        n_coarse,
        cu[keep],
        cv[keep],
        graph.weights[keep],
        node_weights=node_w,
        identities=graph.identities[keep],
    )
    return coarse, mapping


class MultilevelGraphSet:
    """The graphs ``[G0..Gn]`` plus the fine->coarse maps between levels."""

    def __init__(self, graphs: list[OverlapGraph], mappings: list[np.ndarray]) -> None:
        if len(graphs) != len(mappings) + 1:
            raise ValueError("need one mapping per coarsening step")
        for i, m in enumerate(mappings):
            if m.size != graphs[i].n_nodes:
                raise ValueError(f"mapping {i} does not cover G{i}")
        self.graphs = graphs
        self.mappings = [np.asarray(m, dtype=np.int64) for m in mappings]

    @property
    def n_levels(self) -> int:
        """Number of graphs (n + 1)."""
        return len(self.graphs)

    @property
    def base(self) -> OverlapGraph:
        return self.graphs[0]

    @property
    def coarsest(self) -> OverlapGraph:
        return self.graphs[-1]

    def map_to_level(self, level: int) -> np.ndarray:
        """Composed map from V(G0) to V(G_level)."""
        if not 0 <= level < self.n_levels:
            raise ValueError(f"level {level} out of range")
        out = np.arange(self.graphs[0].n_nodes, dtype=np.int64)
        for m in self.mappings[:level]:
            out = m[out]
        return out

    def clusters_at_level(self, level: int) -> list[np.ndarray]:
        """For each node of G_level, the G0 nodes it represents."""
        comp = self.map_to_level(level)
        order = np.argsort(comp, kind="stable")
        sorted_comp = comp[order]
        boundaries = np.flatnonzero(np.diff(sorted_comp)) + 1
        groups = np.split(order, boundaries)
        out: list[np.ndarray] = [np.empty(0, dtype=np.int64)] * self.graphs[level].n_nodes
        for grp in groups:
            out[int(comp[grp[0]])] = grp
        return out


def build_multilevel_set(
    g0: OverlapGraph, config: CoarsenConfig | None = None
) -> MultilevelGraphSet:
    """Coarsen ``g0`` until the stopping rules fire."""
    config = config or CoarsenConfig()
    rng = np.random.default_rng(config.seed)
    graphs = [g0]
    mappings: list[np.ndarray] = []
    while len(graphs) < config.max_levels:
        current = graphs[-1]
        if current.n_nodes <= config.min_nodes:
            break
        coarse, mapping = coarsen_once(current, rng)
        reduction = 1.0 - coarse.n_nodes / current.n_nodes
        if reduction < config.min_reduction:
            break
        graphs.append(coarse)
        mappings.append(mapping)
    return MultilevelGraphSet(graphs, mappings)
