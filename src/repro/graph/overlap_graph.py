"""The overlap graph: reads as nodes, verified overlaps as edges.

Edges are undirected and carry the paper's two measurements —
alignment length (the edge *weight* used by coarsening and
partitioning) and alignment identity.  Base-level (G0) edges
additionally carry a *delta*: the implied genomic offset of ``ev``
relative to ``eu``, which cluster layout and contig construction use.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.align.overlap import Overlap
from repro.graph.csr import build_csr

__all__ = ["OverlapGraph"]


class OverlapGraph:
    """Immutable undirected weighted graph in CSR form.

    Parameters
    ----------
    n_nodes:
        Number of nodes (0..n-1).
    eu, ev:
        Edge endpoints; normalised so ``eu < ev`` and deduplicated
        (parallel edges are merged by *summing* weights, keeping the
        max identity and the delta of the heaviest instance).
    weights:
        Edge weights (alignment lengths at G0; summed cluster-crossing
        weight at coarser levels).
    node_weights:
        Per-node weight; defaults to 1 (each node one read).
    deltas:
        Optional per-edge offset of ``ev`` relative to ``eu``.
    identities:
        Optional per-edge alignment identity.
    """

    def __init__(
        self,
        n_nodes: int,
        eu: np.ndarray,
        ev: np.ndarray,
        weights: np.ndarray,
        node_weights: np.ndarray | None = None,
        deltas: np.ndarray | None = None,
        identities: np.ndarray | None = None,
    ) -> None:
        if n_nodes < 0:
            raise ValueError("n_nodes must be non-negative")
        eu = np.asarray(eu, dtype=np.int64)
        ev = np.asarray(ev, dtype=np.int64)
        weights = np.asarray(weights, dtype=np.float64)
        if not (eu.shape == ev.shape == weights.shape):
            raise ValueError("edge arrays must have equal length")
        if (eu == ev).any():
            raise ValueError("self-loops are not allowed")
        self.has_deltas = deltas is not None
        deltas = (
            np.zeros(eu.size, dtype=np.int64)
            if deltas is None
            else np.asarray(deltas, dtype=np.int64)
        )
        identities = (
            np.ones(eu.size, dtype=np.float64)
            if identities is None
            else np.asarray(identities, dtype=np.float64)
        )
        if deltas.shape != eu.shape or identities.shape != eu.shape:
            raise ValueError("deltas/identities must match the edge count")

        # Normalise orientation: eu < ev, flipping delta signs.
        flip = eu > ev
        eu2 = np.where(flip, ev, eu)
        ev2 = np.where(flip, eu, ev)
        deltas = np.where(flip, -deltas, deltas)

        # Merge parallel edges.
        if eu2.size:
            order = np.lexsort((ev2, eu2))
            eu2, ev2 = eu2[order], ev2[order]
            weights, deltas, identities = weights[order], deltas[order], identities[order]
            first = np.ones(eu2.size, dtype=bool)
            first[1:] = (eu2[1:] != eu2[:-1]) | (ev2[1:] != ev2[:-1])
            group = np.cumsum(first) - 1
            n_groups = int(group[-1]) + 1
            w_sum = np.zeros(n_groups)
            np.add.at(w_sum, group, weights)
            id_max = np.full(n_groups, -np.inf)
            np.maximum.at(id_max, group, identities)
            # delta of the heaviest instance in each group: sort within
            # groups by weight and take the last row of each group.
            worder = np.lexsort((weights, group))
            last = np.flatnonzero(np.diff(np.append(group[worder], n_groups)))
            heavy = worder[last]
            self.eu = eu2[first]
            self.ev = ev2[first]
            self.weights = w_sum
            self.identities = id_max
            self.deltas = deltas[heavy]
        else:
            self.eu, self.ev = eu2, ev2
            self.weights, self.deltas, self.identities = weights, deltas, identities

        if self.eu.size and (self.eu.min() < 0 or self.ev.max() >= n_nodes):
            raise ValueError("edge endpoint out of range")
        self.n_nodes = int(n_nodes)
        self.node_weights = (
            np.ones(n_nodes, dtype=np.int64)
            if node_weights is None
            else np.asarray(node_weights, dtype=np.int64)
        )
        if self.node_weights.size != n_nodes:
            raise ValueError("node_weights length mismatch")
        self.indptr, self.adj, self.adj_edge = build_csr(n_nodes, self.eu, self.ev)

    # -- constructors -------------------------------------------------------

    @classmethod
    def from_overlaps(cls, overlaps: Sequence[Overlap], n_reads: int) -> "OverlapGraph":
        """Build G0 from verified overlaps (weight = alignment length)."""
        m = len(overlaps)
        eu = np.fromiter((o.query for o in overlaps), dtype=np.int64, count=m)
        ev = np.fromiter((o.ref for o in overlaps), dtype=np.int64, count=m)
        w = np.fromiter((o.length for o in overlaps), dtype=np.float64, count=m)
        d = np.fromiter((o.q_start - o.r_start for o in overlaps), dtype=np.int64, count=m)
        ident = np.fromiter((o.identity for o in overlaps), dtype=np.float64, count=m)
        return cls(n_reads, eu, ev, w, deltas=d, identities=ident)

    # -- queries ------------------------------------------------------------

    @property
    def n_edges(self) -> int:
        return int(self.eu.size)

    def neighbors(self, v: int) -> np.ndarray:
        """Neighbour node ids of ``v`` (zero-copy view)."""
        return self.adj[self.indptr[v] : self.indptr[v + 1]]

    def incident_edges(self, v: int) -> np.ndarray:
        """Edge ids incident to ``v`` (zero-copy view)."""
        return self.adj_edge[self.indptr[v] : self.indptr[v + 1]]

    @property
    def degrees(self) -> np.ndarray:
        return np.diff(self.indptr)

    @property
    def total_edge_weight(self) -> float:
        return float(self.weights.sum())

    @property
    def total_node_weight(self) -> int:
        return int(self.node_weights.sum())

    def edge_delta(self, edge_id: int, source: int) -> int:
        """Offset of the *other* endpoint relative to ``source``."""
        if not self.has_deltas:
            raise ValueError("graph carries no layout deltas")
        if source == self.eu[edge_id]:
            return int(self.deltas[edge_id])
        if source == self.ev[edge_id]:
            return -int(self.deltas[edge_id])
        raise ValueError(f"node {source} is not an endpoint of edge {edge_id}")

    def other_endpoint(self, edge_id: int, v: int) -> int:
        u1, u2 = int(self.eu[edge_id]), int(self.ev[edge_id])
        if v == u1:
            return u2
        if v == u2:
            return u1
        raise ValueError(f"node {v} is not an endpoint of edge {edge_id}")

    # -- derivation ---------------------------------------------------------

    def drop_edges(self, edge_mask: np.ndarray) -> "OverlapGraph":
        """A new graph without the edges where ``edge_mask`` is True."""
        keep = ~np.asarray(edge_mask, dtype=bool)
        if keep.size != self.n_edges:
            raise ValueError("edge mask length mismatch")
        return OverlapGraph(
            self.n_nodes,
            self.eu[keep],
            self.ev[keep],
            self.weights[keep],
            node_weights=self.node_weights,
            deltas=self.deltas[keep] if self.has_deltas else None,
            identities=self.identities[keep],
        )

    def drop_nodes(self, node_mask: np.ndarray) -> tuple["OverlapGraph", np.ndarray]:
        """Remove masked nodes; returns (new graph, old->new id map).

        Removed nodes map to -1.
        """
        drop = np.asarray(node_mask, dtype=bool)
        if drop.size != self.n_nodes:
            raise ValueError("node mask length mismatch")
        keep = ~drop
        remap = np.full(self.n_nodes, -1, dtype=np.int64)
        remap[keep] = np.arange(int(keep.sum()))
        ekeep = keep[self.eu] & keep[self.ev]
        g = OverlapGraph(
            int(keep.sum()),
            remap[self.eu[ekeep]],
            remap[self.ev[ekeep]],
            self.weights[ekeep],
            node_weights=self.node_weights[keep],
            deltas=self.deltas[ekeep] if self.has_deltas else None,
            identities=self.identities[ekeep],
        )
        return g, remap

    def induced_subgraph(self, nodes: np.ndarray) -> tuple["OverlapGraph", np.ndarray]:
        """Subgraph on ``nodes``; returns (subgraph, old->new id map).

        Nodes outside the set map to -1.  Local ids follow ascending
        original id order.
        """
        keep = np.zeros(self.n_nodes, dtype=bool)
        keep[np.asarray(nodes, dtype=np.int64)] = True
        return self.drop_nodes(~keep)

    def to_networkx(self):
        """networkx view for tests and diagnostics."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self.n_nodes))
        for i in range(self.n_edges):
            g.add_edge(
                int(self.eu[i]),
                int(self.ev[i]),
                weight=float(self.weights[i]),
                delta=int(self.deltas[i]),
                identity=float(self.identities[i]),
            )
        return g
