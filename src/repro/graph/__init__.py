"""Assembly graphs: overlap graph, multilevel coarsening, hybrid graph set.

This package implements the graph-theoretic heart of Focus (paper
§II-C/D and §III): the overlap graph built from read alignments, its
iterative coarsening by heavy-edge matching into a *multilevel graph
set*, and the *hybrid graph set* assembled from best-representative
nodes — the structure that encodes the biological knowledge that DNA
is linear.
"""

from repro.graph.coarsen import CoarsenConfig, MultilevelGraphSet, build_multilevel_set, coarsen_once
from repro.graph.components import (
    GraphSummary,
    component_sizes,
    connected_components,
    summarize_graph,
)
from repro.graph.contigs import cluster_layout_offsets, consensus_from_layout, contig_for_nodes
from repro.graph.csr import build_csr
from repro.graph.hybrid import HybridGraphSet, build_hybrid_set, is_contiguous_cluster
from repro.graph.matching import heavy_edge_matching
from repro.graph.overlap_graph import OverlapGraph

__all__ = [
    "OverlapGraph",
    "connected_components",
    "component_sizes",
    "GraphSummary",
    "summarize_graph",
    "build_csr",
    "heavy_edge_matching",
    "CoarsenConfig",
    "MultilevelGraphSet",
    "build_multilevel_set",
    "coarsen_once",
    "HybridGraphSet",
    "build_hybrid_set",
    "is_contiguous_cluster",
    "cluster_layout_offsets",
    "consensus_from_layout",
    "contig_for_nodes",
]
