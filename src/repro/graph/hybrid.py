"""The hybrid graph set (paper §II-D, Fig. 1B).

A *best representative* is a node selected from the coarsest possible
graph level whose read cluster still assembles into one contiguous
contig — operationally: the cluster's induced G0 subgraph is connected,
admits a consistent offset layout (no repeat conflicts), and its read
intervals tile the region without gaps.

The hybrid graph set ``{H0..Hn}`` mirrors the multilevel set, but
un-coarsens only *through* non-representative nodes: ``Hi`` contains
every best representative chosen at level >= i plus, for the rest of
the graph, the ordinary level-i nodes.  ``H0`` is *the hybrid graph* on
which Focus partitions, trims, and traverses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.coarsen import MultilevelGraphSet
from repro.graph.contigs import cluster_layout_offsets, is_layout_contiguous
from repro.graph.overlap_graph import OverlapGraph

__all__ = ["is_contiguous_cluster", "HybridGraphSet", "build_hybrid_set"]


def is_contiguous_cluster(
    g0: OverlapGraph,
    nodes: np.ndarray,
    read_lengths: np.ndarray,
    tolerance: int = 0,
) -> bool:
    """Does this G0 node cluster assemble into one contiguous contig?"""
    nodes = np.asarray(nodes, dtype=np.int64)
    if nodes.size == 1:
        return True
    offsets = cluster_layout_offsets(g0, nodes, tolerance=tolerance)
    if offsets is None:
        return False
    return is_layout_contiguous(offsets, read_lengths[nodes])


@dataclass
class HybridGraphSet:
    """Hybrid graphs ``[H0..Hn]`` plus maps between levels and to G0."""

    graphs: list[OverlapGraph]
    #: mappings[i]: V(H_i) -> V(H_{i+1})
    mappings: list[np.ndarray]
    #: base_maps[i]: V(G0) -> V(H_i)
    base_maps: list[np.ndarray]
    #: per G0 node, the multilevel level of its chosen representative.
    rep_level: np.ndarray

    def __post_init__(self) -> None:
        if len(self.graphs) != len(self.mappings) + 1:
            raise ValueError("need one mapping per level step")
        if len(self.base_maps) != len(self.graphs):
            raise ValueError("need one base map per level")

    @property
    def n_levels(self) -> int:
        return len(self.graphs)

    @property
    def hybrid(self) -> OverlapGraph:
        """H0, *the* hybrid graph."""
        return self.graphs[0]

    def clusters_of_hybrid(self) -> list[np.ndarray]:
        """For each H0 node, the G0 nodes (reads) it represents."""
        comp = self.base_maps[0]
        order = np.argsort(comp, kind="stable")
        sorted_comp = comp[order]
        boundaries = np.flatnonzero(np.diff(sorted_comp)) + 1
        groups = np.split(order, boundaries)
        out: list[np.ndarray] = [np.empty(0, dtype=np.int64)] * self.hybrid.n_nodes
        for grp in groups:
            out[int(comp[grp[0]])] = grp
        return out


def _select_representatives(
    mls: MultilevelGraphSet, read_lengths: np.ndarray, tolerance: int
) -> np.ndarray:
    """Per-G0-node level of its best representative (top-down descent)."""
    g0 = mls.base
    n0 = g0.n_nodes
    top = mls.n_levels - 1
    rep_level = np.full(n0, -1, dtype=np.int64)
    clusters_cache = {lvl: mls.clusters_at_level(lvl) for lvl in range(mls.n_levels)}

    # Work stack of (level, node-at-level); start from every coarsest node.
    stack: list[tuple[int, int]] = [(top, v) for v in range(mls.graphs[top].n_nodes)]
    # children[level][node] = nodes of level-1 mapping to it
    while stack:
        level, node = stack.pop()
        members = clusters_cache[level][node]
        if level == 0 or is_contiguous_cluster(g0, members, read_lengths, tolerance):
            rep_level[members] = level
            continue
        # descend into the node's children one level down
        mapping = mls.mappings[level - 1]
        child_candidates = np.unique(mls.map_to_level(level - 1)[members])
        for child in child_candidates.tolist():
            if mapping[child] == node:
                stack.append((level - 1, child))
    if (rep_level < 0).any():
        raise RuntimeError("representative selection left nodes unassigned")
    return rep_level


def build_hybrid_set(
    mls: MultilevelGraphSet, read_lengths: np.ndarray, tolerance: int = 0
) -> HybridGraphSet:
    """Select best representatives and assemble the hybrid graph set."""
    read_lengths = np.asarray(read_lengths, dtype=np.int64)
    g0 = mls.base
    if read_lengths.size != g0.n_nodes:
        raise ValueError("read_lengths must cover V(G0)")
    rep_level = _select_representatives(mls, read_lengths, tolerance)

    n_levels = mls.n_levels
    level_maps = [mls.map_to_level(lvl) for lvl in range(n_levels)]
    n0 = g0.n_nodes
    # Encode the hybrid identity of each G0 node at each level i:
    # (L, ancestor-at-L) for represented nodes with L >= i, else (i, ancestor-at-i).
    max_nodes = max(g.n_nodes for g in mls.graphs) + 1
    graphs: list[OverlapGraph] = []
    base_maps: list[np.ndarray] = []
    for i in range(n_levels):
        lvl = np.maximum(rep_level, i)
        anc = np.empty(n0, dtype=np.int64)
        for l_val in np.unique(lvl).tolist():
            mask = lvl == l_val
            anc[mask] = level_maps[l_val][mask]
        keys = lvl * max_nodes + anc
        _, base_map = np.unique(keys, return_inverse=True)
        base_maps.append(base_map.astype(np.int64))
        n_h = int(base_map.max()) + 1
        node_w = np.zeros(n_h, dtype=np.int64)
        np.add.at(node_w, base_map, g0.node_weights)
        hu = base_map[g0.eu]
        hv = base_map[g0.ev]
        keep = hu != hv
        graphs.append(
            OverlapGraph(
                n_h,
                hu[keep],
                hv[keep],
                g0.weights[keep],
                node_weights=node_w,
                identities=g0.identities[keep],
            )
        )

    mappings: list[np.ndarray] = []
    for i in range(n_levels - 1):
        m = np.zeros(graphs[i].n_nodes, dtype=np.int64)
        m[base_maps[i]] = base_maps[i + 1]
        mappings.append(m)

    return HybridGraphSet(
        graphs=graphs, mappings=mappings, base_maps=base_maps, rep_level=rep_level
    )
