"""Read-cluster layout and contig consensus.

A cluster of reads representing one contiguous genomic region can be
*laid out*: each read gets an offset such that every overlap edge's
implied relative offset (its delta) is honoured.  Repeat-confused
clusters admit no consistent layout — exactly the property the hybrid
graph's best-representative test uses.  The consensus sequence of a
laid-out cluster is the per-column majority over the stacked reads.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.graph.overlap_graph import OverlapGraph
from repro.io.readset import ReadSet

__all__ = [
    "cluster_layout_offsets",
    "is_layout_contiguous",
    "consensus_from_layout",
    "contig_for_nodes",
]


def cluster_layout_offsets(
    g0: OverlapGraph, nodes: np.ndarray, tolerance: int = 0
) -> np.ndarray | None:
    """Offsets of ``nodes`` satisfying all induced edge deltas, or None.

    Returns None if the induced subgraph is disconnected or if any
    induced edge disagrees with the BFS-assigned offsets by more than
    ``tolerance`` bases (a repeat signature).  Offsets are normalised
    so the smallest is 0.
    """
    if not g0.has_deltas:
        raise ValueError("layout requires a graph with deltas (G0)")
    nodes = np.asarray(nodes, dtype=np.int64)
    if nodes.size == 0:
        raise ValueError("empty cluster")
    local = {int(v): i for i, v in enumerate(nodes)}
    offsets = np.zeros(nodes.size, dtype=np.int64)
    seen = np.zeros(nodes.size, dtype=bool)
    seen[0] = True
    queue = deque([int(nodes[0])])
    n_visited = 1
    while queue:
        v = queue.popleft()
        lv = local[v]
        lo, hi = g0.indptr[v], g0.indptr[v + 1]
        for u, eid in zip(g0.adj[lo:hi].tolist(), g0.adj_edge[lo:hi].tolist()):
            lu = local.get(u)
            if lu is None:
                continue
            implied = offsets[lv] + g0.edge_delta(eid, v)
            if seen[lu]:
                if abs(int(offsets[lu]) - implied) > tolerance:
                    return None
            else:
                offsets[lu] = implied
                seen[lu] = True
                n_visited += 1
                queue.append(u)
    if n_visited != nodes.size:
        return None
    offsets -= offsets.min()
    return offsets


def is_layout_contiguous(offsets: np.ndarray, lengths: np.ndarray) -> bool:
    """True if the read intervals [offset, offset+length) leave no gap."""
    offsets = np.asarray(offsets, dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.int64)
    if offsets.size != lengths.size:
        raise ValueError("offsets/lengths length mismatch")
    order = np.argsort(offsets, kind="stable")
    starts = offsets[order]
    ends = starts + lengths[order]
    reach = np.maximum.accumulate(ends)
    return bool((starts[1:] <= reach[:-1]).all())


def consensus_from_layout(
    reads: ReadSet,
    nodes: np.ndarray,
    offsets: np.ndarray,
    quality_weighted: bool = False,
) -> list[np.ndarray]:
    """Majority-vote consensus of the stacked reads.

    With ``quality_weighted`` (and reads that carry Phred scores), each
    base's vote is weighted by its probability of being correct,
    ``1 - 10^(-Q/10)`` — low-quality 3' tails then lose ties against
    confident bases instead of splitting them.

    Returns one code array per zero-coverage-separated segment (a
    contiguous layout yields exactly one).
    """
    nodes = np.asarray(nodes, dtype=np.int64)
    offsets = np.asarray(offsets, dtype=np.int64)
    if nodes.size != offsets.size:
        raise ValueError("nodes/offsets length mismatch")
    if nodes.size == 0:
        return []
    weighted = quality_weighted and reads.quals is not None
    shifted = offsets - offsets.min()
    width = int((shifted + reads.lengths[nodes]).max())
    counts = np.zeros((width, 4), dtype=np.float64 if weighted else np.int64)
    for v, off in zip(nodes.tolist(), shifted.tolist()):
        codes = reads.codes_of(v)
        called = codes < 4
        pos = np.arange(codes.size)[called] + off
        if weighted:
            quals = reads.quals_of(v)[called]
            votes = 1.0 - np.power(10.0, -quals / 10.0)
            np.add.at(counts, (pos, codes[called].astype(np.int64)), votes)
        else:
            np.add.at(counts, (pos, codes[called].astype(np.int64)), 1)
    coverage = counts.sum(axis=1)
    consensus = counts.argmax(axis=1).astype(np.uint8)
    covered = coverage > 0
    # Split at zero-coverage columns.
    segments: list[np.ndarray] = []
    if covered.any():
        edges = np.flatnonzero(np.diff(covered.astype(np.int8)))
        bounds = np.concatenate([[0], edges + 1, [width]])
        for lo, hi in zip(bounds[:-1], bounds[1:]):
            if covered[lo]:
                segments.append(consensus[lo:hi].copy())
    return segments


def contig_for_nodes(
    reads: ReadSet, g0: OverlapGraph, nodes: np.ndarray, tolerance: int = 0
) -> list[np.ndarray] | None:
    """Layout + consensus in one call; None if the cluster has no layout."""
    offsets = cluster_layout_offsets(g0, nodes, tolerance=tolerance)
    if offsets is None:
        return None
    return consensus_from_layout(reads, np.asarray(nodes, dtype=np.int64), offsets)
