"""Connected components and graph diagnostics.

Assembly QC in practice starts with "how many components, how big,
how tangled" — these helpers answer that for any
:class:`~repro.graph.overlap_graph.OverlapGraph` with union-find over
the edge list (no per-node Python BFS).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.overlap_graph import OverlapGraph

__all__ = ["connected_components", "component_sizes", "GraphSummary", "summarize_graph"]


def connected_components(graph: OverlapGraph) -> np.ndarray:
    """Component label (0..c-1) per node, via union-find with path halving."""
    n = graph.n_nodes
    parent = np.arange(n, dtype=np.int64)

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = int(parent[x])
        return x

    for u, v in zip(graph.eu.tolist(), graph.ev.tolist()):
        ru, rv = find(u), find(v)
        if ru != rv:
            parent[rv] = ru
    roots = np.array([find(i) for i in range(n)], dtype=np.int64)
    _, labels = np.unique(roots, return_inverse=True)
    return labels.astype(np.int64)


def component_sizes(graph: OverlapGraph) -> np.ndarray:
    """Node counts per component, descending."""
    labels = connected_components(graph)
    if labels.size == 0:
        return np.empty(0, dtype=np.int64)
    sizes = np.bincount(labels)
    return np.sort(sizes)[::-1]


@dataclass(frozen=True)
class GraphSummary:
    """One-glance diagnostics of an assembly graph."""

    n_nodes: int
    n_edges: int
    n_components: int
    largest_component: int
    n_isolated: int
    mean_degree: float
    max_degree: int
    total_edge_weight: float

    def report(self) -> str:
        return (
            f"nodes {self.n_nodes:,}  edges {self.n_edges:,}  "
            f"components {self.n_components:,} (largest {self.largest_component:,}, "
            f"isolated {self.n_isolated:,})  "
            f"degree mean {self.mean_degree:.2f} / max {self.max_degree}  "
            f"edge weight {self.total_edge_weight:,.0f}"
        )


def summarize_graph(graph: OverlapGraph) -> GraphSummary:
    """Compute a :class:`GraphSummary`."""
    sizes = component_sizes(graph)
    degrees = graph.degrees
    return GraphSummary(
        n_nodes=graph.n_nodes,
        n_edges=graph.n_edges,
        n_components=int(sizes.size),
        largest_component=int(sizes[0]) if sizes.size else 0,
        n_isolated=int((sizes == 1).sum()),
        mean_degree=float(degrees.mean()) if graph.n_nodes else 0.0,
        max_degree=int(degrees.max()) if graph.n_nodes else 0,
        total_edge_weight=graph.total_edge_weight,
    )
