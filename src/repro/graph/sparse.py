"""Masked sparse-matrix representation of the alive assembly subgraph.

The finish stages (paper §V-A/B/C: transitive reduction, containment
removal, dead-end trimming, bubble popping) originally walked nodes one
at a time through ``alive_incident()`` Python loops.  The ``sparse``
engine batches each stage into whole-partition numpy / ``scipy.sparse``
operations over the representation built here, the way diBELLA performs
string-graph transitive reduction as distributed sparse matrix products
(PAPERS.md: *Parallel String Graph Construction and Transitive
Reduction for De Novo Genome Assembly*), over a compact directed-pair
encoding in the spirit of Dinh & Rajasekaran's exact-match overlap
graph.

Two layers keep the per-stage cost incremental:

:class:`SparseStructure`
    The mask-*independent* directed pair tables of one graph: every
    undirected edge is stored in both orientations with its
    delta-as-seen-from-source, globally sorted by ``(src, dst)``.  The
    sort is the only superlinear step and runs **once per graph**; the
    master (or an execution backend) primes it via
    ``DistributedAssemblyGraph.prime_sparse()`` so sequential stages
    share it.

:class:`SparseFinishView`
    The alive subgraph under the current ``node_alive``/``edge_alive``
    masks: an O(E) boolean compaction of the structure tables — an
    incremental mask update between stages, never a rebuild.  The view
    offers CSR adjacency (``indptr``/``dst``), alive degree vectors
    (``indptr`` diffs), vectorized pair lookup, the right-directed
    (positive-delta) sub-adjacency, and boolean ``scipy.sparse``
    matrices for semiring products.

``scipy`` is optional: :func:`boolean_product_keys` degrades to an
exact pure-numpy expansion when it is missing, so the engine (and its
equivalence tests) work on a numpy-only install; only the product
prefilter speeds up.
"""

from __future__ import annotations

import numpy as np

try:  # pragma: no cover - exercised through HAVE_SCIPY branches
    import scipy.sparse as _sp

    HAVE_SCIPY = True
except ImportError:  # pragma: no cover - scipy is present on CI tier-1
    _sp = None
    HAVE_SCIPY = False

__all__ = [
    "HAVE_SCIPY",
    "SparseStructure",
    "SparseFinishView",
    "masked_view",
    "ragged_positions",
    "boolean_product_keys",
]


def ragged_positions(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenated ``[starts[i], starts[i]+counts[i])`` ranges.

    The standard vectorized replacement for ``for s, c in zip(...):
    out.extend(range(s, s+c))`` — one flat int64 index array.
    """
    starts = np.asarray(starts, dtype=np.int64)
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    block = np.cumsum(counts) - counts
    return np.repeat(starts - block, counts) + np.arange(total, dtype=np.int64)


class SparseStructure:
    """Mask-independent directed-pair tables of one overlap graph.

    Every undirected edge appears twice — once per orientation — with
    its delta as seen from ``src``.  Rows are sorted by ``(src, dst)``
    so masked views inherit CSR order and pair lookups binary-search a
    single key array.
    """

    def __init__(self, graph) -> None:
        n = int(graph.n_nodes)
        m = int(graph.n_edges)
        eids = np.arange(m, dtype=np.int64)
        src = np.concatenate([graph.eu, graph.ev]).astype(np.int64, copy=False)
        dst = np.concatenate([graph.ev, graph.eu]).astype(np.int64, copy=False)
        delta = np.concatenate([graph.deltas, -graph.deltas]).astype(
            np.int64, copy=False
        )
        eid = np.concatenate([eids, eids])
        order = np.lexsort((dst, src))
        self.n_nodes = n
        self.src = src[order]
        self.dst = dst[order]
        self.delta = delta[order]
        self.eid = eid[order]
        #: collision-free (src, dst) key; n_nodes is bounded well below
        #: 2**31 so the product fits int64.
        self.key = self.src * n + self.dst

    def masked(
        self, node_alive: np.ndarray, edge_alive: np.ndarray
    ) -> "SparseFinishView":
        """The alive subgraph under the given masks (O(E) compaction)."""
        keep = (
            edge_alive[self.eid]
            & node_alive[self.src]
            & node_alive[self.dst]
        )
        return SparseFinishView(self, keep)


class SparseFinishView:
    """One stage's alive subgraph: masked CSR arrays plus lookups.

    Directed rows stay sorted by ``(src, dst)``; ``indptr`` makes them
    CSR.  A dead node has an empty row — stage kernels only ever query
    alive nodes (partition membership already filters on the alive
    mask), where the degree here equals ``dag.alive_degree``.
    """

    def __init__(self, structure: SparseStructure, keep: np.ndarray) -> None:
        n = structure.n_nodes
        self.n_nodes = n
        self.src = structure.src[keep]
        self.dst = structure.dst[keep]
        self.delta = structure.delta[keep]
        self.eid = structure.eid[keep]
        self.key = structure.key[keep]
        counts = np.bincount(self.src, minlength=n)
        self.indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=self.indptr[1:])
        #: alive degree per node (dead rows are 0 by construction).
        self.degrees = counts
        self._right: tuple[np.ndarray, ...] | None = None

    # -- pair queries -----------------------------------------------------

    def lookup(self, us: np.ndarray, vs: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(row positions, found mask) of alive directed pairs (u, v)."""
        us = np.asarray(us, dtype=np.int64)
        vs = np.asarray(vs, dtype=np.int64)
        want = us * self.n_nodes + vs
        pos = np.searchsorted(self.key, want)
        pos = np.minimum(pos, max(self.key.size - 1, 0))
        found = (self.key.size > 0) & (self.key[pos] == want)
        return pos, found

    def pair_deltas(self, us: np.ndarray, vs: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(delta of edge u-v as seen from u, found mask); 0 where absent."""
        pos, found = self.lookup(us, vs)
        out = np.where(found, self.delta[pos] if self.delta.size else 0, 0)
        return out, found

    def pair_edge_ids(self, us: np.ndarray, vs: np.ndarray) -> np.ndarray:
        """Alive edge id per (u, v) pair, ``-1`` where no alive edge."""
        pos, found = self.lookup(us, vs)
        if self.eid.size == 0:
            return np.full(np.asarray(us).shape, -1, dtype=np.int64)
        return np.where(found, self.eid[pos], -1)

    # -- directed sub-adjacency -------------------------------------------

    def right(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """(src, dst, delta, eid) of right-extending rows (delta > 0)."""
        if self._right is None:
            pos = self.delta > 0
            self._right = (
                self.src[pos],
                self.dst[pos],
                self.delta[pos],
                self.eid[pos],
            )
        return self._right

    # -- scipy matrices ----------------------------------------------------

    def adjacency_csr(self):
        """Boolean symmetric alive adjacency (requires scipy)."""
        return _sp.csr_matrix(
            (
                np.ones(self.src.size, dtype=np.int8),
                self.dst,
                self.indptr,
            ),
            shape=(self.n_nodes, self.n_nodes),
        )


def boolean_product_keys(
    rows: np.ndarray,
    cols: np.ndarray,
    view: SparseFinishView,
) -> np.ndarray:
    """Sorted (v, u) keys with a 2-path v -> w — u through the view.

    The first hop is the given directed edge set (``rows[i] ->
    cols[i]``); the second hop is *any* alive edge of the view (either
    direction — delta tolerance is checked later on matched triples,
    which may legally run slightly leftward).  With scipy this is the
    boolean sparse product ``A_near @ A``; without it, an exact ragged
    expansion of the same reachability set.
    """
    n = view.n_nodes
    if rows.size == 0:
        return np.empty(0, dtype=np.int64)
    if HAVE_SCIPY:
        a_near = _sp.csr_matrix(
            (np.ones(rows.size, dtype=np.int8), (rows, cols)), shape=(n, n)
        )
        two_hop = a_near @ view.adjacency_csr()
        two_hop.sort_indices()
        hops = two_hop.tocoo()
        return np.unique(hops.row.astype(np.int64) * n + hops.col.astype(np.int64))
    # Exact numpy fallback: expand every (row -> col -> col's alive
    # neighbour) triple through the view's CSR slices.
    counts = view.degrees[cols]
    mids = ragged_positions(view.indptr[cols], counts)
    ends = view.dst[mids]
    starts = np.repeat(rows, counts)
    return np.unique(starts * n + ends)


def masked_view(dag) -> SparseFinishView:
    """The alive-masked view of a distributed graph (pure).

    Uses the structure primed by the backend
    (:meth:`~repro.distributed.dgraph.DistributedAssemblyGraph.\
prime_sparse`) when present; otherwise builds a throwaway structure so
    kernels stay side-effect free either way.
    """
    return dag.sparse_structure.masked(dag.node_alive, dag.edge_alive)
