"""Heavy edge matching (Karypis & Kumar [15]).

Nodes are visited in random order; an unmatched node matches the
unmatched neighbour sharing its heaviest incident edge.  The matching
drives one coarsening step: matched pairs merge into one coarse node.
"""

from __future__ import annotations

import numpy as np

from repro.graph.overlap_graph import OverlapGraph

__all__ = ["heavy_edge_matching"]


def heavy_edge_matching(graph: OverlapGraph, rng: np.random.Generator) -> np.ndarray:
    """Return ``match`` where ``match[v]`` is v's partner (or v itself).

    The result is an involution: ``match[match[v]] == v``.
    """
    n = graph.n_nodes
    match = np.full(n, -1, dtype=np.int64)
    order = rng.permutation(n)
    indptr, adj, adj_edge, weights = graph.indptr, graph.adj, graph.adj_edge, graph.weights
    for v in order.tolist():
        if match[v] != -1:
            continue
        lo, hi = indptr[v], indptr[v + 1]
        nbrs = adj[lo:hi]
        if nbrs.size:
            free = match[nbrs] == -1
            if free.any():
                w = weights[adj_edge[lo:hi]]
                cand = np.where(free, w, -np.inf)
                u = int(nbrs[np.argmax(cand)])
                match[v] = u
                match[u] = v
                continue
        match[v] = v
    return match
