"""Lease files: exclusive, heartbeat-renewed job ownership.

A lease is a JSON file inside the job directory.  Its *existence* is
the mutual exclusion (claims go through ``os.link``, which the kernel
makes atomic: exactly one claimant wins, and the file appears with its
full content — there is no window where a half-written lease is
visible).  Its *content* carries the owner token, the owner's PID, and
an expiry that heartbeats push forward.

Three operations cover the whole lifecycle:

- :func:`claim` — create the lease if absent (exactly-one-winner).
- :func:`heartbeat` — extend a held lease; fails with
  :class:`LeaseLostError` if the file no longer carries the caller's
  token (someone took the lease over), which is the worker's signal to
  stop touching the job.
- :func:`take_over` — compare-and-swap removal of a *stale* lease via
  ``os.rename`` to a caller-unique tombstone: when several supervisors
  spot the same dead job, exactly one rename succeeds and only that
  supervisor proceeds to requeue and re-claim.

Expiry uses the shared wall clock (``time.time``) — supervisors and
workers coordinating through one on-disk store are on one machine (or
one clock-synced filesystem), and the TTLs are seconds, not
milliseconds.
"""

from __future__ import annotations

import json
import os
import time
import uuid
from dataclasses import dataclass, replace

from repro.io.store import atomic_write_text, fsync_dir

__all__ = [
    "LEASE_NAME",
    "LeaseLostError",
    "Lease",
    "new_token",
    "claim",
    "read",
    "heartbeat",
    "release",
    "take_over",
]

LEASE_NAME = "lease.json"


class LeaseLostError(RuntimeError):
    """The caller's lease token no longer owns the lease file."""


def new_token() -> str:
    """A unique ownership token (uniqueness, not determinism)."""
    return uuid.uuid4().hex


@dataclass(frozen=True)
class Lease:
    """One lease file's content."""

    owner: str
    token: str
    pid: int
    acquired: float
    expires: float
    beats: int = 0

    def stale(self, now: float | None = None) -> bool:
        return (now if now is not None else time.time()) >= self.expires

    def to_json(self) -> str:
        return json.dumps(
            {
                "owner": self.owner,
                "token": self.token,
                "pid": self.pid,
                "acquired": self.acquired,
                "expires": self.expires,
                "beats": self.beats,
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "Lease":
        try:
            payload = json.loads(text)
            return cls(
                owner=str(payload["owner"]),
                token=str(payload["token"]),
                pid=int(payload["pid"]),
                acquired=float(payload["acquired"]),
                expires=float(payload["expires"]),
                beats=int(payload.get("beats", 0)),
            )
        except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"malformed lease: {exc}") from exc


def _lease_path(job_dir: str) -> str:
    return os.path.join(job_dir, LEASE_NAME)


def claim(
    job_dir: str,
    owner: str,
    ttl: float,
    now: float | None = None,
    pid: int | None = None,
) -> Lease | None:
    """Atomically create the lease; ``None`` if someone else holds it.

    The content is written to a private temporary file first and
    ``os.link``-ed to the lease name — the link either succeeds
    (this caller owns the job, full content visible) or fails with
    ``FileExistsError`` (someone else does).  Unlike ``O_EXCL`` +
    ``write``, a crash between create and write can never leave an
    empty lease behind.
    """
    if ttl <= 0:
        raise ValueError("lease ttl must be positive")
    t = now if now is not None else time.time()
    lease = Lease(
        owner=owner,
        token=new_token(),
        pid=pid if pid is not None else os.getpid(),
        acquired=t,
        expires=t + ttl,
    )
    final = _lease_path(job_dir)
    tmp = f"{final}.claim.{os.getpid()}.{lease.token[:8]}"
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(lease.to_json())
        fh.flush()
        os.fsync(fh.fileno())
    try:
        os.link(tmp, final)
    except FileExistsError:
        return None
    finally:
        os.unlink(tmp)
    fsync_dir(job_dir)
    return lease


def read(job_dir: str) -> Lease | None:
    """The current lease, or ``None`` when the job is unowned.

    A malformed lease file (which atomic writes should make
    impossible) is surfaced as :class:`ValueError` rather than
    guessed at.
    """
    try:
        with open(_lease_path(job_dir), encoding="utf-8") as fh:
            text = fh.read()
    except FileNotFoundError:
        return None
    return Lease.from_json(text)


def heartbeat(
    job_dir: str,
    lease: Lease,
    ttl: float,
    now: float | None = None,
    pid: int | None = None,
) -> Lease:
    """Extend a held lease; raise :class:`LeaseLostError` if taken over.

    The token check and the rewrite are not one atomic step, but a
    takeover only happens *after* expiry — a worker that heartbeats
    within the TTL can never race it, and a worker so stalled that it
    missed its window finds out here and must abandon the job.
    ``pid`` lets a supervisor hand the lease to the worker process it
    spawned (the chaos harness reads the pid to aim its SIGKILL).
    """
    current = read(job_dir)
    if current is None or current.token != lease.token:
        raise LeaseLostError(
            f"lease on {job_dir!r} is no longer held by {lease.owner!r}"
        )
    t = now if now is not None else time.time()
    renewed = replace(
        current,
        expires=t + ttl,
        beats=current.beats + 1,
        pid=pid if pid is not None else current.pid,
    )
    atomic_write_text(_lease_path(job_dir), renewed.to_json())
    return renewed


def release(job_dir: str, lease: Lease) -> bool:
    """Drop a held lease; ``False`` if it was already lost/taken."""
    current = read(job_dir)
    if current is None or current.token != lease.token:
        return False
    os.unlink(_lease_path(job_dir))
    fsync_dir(job_dir)
    return True


def take_over(job_dir: str, now: float | None = None) -> bool:
    """Try to clear a stale lease; ``True`` iff this caller won.

    The compare-and-swap is ``os.rename`` to a caller-unique tombstone:
    when N supervisors race over one dead job, N-1 renames fail with
    ``FileNotFoundError`` and exactly one supervisor proceeds.  A lease
    that is absent entirely also returns ``True`` — the subsequent
    :func:`claim` is itself exclusive, so arbitration still holds.

    Read-then-rename is not one atomic step, so the tombstone is
    verified after the rename: if the lease this caller renamed is not
    the stale one it observed (the stale lease was cleared and a fresh
    claim landed in between), the fresh lease is restored via
    ``os.link`` and the takeover reports lost.  If a new claim already
    filled the gap before the restore, the stolen owner discovers the
    loss through its next heartbeat's token check — which is why every
    lease-guarded side effect must follow a claim or heartbeat, never
    a bare ``read``.
    """
    t = now if now is not None else time.time()
    current = read(job_dir)
    if current is None:
        return True
    if not current.stale(t):
        return False
    tomb = os.path.join(
        job_dir, f"{LEASE_NAME}.stale.{os.getpid()}.{new_token()[:8]}"
    )
    try:
        os.rename(_lease_path(job_dir), tomb)
    except FileNotFoundError:
        return False
    try:
        with open(tomb, encoding="utf-8") as fh:
            grabbed = Lease.from_json(fh.read())
    except (OSError, ValueError):
        grabbed = None
    if grabbed is not None and grabbed.token != current.token:
        try:
            os.link(tomb, _lease_path(job_dir))
        except FileExistsError:
            pass
        os.unlink(tomb)
        fsync_dir(job_dir)
        return False
    os.unlink(tomb)
    fsync_dir(job_dir)
    return True
