"""Service-level chaos scenarios: hard kills with full-stack recovery.

Where :mod:`repro.faults` injects faults *inside* a cooperating
process, these scenarios kill whole processes with SIGKILL — no
handlers, no cleanup, no goodbye — and then let the service machinery
(stale-lease detection, journaled requeue, checkpoint resume) put the
job back together.  Each scenario returns a :class:`ScenarioResult`
whose ``contigs`` are the final output bytes; the caller gates them
byte-identical against the unkilled baseline.

Scenarios:

``baseline``
    Submit and drain, nothing killed.  The byte-identity reference.
``worker-kill``
    SIGKILL the worker process after its first durable stage
    checkpoint; the same supervisor detects the expired lease and
    requeues, and attempt 2 resumes from the checkpoint.
``supervisor-kill``
    Run ``repro serve`` as a subprocess, SIGKILL the worker *and* the
    supervisor mid-stage, then start a fresh supervisor on the same
    store.  Exercises the full restart path: nothing survives but the
    disk.
``takeover``
    A lease abandoned by a "dead" supervisor expires while two live
    supervisors race to recover the job.  The rename-CAS guarantees
    exactly one performs the requeue (``takeovers == 1``).

Every wait loop is bounded by a deadline (lint rule ROB002) — a chaos
harness that can hang forever would itself need a chaos harness.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field

from repro.faults import RetryPolicy
from repro.service.jobstore import JobStore
from repro.service.jobs import JobSpec
from repro.service.supervisor import Supervisor

__all__ = [
    "SCENARIOS",
    "ScenarioResult",
    "write_service_reads",
    "run_scenario",
]

#: scenario names in run order (baseline first: it is the reference).
SCENARIOS = ("baseline", "worker-kill", "supervisor-kill", "takeover")

#: stall after each stage checkpoint — widens the kill window so the
#: SIGKILL reliably lands mid-pipeline, not after completion.
PAUSE_BETWEEN_STAGES = 0.15
#: lease TTL for chaos runs: short, so recovery is fast to observe.
LEASE_TTL = 1.0
POLL_INTERVAL = 0.02
#: retry policy for chaos jobs: enough attempts to survive the kills,
#: near-zero (but jittered) backoff so runs stay fast.
CHAOS_RETRY = RetryPolicy(
    max_attempts=4, backoff_base=0.05, backoff_cap=0.1, jitter=0.5
)

_SERVICE_GENOME_LEN = 6000
_SERVICE_COVERAGE = 10
_SERVICE_SEED = 3


class ScenarioTimeout(RuntimeError):
    """A bounded chaos wait expired before the condition held."""


@dataclass
class ScenarioResult:
    """Outcome of one chaos scenario on one fresh job store."""

    scenario: str
    job_id: str
    state: str
    #: final contig FASTA bytes (empty if the job never finished).
    contigs: bytes
    wall_s: float
    #: processes SIGKILLed by the scenario.
    kills: int = 0
    #: attempt counter of the final record (1 = never requeued).
    attempts: int = 1
    #: stale-lease requeues journaled ("exactly one" is the race gate).
    takeovers: int = 0
    #: distinct supervisor owners that leased the job.
    owners: int = 1
    result: dict = field(default_factory=dict)


def write_service_reads(path: str) -> str:
    """Simulate the small deterministic SVC read set into ``path``."""
    import numpy as np

    from repro.io.fasta import write_fasta
    from repro.simulate.genome import Genome, random_genome
    from repro.simulate.reads import ReadSimConfig, ReadSimulator

    genome = Genome(
        "svc",
        random_genome(
            _SERVICE_GENOME_LEN, np.random.default_rng(_SERVICE_SEED)
        ),
    )
    sim = ReadSimulator(
        ReadSimConfig(
            read_length=100, coverage=_SERVICE_COVERAGE, seed=_SERVICE_SEED
        )
    )
    write_fasta(sim.simulate_genome(genome), path)
    return path


def _chaos_spec(reads_path: str, pause: float = PAUSE_BETWEEN_STAGES) -> JobSpec:
    return JobSpec(
        name="chaos",
        reads_path=reads_path,
        backend="serial",
        seed=7,
        retry=CHAOS_RETRY,
        pause_between_stages=pause,
    )


def _wait(predicate, timeout: float, what: str, interval: float = POLL_INTERVAL):
    """Poll ``predicate`` until truthy; raise on the bounded deadline."""
    deadline = time.time() + timeout
    while time.time() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(interval)
    raise ScenarioTimeout(f"timed out after {timeout}s waiting for {what}")


def _worker_pid_after_checkpoints(
    store: JobStore, job_id: str, n_checkpoints: int, supervisor_pid: int
):
    """The worker's pid once >= n stage checkpoints are journaled."""

    def ready():
        lease = store.read_lease(job_id)
        if lease is None or lease.pid == supervisor_pid:
            return None
        done = sum(
            1
            for e in store.journal(job_id)
            if e.state_to == "checkpointing"
        )
        return lease.pid if done >= n_checkpoints else None

    return ready


def _collect(store: JobStore, job_id: str, scenario: str, **extra):
    record = store.load_record(job_id)
    entries = store.journal(job_id)
    contigs = b""
    result: dict = {}
    if record.state == "done":
        with open(store.contigs_path(job_id), "rb") as fh:
            contigs = fh.read()
        result = store.load_result(job_id)
    takeovers = sum(
        1 for e in entries if e.info.get("requeue") == "stale lease"
    )
    owners = len(
        {
            e.info.get("owner")
            for e in entries
            if e.state_to == "leased" and e.info.get("owner")
        }
    )
    return ScenarioResult(
        scenario=scenario,
        job_id=job_id,
        state=record.state,
        contigs=contigs,
        attempts=record.attempt,
        takeovers=takeovers,
        owners=owners,
        result=result,
        **extra,
    )


def _run_baseline(root: str, reads_path: str, timeout: float) -> ScenarioResult:
    store = JobStore(root, create=True)
    record = store.submit(_chaos_spec(reads_path, pause=0.0))
    t0 = time.time()
    Supervisor(
        store, lease_ttl=LEASE_TTL, poll_interval=POLL_INTERVAL
    ).run(drain=True, max_seconds=timeout)
    return _collect(
        store, record.job_id, "baseline", wall_s=time.time() - t0
    )


def _run_worker_kill(
    root: str, reads_path: str, timeout: float
) -> ScenarioResult:
    store = JobStore(root, create=True)
    record = store.submit(_chaos_spec(reads_path))
    sup = Supervisor(store, lease_ttl=LEASE_TTL, poll_interval=POLL_INTERVAL)
    t0 = time.time()
    sup.poll_once()
    pid = _wait(
        _worker_pid_after_checkpoints(store, record.job_id, 1, os.getpid()),
        timeout,
        "worker checkpoint",
    )
    os.kill(pid, signal.SIGKILL)
    sup.run(drain=True, max_seconds=timeout)
    return _collect(
        store, record.job_id, "worker-kill", wall_s=time.time() - t0, kills=1
    )


def _serve_argv(root: str, owner: str, timeout: float) -> list[str]:
    return [
        sys.executable,
        "-m",
        "repro",
        "serve",
        root,
        "--drain",
        "--owner",
        owner,
        "--lease-ttl",
        str(LEASE_TTL),
        "--poll-interval",
        str(POLL_INTERVAL),
        "--max-seconds",
        str(timeout),
    ]


def _run_supervisor_kill(
    root: str, reads_path: str, timeout: float
) -> ScenarioResult:
    store = JobStore(root, create=True)
    record = store.submit(_chaos_spec(reads_path))
    t0 = time.time()
    serve = subprocess.Popen(
        _serve_argv(root, "doomed", timeout),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.STDOUT,
    )
    try:
        pid = _wait(
            _worker_pid_after_checkpoints(store, record.job_id, 2, serve.pid),
            timeout,
            "worker checkpoint under doomed supervisor",
        )
        os.kill(pid, signal.SIGKILL)
        serve.send_signal(signal.SIGKILL)
        serve.wait()
    except BaseException:
        if serve.poll() is None:
            serve.kill()
            serve.wait()
        raise
    # Nothing survives but the disk.  A fresh supervisor must find the
    # stale lease (once the TTL lapses) and finish the job.
    Supervisor(
        store,
        owner="fresh",
        lease_ttl=LEASE_TTL,
        poll_interval=POLL_INTERVAL,
    ).run(drain=True, max_seconds=timeout)
    return _collect(
        store,
        record.job_id,
        "supervisor-kill",
        wall_s=time.time() - t0,
        kills=2,
    )


def _run_takeover(root: str, reads_path: str, timeout: float) -> ScenarioResult:
    store = JobStore(root, create=True)
    record = store.submit(_chaos_spec(reads_path, pause=0.0))
    job_id = record.job_id
    # A supervisor claims the job and immediately "dies": the job is
    # stranded in ``leased`` under a lease that nobody will renew.
    lease = store.claim_lease(job_id, "dead", ttl=0.2)
    assert lease is not None
    store.transition(job_id, "leased", info={"owner": "dead"})
    _wait(
        lambda: store.read_lease(job_id).stale(), timeout, "lease expiry"
    )
    t0 = time.time()
    sups = [
        Supervisor(
            store,
            owner=f"racer-{i}",
            lease_ttl=LEASE_TTL,
            poll_interval=POLL_INTERVAL,
        )
        for i in range(2)
    ]
    threads = [
        threading.Thread(
            target=s.run, kwargs={"drain": True, "max_seconds": timeout}
        )
        for s in sups
    ]
    for th in threads:
        th.start()
    for th in threads:
        th.join(timeout)
    return _collect(
        store, job_id, "takeover", wall_s=time.time() - t0, kills=0
    )


_RUNNERS = {
    "baseline": _run_baseline,
    "worker-kill": _run_worker_kill,
    "supervisor-kill": _run_supervisor_kill,
    "takeover": _run_takeover,
}


def run_scenario(
    scenario: str, root: str, reads_path: str, timeout: float = 120.0
) -> ScenarioResult:
    """Run one named scenario on a fresh store rooted at ``root``."""
    try:
        runner = _RUNNERS[scenario]
    except KeyError:
        raise ValueError(
            f"unknown scenario {scenario!r} (have {', '.join(SCENARIOS)})"
        ) from None
    return runner(root, reads_path, timeout)
