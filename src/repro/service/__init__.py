"""Crash-resilient assembly-as-a-service.

A durable, filesystem-backed job service around the checkpointed
:class:`~repro.core.focus.FocusAssembler` pipeline: jobs are submitted
as immutable specs into a :class:`~repro.service.jobstore.JobStore`
(atomic records, fsynced journal), supervisors claim them through
lease files (:mod:`~repro.service.lease`) and spawn worker processes
that heartbeat while running the checkpointed ``finish`` stages.  Any
process — worker or supervisor — can be SIGKILLed at any instant; the
next supervisor scan finds the stale lease, requeues the job, and the
resumed attempt restores fingerprint-verified checkpoints to produce
byte-identical contigs.  See ``docs/robustness.md``.
"""

from repro.service.jobs import (
    ACTIVE_STATES,
    JOB_STATES,
    TERMINAL_STATES,
    TRANSITIONS,
    InvalidTransitionError,
    JobRecord,
    JobSpec,
)
from repro.service.jobstore import JobStore, JournalEntry
from repro.service.lease import Lease, LeaseLostError
from repro.service.supervisor import Supervisor

__all__ = [
    "ACTIVE_STATES",
    "JOB_STATES",
    "TERMINAL_STATES",
    "TRANSITIONS",
    "InvalidTransitionError",
    "JobRecord",
    "JobSpec",
    "JobStore",
    "JournalEntry",
    "Lease",
    "LeaseLostError",
    "Supervisor",
]
