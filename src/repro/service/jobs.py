"""Job specs, job records, and the job state machine.

A *job* is one checkpointed assembly: a :class:`JobSpec` (immutable
input + configuration, written once at submit) and a :class:`JobRecord`
(the mutable lifecycle state, rewritten atomically on every
transition).  The state machine is small and strict::

    queued -> leased -> running <-> checkpointing -> done
       ^         |         |                           |
       |         +---------+------> failed / cancelled +
       +---- (requeue after a crash, lease loss, or watchdog kill)

``queued``
    Submitted (or requeued after a failed attempt); no owner.
``leased``
    A supervisor claimed the job's lease and is starting a worker.
``running`` / ``checkpointing``
    The worker is executing stages; it bounces through
    ``checkpointing`` as each distributed stage's checkpoint is made
    durable, so the journal records exactly how far the job got.
``done`` / ``failed`` / ``cancelled``
    Terminal.  ``done`` jobs have contigs and a result record on disk.

Any transition not in :data:`TRANSITIONS` raises
:class:`InvalidTransitionError` — a crashed process can leave a job
*stale* (active state + expired lease) but never in an unrepresentable
state, which is what makes crash recovery a scan instead of a repair.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.faults import RetryPolicy

__all__ = [
    "JOB_STATES",
    "ACTIVE_STATES",
    "TERMINAL_STATES",
    "TRANSITIONS",
    "InvalidTransitionError",
    "JobSpec",
    "JobRecord",
]

#: every job state, in lifecycle order.
JOB_STATES = (
    "queued",
    "leased",
    "running",
    "checkpointing",
    "done",
    "failed",
    "cancelled",
)

#: states in which some process claims to be advancing the job — a job
#: found in one of these with a stale lease is recoverable.
ACTIVE_STATES = frozenset({"leased", "running", "checkpointing"})

TERMINAL_STATES = frozenset({"done", "failed", "cancelled"})

#: the legal state machine; requeue edges (``* -> queued``) are how
#: crash recovery returns a stranded job to the scheduler.
TRANSITIONS: dict[str, frozenset[str]] = {
    "queued": frozenset({"leased", "cancelled"}),
    "leased": frozenset({"running", "queued", "failed", "cancelled"}),
    "running": frozenset(
        {"checkpointing", "done", "failed", "queued", "cancelled"}
    ),
    "checkpointing": frozenset(
        {"running", "done", "failed", "queued", "cancelled"}
    ),
    "done": frozenset(),
    "failed": frozenset(),
    "cancelled": frozenset(),
}


class InvalidTransitionError(ValueError):
    """A state change outside :data:`TRANSITIONS` was attempted."""

    def __init__(self, job_id: str, current: str, target: str) -> None:
        super().__init__(
            f"job {job_id!r}: illegal transition {current!r} -> {target!r}"
        )
        self.job_id = job_id
        self.current = current
        self.target = target


@dataclass(frozen=True)
class JobSpec:
    """Immutable description of one assembly job.

    Exactly one of ``reads_path`` (FASTA/FASTQ file) and
    ``reads_store`` (a ``repro pack`` sharded store directory) names
    the input.  ``memory_bytes`` is the job's admission-control charge
    against the supervisor's memory budget; for store-backed jobs it
    defaults to the shard-cache budget (the actual streaming ceiling).
    ``pause_between_stages`` inserts a sleep after each durable stage
    checkpoint — a chaos/testing knob that widens the kill window for
    the hard-kill recovery suites; production jobs leave it at 0.
    """

    name: str = "job"
    reads_path: str | None = None
    reads_store: str | None = None
    n_partitions: int = 4
    partition_mode: str = "hybrid"
    backend: str = "serial"
    engine: str = "loop"
    min_overlap: int = 50
    min_identity: float = 0.9
    seed: int = 0
    #: larger runs first; ties break on submit order.
    priority: int = 0
    #: admission-control charge in bytes (0 = use ``cache_budget``).
    memory_bytes: int = 0
    #: LRU shard-cache budget for store-backed reads.
    cache_budget: int = 64 * 1024 * 1024
    #: retry/backoff escalation for failed attempts (worker crashes,
    #: watchdog kills, stage errors) — the PR 5 policy, reused.
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: wall-second budget for one attempt before the supervisor's
    #: watchdog kills and requeues it (None = no watchdog).
    deadline: float | None = None
    #: chaos/testing stall after each stage checkpoint (seconds).
    pause_between_stages: float = 0.0

    def __post_init__(self) -> None:
        if (self.reads_path is None) == (self.reads_store is None):
            raise ValueError(
                "exactly one of reads_path and reads_store is required"
            )
        if self.n_partitions < 1 or (
            self.n_partitions & (self.n_partitions - 1)
        ) != 0:
            raise ValueError("n_partitions must be a power of two")
        if self.backend not in ("serial", "sim", "process"):
            raise ValueError(f"unknown backend {self.backend!r}")
        if self.engine not in ("loop", "sparse"):
            raise ValueError(f"unknown engine {self.engine!r}")
        if self.partition_mode not in ("hybrid", "multilevel"):
            raise ValueError(f"unknown partition_mode {self.partition_mode!r}")
        if self.memory_bytes < 0 or self.cache_budget < 0:
            raise ValueError("byte budgets must be non-negative")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("deadline must be positive (or None)")
        if self.pause_between_stages < 0:
            raise ValueError("pause_between_stages must be non-negative")

    @property
    def charge(self) -> int:
        """Admission-control bytes this job reserves while running."""
        return self.memory_bytes if self.memory_bytes > 0 else self.cache_budget

    def assembly_config(self):
        """The :class:`~repro.core.config.AssemblyConfig` this spec runs."""
        from repro.align.overlapper import OverlapConfig
        from repro.core.config import AssemblyConfig

        return AssemblyConfig(
            n_partitions=self.n_partitions,
            partition_mode=self.partition_mode,
            backend=self.backend,
            finish_engine=self.engine,
            overlap=OverlapConfig(
                min_overlap=self.min_overlap, min_identity=self.min_identity
            ),
            retry=self.retry,
            store_path=self.reads_store,
            cache_budget=self.cache_budget,
            seed=self.seed,
        )

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "reads_path": self.reads_path,
            "reads_store": self.reads_store,
            "n_partitions": self.n_partitions,
            "partition_mode": self.partition_mode,
            "backend": self.backend,
            "engine": self.engine,
            "min_overlap": self.min_overlap,
            "min_identity": self.min_identity,
            "seed": self.seed,
            "priority": self.priority,
            "memory_bytes": self.memory_bytes,
            "cache_budget": self.cache_budget,
            "retry": self.retry.to_dict(),
            "deadline": self.deadline,
            "pause_between_stages": self.pause_between_stages,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "JobSpec":
        payload = dict(data)
        retry = payload.get("retry")
        if isinstance(retry, dict):
            payload["retry"] = RetryPolicy.from_dict(retry)
        try:
            return cls(**payload)
        except TypeError as exc:
            raise ValueError(f"malformed job spec: {exc}") from exc


@dataclass
class JobRecord:
    """The mutable lifecycle state of one job (``state.json``)."""

    job_id: str
    state: str = "queued"
    #: 1-based attempt counter; bumped on every requeue.
    attempt: int = 1
    priority: int = 0
    created: float = 0.0
    updated: float = 0.0
    #: scheduler hold-off: not admitted before this wall time (the
    #: jittered retry backoff after a failed attempt).
    not_before: float = 0.0
    #: last completed distributed stage (journal granularity).
    stage: str = ""
    error: str = ""

    @property
    def active(self) -> bool:
        return self.state in ACTIVE_STATES

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def transitioned(
        self, target: str, now: float, **fields
    ) -> "JobRecord":
        """A copy in ``target`` state, validated against the machine."""
        if target not in JOB_STATES:
            raise ValueError(f"unknown job state {target!r}")
        if target not in TRANSITIONS[self.state]:
            raise InvalidTransitionError(self.job_id, self.state, target)
        return replace(self, state=target, updated=now, **fields)

    def to_dict(self) -> dict:
        return {
            "job_id": self.job_id,
            "state": self.state,
            "attempt": self.attempt,
            "priority": self.priority,
            "created": self.created,
            "updated": self.updated,
            "not_before": self.not_before,
            "stage": self.stage,
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "JobRecord":
        try:
            record = cls(**dict(data))
        except TypeError as exc:
            raise ValueError(f"malformed job record: {exc}") from exc
        if record.state not in JOB_STATES:
            raise ValueError(f"unknown job state {record.state!r}")
        return record
