"""The durable on-disk job store: one directory per job.

Layout::

    <root>/
      jobstore.json              # format marker + version
      jobs/<job_id>/
        spec.json                # immutable JobSpec (written at submit)
        state.json               # current JobRecord (atomic replace)
        journal.jsonl            # append-only, fsynced transition log
        lease.json               # present while a supervisor/worker owns it
        checkpoint.npz           # PR 5 stage checkpoint (while running)
        cancel.json              # cooperative cancellation request
        worker.log               # worker stdout/stderr
        contigs.fasta            # final output (done jobs)
        result.json              # stats + stage times (done jobs)

Durability contract (the same tmp+fsync+``os.replace`` machinery as
the PR 5 checkpoints, via :func:`repro.io.store.atomic_write_text`):
``spec.json`` and ``state.json`` are always complete — a crash at any
instant leaves either the previous record or the new one, never a
torn file.  ``journal.jsonl`` is append-only with per-line fsync; a
crash can leave at most one torn *final* line, which the reader
detects and ignores (every completed transition before it is intact).
State is therefore doubly recorded — the journal is the history, the
state file the O(1)-readable present — and any crash leaves a
recoverable job: the supervisor's scan needs only ``state.json`` plus
the lease file to decide what to do next.
"""

from __future__ import annotations

import json
import os
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path

from repro.io.store import atomic_write_text, fsync_dir
from repro.service import lease as lease_mod
from repro.service.jobs import (
    ACTIVE_STATES,
    JobRecord,
    JobSpec,
)

__all__ = ["MARKER_NAME", "STORE_VERSION", "JournalEntry", "JobStore"]

MARKER_NAME = "jobstore.json"
SPEC_NAME = "spec.json"
STATE_NAME = "state.json"
JOURNAL_NAME = "journal.jsonl"
CANCEL_NAME = "cancel.json"
CHECKPOINT_NAME = "checkpoint.npz"
CONTIGS_NAME = "contigs.fasta"
RESULT_NAME = "result.json"
WORKER_LOG_NAME = "worker.log"

#: format version of the job-store layout; bump on layout changes.
STORE_VERSION = 1


@dataclass(frozen=True)
class JournalEntry:
    """One journaled state transition."""

    ts: float
    state_from: str
    state_to: str
    attempt: int
    #: free-form context: owner token, stage name, error, ...
    info: dict = field(default_factory=dict)

    def to_json(self) -> str:
        return json.dumps(
            {
                "ts": self.ts,
                "from": self.state_from,
                "to": self.state_to,
                "attempt": self.attempt,
                "info": self.info,
            },
            sort_keys=True,
        )

    @classmethod
    def from_dict(cls, payload: dict) -> "JournalEntry":
        return cls(
            ts=float(payload["ts"]),
            state_from=str(payload["from"]),
            state_to=str(payload["to"]),
            attempt=int(payload["attempt"]),
            info=dict(payload.get("info", {})),
        )


class JobStore:
    """Filesystem-backed, multi-process-safe job persistence.

    Several supervisors (and their worker processes) may open one
    store concurrently; writes that race are arbitrated by the lease
    layer (:mod:`repro.service.lease`), not by this class — the store
    only guarantees that every individual record write is atomic and
    every transition is validated and journaled.
    """

    def __init__(self, root: str | Path, create: bool = False) -> None:
        self.root = str(root)
        marker = os.path.join(self.root, MARKER_NAME)
        if create:
            os.makedirs(self.jobs_root, exist_ok=True)
            if not os.path.exists(marker):
                atomic_write_text(
                    marker,
                    json.dumps(
                        {"format": "repro.jobstore", "version": STORE_VERSION},
                        sort_keys=True,
                    )
                    + "\n",
                )
        try:
            with open(marker, encoding="utf-8") as fh:
                payload = json.load(fh)
        except FileNotFoundError:
            raise ValueError(
                f"not a job store: {self.root!r} has no {MARKER_NAME} "
                "(create one with JobStore(root, create=True) or "
                "`repro submit`)"
            ) from None
        except (OSError, json.JSONDecodeError) as exc:
            raise ValueError(f"corrupt job store marker: {exc}") from exc
        if (
            not isinstance(payload, dict)
            or payload.get("format") != "repro.jobstore"
        ):
            raise ValueError(f"not a job store marker: {marker!r}")
        found = int(payload.get("version", -1))
        if found != STORE_VERSION:
            raise ValueError(
                f"unsupported job store version {found} "
                f"(this build reads version {STORE_VERSION})"
            )

    # -- paths -----------------------------------------------------------

    @property
    def jobs_root(self) -> str:
        return os.path.join(self.root, "jobs")

    def job_dir(self, job_id: str) -> str:
        return os.path.join(self.jobs_root, job_id)

    def checkpoint_path(self, job_id: str) -> str:
        return os.path.join(self.job_dir(job_id), CHECKPOINT_NAME)

    def contigs_path(self, job_id: str) -> str:
        return os.path.join(self.job_dir(job_id), CONTIGS_NAME)

    def result_path(self, job_id: str) -> str:
        return os.path.join(self.job_dir(job_id), RESULT_NAME)

    def worker_log_path(self, job_id: str) -> str:
        return os.path.join(self.job_dir(job_id), WORKER_LOG_NAME)

    # -- submit / load ---------------------------------------------------

    def submit(self, spec: JobSpec, now: float | None = None) -> JobRecord:
        """Durably create a new queued job; returns its record."""
        t = now if now is not None else time.time()
        for _ in range(8):
            job_id = f"{spec.name}-{uuid.uuid4().hex[:10]}"
            job_dir = self.job_dir(job_id)
            try:
                os.makedirs(job_dir)
            except FileExistsError:
                continue
            break
        else:  # pragma: no cover - 8 uuid collisions
            raise RuntimeError("could not allocate a unique job id")
        atomic_write_text(
            os.path.join(job_dir, SPEC_NAME),
            json.dumps(spec.to_dict(), indent=2, sort_keys=True) + "\n",
        )
        record = JobRecord(
            job_id=job_id,
            state="queued",
            priority=spec.priority,
            created=t,
            updated=t,
        )
        self._append_journal(
            job_dir,
            JournalEntry(t, "submitted", "queued", record.attempt, {}),
        )
        self._write_record(job_dir, record)
        fsync_dir(self.jobs_root)
        return record

    def list_jobs(self) -> list[str]:
        """Every job id in the store (submit-time order via records)."""
        try:
            entries = sorted(os.listdir(self.jobs_root))
        except FileNotFoundError:
            return []
        return [
            e for e in entries if os.path.isdir(os.path.join(self.jobs_root, e))
        ]

    def load_spec(self, job_id: str) -> JobSpec:
        path = os.path.join(self.job_dir(job_id), SPEC_NAME)
        try:
            with open(path, encoding="utf-8") as fh:
                return JobSpec.from_dict(json.load(fh))
        except FileNotFoundError:
            raise KeyError(f"no such job: {job_id!r}") from None
        except json.JSONDecodeError as exc:
            raise ValueError(f"corrupt job spec {path!r}: {exc}") from exc

    def load_record(self, job_id: str) -> JobRecord:
        path = os.path.join(self.job_dir(job_id), STATE_NAME)
        try:
            with open(path, encoding="utf-8") as fh:
                return JobRecord.from_dict(json.load(fh))
        except FileNotFoundError:
            raise KeyError(f"no such job: {job_id!r}") from None
        except json.JSONDecodeError as exc:
            raise ValueError(f"corrupt job record {path!r}: {exc}") from exc

    def load_records(self) -> list[JobRecord]:
        return [self.load_record(job_id) for job_id in self.list_jobs()]

    # -- transitions -----------------------------------------------------

    def transition(
        self,
        job_id: str,
        target: str,
        now: float | None = None,
        info: dict | None = None,
        **fields,
    ) -> JobRecord:
        """Validate, journal, and persist one state transition.

        The journal line is appended (and fsynced) *before* the state
        file is replaced, so a crash between the two leaves a journal
        whose last entry is ahead of ``state.json`` by exactly one
        transition — recovery reads ``state.json`` (the conservative
        view) and the job merely repeats a step it already logged.
        """
        t = now if now is not None else time.time()
        record = self.load_record(job_id)
        updated = record.transitioned(target, t, **fields)
        job_dir = self.job_dir(job_id)
        self._append_journal(
            job_dir,
            JournalEntry(
                t, record.state, target, updated.attempt, dict(info or {})
            ),
        )
        self._write_record(job_dir, updated)
        return updated

    def journal(self, job_id: str) -> list[JournalEntry]:
        """Every intact journal entry, oldest first.

        A torn final line (crash mid-append) is ignored; truncation is
        detectable because every intact line parses as one JSON object.
        """
        path = os.path.join(self.job_dir(job_id), JOURNAL_NAME)
        entries: list[JournalEntry] = []
        try:
            with open(path, encoding="utf-8") as fh:
                lines = fh.read().splitlines()
        except FileNotFoundError:
            return []
        for line in lines:
            if not line.strip():
                continue
            try:
                entries.append(JournalEntry.from_dict(json.loads(line)))
            except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                # Torn tail of a crashed append: everything before it
                # is intact, nothing after it exists.
                break
        return entries

    # -- cancellation ----------------------------------------------------

    def request_cancel(self, job_id: str, now: float | None = None) -> str:
        """Cancel a job; returns what happened.

        ``"cancelled"``: the job was queued and is now terminally
        cancelled.  ``"requested"``: the job is active — a marker file
        asks the worker to stop at its next stage boundary.
        ``"ignored"``: the job was already terminal.
        """
        record = self.load_record(job_id)
        if record.terminal:
            return "ignored"
        if record.state == "queued":
            self.transition(job_id, "cancelled", now=now)
            return "cancelled"
        atomic_write_text(
            os.path.join(self.job_dir(job_id), CANCEL_NAME),
            json.dumps({"requested": now if now is not None else time.time()})
            + "\n",
        )
        return "requested"

    def cancel_requested(self, job_id: str) -> bool:
        return os.path.exists(os.path.join(self.job_dir(job_id), CANCEL_NAME))

    # -- leases (thin forwarding; arbitration lives in lease.py) ---------

    def read_lease(self, job_id: str):
        return lease_mod.read(self.job_dir(job_id))

    def claim_lease(
        self, job_id: str, owner: str, ttl: float, now: float | None = None
    ):
        return lease_mod.claim(self.job_dir(job_id), owner, ttl, now=now)

    def recoverable(self, record: JobRecord, now: float | None = None) -> bool:
        """Active job whose lease is stale or missing — crash debris."""
        if record.state not in ACTIVE_STATES:
            return False
        current = self.read_lease(record.job_id)
        return current is None or current.stale(now)

    # -- result ----------------------------------------------------------

    def write_result(self, job_id: str, payload: dict) -> None:
        atomic_write_text(
            self.result_path(job_id),
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
        )

    def load_result(self, job_id: str) -> dict:
        with open(self.result_path(job_id), encoding="utf-8") as fh:
            return json.load(fh)

    # -- internals -------------------------------------------------------

    def _write_record(self, job_dir: str, record: JobRecord) -> None:
        atomic_write_text(
            os.path.join(job_dir, STATE_NAME),
            json.dumps(record.to_dict(), indent=2, sort_keys=True) + "\n",
        )

    def _append_journal(self, job_dir: str, entry: JournalEntry) -> None:
        path = os.path.join(job_dir, JOURNAL_NAME)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write(entry.to_json() + "\n")
            fh.flush()
            os.fsync(fh.fileno())
