"""The supervisor: leases, schedules, watches, and recovers jobs.

One supervisor process owns a :class:`~repro.service.jobstore.JobStore`
scheduling loop.  Each :meth:`Supervisor.poll_once` pass does four
things, in an order chosen so that a crash between any two of them
leaves only work that the *next* pass (of this supervisor or any
other) redoes idempotently:

1. **Reap** exited workers and release their scheduling charge.
2. **Watchdog** running jobs past their spec deadline: SIGKILL the
   worker, then requeue through the spec's
   :class:`~repro.faults.RetryPolicy` (jittered backoff; ``failed``
   once attempts are exhausted).
3. **Recover** stranded jobs — active state, lease missing or expired
   (a SIGKILLed worker, a dead supervisor).  The stale lease is cleared
   with the :func:`~repro.service.lease.take_over` rename-CAS, so when
   several supervisors scan one store, exactly one performs the
   requeue.  Resumption is safe because the worker's ``finish`` run is
   checkpointed: the next attempt restores every fingerprint-verified
   stage and recomputes only what was in flight.
4. **Admit** queued jobs, highest priority first (ties: oldest
   submit), while worker and memory quotas hold.  A job's charge is
   its spec's ``memory_bytes`` (or shard-cache budget); a job too big
   for the remaining budget is admitted *alone* once the service
   drains — the serial fallback under pressure — rather than starved.

Admission spawns ``python -m repro.service.worker`` with the freshly
claimed lease token; the worker adopts the lease and heartbeats it.
The supervisor never mutates a job some live worker owns: every
mutation path goes through lease arbitration first.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from dataclasses import dataclass, field

from repro.service import lease as lease_mod
from repro.service.jobstore import JobStore
from repro.service.jobs import JobRecord

__all__ = ["WorkerHandle", "Supervisor"]

#: default lease TTL (seconds); workers heartbeat at a third of this.
DEFAULT_LEASE_TTL = 15.0


@dataclass
class WorkerHandle:
    """One spawned worker process and its scheduling charge."""

    job_id: str
    proc: subprocess.Popen
    charge: int
    deadline: float | None
    started: float
    log: object = field(default=None, repr=False)

    def close_log(self) -> None:
        if self.log is not None:
            try:
                self.log.close()
            except OSError:
                pass
            self.log = None


class Supervisor:
    """Schedule, watch, and crash-recover jobs in one store."""

    def __init__(
        self,
        store: JobStore | str,
        owner: str | None = None,
        max_workers: int = 2,
        memory_budget: int = 256 * 1024 * 1024,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        poll_interval: float = 0.05,
    ) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if memory_budget < 1:
            raise ValueError("memory_budget must be positive")
        if lease_ttl <= 0:
            raise ValueError("lease_ttl must be positive")
        self.store = store if isinstance(store, JobStore) else JobStore(store)
        self.owner = owner or f"supervisor-{os.getpid()}"
        self.max_workers = max_workers
        self.memory_budget = memory_budget
        self.lease_ttl = float(lease_ttl)
        self.poll_interval = float(poll_interval)
        self.workers: dict[str, WorkerHandle] = {}

    # -- one scheduling pass ---------------------------------------------

    def poll_once(self, now: float | None = None) -> dict:
        """Reap, watchdog, recover, admit.  Returns a pass summary."""
        t = now if now is not None else time.time()
        summary = {
            "reaped": self._reap(),
            "killed": self._watchdog(t),
            "recovered": self._recover(t),
            "admitted": self._admit(t),
        }
        return summary

    def run(
        self,
        drain: bool = False,
        max_seconds: float = 3600.0,
        stop=None,
    ) -> int:
        """Poll until drained / stopped / out of time; returns #passes.

        ``drain=True`` exits once every job is terminal and no worker
        is live.  ``stop`` is an optional zero-argument callable polled
        each pass (a threading.Event's ``is_set``, a test hook).  The
        loop is always bounded by ``max_seconds`` — an idle supervisor
        with no deadline would otherwise spin forever.
        """
        if max_seconds <= 0:
            raise ValueError("max_seconds must be positive")
        deadline = time.time() + max_seconds
        passes = 0
        while time.time() < deadline:
            if stop is not None and stop():
                break
            self.poll_once()
            passes += 1
            if drain and not self.workers and self._drained():
                break
            time.sleep(self.poll_interval)
        self._close_logs()
        return passes

    def shutdown(self, kill: bool = False) -> None:
        """Stop tracking workers; optionally SIGKILL them first."""
        for handle in list(self.workers.values()):
            if kill and handle.proc.poll() is None:
                handle.proc.kill()
                handle.proc.wait()
            handle.close_log()
        self.workers.clear()

    # -- phases ----------------------------------------------------------

    def _reap(self) -> int:
        """Drop workers whose process has exited (they journal for
        themselves; a crashed one is picked up by ``_recover``)."""
        done = [
            job_id
            for job_id, handle in self.workers.items()
            if handle.proc.poll() is not None
        ]
        for job_id in done:
            self.workers.pop(job_id).close_log()
        return len(done)

    def _watchdog(self, now: float) -> int:
        """SIGKILL workers past their spec deadline and escalate."""
        killed = 0
        for job_id, handle in list(self.workers.items()):
            if handle.deadline is None:
                continue
            if now - handle.started < handle.deadline:
                continue
            if handle.proc.poll() is None:
                handle.proc.send_signal(signal.SIGKILL)
                handle.proc.wait()
            self.workers.pop(job_id).close_log()
            # The dead worker's lease is still fresh; clearing it is
            # safe only because we just killed and reaped its owner.
            current = lease_mod.read(self.store.job_dir(job_id))
            if current is not None:
                lease_mod.release(self.store.job_dir(job_id), current)
            self._requeue_dead(
                job_id, now, reason=f"watchdog: exceeded {handle.deadline}s"
            )
            killed += 1
        return killed

    def _recover(self, now: float) -> int:
        """Requeue stranded jobs (active state, stale/missing lease)."""
        recovered = 0
        for record in self.store.load_records():
            if record.job_id in self.workers:
                continue
            if not self.store.recoverable(record, now):
                continue
            if not lease_mod.take_over(self.store.job_dir(record.job_id), now):
                continue  # a racing supervisor won this job
            if self._requeue_dead(record.job_id, now, reason="stale lease"):
                recovered += 1
        return recovered

    def _admit(self, now: float) -> int:
        """Start workers for due queued jobs within the quotas."""
        admitted = 0
        committed = sum(h.charge for h in self.workers.values())
        queued = [
            r
            for r in self.store.load_records()
            if r.state == "queued"
            and r.not_before <= now
            and r.job_id not in self.workers
        ]
        queued.sort(key=lambda r: (-r.priority, r.created, r.job_id))
        for record in queued:
            if len(self.workers) >= self.max_workers:
                break
            spec = self.store.load_spec(record.job_id)
            charge = spec.charge
            if committed + charge > self.memory_budget and self.workers:
                # Over budget with company: wait.  Alone: admit anyway
                # (serial fallback — an oversized job must still run,
                # just with the whole budget to itself).
                continue
            if self._spawn(record, spec, now):
                committed += charge
                admitted += 1
        return admitted

    # -- helpers ---------------------------------------------------------

    def _spawn(self, record: JobRecord, spec, now: float) -> bool:
        job_id = record.job_id
        job_dir = self.store.job_dir(job_id)
        lease = lease_mod.claim(job_dir, self.owner, self.lease_ttl, now=now)
        if lease is None:
            return False  # another supervisor claimed it first
        self.store.transition(
            job_id, "leased", now=now, info={"owner": self.owner}
        )
        log = open(self.store.worker_log_path(job_id), "ab")
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.service.worker",
                self.store.root,
                job_id,
                lease.token,
                str(self.lease_ttl),
            ],
            stdout=log,
            stderr=subprocess.STDOUT,
        )
        self.workers[job_id] = WorkerHandle(
            job_id=job_id,
            proc=proc,
            charge=spec.charge,
            deadline=spec.deadline,
            started=now,
            log=log,
        )
        return True

    def _requeue_dead(self, job_id: str, now: float, reason: str) -> bool:
        """Route a dead job's next attempt through its RetryPolicy.

        The caller guarantees the *previous* owner is gone (lease taken
        over, or our own worker killed and waited on) — but other
        supervisors may be making the same observation concurrently
        (``take_over`` alone cannot arbitrate a lease that is already
        absent), so the requeue itself runs under a freshly *claimed*
        recovery lease: exactly one supervisor wins the claim and
        journals the transition.  Returns ``True`` iff this call did.
        """
        job_dir = self.store.job_dir(job_id)
        guard = lease_mod.claim(
            job_dir, f"{self.owner}:recovery", self.lease_ttl, now=now
        )
        if guard is None:
            return False  # a racing supervisor is recovering this job
        try:
            record = self.store.load_record(job_id)
            if record.state == "queued" or record.terminal:
                return False  # already resolved before we won the claim
            spec = self.store.load_spec(job_id)
            policy = spec.retry
            if policy.allows(record.attempt + 1):
                delay = policy.backoff(record.attempt, token=job_id)
                self.store.transition(
                    job_id,
                    "queued",
                    now=now,
                    attempt=record.attempt + 1,
                    not_before=now + delay,
                    error=reason,
                    info={"requeue": reason, "backoff": delay},
                )
            else:
                self.store.transition(
                    job_id,
                    "failed",
                    now=now,
                    error=reason,
                    info={"error": reason, "attempts": record.attempt},
                )
            return True
        finally:
            lease_mod.release(job_dir, guard)

    def _drained(self) -> bool:
        return all(r.terminal for r in self.store.load_records())

    def _close_logs(self) -> None:
        for handle in self.workers.values():
            handle.close_log()
