"""The job worker: one process, one leased job, one checkpointed run.

Spawned by the supervisor as ``python -m repro.service.worker ROOT
JOB_ID TOKEN TTL``.  The worker adopts the lease the supervisor
claimed (same token), heartbeats it from a daemon thread, journals the
``leased -> running`` transition, and executes the full pipeline —
``prepare`` then a checkpointed, *resumable* ``finish`` — with a
per-stage callback that:

- re-verifies lease ownership (a lost lease aborts immediately: some
  other supervisor decided this worker was dead and owns the job now);
- bounces the record through ``checkpointing`` so the journal records
  exactly which stages are durable;
- honors cooperative cancellation markers;
- applies the spec's chaos stall (``pause_between_stages``).

Exit protocol: transitions are the source of truth, exit codes are
advisory (0 done, 2 failed, 3 lease lost, 4 cancelled, 5 requeued).
A worker that is SIGKILLed makes *no* transition — its lease simply
expires, and the next supervisor scan requeues the job to resume from
the last durable checkpoint.  That asymmetry (graceful paths journal,
crash paths don't) is the whole recovery model: anything the journal
does not prove finished is re-run, and re-running is safe because
stages are deterministic and checkpoints are fingerprint-verified.
"""

from __future__ import annotations

import os
import sys
import threading
import time

from repro.service import lease as lease_mod
from repro.service.jobstore import JobStore

__all__ = ["JobCancelled", "run_job", "main"]

#: heartbeats per lease TTL (beat interval = ttl / this).
BEATS_PER_TTL = 3.0


class JobCancelled(Exception):
    """Raised between stages when a cancel marker appears."""


def _load_reads(spec):
    from repro.io.fasta import parse_fasta
    from repro.io.fastq import parse_fastq
    from repro.io.readset import ReadSet

    if spec.reads_store is not None:
        return ReadSet.open(spec.reads_store, cache_budget=spec.cache_budget)
    path = spec.reads_path
    if path.endswith((".fq", ".fastq")):
        return ReadSet(parse_fastq(path))
    return ReadSet(parse_fasta(path))


class _Heartbeat:
    """Daemon thread renewing the lease every ``ttl / BEATS_PER_TTL``.

    A failed renewal (the lease was taken over) flips ``lost`` and the
    worker aborts at its next stage boundary instead of fighting the
    new owner.
    """

    def __init__(self, job_dir: str, lease, ttl: float) -> None:
        self.job_dir = job_dir
        self.lease = lease
        self.ttl = float(ttl)
        self.lost = threading.Event()
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def start(self) -> None:
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=self.ttl)

    def _run(self) -> None:
        interval = self.ttl / BEATS_PER_TTL
        while not self._stop.wait(interval):
            try:
                self.lease = lease_mod.heartbeat(
                    self.job_dir, self.lease, self.ttl
                )
            except (lease_mod.LeaseLostError, OSError, ValueError):
                self.lost.set()
                return


def run_job(root: str, job_id: str, token: str, ttl: float) -> int:
    """Execute one leased job to a terminal (or requeued) state."""
    store = JobStore(root)
    job_dir = store.job_dir(job_id)
    lease = lease_mod.read(job_dir)
    if lease is None or lease.token != token:
        print(f"worker: lease on {job_id} not held (token mismatch)")
        return 3
    # Stamp the lease with this worker's pid (the supervisor claimed it
    # under its own) so watchdogs and the chaos harness can target us.
    lease = lease_mod.heartbeat(job_dir, lease, ttl, pid=os.getpid())
    spec = store.load_spec(job_id)
    record = store.load_record(job_id)
    store.transition(
        job_id, "running", info={"owner": lease.owner, "pid": os.getpid()}
    )
    beat = _Heartbeat(job_dir, lease, ttl)
    beat.start()

    def on_stage(stage: str) -> None:
        if beat.lost.is_set():
            raise lease_mod.LeaseLostError(
                f"lease on {job_id} lost mid-run (after stage {stage})"
            )
        if store.cancel_requested(job_id):
            raise JobCancelled(stage)
        store.transition(
            job_id, "checkpointing", stage=stage, info={"stage": stage}
        )
        store.transition(job_id, "running", stage=stage)
        if spec.pause_between_stages > 0:
            time.sleep(spec.pause_between_stages)

    try:
        result = _execute(store, job_id, spec, on_stage)
    except JobCancelled:
        beat.stop()
        store.transition(job_id, "cancelled")
        lease_mod.release(job_dir, beat.lease)
        return 4
    except lease_mod.LeaseLostError as exc:
        # The job has a new owner: stop without touching the record.
        beat.stop()
        print(f"worker: {exc}")
        return 3
    except Exception as exc:  # noqa: BLE001 - recorded + escalated below
        beat.stop()
        return _fail_or_requeue(store, job_id, spec, record.attempt, exc, beat)
    _finish_ok(store, job_id, result)
    beat.stop()
    lease_mod.release(job_dir, beat.lease)
    return 0


def _execute(store: JobStore, job_id: str, spec, on_stage):
    from repro.core.focus import FocusAssembler

    reads = _load_reads(spec)
    assembler = FocusAssembler(spec.assembly_config())
    prep = assembler.prepare(reads)
    return assembler.finish(
        prep,
        checkpoint=store.checkpoint_path(job_id),
        resume=True,
        on_stage=on_stage,
    )


def _finish_ok(store: JobStore, job_id: str, result) -> None:
    """Make the outputs durable, then commit the ``done`` transition."""
    import numpy as np

    from repro.io.fasta import write_fasta
    from repro.io.records import Read

    contigs = [
        Read(f"contig_{i}", np.asarray(c)) for i, c in enumerate(result.contigs)
    ]
    final = store.contigs_path(job_id)
    tmp = f"{final}.tmp.{os.getpid()}"
    write_fasta(contigs, tmp)
    os.replace(tmp, final)
    stats = result.stats
    store.write_result(
        job_id,
        {
            "n_contigs": int(stats.n_contigs),
            "total_bases": int(stats.total_bases),
            "n50": int(stats.n50),
            "max_contig": int(stats.max_contig),
            "backend": result.backend,
            "engine": result.engine,
            "stage_times": {
                k: float(v) for k, v in result.virtual_times.items()
            },
        },
    )
    store.transition(job_id, "done", info={"n_contigs": int(stats.n_contigs)})


def _fail_or_requeue(
    store: JobStore, job_id: str, spec, attempt: int, exc: Exception, beat
) -> int:
    """Escalate a failed attempt through the spec's RetryPolicy."""
    policy = spec.retry
    error = f"{type(exc).__name__}: {exc}"
    if policy.allows(attempt + 1):
        delay = policy.backoff(attempt, token=job_id)
        store.transition(
            job_id,
            "queued",
            attempt=attempt + 1,
            not_before=time.time() + delay,
            error=error,
            info={"requeue": "worker error", "backoff": delay},
        )
        lease_mod.release(store.job_dir(job_id), beat.lease)
        return 5
    store.transition(job_id, "failed", error=error, info={"error": error})
    lease_mod.release(store.job_dir(job_id), beat.lease)
    return 2


def main(argv: list[str] | None = None) -> int:
    args = argv if argv is not None else sys.argv[1:]
    if len(args) != 4:
        print(
            "usage: python -m repro.service.worker ROOT JOB_ID TOKEN TTL",
            file=sys.stderr,
        )
        return 64
    root, job_id, token, ttl = args
    return run_job(root, job_id, token, float(ttl))


if __name__ == "__main__":
    sys.exit(main())
