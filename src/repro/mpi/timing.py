"""Communication cost model and payload sizing."""

from __future__ import annotations

import pickle
from dataclasses import dataclass

import numpy as np

__all__ = ["CommCostModel", "payload_nbytes"]

#: pickling overhead assumed for a bare ndarray (header, dtype, shape).
_NDARRAY_OVERHEAD = 96


def payload_nbytes(obj) -> int:
    """Approximate wire size of a Python object in bytes.

    numpy arrays take a fast path (``nbytes`` + fixed header);
    everything else is sized by pickling, exactly what mpi4py's
    lowercase API would transmit.
    """
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes) + _NDARRAY_OVERHEAD
    try:
        return len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:  # unpicklable payloads still need *a* size
        return 256


@dataclass(frozen=True)
class CommCostModel:
    """Alpha-beta (Hockney) point-to-point cost: alpha + beta * bytes.

    Defaults approximate a commodity cluster interconnect: 10 us
    latency, 10 GB/s effective bandwidth.
    """

    alpha: float = 10e-6
    beta: float = 1e-10

    def __post_init__(self) -> None:
        if self.alpha < 0 or self.beta < 0:
            raise ValueError("cost parameters must be non-negative")

    def message_cost(self, nbytes: int) -> float:
        """Seconds to move one message of ``nbytes``."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return self.alpha + self.beta * nbytes

    def cost_of(self, obj) -> float:
        return self.message_cost(payload_nbytes(obj))
