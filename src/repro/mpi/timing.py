"""Communication cost model and payload sizing."""

from __future__ import annotations

import pickle
import warnings
from dataclasses import dataclass

import numpy as np

__all__ = ["CommCostModel", "payload_nbytes"]

#: pickling overhead assumed for a bare ndarray (header, dtype, shape).
_NDARRAY_OVERHEAD = 96

#: pickle framing overhead assumed for a raw byte buffer.
_BYTES_OVERHEAD = 32

#: wire size charged for unpicklable payloads (a guess — see warning).
_UNPICKLABLE_FALLBACK = 256

#: set after the first unpicklable-payload warning so a hot send loop
#: does not flood stderr; tests reset it.
_warned_unpicklable = False


def payload_nbytes(obj) -> int:
    """Approximate wire size of a Python object in bytes.

    numpy arrays and raw byte buffers (``bytes``/``bytearray``/
    ``memoryview``) take a fast path (``nbytes``/``len`` + fixed
    header) so sizing a large buffer never copies it through pickle;
    everything else is sized by pickling, exactly what mpi4py's
    lowercase API would transmit.  Unpicklable payloads are charged a
    flat fallback and warned about once per process.
    """
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes) + _NDARRAY_OVERHEAD
    if isinstance(obj, (bytes, bytearray)):
        return len(obj) + _BYTES_OVERHEAD
    if isinstance(obj, memoryview):
        return int(obj.nbytes) + _BYTES_OVERHEAD
    try:
        return len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:  # unpicklable payloads still need *a* size
        global _warned_unpicklable
        if not _warned_unpicklable:
            _warned_unpicklable = True
            warnings.warn(
                f"payload of type {type(obj).__name__!r} is unpicklable; "
                f"charging a flat {_UNPICKLABLE_FALLBACK} bytes in the "
                "communication cost model (further occurrences are silent)",
                RuntimeWarning,
                stacklevel=2,
            )
        return _UNPICKLABLE_FALLBACK


@dataclass(frozen=True)
class CommCostModel:
    """Alpha-beta (Hockney) point-to-point cost: alpha + beta * bytes.

    Defaults approximate a commodity cluster interconnect: 10 us
    latency, 10 GB/s effective bandwidth.
    """

    alpha: float = 10e-6
    beta: float = 1e-10

    def __post_init__(self) -> None:
        if self.alpha < 0 or self.beta < 0:
            raise ValueError("cost parameters must be non-negative")

    def message_cost(self, nbytes: int) -> float:
        """Seconds to move one message of ``nbytes``."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return self.alpha + self.beta * nbytes

    def cost_of(self, obj) -> float:
        return self.message_cost(payload_nbytes(obj))
