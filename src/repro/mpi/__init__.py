"""Simulated MPI runtime.

The paper runs on an HPC cluster over MPI; this environment has no
mpi4py and a GIL, so we substitute an in-process message-passing
runtime with *virtual clocks*:

- each rank is a Python thread holding a :class:`SimComm`;
- point-to-point and collective operations follow the mpi4py
  lowercase (pickle-object) API, so the code would port to real MPI
  nearly verbatim;
- each rank's virtual clock advances by *measured* compute time (wrapped
  in ``comm.timed()``) and by an alpha-beta (latency + inverse
  bandwidth) communication cost model; a receive completes at
  ``max(local clock, send clock + alpha + beta * bytes)``.

Virtual elapsed time of a run is the maximum final clock over ranks —
the LogP-style estimate of what a real cluster would measure, with the
per-rank *work* being genuinely measured, only its temporal overlap
modelled.  See DESIGN.md for why this preserves the paper's speedup
shapes.
"""

from repro.mpi.cluster import RunStats, SimCluster
from repro.mpi.schedule import (
    lpt_makespan,
    partition_schedule_makespan,
    speedup_curve,
)
from repro.mpi.simcomm import (
    DeadlockError,
    MessageLeakError,
    PayloadMutationError,
    SimComm,
)
from repro.mpi.timing import CommCostModel, payload_nbytes

__all__ = [
    "SimComm",
    "SimCluster",
    "RunStats",
    "CommCostModel",
    "payload_nbytes",
    "DeadlockError",
    "PayloadMutationError",
    "MessageLeakError",
    "lpt_makespan",
    "partition_schedule_makespan",
    "speedup_curve",
]
