"""SimComm: the per-rank communicator of the simulated MPI runtime.

Mirrors the mpi4py lowercase (generic-object) API from the tutorial:
``send``/``recv``, ``bcast``, ``scatter``, ``gather``, ``allgather``,
``reduce``, ``allreduce``, ``barrier``.  Collectives are built from
point-to-point messages along binomial trees, so their virtual cost
scales O(log p) like a real MPI implementation's.

Every rank carries a *virtual clock*:

- ``timed()`` measures a compute block with ``perf_counter`` and adds
  the measured seconds;
- ``advance(dt)`` adds model time directly (for deterministic tests
  and for replaying pre-measured task durations);
- a message sent at sender-clock ``t`` becomes available at
  ``t + alpha + beta * bytes``; the receiver's clock jumps to
  ``max(own clock, available_at)``.
"""

from __future__ import annotations

import hashlib
import pickle
import queue
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass

from repro.mpi.timing import CommCostModel, payload_nbytes

__all__ = [
    "SimComm",
    "SimRequest",
    "DeadlockError",
    "PayloadMutationError",
    "MessageLeakError",
    "COLLECTIVE_TAG_BASE",
    "COLLECTIVE_TAG_SPAN",
]

#: tag space reserved for internal collective traffic.  Each collective
#: claims a distinct offset below the base so concurrent collectives on
#: the same channel never cross-match: bcast 0, gather 1, scatter 2,
#: allgather 3/4 (gather+bcast legs), reduce 5, allreduce 6/7
#: (reduce+bcast legs), alltoall 8.  The MPI002 lint rule derives its
#: reserved window from these two constants — extend the span here
#: when a new collective claims a deeper offset.
COLLECTIVE_TAG_BASE = -1000
#: number of distinct internal tags below (and including) the base.
COLLECTIVE_TAG_SPAN = 9

#: backwards-compatible private alias (pre-dates the public constants).
_COLLECTIVE_TAG_BASE = COLLECTIVE_TAG_BASE


class DeadlockError(RuntimeError):
    """A recv waited past the runtime's deadlock timeout."""


class PayloadMutationError(RuntimeError):
    """A sanitized payload changed between ``send`` and ``recv``.

    Sends are eager: the object *reference* crosses rank threads
    immediately, so the sender mutating it afterwards races with the
    receiver — exactly the bug class the MPI003 lint rule flags
    statically.  Raised only under ``sanitize=True``.
    """


class MessageLeakError(RuntimeError):
    """Messages were still sitting in mailboxes at cluster shutdown.

    A leak means a send had no matching receive — a mismatched tag, a
    wrong peer rank, or an algorithm that exited early.  Raised only
    under ``sanitize=True``.
    """


def _fingerprint(obj) -> bytes | None:
    """Stable digest of a payload's pickled bytes (None if unpicklable)."""
    try:
        return hashlib.blake2b(
            pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL), digest_size=16
        ).digest()
    except Exception:
        return None


@dataclass
class _Message:
    payload: object
    available_at: float
    #: sanitizer fingerprint taken at send time (None when disabled
    #: or the payload is unpicklable).
    digest: bytes | None = None
    #: per-channel send sequence number (receivers use it to discard
    #: injected duplicates).
    seq: int = 0
    #: True for a tombstone left by an injected message drop.
    dropped: bool = False


class _Channels:
    """Shared mailbox fabric: one FIFO per (src, dst, tag)."""

    def __init__(self) -> None:
        self._queues: dict[tuple[int, int, int], queue.Queue] = {}
        self._seqs: dict[tuple[int, int, int], int] = {}
        self._lock = threading.Lock()

    def get(self, src: int, dst: int, tag: int) -> queue.Queue:
        key = (src, dst, tag)
        with self._lock:
            q = self._queues.get(key)
            if q is None:
                q = self._queues[key] = queue.Queue()
            return q

    def next_seq(self, src: int, dst: int, tag: int) -> int:
        """Monotonic per-channel sequence number for the next send."""
        key = (src, dst, tag)
        with self._lock:
            seq = self._seqs.get(key, 0)
            self._seqs[key] = seq + 1
            return seq

    def peek(self, src: int, dst: int, tag: int) -> _Message | None:
        """Head message of a channel without consuming it."""
        q = self.get(src, dst, tag)
        with q.mutex:
            return q.queue[0] if q.queue else None

    def unconsumed(self) -> list[tuple[int, int, int, int]]:
        """``(src, dst, tag, count)`` for every non-empty mailbox."""
        with self._lock:
            report = []
            for (src, dst, tag), q in sorted(self._queues.items()):
                n = q.qsize()
                if n:
                    report.append((src, dst, tag, n))
            return report


class SimRequest:
    """Handle for a nonblocking operation (mpi4py ``Request`` analogue).

    ``wait()`` completes the operation: for an ``irecv`` it blocks for
    the message and returns the payload; for an ``isend`` (eager in
    this runtime) it returns immediately.
    """

    def __init__(self, comm: "SimComm", kind: str, source: int | None = None, tag: int = 0):
        self._comm = comm
        self._kind = kind
        self._source = source
        self._tag = tag
        self._done = kind == "send"
        self._value = None

    def test(self) -> bool:
        """True once the operation has completed *in model time*.

        Consistent with ``recv`` semantics: a message only counts as
        arrived once the receiver's virtual clock has reached its
        ``available_at`` (send clock + alpha + beta * bytes).  A message
        physically enqueued but still "in flight" in model time reports
        False — poll again after ``advance()``/``timed()`` work, the
        way a real rank overlaps compute with an outstanding irecv.
        """
        if self._done:
            return True
        msg = self._comm._channels.peek(self._source, self._comm.rank, self._tag)
        return msg is not None and msg.available_at <= self._comm.clock

    def wait(self):
        """Complete the operation (returns the payload for receives)."""
        if self._done:
            return self._value
        self._value = self._comm.recv(self._source, tag=self._tag)
        self._done = True
        return self._value


class SimComm:
    """Communicator handle held by one rank (thread)."""

    def __init__(
        self,
        rank: int,
        size: int,
        channels: _Channels,
        cost_model: CommCostModel,
        deadlock_timeout: float = 60.0,
        sanitize: bool = False,
        fault_hook=None,
    ) -> None:
        if not 0 <= rank < size:
            raise ValueError("rank out of range")
        self.rank = rank
        self.size = size
        self._channels = channels
        self.cost = cost_model
        self.deadlock_timeout = deadlock_timeout
        #: message sanitizer: fingerprint payloads at send, re-verify at
        #: recv, raising :class:`PayloadMutationError` on mismatch.
        self.sanitize = sanitize
        #: fault injector hook (``message_action(src, dst)``) — drops,
        #: duplicates, or delays outgoing messages when armed.
        self.fault_hook = fault_hook
        #: highest consumed sequence number per (src, tag) channel;
        #: injected duplicates arrive with an already-seen seq and are
        #: discarded (exactly-once delivery to the application).
        self._consumed_seq: dict[tuple[int, int], int] = {}
        #: virtual seconds elapsed on this rank.
        self.clock = 0.0
        #: virtual seconds spent purely computing (subset of clock).
        self.compute_time = 0.0
        self.bytes_sent = 0
        self.messages_sent = 0

    # -- rank info (mpi4py-style) ------------------------------------------

    def get_rank(self) -> int:
        return self.rank

    def get_size(self) -> int:
        return self.size

    # -- virtual clock -------------------------------------------------------

    def advance(self, seconds: float) -> None:
        """Add model compute time to this rank's clock."""
        if seconds < 0:
            raise ValueError("cannot advance the clock backwards")
        self.clock += seconds
        self.compute_time += seconds

    @contextmanager
    def timed(self):
        """Measure the wrapped compute block and charge it to the clock.

        Uses per-thread CPU time (``time.thread_time``), not wall time:
        ranks are threads sharing a GIL, and wall time would charge a
        rank for the time *other* ranks spent computing, flattening
        every speedup curve to 1.  CPU time measures the work this rank
        actually did, which is what a dedicated core would have taken.
        """
        t0 = time.thread_time()
        try:
            yield
        finally:
            self.advance(time.thread_time() - t0)

    # -- point-to-point -------------------------------------------------------

    def send(self, obj, dest: int, tag: int = 0) -> None:
        """Send a picklable object (eager, non-blocking sender).

        When a fault hook is armed the message may be dropped (a
        tombstone is enqueued so the receiver fails loudly instead of
        silently hanging), duplicated (the receiver discards the copy
        by sequence number), or delayed (extra virtual latency).
        """
        self._check_peer(dest)
        nbytes = payload_nbytes(obj)
        available = self.clock + self.cost.message_cost(nbytes)
        # Sender pays the injection overhead.
        self.clock += self.cost.alpha
        self.bytes_sent += nbytes
        self.messages_sent += 1
        action, extra_delay = (None, 0.0)
        if self.fault_hook is not None:
            action, extra_delay = self.fault_hook.message_action(self.rank, dest)
        digest = _fingerprint(obj) if self.sanitize else None
        seq = self._channels.next_seq(self.rank, dest, tag)
        channel = self._channels.get(self.rank, dest, tag)
        if action == "drop":
            channel.put(_Message(None, available, None, seq=seq, dropped=True))
            return
        if action == "delay":
            available += extra_delay
        channel.put(_Message(obj, available, digest, seq=seq))
        if action == "duplicate":
            channel.put(_Message(obj, available, digest, seq=seq))

    def recv(self, source: int, tag: int = 0):
        """Blocking receive; advances the clock to the arrival time.

        Injected duplicates (same sequence number) are discarded;
        an injected drop raises a :class:`DeadlockError` immediately
        with the full message context rather than stalling for the
        deadlock timeout.
        """
        self._check_peer(source)
        q = self._channels.get(source, self.rank, tag)
        chan = (source, tag)
        while True:
            try:
                msg = q.get(timeout=self.deadlock_timeout)
            except queue.Empty:
                raise DeadlockError(
                    f"rank {self.rank} timed out receiving from rank {source} "
                    f"(tag {tag}) after {self.deadlock_timeout}s at virtual "
                    f"time {self.clock:.6f}s"
                ) from None
            if msg.dropped:
                raise DeadlockError(
                    f"rank {self.rank}: message from rank {source} "
                    f"(tag {tag}, seq {msg.seq}) was dropped by fault "
                    f"injection at virtual time {self.clock:.6f}s"
                )
            last = self._consumed_seq.get(chan)
            if last is not None and msg.seq <= last:
                continue  # injected duplicate of an already-consumed send
            self._consumed_seq[chan] = msg.seq
            break
        self.clock = max(self.clock, msg.available_at)
        if self.sanitize and msg.digest is not None:
            now = _fingerprint(msg.payload)
            if now != msg.digest:
                raise PayloadMutationError(
                    f"payload from rank {source} to rank {self.rank} "
                    f"(tag {tag}) changed between send and recv: the sender "
                    "mutated an eagerly-sent object (see lint rule MPI003)"
                )
        return msg.payload

    def isend(self, obj, dest: int, tag: int = 0) -> SimRequest:
        """Nonblocking send (eager: completes immediately here)."""
        self.send(obj, dest, tag=tag)
        return SimRequest(self, "send")

    def irecv(self, source: int, tag: int = 0) -> SimRequest:
        """Nonblocking receive; complete with ``request.wait()``."""
        self._check_peer(source)
        return SimRequest(self, "recv", source=source, tag=tag)

    def sendrecv(self, obj, dest: int, source: int, tag: int = 0):
        """Exchange: send to ``dest`` while receiving from ``source``.

        Deadlock-free even in a synchronous ring because sends are
        eager in this runtime.
        """
        self.send(obj, dest, tag=tag)
        return self.recv(source, tag=tag)

    def _check_peer(self, peer: int) -> None:
        if not 0 <= peer < self.size:
            raise ValueError(f"peer rank {peer} out of range (size {self.size})")
        if peer == self.rank:
            raise ValueError("self-messaging is not supported")

    # -- collectives -----------------------------------------------------------

    def _vrank(self, root: int) -> int:
        return (self.rank - root) % self.size

    def _from_vrank(self, vrank: int, root: int) -> int:
        return (vrank + root) % self.size

    def bcast(self, obj, root: int = 0, _tag: int = _COLLECTIVE_TAG_BASE):
        """Binomial-tree broadcast; returns the object on every rank."""
        if self.size == 1:
            return obj
        v = self._vrank(root)
        mask = 1
        # Find the first round in which this rank receives.
        while mask < self.size:
            if v < mask:
                if v + mask < self.size:
                    self.send(obj, self._from_vrank(v + mask, root), tag=_tag)
            elif v < 2 * mask:
                obj = self.recv(self._from_vrank(v - mask, root), tag=_tag)
            mask <<= 1
        return obj

    def gather(self, obj, root: int = 0, _tag: int = _COLLECTIVE_TAG_BASE - 1):
        """Binomial-tree gather; root gets the rank-ordered list."""
        if self.size == 1:
            return [obj]
        v = self._vrank(root)
        # bucket: {vrank: payload} accumulated up the tree.
        bucket = {v: obj}
        mask = 1
        while mask < self.size:
            if v % (2 * mask) == 0:
                if v + mask < self.size:
                    part = self.recv(self._from_vrank(v + mask, root), tag=_tag)
                    bucket.update(part)
            elif v % (2 * mask) == mask:
                self.send(bucket, self._from_vrank(v - mask, root), tag=_tag)
                bucket = {}
                break
            mask <<= 1
        if self.rank == root:
            # bucket is keyed by vrank; return in true rank order.
            return [bucket[(r - root) % self.size] for r in range(self.size)]
        return None

    def scatter(self, objs, root: int = 0, _tag: int = _COLLECTIVE_TAG_BASE - 2):
        """Root sends element i to rank i; returns the local element."""
        if self.rank == root:
            if objs is None or len(objs) != self.size:
                raise ValueError("scatter needs one item per rank at the root")
            for dst in range(self.size):
                if dst != root:
                    self.send(objs[dst], dst, tag=_tag)
            return objs[root]
        return self.recv(root, tag=_tag)

    def allgather(self, obj):
        """gather to rank 0, then broadcast the full list."""
        out = self.gather(obj, root=0, _tag=_COLLECTIVE_TAG_BASE - 3)
        return self.bcast(out, root=0, _tag=_COLLECTIVE_TAG_BASE - 4)

    def reduce(self, obj, op=None, root: int = 0, _tag: int = _COLLECTIVE_TAG_BASE - 5):
        """Binomial-tree reduction (default op: +).

        ``op`` is applied in **binomial-tree order over virtual ranks**
        (``vrank = (rank - root) % size``): at each doubling step a
        surviving vrank ``v`` combines ``acc = op(acc_v, acc_{v+mask})``
        — the lower vrank's accumulator is always the left operand.
        Consequences, pinned by ``tests/mpi/test_simcomm.py``:

        - for **associative** ops the result equals a sequential left
          fold over vrank order; with ``root != 0`` that order is the
          ranks *rotated* to start at the root, so even an associative
          non-commutative op (e.g. string concatenation) differs from
          a rank-0-first fold;
        - for **non-associative** ops (e.g. subtraction, floating-point
          sums at scale) the tree grouping itself differs from a
          sequential left fold — same contract as MPI_Reduce, which
          only promises a fixed evaluation order for a fixed topology.
        """
        if op is None:
            op = lambda a, b: a + b
        if self.size == 1:
            return obj
        v = self._vrank(root)
        acc = obj
        mask = 1
        while mask < self.size:
            if v % (2 * mask) == 0:
                if v + mask < self.size:
                    other = self.recv(self._from_vrank(v + mask, root), tag=_tag)
                    acc = op(acc, other)
            elif v % (2 * mask) == mask:
                self.send(acc, self._from_vrank(v - mask, root), tag=_tag)
                acc = None
                break
            mask <<= 1
        return acc if self.rank == root else None

    def allreduce(self, obj, op=None):
        out = self.reduce(obj, op=op, root=0, _tag=_COLLECTIVE_TAG_BASE - 6)
        return self.bcast(out, root=0, _tag=_COLLECTIVE_TAG_BASE - 7)

    def alltoall(self, objs, _tag: int = _COLLECTIVE_TAG_BASE - 8):
        """Personalised exchange: element ``i`` of ``objs`` goes to rank i.

        Returns the list whose element ``j`` came from rank ``j``.
        """
        if objs is None or len(objs) != self.size:
            raise ValueError("alltoall needs one item per rank")
        for dst in range(self.size):
            if dst != self.rank:
                self.send(objs[dst], dst, tag=_tag)
        out = [None] * self.size
        out[self.rank] = objs[self.rank]
        for src in range(self.size):
            if src != self.rank:
                out[src] = self.recv(src, tag=_tag)
        return out

    def barrier(self) -> None:
        """Synchronise clocks: everyone leaves at the group's max clock."""
        latest = self.allreduce(self.clock, op=max)
        self.clock = max(self.clock, latest)
