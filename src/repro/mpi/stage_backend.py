"""Sim adapter: runs kernel/merge stages on the simulated MPI cluster.

This is the thin bridge between the backend abstraction
(:mod:`repro.parallel.backend`) and the virtual-time runtime
(:mod:`repro.mpi`): each stage is executed as an SPMD rank program —
kernel under the rank's virtual clock, gather to root, merge on the
root's clock, broadcast — exactly the communication pattern the
paper's Fig. 6 times.  The returned ``elapsed`` is the cluster's
virtual wall-clock (slowest rank), not real time.
"""

from __future__ import annotations

from repro.distributed.stages import StageSpec, run_stage_on_comm
from repro.mpi.cluster import SimCluster
from repro.mpi.timing import CommCostModel
from repro.parallel.backend import ExecutionBackend, StageOutcome

__all__ = ["SimBackend"]


class SimBackend(ExecutionBackend):
    """Virtual-cluster execution: one simulated rank per partition."""

    name = "sim"
    time_kind = "virtual"

    def __init__(
        self,
        dag,
        cost_model: CommCostModel | None = None,
        deadlock_timeout: float = 600.0,
        sanitize: bool = False,
    ) -> None:
        super().__init__(dag)
        self.cluster = SimCluster(
            max(dag.n_parts, 1),
            cost_model=cost_model,
            deadlock_timeout=deadlock_timeout,
            sanitize=sanitize,
        )

    def run_stage(self, stage: StageSpec | str, **params) -> StageOutcome:
        spec = self._resolve(stage)
        results, stats = self.cluster.run(
            run_stage_on_comm, spec, self.dag, **params
        )
        return StageOutcome(
            stage=spec.name,
            result=results[0],
            elapsed=stats.elapsed,
            time_kind=self.time_kind,
        )
