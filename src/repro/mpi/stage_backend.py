"""Sim adapter: runs kernel/merge stages on the simulated MPI cluster.

This is the thin bridge between the backend abstraction
(:mod:`repro.parallel.backend`) and the virtual-time runtime
(:mod:`repro.mpi`): each stage is executed as an SPMD rank program —
kernel under the rank's virtual clock, gather to root, merge on the
root's clock, broadcast — exactly the communication pattern the
paper's Fig. 6 times.  The returned ``elapsed`` is the cluster's
virtual wall-clock (slowest rank), not real time.

Fault tolerance: a rank failure poisons a whole SPMD run (the other
ranks deadlock waiting on the dead peer), so the retry granularity
here is the *stage attempt*, not the partition.  Before each attempt
the alive-masks are snapshotted; on failure they are restored (a
partially-applied merge never leaks into the retry) and the stage is
re-run with the next attempt number.  Injected message faults
(drop/duplicate/delay from the :class:`~repro.faults.FaultPlan`) are
armed per attempt through the cluster's fault hook.  Once the retry
budget is exhausted the stage falls back to the in-process serial
loop (without injection) when the policy allows it.
"""

from __future__ import annotations

from repro.distributed.stages import StageSpec, run_stage_on_comm
from repro.faults import (
    FaultInjector,
    FaultReport,
    RetryPolicy,
    StageExecutionError,
)
from repro.mpi.cluster import SimCluster
from repro.mpi.simcomm import DeadlockError
from repro.mpi.timing import CommCostModel
from repro.parallel.backend import ExecutionBackend, SerialBackend, StageOutcome

__all__ = ["SimBackend"]


class SimBackend(ExecutionBackend):
    """Virtual-cluster execution: one simulated rank per partition."""

    name = "sim"
    time_kind = "virtual"

    def __init__(
        self,
        dag,
        cost_model: CommCostModel | None = None,
        deadlock_timeout: float = 600.0,
        sanitize: bool = False,
        retry: RetryPolicy | None = None,
        injector: FaultInjector | None = None,
        engine: str = "loop",
    ) -> None:
        super().__init__(dag, retry=retry, injector=injector, engine=engine)
        if injector is not None and self.retry.task_deadline is not None:
            # Under fault injection a dead rank stalls its peers until
            # the recv timeout: bound that stall by the task deadline
            # so failed attempts surface quickly in real time.
            deadlock_timeout = min(deadlock_timeout, self.retry.task_deadline)
        self.cluster = SimCluster(
            max(dag.n_parts, 1),
            cost_model=cost_model,
            deadlock_timeout=deadlock_timeout,
            sanitize=sanitize,
            fault_hook=injector,
        )

    def _attempt_spec(self, spec: StageSpec, attempt: int) -> StageSpec:
        """The stage with its kernel wrapped for fault injection."""
        injector = self.injector
        if injector is None:
            return spec

        def kernel_with_faults(dag, part, **params):
            injector.fire_kernel_fault(spec.name, part, attempt)
            return spec.kernel(dag, part, **params)

        return StageSpec(spec.name, kernel_with_faults, spec.merge)

    def run_stage(
        self, stage: StageSpec | str, engine: str | None = None, **params
    ) -> StageOutcome:
        # Engine resolution swaps the spec's primary kernel, so the
        # SPMD driver (and the serial fallback below) run the chosen
        # implementation unchanged; the sim ranks are threads sharing
        # the master's graph, so the master-side sparse prime covers
        # every rank.
        spec, _ = self._engine_spec(stage, engine)
        dag = self.dag
        policy = self.retry
        report = FaultReport()
        failures: list[str] = []
        attempt = 1
        while True:
            # Snapshot the only state merges mutate, so a failed
            # attempt (even one that died mid-merge or mid-broadcast)
            # can be rolled back cleanly.
            node_alive = dag.node_alive.copy()
            edge_alive = dag.edge_alive.copy()
            if self.injector is not None:
                for part in range(dag.n_parts):
                    fault = self.injector.kernel_fault(spec.name, part, attempt)
                    if fault is not None:
                        report.record_injected(fault.kind, spec.name, f"rank {part}")
                        if fault.kind == "hang":
                            report.record_deadline(spec.name, f"rank {part}")
                self.injector.begin_attempt(spec.name, attempt)
            try:
                results, stats = self.cluster.run(
                    run_stage_on_comm, self._attempt_spec(spec, attempt), dag, **params
                )
            except (RuntimeError, DeadlockError) as exc:
                dag.node_alive = node_alive
                dag.edge_alive = edge_alive
                failures.append(f"attempt {attempt}: {exc}")
                if not policy.allows(attempt + 1):
                    if policy.fallback_serial:
                        report.record_fallback(spec.name, "stage")
                        inner = SerialBackend(dag, retry=policy)
                        outcome = inner.run_stage(spec, **params)
                        self.fault_report.merge(report)
                        return StageOutcome(
                            stage=spec.name,
                            result=outcome.result,
                            elapsed=outcome.elapsed,
                            time_kind=outcome.time_kind,
                            faults=report,
                        )
                    raise StageExecutionError(spec.name, attempt, failures) from exc
                report.record_retry(spec.name, "stage", type(exc).__name__)
                attempt += 1
                continue
            finally:
                if self.injector is not None:
                    self.injector.end_attempt()
                    for kind, src, dst in self.injector.drain_fired():
                        report.record_injected(
                            kind, spec.name, f"rank {src}->rank {dst}"
                        )
            if failures:
                report.record_recovery(spec.name, "stage")
            return self._finish_outcome(spec, results[0], stats.elapsed, report)
