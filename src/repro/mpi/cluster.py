"""SimCluster: launches rank functions on threads with SimComms."""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.mpi.simcomm import MessageLeakError, SimComm, _Channels
from repro.mpi.timing import CommCostModel

__all__ = ["RunStats", "SimCluster"]


@dataclass
class RunStats:
    """Per-run accounting gathered after all ranks finish."""

    #: final virtual clock per rank.
    clocks: list[float]
    #: virtual compute seconds per rank.
    compute_times: list[float]
    bytes_sent: list[int]
    messages_sent: list[int]

    @property
    def elapsed(self) -> float:
        """Virtual wall-clock of the run: the slowest rank's clock."""
        return max(self.clocks) if self.clocks else 0.0

    @property
    def total_compute(self) -> float:
        return sum(self.compute_times)

    @property
    def total_bytes(self) -> int:
        return sum(self.bytes_sent)


class SimCluster:
    """An n-rank simulated cluster.

    ``run(fn, *args)`` starts one thread per rank executing
    ``fn(comm, *args)`` and returns ``(results, stats)`` where
    ``results[r]`` is rank r's return value.  Any rank exception is
    re-raised in the caller after all threads stop.
    """

    def __init__(
        self,
        n_ranks: int,
        cost_model: CommCostModel | None = None,
        deadlock_timeout: float = 60.0,
        sanitize: bool = False,
        fault_hook=None,
    ) -> None:
        if n_ranks < 1:
            raise ValueError("n_ranks must be >= 1")
        self.n_ranks = n_ranks
        self.cost_model = cost_model or CommCostModel()
        self.deadlock_timeout = deadlock_timeout
        #: runtime message sanitizer: payload fingerprints at send/recv
        #: plus a message-leak check at shutdown (see docs/mpi_simulation.md).
        self.sanitize = sanitize
        #: message fault injector shared by every rank's communicator
        #: (see :class:`repro.faults.FaultInjector` and docs/robustness.md).
        self.fault_hook = fault_hook

    def run(self, fn, *args, **kwargs) -> tuple[list, RunStats]:
        channels = _Channels()
        comms = [
            SimComm(
                r,
                self.n_ranks,
                channels,
                self.cost_model,
                self.deadlock_timeout,
                sanitize=self.sanitize,
                fault_hook=self.fault_hook,
            )
            for r in range(self.n_ranks)
        ]
        results: list = [None] * self.n_ranks
        errors: list[tuple[int, BaseException]] = []

        def worker(rank: int) -> None:
            try:
                results[rank] = fn(comms[rank], *args, **kwargs)
            except BaseException as exc:  # noqa: BLE001 - must not kill the pool silently
                errors.append((rank, exc))

        threads = [
            threading.Thread(target=worker, args=(r,), name=f"simrank-{r}", daemon=True)
            for r in range(self.n_ranks)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if errors:
            rank, exc = errors[0]
            raise RuntimeError(f"rank {rank} failed: {exc!r}") from exc
        if self.sanitize:
            leaks = channels.unconsumed()
            if leaks:
                detail = ", ".join(
                    f"rank {src}->{dst} tag {tag}: {n} message(s)"
                    for src, dst, tag, n in leaks
                )
                clocks = ", ".join(
                    f"rank {c.rank}={c.clock:.6f}s" for c in comms
                )
                raise MessageLeakError(
                    f"unconsumed messages at cluster shutdown ({detail}); "
                    "every send needs a matching receive "
                    f"[virtual clocks at shutdown: {clocks}]"
                )
        stats = RunStats(
            clocks=[c.clock for c in comms],
            compute_times=[c.compute_time for c in comms],
            bytes_sent=[c.bytes_sent for c in comms],
            messages_sent=[c.messages_sent for c in comms],
        )
        return results, stats
