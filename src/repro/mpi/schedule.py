"""Task-schedule replay: what would p processors have taken?

The partition driver records every independently schedulable task
(bisections per recursion step, k-way refinements per level) with its
*measured* serial duration.  Fig. 4's speedup curve is produced by
replaying those records under LPT list scheduling on ``p`` virtual
processors, honouring the paper's dependency structure: recursion step
``i`` must finish before step ``i+1`` starts (its tasks' inputs are the
previous step's outputs), and the per-level k-way refinements follow
the final step but are mutually independent.
"""

from __future__ import annotations

import heapq
from collections.abc import Iterable, Sequence

from repro.partition.recursive import TaskRecord

__all__ = ["lpt_makespan", "partition_schedule_makespan", "speedup_curve"]


def lpt_makespan(durations: Sequence[float], n_processors: int) -> float:
    """Longest-processing-time list-schedule makespan on p processors."""
    if n_processors < 1:
        raise ValueError("n_processors must be >= 1")
    if any(d < 0 for d in durations):
        raise ValueError("durations must be non-negative")
    if not durations:
        return 0.0
    loads = [0.0] * min(n_processors, len(durations))
    heapq.heapify(loads)
    for d in sorted(durations, reverse=True):
        lightest = heapq.heappop(loads)
        heapq.heappush(loads, lightest + d)
    return max(loads)


def partition_schedule_makespan(tasks: Iterable[TaskRecord], n_processors: int) -> float:
    """Virtual runtime of the recorded partitioning on p processors.

    Bisection steps are barriers (step i feeds step i+1); k-way level
    refinements run as one final independent batch.
    """
    bisect_steps: dict[int, list[float]] = {}
    kway: list[float] = []
    for t in tasks:
        if t.kind == "bisect":
            bisect_steps.setdefault(t.step, []).append(t.duration)
        elif t.kind == "kway":
            kway.append(t.duration)
        else:
            raise ValueError(f"unknown task kind {t.kind!r}")
    total = 0.0
    for step in sorted(bisect_steps):
        total += lpt_makespan(bisect_steps[step], n_processors)
    total += lpt_makespan(kway, n_processors)
    return total


def speedup_curve(
    tasks: Iterable[TaskRecord], processors: Sequence[int]
) -> list[tuple[int, float]]:
    """(p, speedup) pairs with speedup = T(1) / T(p)."""
    tasks = list(tasks)
    t1 = partition_schedule_makespan(tasks, 1)
    out: list[tuple[int, float]] = []
    for p in processors:
        tp = partition_schedule_makespan(tasks, p)
        out.append((p, t1 / tp if tp > 0 else 1.0))
    return out
