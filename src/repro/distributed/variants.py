"""Distributed variant detection on the hybrid graph.

The paper names this as the natural extension of its framework
(§VI-D: "variant detection algorithms can be implemented to be run on
the distributed hybrid graph").  A *bubble* — two parallel contig
branches spanning the same genomic interval — is the graph signature
of a variant: the branches are alternative alleles.  Instead of
popping the bubble (as error removal does), variant detection aligns
the two branch contigs and reports their differences as candidate
variants.

Workers scan their own partitions for bubbles anchored at their nodes;
the master merges and deduplicates the calls — the same
scan-locally/apply-centrally pattern as the other §V algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.align.banded_nw import banded_align
from repro.distributed.dgraph import DistributedAssemblyGraph
from repro.mpi.simcomm import SimComm
from repro.sequence.dna import decode

__all__ = ["Variant", "find_bubble_variants", "detect_variants"]


@dataclass(frozen=True)
class Variant:
    """A candidate variant between two alternative branch contigs.

    ``position`` is the offset within the reference (longer) branch;
    SNVs carry single-base alleles, indels the inserted/deleted run.
    """

    anchor: int  # hybrid node where the branches diverge
    ref_node: int  # branch node treated as reference (longer contig)
    alt_node: int  # alternative branch node
    position: int
    kind: str  # "snv" | "indel"
    ref_allele: str
    alt_allele: str


def _branch_pairs(dag: DistributedAssemblyGraph, v: int) -> list[tuple[int, int, int]]:
    """(anchor, branch_a, branch_b) bubbles anchored at ``v``.

    Same geometry as bubble popping: both branches degree-2, same far
    endpoint, same side of the anchor.
    """
    nbrs, eids = dag.alive_incident(v)
    # Batched degree/delta queries instead of per-neighbour calls.
    keep = dag.alive_degrees(nbrs) == 2
    two_nbrs, two_eids = nbrs[keep], eids[keep]
    sides = np.sign(dag.edge_deltas(two_eids, np.full(two_eids.size, v)))
    u_indptr, u_nbrs, _ = dag.alive_incident_many(two_nbrs)
    far: dict[tuple[int, int], list[int]] = {}
    for i, (u, side) in enumerate(zip(two_nbrs.tolist(), sides.tolist())):
        other = [
            int(x)
            for x in u_nbrs[u_indptr[i] : u_indptr[i + 1]].tolist()
            if int(x) != v
        ]
        if len(other) != 1:
            continue
        far.setdefault((other[0], int(side)), []).append(u)
    out = []
    for (w, _side), branches in far.items():
        if w == v or len(branches) < 2:
            continue
        branches = sorted(branches)
        for i in range(len(branches)):
            for j in range(i + 1, len(branches)):
                out.append((v, branches[i], branches[j]))
    return out


def _align_branches(
    dag: DistributedAssemblyGraph, a: int, b: int, band: int
) -> list[Variant]:
    """Align two branch contigs and emit their differences."""
    ca, cb = dag.assembly.contigs[a], dag.assembly.contigs[b]
    # Reference = the longer branch (ties: lower id).
    if (cb.size, a) > (ca.size, b):
        a, b, ca, cb = b, a, cb, ca
    result = banded_align(ca, cb, band=band)
    # Re-walk the alignment to locate differences.  banded_align counts
    # them; for positions we redo a simple column walk over the global
    # alignment implied by a second banded pass with traceback encoded
    # in (matches, mismatches, gaps) — for reporting we use a direct
    # columnwise comparison when lengths agree, else mark one indel.
    variants: list[Variant] = []
    if ca.size == cb.size:
        diff = np.flatnonzero(ca != cb)
        for pos in diff.tolist():
            variants.append(
                Variant(
                    anchor=-1,
                    ref_node=a,
                    alt_node=b,
                    position=pos,
                    kind="snv",
                    ref_allele=decode(ca[pos : pos + 1]),
                    alt_allele=decode(cb[pos : pos + 1]),
                )
            )
    else:
        # Length difference: report one indel event plus any mismatch
        # columns the alignment found.
        variants.append(
            Variant(
                anchor=-1,
                ref_node=a,
                alt_node=b,
                position=min(ca.size, cb.size),
                kind="indel",
                ref_allele=f"len{ca.size}",
                alt_allele=f"len{cb.size}",
            )
        )
        if result.mismatches:
            diff = np.flatnonzero(ca[: min(ca.size, cb.size)] != cb[: min(ca.size, cb.size)])
            for pos in diff.tolist():
                variants.append(
                    Variant(
                        anchor=-1,
                        ref_node=a,
                        alt_node=b,
                        position=pos,
                        kind="snv",
                        ref_allele=decode(ca[pos : pos + 1]),
                        alt_allele=decode(cb[pos : pos + 1]),
                    )
                )
    return variants


def find_bubble_variants(
    dag: DistributedAssemblyGraph,
    nodes: np.ndarray,
    band: int = 8,
    max_variants_per_bubble: int = 20,
) -> list[Variant]:
    """Variants from bubbles anchored at the given nodes.

    Bubbles whose branches differ in more than
    ``max_variants_per_bubble`` positions are discarded as repeats or
    misassemblies rather than alleles.
    """
    out: list[Variant] = []
    seen: set[tuple[int, int]] = set()
    for v in np.asarray(nodes).tolist():
        for anchor, a, b in _branch_pairs(dag, v):
            key = (min(a, b), max(a, b))
            if key in seen:
                continue
            seen.add(key)
            calls = _align_branches(dag, a, b, band)
            if 0 < len(calls) <= max_variants_per_bubble:
                out.extend(
                    Variant(
                        anchor=anchor,
                        ref_node=c.ref_node,
                        alt_node=c.alt_node,
                        position=c.position,
                        kind=c.kind,
                        ref_allele=c.ref_allele,
                        alt_allele=c.alt_allele,
                    )
                    for c in calls
                )
    return out


def detect_variants(
    comm: SimComm,
    dag: DistributedAssemblyGraph,
    band: int = 8,
    max_variants_per_bubble: int = 20,
) -> list[Variant] | None:
    """MPI-style variant detection; all ranks receive the merged calls."""
    with comm.timed():
        local = find_bubble_variants(
            dag,
            dag.partition_nodes(comm.rank),
            band=band,
            max_variants_per_bubble=max_variants_per_bubble,
        )
    gathered = comm.gather(local, root=0)
    merged = None
    if comm.rank == 0:
        with comm.timed():
            seen: set[tuple] = set()
            merged = []
            for part in gathered:
                for v in part:
                    key = (v.ref_node, v.alt_node, v.position, v.kind)
                    if key not in seen:
                        seen.add(key)
                        merged.append(v)
            merged.sort(key=lambda v: (v.ref_node, v.alt_node, v.position))
    return comm.bcast(merged, root=0)
