"""The distributed assembly graph: hybrid nodes as contigs.

``enrich_hybrid`` lifts the hybrid graph H0 into assembly form: every
hybrid node's read cluster (contiguous by construction) is laid out
and collapsed to a consensus *contig*, and every hybrid edge gets a
*delta* — the genomic offset of one contig relative to the other,
derived from the heaviest crossing G0 overlap — plus an implied
contig-overlap length.

``DistributedAssemblyGraph`` wraps the enriched graph with partition
ownership and alive-masks.  Workers only read; the master applies the
removals they report (paper §V), so no locking is needed beyond the
gather/apply barrier the algorithms already have.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.contigs import cluster_layout_offsets, consensus_from_layout
from repro.graph.hybrid import HybridGraphSet
from repro.graph.overlap_graph import OverlapGraph
from repro.graph.sparse import SparseStructure, ragged_positions
from repro.io.readset import ReadSet

__all__ = ["HybridAssembly", "enrich_hybrid", "DistributedAssemblyGraph"]


@dataclass
class HybridAssembly:
    """The enriched hybrid graph plus per-node contigs."""

    #: hybrid graph with contig-level deltas; weight = implied contig overlap.
    graph: OverlapGraph
    #: consensus contig per hybrid node.
    contigs: list[np.ndarray]
    #: G0 read members per hybrid node.
    clusters: list[np.ndarray]

    @property
    def contig_lengths(self) -> np.ndarray:
        return np.array([c.size for c in self.contigs], dtype=np.int64)


def enrich_hybrid(
    hyb: HybridGraphSet,
    g0: OverlapGraph,
    reads: ReadSet,
    tolerance: int = 0,
    quality_weighted: bool = False,
) -> HybridAssembly:
    """Contigs + contig-level edge geometry for the hybrid graph."""
    h = hyb.hybrid
    clusters = hyb.clusters_of_hybrid()
    contigs: list[np.ndarray] = []
    # read -> offset within its cluster's layout.
    read_offset = np.zeros(g0.n_nodes, dtype=np.int64)
    for cluster in clusters:
        offsets = cluster_layout_offsets(g0, cluster, tolerance=tolerance)
        if offsets is None:
            raise RuntimeError(
                "hybrid cluster admits no layout; representative selection is broken"
            )
        read_offset[cluster] = offsets
        segments = consensus_from_layout(
            reads, cluster, offsets, quality_weighted=quality_weighted
        )
        if len(segments) != 1:
            raise RuntimeError("hybrid cluster consensus is not contiguous")
        contigs.append(segments[0])

    lengths = np.array([c.size for c in contigs], dtype=np.int64)
    bm = hyb.base_maps[0]
    hu = bm[g0.eu]
    hv = bm[g0.ev]
    crossing = hu != hv
    if crossing.any():
        cu, cv = hu[crossing], hv[crossing]
        w = g0.weights[crossing]
        # Offset of hv's contig relative to hu's, implied by each
        # crossing read overlap.
        d = read_offset[g0.eu[crossing]] + g0.deltas[crossing] - read_offset[g0.ev[crossing]]
        # Normalise pair orientation and pick the heaviest witness.
        flip = cu > cv
        cu2 = np.where(flip, cv, cu)
        cv2 = np.where(flip, cu, cv)
        d2 = np.where(flip, -d, d)
        order = np.lexsort((w, cv2, cu2))
        cu2, cv2, d2, w = cu2[order], cv2[order], d2[order], w[order]
        last = np.ones(cu2.size, dtype=bool)
        last[:-1] = (cu2[1:] != cu2[:-1]) | (cv2[1:] != cv2[:-1])
        eu, ev, deltas = cu2[last], cv2[last], d2[last]
        # Implied contig overlap: intervals [0, L_eu) and [d, d+L_ev).
        ov = np.minimum(lengths[eu], deltas + lengths[ev]) - np.maximum(0, deltas)
        weights = np.maximum(ov, 1).astype(np.float64)
    else:
        eu = ev = deltas = np.empty(0, dtype=np.int64)
        weights = np.empty(0, dtype=np.float64)

    graph = OverlapGraph(
        h.n_nodes,
        eu,
        ev,
        weights,
        node_weights=h.node_weights,
        deltas=deltas,
    )
    return HybridAssembly(graph=graph, contigs=contigs, clusters=clusters)


class DistributedAssemblyGraph:
    """Partition-owned view of a :class:`HybridAssembly` with alive masks."""

    def __init__(self, assembly: HybridAssembly, labels: np.ndarray) -> None:
        labels = np.asarray(labels, dtype=np.int64)
        if labels.size != assembly.graph.n_nodes:
            raise ValueError("labels must cover every hybrid node")
        if labels.size and labels.min() < 0:
            raise ValueError("labels must be non-negative")
        self.assembly = assembly
        self.graph = assembly.graph
        self.labels = labels
        self.n_parts = int(labels.max()) + 1 if labels.size else 0
        self.node_alive = np.ones(self.graph.n_nodes, dtype=bool)
        self.edge_alive = np.ones(self.graph.n_edges, dtype=bool)
        # Mask-independent sparse tables, primed once by the execution
        # backend (master-side, or per worker after fork) so sequential
        # sparse-engine stages share the one sorted build.
        self._sparse: SparseStructure | None = None

    # -- sparse representation ---------------------------------------------

    def prime_sparse(self) -> SparseStructure:
        """Build and cache the sparse structure (mutating; backend-only).

        Kernels must not call this — they read :attr:`sparse_structure`,
        which falls back to a throwaway build when nothing is primed.
        """
        if self._sparse is None:
            self._sparse = SparseStructure(self.graph)
        return self._sparse

    @property
    def sparse_structure(self) -> SparseStructure:
        """The cached-or-fresh sparse structure (pure: never assigns)."""
        if self._sparse is not None:
            return self._sparse
        return SparseStructure(self.graph)

    # -- partition views ---------------------------------------------------

    def partition_nodes(self, part: int) -> np.ndarray:
        """Alive nodes owned by ``part``."""
        return np.flatnonzero((self.labels == part) & self.node_alive)

    def alive_incident(self, v: int) -> tuple[np.ndarray, np.ndarray]:
        """(neighbour ids, edge ids) of v's alive incident edges."""
        lo, hi = self.graph.indptr[v], self.graph.indptr[v + 1]
        nbrs = self.graph.adj[lo:hi]
        eids = self.graph.adj_edge[lo:hi]
        keep = self.edge_alive[eids] & self.node_alive[nbrs]
        return nbrs[keep], eids[keep]

    def alive_degree(self, v: int) -> int:
        return int(self.alive_incident(v)[0].size)

    def alive_degrees(self, nodes) -> np.ndarray:
        """Alive degree of each node in one vectorized pass."""
        nodes = np.asarray(nodes, dtype=np.int64)
        if nodes.size == 0:
            return np.empty(0, dtype=np.int64)
        g = self.graph
        counts = (g.indptr[nodes + 1] - g.indptr[nodes]).astype(np.int64)
        slots = ragged_positions(g.indptr[nodes].astype(np.int64), counts)
        keep = self.edge_alive[g.adj_edge[slots]] & self.node_alive[g.adj[slots]]
        owner = np.repeat(np.arange(nodes.size, dtype=np.int64), counts)
        return np.bincount(owner[keep], minlength=nodes.size)

    def alive_incident_many(
        self, nodes
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(indptr, neighbour ids, edge ids) of many nodes' alive edges.

        Row ``i`` spans ``nbrs[indptr[i]:indptr[i+1]]`` in the same
        order :meth:`alive_incident` yields for ``nodes[i]`` — the
        graph's CSR incident order, which order-sensitive kernels
        (containment's first-hit break) rely on.
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        if nodes.size == 0:
            empty = np.empty(0, dtype=np.int64)
            return np.zeros(1, dtype=np.int64), empty, empty
        g = self.graph
        counts = (g.indptr[nodes + 1] - g.indptr[nodes]).astype(np.int64)
        slots = ragged_positions(g.indptr[nodes].astype(np.int64), counts)
        nbrs = g.adj[slots]
        eids = g.adj_edge[slots]
        keep = self.edge_alive[eids] & self.node_alive[nbrs]
        owner = np.repeat(np.arange(nodes.size, dtype=np.int64), counts)
        indptr = np.zeros(nodes.size + 1, dtype=np.int64)
        np.cumsum(np.bincount(owner[keep], minlength=nodes.size), out=indptr[1:])
        return indptr, nbrs[keep].astype(np.int64), eids[keep].astype(np.int64)

    def edge_deltas(self, eids, v) -> np.ndarray:
        """Delta of each edge as seen from endpoint ``v``, vectorized.

        ``v`` may be a scalar (one viewpoint for all edges) or an array
        paired elementwise with ``eids``; every edge must be incident
        to its viewpoint, mirroring ``OverlapGraph.edge_delta``.
        """
        eids = np.asarray(eids, dtype=np.int64)
        v = np.asarray(v, dtype=np.int64)
        g = self.graph
        at_u = g.eu[eids] == v
        if not (at_u | (g.ev[eids] == v)).all():
            raise ValueError("edge_deltas: an edge is not incident to its viewpoint")
        return np.where(at_u, g.deltas[eids], -g.deltas[eids])

    def alive_edge_ids(self) -> np.ndarray:
        """Ids of edges alive at both endpoints."""
        g = self.graph
        alive = self.edge_alive & self.node_alive[g.eu] & self.node_alive[g.ev]
        return np.flatnonzero(alive).astype(np.int64)

    def _directed_deltas(self, v: int, eids: np.ndarray) -> np.ndarray:
        """Deltas of the given edges as seen from endpoint ``v``."""
        return np.where(self.graph.eu[eids] == v, self.graph.deltas[eids], -self.graph.deltas[eids])

    def out_edges(self, v: int) -> tuple[np.ndarray, np.ndarray]:
        """Alive edges extending v to the right (positive delta)."""
        nbrs, eids = self.alive_incident(v)
        pos = self._directed_deltas(v, eids) > 0
        return nbrs[pos], eids[pos]

    def in_edges(self, v: int) -> tuple[np.ndarray, np.ndarray]:
        """Alive edges extending v to the left (negative delta)."""
        nbrs, eids = self.alive_incident(v)
        neg = self._directed_deltas(v, eids) < 0
        return nbrs[neg], eids[neg]

    def direction_tables(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """(out_deg, out_next, in_deg, in_next) over alive edges.

        Vectorised snapshot of edge directions: ``out_next[v]`` is v's
        unique right neighbour when ``out_deg[v] == 1`` (undefined
        otherwise), and symmetrically for in-edges.  Zero-delta edges
        (pure containments, normally removed by then) count as
        neither.  Path traversal consults these tables instead of
        slicing adjacency per node.
        """
        g = self.graph
        alive = self.edge_alive & self.node_alive[g.eu] & self.node_alive[g.ev]
        eu, ev, d = g.eu[alive], g.ev[alive], g.deltas[alive]
        pos, neg = d > 0, d < 0
        out_src = np.concatenate([eu[pos], ev[neg]])
        out_dst = np.concatenate([ev[pos], eu[neg]])
        in_src = np.concatenate([eu[neg], ev[pos]])
        in_dst = np.concatenate([ev[neg], eu[pos]])
        n = g.n_nodes
        out_deg = np.bincount(out_src, minlength=n)
        in_deg = np.bincount(in_src, minlength=n)
        out_next = np.full(n, -1, dtype=np.int64)
        out_next[out_src] = out_dst
        in_next = np.full(n, -1, dtype=np.int64)
        in_next[in_src] = in_dst
        return out_deg, out_next, in_deg, in_next

    # -- master mutations -----------------------------------------------------

    def remove_edges(self, edge_ids) -> int:
        """Kill edges; returns how many were alive."""
        edge_ids = np.asarray(list(edge_ids), dtype=np.int64)
        if edge_ids.size == 0:
            return 0
        n = int(self.edge_alive[edge_ids].sum())
        self.edge_alive[edge_ids] = False
        return n

    def remove_nodes(self, node_ids) -> int:
        """Kill nodes (and implicitly their edges); returns alive count."""
        node_ids = np.asarray(list(node_ids), dtype=np.int64)
        if node_ids.size == 0:
            return 0
        n = int(self.node_alive[node_ids].sum())
        self.node_alive[node_ids] = False
        return n

    @property
    def n_alive_nodes(self) -> int:
        return int(self.node_alive.sum())

    @property
    def n_alive_edges(self) -> int:
        alive = self.edge_alive & self.node_alive[self.graph.eu] & self.node_alive[self.graph.ev]
        return int(alive.sum())
