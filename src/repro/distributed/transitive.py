"""Distributed transitive edge reduction (paper §V-A, after Myers [4]).

An edge v->u (delta ``d_u > 0``) is transitive if some closer
right-neighbour w (``0 < d_w < d_u``) has its own edge w->u whose delta
equals ``d_u - d_w`` (within a tolerance): the long overlap is implied
by the two short ones.  The per-partition kernel scans the nodes of
one partition and proposes transitive edge ids; the master merge
removes them.  Edges crossing partitions may be proposed by both
owners — removal is idempotent, exactly as the paper notes.
"""

from __future__ import annotations

import numpy as np

from repro.distributed.dgraph import DistributedAssemblyGraph
from repro.distributed.stages import register_stage, run_stage_on_comm, union_proposals
from repro.graph.sparse import boolean_product_keys, masked_view, ragged_positions

__all__ = [
    "find_transitive_edges",
    "find_transitive_edges_sparse",
    "transitive_kernel",
    "transitive_sparse_kernel",
    "apply_transitive",
    "transitive_reduction",
]


def find_transitive_edges(
    dag: DistributedAssemblyGraph, nodes: np.ndarray, tolerance: int = 2
) -> list[int]:
    """Transitive edge ids discoverable from the given nodes."""
    out: list[int] = []
    g = dag.graph
    for v in np.asarray(nodes).tolist():
        nbrs, eids = dag.alive_incident(v)
        if nbrs.size < 2:
            continue
        deltas = np.array([g.edge_delta(int(e), v) for e in eids])
        right = deltas > 0
        r_nbrs, r_eids, r_deltas = nbrs[right], eids[right], deltas[right]
        if r_nbrs.size < 2:
            continue
        order = np.argsort(r_deltas, kind="stable")
        r_nbrs, r_eids, r_deltas = r_nbrs[order], r_eids[order], r_deltas[order]
        # Candidate far edges checked against every closer neighbour.
        for far in range(1, r_nbrs.size):
            u, du = int(r_nbrs[far]), int(r_deltas[far])
            for near in range(far):
                w, dw = int(r_nbrs[near]), int(r_deltas[near])
                if dw <= 0 or dw >= du:
                    continue
                # Does w have an alive edge to u with delta ~ du - dw?
                w_nbrs, w_eids = dag.alive_incident(w)
                hit = np.flatnonzero(w_nbrs == u)
                if hit.size:
                    e_wu = int(w_eids[hit[0]])
                    if abs(g.edge_delta(e_wu, w) - (du - dw)) <= tolerance:
                        out.append(int(r_eids[far]))
                        break
    return out


def find_transitive_edges_sparse(
    dag: DistributedAssemblyGraph, nodes: np.ndarray, tolerance: int = 2
) -> np.ndarray:
    """Vectorized :func:`find_transitive_edges`: same set, no node loop.

    An edge v->u (delta ``du > 0``) is transitive iff some right
    neighbour w of v (``0 < dw < du``, strict — delta ties are never
    witnesses) has an alive edge to u whose delta from w is within
    ``tolerance`` of ``du - dw``.  The boolean sparse product
    ``A_right @ A`` (diBELLA's reduction step) prunes to (v, u) pairs
    that have *some* 2-path before the exact delta check runs on the
    surviving triples.
    """
    nodes = np.asarray(nodes, dtype=np.int64)
    view = masked_view(dag)
    if nodes.size == 0 or view.src.size == 0:
        return np.empty(0, dtype=np.int64)
    in_part = np.zeros(view.n_nodes, dtype=bool)
    in_part[nodes] = True
    r_src, r_dst, r_delta, r_eid = view.right()
    keep = in_part[r_src]
    r_src, r_dst, r_delta, r_eid = (
        r_src[keep],
        r_dst[keep],
        r_delta[keep],
        r_eid[keep],
    )
    if r_src.size == 0:
        return np.empty(0, dtype=np.int64)
    # Prefilter: candidate far edges are those with at least one 2-path.
    two_hop = boolean_product_keys(r_src, r_dst, view)
    key = r_src * view.n_nodes + r_dst
    pos = np.searchsorted(two_hop, key)
    pos = np.minimum(pos, two_hop.size - 1)
    cand = two_hop[pos] == key
    c_src, c_dst, c_delta, c_eid = (
        r_src[cand],
        r_dst[cand],
        r_delta[cand],
        r_eid[cand],
    )
    if c_src.size == 0:
        return np.empty(0, dtype=np.int64)
    # Expand every candidate far edge against all right rows of its
    # source — the near-witness candidates.  Right rows inherit the
    # view's (src, dst) sort, so a per-source CSR is a bincount away.
    r_counts = np.bincount(r_src, minlength=view.n_nodes).astype(np.int64)
    r_indptr = np.zeros(view.n_nodes + 1, dtype=np.int64)
    np.cumsum(r_counts, out=r_indptr[1:])
    counts = r_counts[c_src]
    mids = ragged_positions(r_indptr[c_src], counts)
    far = np.repeat(np.arange(c_src.size, dtype=np.int64), counts)
    w = r_dst[mids]
    dw = r_delta[mids]
    near_ok = dw < c_delta[far]
    far, w, dw = far[near_ok], w[near_ok], dw[near_ok]
    # Witness check: alive edge w-u whose delta from w matches du - dw.
    d_wu, found = view.pair_deltas(w, c_dst[far])
    hit = found & (np.abs(d_wu - (c_delta[far] - dw)) <= tolerance)
    return np.unique(c_eid[far[hit]])


def transitive_kernel(
    dag: DistributedAssemblyGraph, part: int, tolerance: int = 2
) -> np.ndarray:
    """Pure kernel: transitive edge ids proposed by one partition."""
    found = find_transitive_edges(dag, dag.partition_nodes(part), tolerance)
    return np.asarray(found, dtype=np.int64)


def transitive_sparse_kernel(
    dag: DistributedAssemblyGraph, part: int, tolerance: int = 2
) -> np.ndarray:
    """Sparse-engine kernel: identical proposals, matrix formulation."""
    return find_transitive_edges_sparse(dag, dag.partition_nodes(part), tolerance)


def apply_transitive(
    dag: DistributedAssemblyGraph, proposals, **_params
) -> int:
    """Master merge: union the proposals and kill the edges."""
    return dag.remove_edges(union_proposals(proposals))


TRANSITIVE = register_stage(
    "transitive",
    transitive_kernel,
    apply_transitive,
    sparse_kernel=transitive_sparse_kernel,
)


def transitive_reduction(comm, dag: DistributedAssemblyGraph, tolerance: int = 2) -> int:
    """MPI-style transitive reduction; returns removed-edge count.

    Rank ``r`` owns partition ``r``.  Run with a cluster of
    ``dag.n_parts`` ranks.
    """
    return run_stage_on_comm(comm, TRANSITIVE, dag, tolerance=tolerance)
