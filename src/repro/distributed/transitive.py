"""Distributed transitive edge reduction (paper §V-A, after Myers [4]).

An edge v->u (delta ``d_u > 0``) is transitive if some closer
right-neighbour w (``0 < d_w < d_u``) has its own edge w->u whose delta
equals ``d_u - d_w`` (within a tolerance): the long overlap is implied
by the two short ones.  The per-partition kernel scans the nodes of
one partition and proposes transitive edge ids; the master merge
removes them.  Edges crossing partitions may be proposed by both
owners — removal is idempotent, exactly as the paper notes.
"""

from __future__ import annotations

import numpy as np

from repro.distributed.dgraph import DistributedAssemblyGraph
from repro.distributed.stages import register_stage, run_stage_on_comm, union_proposals

__all__ = [
    "find_transitive_edges",
    "transitive_kernel",
    "apply_transitive",
    "transitive_reduction",
]


def find_transitive_edges(
    dag: DistributedAssemblyGraph, nodes: np.ndarray, tolerance: int = 2
) -> list[int]:
    """Transitive edge ids discoverable from the given nodes."""
    out: list[int] = []
    g = dag.graph
    for v in np.asarray(nodes).tolist():
        nbrs, eids = dag.alive_incident(v)
        if nbrs.size < 2:
            continue
        deltas = np.array([g.edge_delta(int(e), v) for e in eids])
        right = deltas > 0
        r_nbrs, r_eids, r_deltas = nbrs[right], eids[right], deltas[right]
        if r_nbrs.size < 2:
            continue
        order = np.argsort(r_deltas, kind="stable")
        r_nbrs, r_eids, r_deltas = r_nbrs[order], r_eids[order], r_deltas[order]
        # Candidate far edges checked against every closer neighbour.
        for far in range(1, r_nbrs.size):
            u, du = int(r_nbrs[far]), int(r_deltas[far])
            for near in range(far):
                w, dw = int(r_nbrs[near]), int(r_deltas[near])
                if dw <= 0 or dw >= du:
                    continue
                # Does w have an alive edge to u with delta ~ du - dw?
                w_nbrs, w_eids = dag.alive_incident(w)
                hit = np.flatnonzero(w_nbrs == u)
                if hit.size:
                    e_wu = int(w_eids[hit[0]])
                    if abs(g.edge_delta(e_wu, w) - (du - dw)) <= tolerance:
                        out.append(int(r_eids[far]))
                        break
    return out


def transitive_kernel(
    dag: DistributedAssemblyGraph, part: int, tolerance: int = 2
) -> np.ndarray:
    """Pure kernel: transitive edge ids proposed by one partition."""
    found = find_transitive_edges(dag, dag.partition_nodes(part), tolerance)
    return np.asarray(found, dtype=np.int64)


def apply_transitive(
    dag: DistributedAssemblyGraph, proposals, **_params
) -> int:
    """Master merge: union the proposals and kill the edges."""
    return dag.remove_edges(union_proposals(proposals))


TRANSITIVE = register_stage("transitive", transitive_kernel, apply_transitive)


def transitive_reduction(comm, dag: DistributedAssemblyGraph, tolerance: int = 2) -> int:
    """MPI-style transitive reduction; returns removed-edge count.

    Rank ``r`` owns partition ``r``.  Run with a cluster of
    ``dag.n_parts`` ranks.
    """
    return run_stage_on_comm(comm, TRANSITIVE, dag, tolerance=tolerance)
