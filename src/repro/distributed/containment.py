"""Distributed containment removal and false-edge filtering (paper §V-B).

Workers align each of their nodes' contigs against neighbouring
contigs.  A node whose contig is contained in a neighbour's (at
sufficient identity) is redundant and recorded for removal; an edge
whose implied contig overlap is shorter than 50 bp is a false positive
and also recorded.  The master applies both removals.
"""

from __future__ import annotations

import numpy as np

from repro.distributed.dgraph import DistributedAssemblyGraph
from repro.mpi.simcomm import SimComm
from repro.sequence.dna import hamming_identity

__all__ = ["find_containments", "containment_removal"]


def _contained_identity(
    inner: np.ndarray, outer: np.ndarray, start: int
) -> float:
    """Identity of ``inner`` vs the slice of ``outer`` starting at ``start``."""
    seg = outer[start : start + inner.size]
    if seg.size != inner.size:
        return 0.0
    return hamming_identity(inner, seg)


def find_containments(
    dag: DistributedAssemblyGraph,
    nodes: np.ndarray,
    min_overlap: int = 50,
    min_identity: float = 0.9,
) -> tuple[list[int], list[int]]:
    """(contained node ids, false-positive edge ids) seen from ``nodes``."""
    dead_nodes: list[int] = []
    dead_edges: list[int] = []
    g = dag.graph
    contigs = dag.assembly.contigs
    for v in np.asarray(nodes).tolist():
        cv = contigs[v]
        nbrs, eids = dag.alive_incident(v)
        for u, e in zip(nbrs.tolist(), eids.tolist()):
            d = g.edge_delta(e, v)  # offset of u's contig relative to v's
            cu = contigs[u]
            overlap = min(cv.size, d + cu.size) - max(0, d)
            if overlap < min_overlap:
                dead_edges.append(e)
                continue
            # v contained in u: u's interval [d, d+|cu|) covers [0, |cv|).
            if d <= 0 and d + cu.size >= cv.size:
                # Mutual (exactly coextensive) containments keep the
                # lower-id node, otherwise identical contigs would all
                # remove each other.
                proper = d < 0 or d + cu.size > cv.size
                if (proper or v > u) and _contained_identity(cv, cu, -d) >= min_identity:
                    dead_nodes.append(v)
                    break
    return dead_nodes, dead_edges


def containment_removal(
    comm: SimComm,
    dag: DistributedAssemblyGraph,
    min_overlap: int = 50,
    min_identity: float = 0.9,
) -> tuple[int, int]:
    """MPI-style containment removal; returns (nodes, edges) removed."""
    with comm.timed():
        local = find_containments(
            dag, dag.partition_nodes(comm.rank), min_overlap, min_identity
        )
    gathered = comm.gather(local, root=0)
    result = None
    if comm.rank == 0:
        with comm.timed():
            nodes: set[int] = set()
            edges: set[int] = set()
            for n_part, e_part in gathered:
                nodes.update(n_part)
                edges.update(e_part)
            result = (dag.remove_nodes(nodes), dag.remove_edges(edges))
    return comm.bcast(result, root=0)
