"""Distributed containment removal and false-edge filtering (paper §V-B).

The per-partition kernel aligns each of its nodes' contigs against
neighbouring contigs.  A node whose contig is contained in a
neighbour's (at sufficient identity) is redundant and proposed for
removal; an edge whose implied contig overlap is shorter than 50 bp is
a false positive and also proposed.  The master merge applies both
removal sets.
"""

from __future__ import annotations

import numpy as np

from repro.distributed.dgraph import DistributedAssemblyGraph
from repro.distributed.stages import register_stage, run_stage_on_comm, union_proposals
from repro.sequence.dna import hamming_identity

__all__ = [
    "find_containments",
    "containment_kernel",
    "apply_containments",
    "containment_removal",
]


def _contained_identity(
    inner: np.ndarray, outer: np.ndarray, start: int
) -> float:
    """Identity of ``inner`` vs the slice of ``outer`` starting at ``start``."""
    seg = outer[start : start + inner.size]
    if seg.size != inner.size:
        return 0.0
    return hamming_identity(inner, seg)


def find_containments(
    dag: DistributedAssemblyGraph,
    nodes: np.ndarray,
    min_overlap: int = 50,
    min_identity: float = 0.9,
) -> tuple[list[int], list[int]]:
    """(contained node ids, false-positive edge ids) seen from ``nodes``."""
    dead_nodes: list[int] = []
    dead_edges: list[int] = []
    g = dag.graph
    contigs = dag.assembly.contigs
    for v in np.asarray(nodes).tolist():
        cv = contigs[v]
        nbrs, eids = dag.alive_incident(v)
        for u, e in zip(nbrs.tolist(), eids.tolist()):
            d = g.edge_delta(e, v)  # offset of u's contig relative to v's
            cu = contigs[u]
            overlap = min(cv.size, d + cu.size) - max(0, d)
            if overlap < min_overlap:
                dead_edges.append(e)
                continue
            # v contained in u: u's interval [d, d+|cu|) covers [0, |cv|).
            if d <= 0 and d + cu.size >= cv.size:
                # Mutual (exactly coextensive) containments keep the
                # lower-id node, otherwise identical contigs would all
                # remove each other.
                proper = d < 0 or d + cu.size > cv.size
                if (proper or v > u) and _contained_identity(cv, cu, -d) >= min_identity:
                    dead_nodes.append(v)
                    break
    return dead_nodes, dead_edges


def containment_kernel(
    dag: DistributedAssemblyGraph,
    part: int,
    min_overlap: int = 50,
    min_identity: float = 0.9,
) -> tuple[np.ndarray, np.ndarray]:
    """Pure kernel: (node ids, edge ids) proposed by one partition."""
    nodes, edges = find_containments(
        dag, dag.partition_nodes(part), min_overlap, min_identity
    )
    return np.asarray(nodes, dtype=np.int64), np.asarray(edges, dtype=np.int64)


def apply_containments(
    dag: DistributedAssemblyGraph, proposals, **_params
) -> tuple[int, int]:
    """Master merge: union node/edge proposals; returns removal counts."""
    nodes = union_proposals([p[0] for p in proposals])
    edges = union_proposals([p[1] for p in proposals])
    return dag.remove_nodes(nodes), dag.remove_edges(edges)


CONTAINMENT = register_stage("containment", containment_kernel, apply_containments)


def containment_removal(
    comm,
    dag: DistributedAssemblyGraph,
    min_overlap: int = 50,
    min_identity: float = 0.9,
) -> tuple[int, int]:
    """MPI-style containment removal; returns (nodes, edges) removed."""
    return run_stage_on_comm(
        comm, CONTAINMENT, dag, min_overlap=min_overlap, min_identity=min_identity
    )
