"""Distributed containment removal and false-edge filtering (paper §V-B).

The per-partition kernel aligns each of its nodes' contigs against
neighbouring contigs.  A node whose contig is contained in a
neighbour's (at sufficient identity) is redundant and proposed for
removal; an edge whose implied contig overlap is shorter than 50 bp is
a false positive and also proposed.  The master merge applies both
removal sets.
"""

from __future__ import annotations

import numpy as np

from repro.distributed.dgraph import DistributedAssemblyGraph
from repro.distributed.stages import register_stage, run_stage_on_comm, union_proposals
from repro.graph.sparse import ragged_positions
from repro.sequence.dna import hamming_identity

__all__ = [
    "find_containments",
    "find_containments_sparse",
    "containment_kernel",
    "containment_sparse_kernel",
    "apply_containments",
    "containment_removal",
]


def _contained_identity(
    inner: np.ndarray, outer: np.ndarray, start: int
) -> float:
    """Identity of ``inner`` vs the slice of ``outer`` starting at ``start``."""
    seg = outer[start : start + inner.size]
    if seg.size != inner.size:
        return 0.0
    return hamming_identity(inner, seg)


def find_containments(
    dag: DistributedAssemblyGraph,
    nodes: np.ndarray,
    min_overlap: int = 50,
    min_identity: float = 0.9,
) -> tuple[list[int], list[int]]:
    """(contained node ids, false-positive edge ids) seen from ``nodes``."""
    dead_nodes: list[int] = []
    dead_edges: list[int] = []
    g = dag.graph
    contigs = dag.assembly.contigs
    for v in np.asarray(nodes).tolist():
        cv = contigs[v]
        nbrs, eids = dag.alive_incident(v)
        for u, e in zip(nbrs.tolist(), eids.tolist()):
            d = g.edge_delta(e, v)  # offset of u's contig relative to v's
            cu = contigs[u]
            overlap = min(cv.size, d + cu.size) - max(0, d)
            if overlap < min_overlap:
                dead_edges.append(e)
                continue
            # v contained in u: u's interval [d, d+|cu|) covers [0, |cv|).
            if d <= 0 and d + cu.size >= cv.size:
                # Mutual (exactly coextensive) containments keep the
                # lower-id node, otherwise identical contigs would all
                # remove each other.
                proper = d < 0 or d + cu.size > cv.size
                if (proper or v > u) and _contained_identity(cv, cu, -d) >= min_identity:
                    dead_nodes.append(v)
                    break
    return dead_nodes, dead_edges


def _batched_identities(
    contigs: list[np.ndarray],
    v: np.ndarray,
    u: np.ndarray,
    start: np.ndarray,
) -> np.ndarray:
    """Identity of ``contigs[v[i]]`` vs ``contigs[u[i]][start[i]:...]``.

    Geometry is pre-filtered so every slice fits; rows are bucketed by
    inner length and each bucket compared as one stacked
    ``hamming_identity`` — the batched form of
    :func:`_contained_identity`.
    """
    out = np.zeros(v.size, dtype=np.float64)
    if v.size == 0:
        return out
    lengths = np.array([c.size for c in contigs], dtype=np.int64)
    flat = np.concatenate([np.asarray(c) for c in contigs])
    offsets = np.zeros(lengths.size + 1, dtype=np.int64)
    np.cumsum(lengths, out=offsets[1:])
    inner_len = lengths[v]
    for length in np.unique(inner_len):
        rows = np.flatnonzero(inner_len == length)
        if length == 0:
            out[rows] = 1.0  # hamming_identity's empty-sequence convention
            continue
        k = rows.size
        inner = flat[
            ragged_positions(offsets[v[rows]], np.full(k, length))
        ].reshape(k, length)
        outer = flat[
            ragged_positions(offsets[u[rows]] + start[rows], np.full(k, length))
        ].reshape(k, length)
        # Row-wise hamming_identity over the stacked slices.
        out[rows] = np.count_nonzero(inner == outer, axis=1) / length
    return out


def find_containments_sparse(
    dag: DistributedAssemblyGraph,
    nodes: np.ndarray,
    min_overlap: int = 50,
    min_identity: float = 0.9,
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized :func:`find_containments`: same sets, no node loop.

    The loop stops scanning a node at its first containment hit, so a
    short-overlap edge *after* that hit is never proposed by this node;
    the vectorized form replays that with a per-node first-hit cutoff
    over the graph's CSR incident order (hence
    ``alive_incident_many``, which preserves it).
    """
    nodes = np.asarray(nodes, dtype=np.int64)
    empty = np.empty(0, dtype=np.int64)
    if nodes.size == 0:
        return empty, empty
    indptr, nbrs, eids = dag.alive_incident_many(nodes)
    if nbrs.size == 0:
        return empty, empty
    contigs = dag.assembly.contigs
    lengths = dag.assembly.contig_lengths
    owner = np.repeat(
        np.arange(nodes.size, dtype=np.int64), np.diff(indptr)
    )
    v = nodes[owner]
    d = dag.edge_deltas(eids, v)
    len_v, len_u = lengths[v], lengths[nbrs]
    overlap = np.minimum(len_v, d + len_u) - np.maximum(0, d)
    short = overlap < min_overlap
    # Geometric containment of v in u, with the mutual-containment
    # tie-break (coextensive contigs keep the lower id).
    covered = (d <= 0) & (d + len_u >= len_v)
    proper = (d < 0) | (d + len_u > len_v)
    geom = ~short & covered & (proper | (v > nbrs))
    rows = np.flatnonzero(geom)
    ident = np.zeros(nbrs.size, dtype=np.float64)
    ident[rows] = _batched_identities(contigs, v[rows], nbrs[rows], -d[rows])
    hit = geom & (ident >= min_identity)
    # First containment hit per node ends its scan.
    first_hit = np.full(nodes.size, nbrs.size, dtype=np.int64)
    np.minimum.at(first_hit, owner[hit], np.flatnonzero(hit))
    dead_nodes = nodes[first_hit < nbrs.size]
    dead_edge_rows = short & (np.arange(nbrs.size) < first_hit[owner])
    return (
        np.unique(dead_nodes),
        np.unique(eids[dead_edge_rows]),
    )


def containment_kernel(
    dag: DistributedAssemblyGraph,
    part: int,
    min_overlap: int = 50,
    min_identity: float = 0.9,
) -> tuple[np.ndarray, np.ndarray]:
    """Pure kernel: (node ids, edge ids) proposed by one partition."""
    nodes, edges = find_containments(
        dag, dag.partition_nodes(part), min_overlap, min_identity
    )
    return np.asarray(nodes, dtype=np.int64), np.asarray(edges, dtype=np.int64)


def containment_sparse_kernel(
    dag: DistributedAssemblyGraph,
    part: int,
    min_overlap: int = 50,
    min_identity: float = 0.9,
) -> tuple[np.ndarray, np.ndarray]:
    """Sparse-engine kernel: identical proposals, batched identities."""
    return find_containments_sparse(
        dag, dag.partition_nodes(part), min_overlap, min_identity
    )


def apply_containments(
    dag: DistributedAssemblyGraph, proposals, **_params
) -> tuple[int, int]:
    """Master merge: union node/edge proposals; returns removal counts."""
    nodes = union_proposals([p[0] for p in proposals])
    edges = union_proposals([p[1] for p in proposals])
    return dag.remove_nodes(nodes), dag.remove_edges(edges)


CONTAINMENT = register_stage(
    "containment",
    containment_kernel,
    apply_containments,
    sparse_kernel=containment_sparse_kernel,
)


def containment_removal(
    comm,
    dag: DistributedAssemblyGraph,
    min_overlap: int = 50,
    min_identity: float = 0.9,
) -> tuple[int, int]:
    """MPI-style containment removal; returns (nodes, edges) removed."""
    return run_stage_on_comm(
        comm, CONTAINMENT, dag, min_overlap=min_overlap, min_identity=min_identity
    )
