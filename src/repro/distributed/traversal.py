"""Distributed maximal-path extraction and contig construction (§V-D).

Each worker grows paths within its own partition: starting from an
unvisited node, the path extends through out-edges while the chain is
unambiguous (single out-edge that is also the single in-edge of its
head) and stays inside the partition; then symmetrically through
in-edges.  The master joins sub-paths whose endpoints meet across
partition boundaries (right end of p1 -> left end of p2, where that is
p2's only in-edge), then emits one contig per path by overlaying the
node contigs at their delta-accumulated offsets.

Workers consult vectorised :meth:`direction_tables` (one O(E) numpy
precompute) rather than slicing adjacency per node, so traversal time
is dominated by that precompute — cheap and nearly independent of the
partition count, as the paper observes (Fig. 6).
"""

from __future__ import annotations

import numpy as np

from repro.distributed.dgraph import DistributedAssemblyGraph
from repro.mpi.simcomm import SimComm

__all__ = ["extract_subpaths", "join_subpaths", "maximal_paths", "contigs_from_paths"]

Tables = tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]


def extract_subpaths(
    dag: DistributedAssemblyGraph,
    part: int,
    visited: np.ndarray,
    tables: Tables | None = None,
) -> list[list[int]]:
    """Maximal unambiguous paths within one partition.

    ``visited`` is a shared bool array marking nodes already placed in
    a path (workers touch disjoint partitions, so there are no races).
    """
    out_deg, out_next, in_deg, in_next = tables or dag.direction_tables()
    labels = dag.labels
    paths: list[list[int]] = []
    for v in dag.partition_nodes(part).tolist():
        if visited[v]:
            continue
        path = [v]
        visited[v] = True
        # Extend right.
        cur = v
        while out_deg[cur] == 1:
            nxt = int(out_next[cur])
            if visited[nxt] or labels[nxt] != part or in_deg[nxt] != 1 or in_next[nxt] != cur:
                break
            path.append(nxt)
            visited[nxt] = True
            cur = nxt
        # Extend left from the seed.
        cur = v
        while in_deg[cur] == 1:
            prv = int(in_next[cur])
            if visited[prv] or labels[prv] != part or out_deg[prv] != 1 or out_next[prv] != cur:
                break
            path.insert(0, prv)
            visited[prv] = True
            cur = prv
        paths.append(path)
    return paths


def join_subpaths(
    dag: DistributedAssemblyGraph,
    subpaths: list[list[int]],
    tables: Tables | None = None,
) -> list[list[int]]:
    """Master-side joining of sub-paths across partition boundaries.

    p1 joins p2 when p1's right end has a unique out-edge to p2's left
    end and that edge is p2's head's only in-edge (paper §V-D).
    """
    out_deg, out_next, in_deg, in_next = tables or dag.direction_tables()
    head_of = {p[0]: i for i, p in enumerate(subpaths)}
    paths = [list(p) for p in subpaths]

    successor: dict[int, int] = {}
    has_pred: set[int] = set()
    for i, p in enumerate(paths):
        tail = p[-1]
        if out_deg[tail] != 1:
            continue
        head = int(out_next[tail])
        j = head_of.get(head)
        if j is None or j == i:
            continue
        if in_deg[head] != 1 or in_next[head] != tail:
            continue
        successor[i] = j
        has_pred.add(j)

    joined: list[list[int]] = []
    consumed = [False] * len(paths)

    def follow(start: int) -> None:
        chain = list(paths[start])
        consumed[start] = True
        j = successor.get(start)
        while j is not None and not consumed[j]:
            chain.extend(paths[j])
            consumed[j] = True
            j = successor.get(j)
        joined.append(chain)

    for i in range(len(paths)):
        if not consumed[i] and i not in has_pred:
            follow(i)
    # Pure cycles (every member has a predecessor) are emitted as-is.
    for i in range(len(paths)):
        if not consumed[i]:
            follow(i)
    return joined


def maximal_paths(comm: SimComm, dag: DistributedAssemblyGraph) -> list[list[int]] | None:
    """MPI-style traversal: workers extract, master joins.

    Returns the joined path list on every rank.
    """
    visited = np.zeros(dag.graph.n_nodes, dtype=bool)
    with comm.timed():
        tables = dag.direction_tables()
        local = extract_subpaths(dag, comm.rank, visited, tables)
    gathered = comm.gather(local, root=0)
    joined = None
    if comm.rank == 0:
        with comm.timed():
            flat = [p for part in gathered for p in part]
            joined = join_subpaths(dag, flat, tables)
    return comm.bcast(joined, root=0)


def contigs_from_paths(
    dag: DistributedAssemblyGraph, paths: list[list[int]]
) -> list[np.ndarray]:
    """One consensus sequence per path, overlaying contigs at offsets."""
    out: list[np.ndarray] = []
    contigs = dag.assembly.contigs
    g = dag.graph
    for path in paths:
        if len(path) == 1:
            out.append(contigs[path[0]].copy())
            continue
        offsets = [0]
        for a, b in zip(path, path[1:]):
            nbrs, eids = dag.alive_incident(a)
            hit = np.flatnonzero(nbrs == b)
            if hit.size == 0:
                raise ValueError(f"path step {a}->{b} has no alive edge")
            d = g.edge_delta(int(eids[hit[0]]), a)
            offsets.append(offsets[-1] + d)
        base = min(offsets)
        offsets = [o - base for o in offsets]
        width = max(o + contigs[v].size for o, v in zip(offsets, path))
        counts = np.zeros((width, 4), dtype=np.int64)
        for o, v in zip(offsets, path):
            c = contigs[v]
            called = c < 4
            pos = np.arange(c.size)[called] + o
            np.add.at(counts, (pos, c[called].astype(np.int64)), 1)
        seq = counts.argmax(axis=1).astype(np.uint8)
        covered = counts.sum(axis=1) > 0
        # A valid path overlays contiguously; keep only covered columns
        # defensively (uncovered columns would be argmax garbage).
        out.append(seq[covered])
    return out
