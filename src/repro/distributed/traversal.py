"""Distributed maximal-path extraction and contig construction (§V-D).

The per-partition kernel grows paths within its own partition:
starting from an unvisited node, the path extends through out-edges
while the chain is unambiguous (single out-edge that is also the
single in-edge of its head) and stays inside the partition; then
symmetrically through in-edges.  Sub-paths travel as a packed ragged
encoding (flat node array + per-path lengths).  The master merge joins
sub-paths whose endpoints meet across partition boundaries (right end
of p1 -> left end of p2, where that is p2's only in-edge); one contig
per path is then emitted by overlaying the node contigs at their
delta-accumulated offsets.

Kernels consult vectorised :meth:`direction_tables` (one O(E) numpy
precompute) rather than slicing adjacency per node, so traversal time
is dominated by that precompute — cheap and nearly independent of the
partition count, as the paper observes (Fig. 6).
"""

from __future__ import annotations

import numpy as np

from repro.distributed.dgraph import DistributedAssemblyGraph
from repro.distributed.stages import register_stage, run_stage_on_comm
from repro.graph.sparse import masked_view

__all__ = [
    "extract_subpaths",
    "subpath_kernel",
    "pack_paths",
    "unpack_paths",
    "join_subpaths",
    "merge_subpaths",
    "maximal_paths",
    "contigs_from_paths",
]

Tables = tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]


def extract_subpaths(
    dag: DistributedAssemblyGraph,
    part: int,
    visited: np.ndarray,
    tables: Tables | None = None,
) -> list[list[int]]:
    """Maximal unambiguous paths within one partition.

    ``visited`` is a shared bool array marking nodes already placed in
    a path (workers touch disjoint partitions, so there are no races).
    """
    out_deg, out_next, in_deg, in_next = tables or dag.direction_tables()
    labels = dag.labels
    paths: list[list[int]] = []
    for v in dag.partition_nodes(part).tolist():
        if visited[v]:
            continue
        path = [v]
        visited[v] = True
        # Extend right.
        cur = v
        while out_deg[cur] == 1:
            nxt = int(out_next[cur])
            if visited[nxt] or labels[nxt] != part or in_deg[nxt] != 1 or in_next[nxt] != cur:
                break
            path.append(nxt)
            visited[nxt] = True
            cur = nxt
        # Extend left from the seed.
        cur = v
        while in_deg[cur] == 1:
            prv = int(in_next[cur])
            if visited[prv] or labels[prv] != part or out_deg[prv] != 1 or out_next[prv] != cur:
                break
            path.insert(0, prv)
            visited[prv] = True
            cur = prv
        paths.append(path)
    return paths


def pack_paths(paths: list[list[int]]) -> tuple[np.ndarray, np.ndarray]:
    """Ragged encoding of a path list: (flat node ids, path lengths)."""
    lens = np.array([len(p) for p in paths], dtype=np.int64)
    if paths:
        flat = np.concatenate([np.asarray(p, dtype=np.int64) for p in paths])
    else:
        flat = np.empty(0, dtype=np.int64)
    return flat, lens


def unpack_paths(flat: np.ndarray, lens: np.ndarray) -> list[list[int]]:
    """Inverse of :func:`pack_paths`."""
    bounds = np.cumsum(np.asarray(lens, dtype=np.int64))
    flat = np.asarray(flat, dtype=np.int64)
    out: list[list[int]] = []
    lo = 0
    for hi in bounds.tolist():
        out.append(flat[lo:hi].tolist())
        lo = hi
    return out


def subpath_kernel(
    dag: DistributedAssemblyGraph, part: int
) -> tuple[np.ndarray, np.ndarray]:
    """Pure kernel: packed maximal sub-paths of one partition.

    A partition-local path never leaves its partition, so each kernel
    invocation can use a private ``visited`` array — no shared state.
    """
    visited = np.zeros(dag.graph.n_nodes, dtype=bool)
    paths = extract_subpaths(dag, part, visited, dag.direction_tables())
    return pack_paths(paths)


def join_subpaths(
    dag: DistributedAssemblyGraph,
    subpaths: list[list[int]],
    tables: Tables | None = None,
) -> list[list[int]]:
    """Master-side joining of sub-paths across partition boundaries.

    p1 joins p2 when p1's right end has a unique out-edge to p2's left
    end and that edge is p2's head's only in-edge (paper §V-D).
    """
    out_deg, out_next, in_deg, in_next = tables or dag.direction_tables()
    head_of = {p[0]: i for i, p in enumerate(subpaths)}
    paths = [list(p) for p in subpaths]

    successor: dict[int, int] = {}
    has_pred: set[int] = set()
    for i, p in enumerate(paths):
        tail = p[-1]
        if out_deg[tail] != 1:
            continue
        head = int(out_next[tail])
        j = head_of.get(head)
        if j is None or j == i:
            continue
        if in_deg[head] != 1 or in_next[head] != tail:
            continue
        successor[i] = j
        has_pred.add(j)

    joined: list[list[int]] = []
    consumed = [False] * len(paths)

    def follow(start: int) -> None:
        chain = list(paths[start])
        consumed[start] = True
        j = successor.get(start)
        while j is not None and not consumed[j]:
            chain.extend(paths[j])
            consumed[j] = True
            j = successor.get(j)
        joined.append(chain)

    for i in range(len(paths)):
        if not consumed[i] and i not in has_pred:
            follow(i)
    # Pure cycles (every member has a predecessor) are emitted as-is.
    for i in range(len(paths)):
        if not consumed[i]:
            follow(i)
    return joined


def merge_subpaths(
    dag: DistributedAssemblyGraph, proposals, **_params
) -> list[list[int]]:
    """Master merge: unpack per-partition sub-paths (in partition
    order, so the result is backend-independent) and join them."""
    flat_paths = [p for prop in proposals for p in unpack_paths(*prop)]
    return join_subpaths(dag, flat_paths)


TRAVERSAL = register_stage("traversal", subpath_kernel, merge_subpaths)


def maximal_paths(comm, dag: DistributedAssemblyGraph) -> list[list[int]] | None:
    """MPI-style traversal: workers extract, master joins.

    Returns the joined path list on every rank.
    """
    return run_stage_on_comm(comm, TRAVERSAL, dag)


def contigs_from_paths(
    dag: DistributedAssemblyGraph, paths: list[list[int]]
) -> list[np.ndarray]:
    """One consensus sequence per path, overlaying contigs at offsets.

    All step deltas resolve through one batched sparse pair lookup
    instead of per-node ``alive_incident`` slicing.
    """
    out: list[np.ndarray] = []
    contigs = dag.assembly.contigs
    multi = [p for p in paths if len(p) > 1]
    if multi:
        heads = np.concatenate([np.asarray(p[:-1], dtype=np.int64) for p in multi])
        tails = np.concatenate([np.asarray(p[1:], dtype=np.int64) for p in multi])
        step_deltas, found = masked_view(dag).pair_deltas(heads, tails)
        if not found.all():
            i = int(np.flatnonzero(~found)[0])
            raise ValueError(
                f"path step {int(heads[i])}->{int(tails[i])} has no alive edge"
            )
    cursor = 0
    for path in paths:
        if len(path) == 1:
            out.append(contigs[path[0]].copy())
            continue
        k = len(path) - 1
        d = step_deltas[cursor : cursor + k]
        cursor += k
        offs = np.zeros(k + 1, dtype=np.int64)
        np.cumsum(d, out=offs[1:])
        offsets = (offs - offs.min()).tolist()
        width = max(o + contigs[v].size for o, v in zip(offsets, path))
        counts = np.zeros((width, 4), dtype=np.int64)
        for o, v in zip(offsets, path):
            c = contigs[v]
            called = c < 4
            pos = np.arange(c.size)[called] + o
            np.add.at(counts, (pos, c[called].astype(np.int64)), 1)
        seq = counts.argmax(axis=1).astype(np.uint8)
        covered = counts.sum(axis=1) > 0
        # A valid path overlays contiguously; keep only covered columns
        # defensively (uncovered columns would be argmax garbage).
        out.append(seq[covered])
    return out
