"""Distributed graph algorithms on the partitioned hybrid graph.

Implements paper §V: each graph partition is owned by one worker,
workers scan only their own nodes and report removal candidates (or
sub-paths) to the master, which applies them — transitive edge
reduction, containment removal, dead-end/bubble error removal, and
maximal-path traversal with master-side sub-path joining.

Every stage is split into a *pure per-partition kernel* and a *master
merge* (:mod:`repro.distributed.stages`), so the same algorithm runs
unchanged on any execution backend (:mod:`repro.parallel.backend`):
in-process serial, the simulated MPI cluster with virtual clocks
(whose elapsed time is what Fig. 6 plots), or real OS processes.  See
docs/architecture.md for the layering contract.
"""

from repro.distributed.dgraph import (
    DistributedAssemblyGraph,
    HybridAssembly,
    enrich_hybrid,
)
from repro.distributed.containment import containment_removal
from repro.distributed.partition_parallel import parallel_partition_graph_set
from repro.distributed.stages import (
    StageSpec,
    all_stages,
    get_stage,
    register_stage,
    run_stage_on_comm,
)
from repro.distributed.transitive import transitive_reduction
from repro.distributed.traversal import contigs_from_paths, maximal_paths
from repro.distributed.trimming import pop_bubbles, trim_dead_ends
from repro.distributed.variants import Variant, detect_variants, find_bubble_variants

__all__ = [
    "DistributedAssemblyGraph",
    "HybridAssembly",
    "enrich_hybrid",
    "StageSpec",
    "register_stage",
    "get_stage",
    "all_stages",
    "run_stage_on_comm",
    "transitive_reduction",
    "containment_removal",
    "trim_dead_ends",
    "pop_bubbles",
    "maximal_paths",
    "contigs_from_paths",
    "parallel_partition_graph_set",
    "Variant",
    "detect_variants",
    "find_bubble_variants",
]
