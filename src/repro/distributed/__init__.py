"""Distributed graph algorithms on the partitioned hybrid graph.

Implements paper §V: each graph partition is owned by one worker rank;
workers scan only their own nodes and report removal candidates (or
sub-paths) to the master, which applies them — transitive edge
reduction, containment removal, dead-end/bubble error removal, and
maximal-path traversal with master-side sub-path joining.

All algorithms run on the simulated MPI runtime (:mod:`repro.mpi`);
their virtual elapsed time is what Fig. 6 plots.
"""

from repro.distributed.dgraph import (
    DistributedAssemblyGraph,
    HybridAssembly,
    enrich_hybrid,
)
from repro.distributed.containment import containment_removal
from repro.distributed.partition_parallel import parallel_partition_graph_set
from repro.distributed.transitive import transitive_reduction
from repro.distributed.traversal import contigs_from_paths, maximal_paths
from repro.distributed.trimming import pop_bubbles, trim_dead_ends
from repro.distributed.variants import Variant, detect_variants, find_bubble_variants

__all__ = [
    "DistributedAssemblyGraph",
    "HybridAssembly",
    "enrich_hybrid",
    "transitive_reduction",
    "containment_removal",
    "trim_dead_ends",
    "pop_bubbles",
    "maximal_paths",
    "contigs_from_paths",
    "parallel_partition_graph_set",
    "Variant",
    "detect_variants",
    "find_bubble_variants",
]
