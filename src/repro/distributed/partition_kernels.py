"""Pure per-task kernels of parallel recursive bisection (Fig. 4).

Recursive bisection has natural parallelism (paper §IV-C): step ``i``
holds ``2^i`` independent bisection tasks, and the final global k-way
refinement holds one independent task per graph level.  Each task is a
pure, deterministic function of its inputs — the RNG seed depends only
on ``(seed, step, group)``, never on the executing rank — so the
driver (:mod:`repro.distributed.partition_parallel`) can assign tasks
to any rank and the produced partition is identical for every rank
count; only the timing changes.

Like every kernel module under ``repro.distributed``, this file must
not import :mod:`repro.mpi` (lint rule ARCH001): the communicator
lives exclusively in the driver.
"""

from __future__ import annotations

import numpy as np

from repro.graph.overlap_graph import OverlapGraph
from repro.partition.kway import kway_refine
from repro.partition.recursive import PartitionConfig, _bisect_subgraph, bisect_graph_set

__all__ = ["bisect_group_kernel", "kway_level_kernel"]


def bisect_group_kernel(
    graphs: list[OverlapGraph],
    mappings: list[np.ndarray],
    group: np.ndarray,
    step: int,
    gi: int,
    config: PartitionConfig,
) -> np.ndarray:
    """Half-assignment (0/1 per group member) of one frontier group.

    Step 0 bisects the whole multilevel set; later steps bisect the
    induced subgraph of the group on the finest graph.
    """
    rng = np.random.default_rng((config.seed, step, gi))
    if group.size <= 1:
        return np.zeros(group.size, dtype=np.int64)
    if step == 0:
        return bisect_graph_set(graphs, mappings, config, rng)
    finest = graphs[0]
    sub, remap = finest.induced_subgraph(group)
    return _bisect_subgraph(sub, config, rng)[remap[group]]


def kway_level_kernel(
    graph: OverlapGraph,
    labels: np.ndarray,
    k: int,
    config: PartitionConfig,
) -> np.ndarray:
    """Refined k-way labels of one graph level."""
    refined, _ = kway_refine(
        graph,
        labels,
        k=k,
        balance=config.kway_balance,
        stall_window=config.stall_window,
        max_passes=config.kway_max_passes,
    )
    return refined
