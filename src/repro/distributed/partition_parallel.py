"""Parallel recursive bisection on the simulated cluster (Fig. 4).

This driver executes the partitioning on a
:class:`~repro.mpi.SimCluster`: the pure per-task kernels of
:mod:`repro.distributed.partition_kernels` are assigned round-robin to
ranks, per-task compute is measured on the owning rank's virtual
clock, and label updates travel through allgathers — so the run's
virtual elapsed time is what a ``p``-rank MPI job would have measured.

Task RNG seeds depend only on (seed, step, group), so the produced
partition is identical for every rank count; only the timing changes.
"""

from __future__ import annotations

import numpy as np

from repro.distributed.partition_kernels import bisect_group_kernel, kway_level_kernel
from repro.graph.coarsen import MultilevelGraphSet
from repro.graph.overlap_graph import OverlapGraph
from repro.mpi.cluster import RunStats, SimCluster
from repro.mpi.simcomm import SimComm
from repro.mpi.timing import CommCostModel
from repro.partition.multilevel import _project_labels_up
from repro.partition.recursive import PartitionConfig

__all__ = ["parallel_partition_graph_set"]


def _rank_fn(
    comm: SimComm,
    graphs: list[OverlapGraph],
    mappings: list[np.ndarray],
    k: int,
    config: PartitionConfig,
) -> np.ndarray:
    finest = graphs[0]
    labels = np.zeros(finest.n_nodes, dtype=np.int64)
    n_steps = int(np.log2(k))
    frontier: list[np.ndarray] = [np.arange(finest.n_nodes, dtype=np.int64)]

    for step in range(n_steps):
        local_results: list[tuple[int, np.ndarray]] = []
        for gi, group in enumerate(frontier):
            if gi % comm.size != comm.rank:
                continue
            with comm.timed():
                half = bisect_group_kernel(graphs, mappings, group, step, gi, config)
            local_results.append((gi, half))
        # Everyone learns every group's bisection (the step barrier).
        all_results = comm.allgather(local_results)
        with comm.timed():
            halves: dict[int, np.ndarray] = {}
            for part in all_results:
                for gi, half in part:
                    halves[gi] = half
            next_frontier: list[np.ndarray] = []
            for gi, group in enumerate(frontier):
                half = halves[gi]
                left = group[half == 0]
                right = group[half == 1]
                labels[right] = labels[right] * 2 + 1
                labels[left] = labels[left] * 2
                next_frontier.extend([left, right])
            frontier = next_frontier

    if config.run_kway and k > 1:
        per_level = _project_labels_up(graphs, mappings, labels, k)
        local_refined: list[tuple[int, np.ndarray]] = []
        for level in range(len(graphs)):
            if level % comm.size != comm.rank:
                continue
            with comm.timed():
                refined = kway_level_kernel(graphs[level], per_level[level], k, config)
            local_refined.append((level, refined))
        all_refined = comm.allgather(local_refined)
        with comm.timed():
            for part in all_refined:
                for level, refined in part:
                    if level == 0:
                        labels = refined
    comm.barrier()
    return labels


def parallel_partition_graph_set(
    mls_like: MultilevelGraphSet,
    k: int,
    n_ranks: int,
    config: PartitionConfig | None = None,
    cost_model: CommCostModel | None = None,
) -> tuple[np.ndarray, RunStats]:
    """Partition a graph set on ``n_ranks`` simulated processors.

    Returns (labels on the finest graph, run stats whose ``elapsed`` is
    the virtual parallel runtime).
    """
    config = config or PartitionConfig()
    if k < 1 or (k & (k - 1)) != 0:
        raise ValueError("k must be a power of two")
    cluster = SimCluster(n_ranks, cost_model=cost_model, deadlock_timeout=300.0)
    results, stats = cluster.run(
        _rank_fn, mls_like.graphs, mls_like.mappings, k, config
    )
    labels = results[0]
    for other in results[1:]:
        if not np.array_equal(other, labels):
            raise RuntimeError("ranks disagreed on the partition labels")
    return labels, stats
