"""Distributed error removal: dead-end trimming and bubble popping.

Paper §V-C, after Velvet's tour bus ideas [16]:

- a *dead end* is a short chain hanging off a junction: a degree-1 tip
  followed by at most ``max_tip_nodes`` degree-2 nodes ending at a node
  of degree >= 3 — sequencing errors create such spurs;
- a *bubble* is a pair of parallel single-node paths ``v - a - w`` /
  ``v - b - w``; the lighter branch is popped.

Per-partition kernels detect within their partitions; the master merge
removes.
"""

from __future__ import annotations

import numpy as np

from repro.distributed.dgraph import DistributedAssemblyGraph
from repro.distributed.stages import register_stage, run_stage_on_comm, union_proposals
from repro.graph.sparse import masked_view

__all__ = [
    "find_dead_ends",
    "find_dead_ends_sparse",
    "dead_end_kernel",
    "dead_end_sparse_kernel",
    "apply_dead_ends",
    "trim_dead_ends",
    "find_bubbles",
    "find_bubbles_sparse",
    "bubble_kernel",
    "bubble_sparse_kernel",
    "apply_bubbles",
    "pop_bubbles",
]


def find_dead_ends(
    dag: DistributedAssemblyGraph, nodes: np.ndarray, max_tip_bases: int = 150
) -> list[int]:
    """Nodes of short dead-end chains starting at tips in ``nodes``.

    A chain is trimmed only if it hangs off a junction (degree >= 3)
    and its total contig bases do not exceed ``max_tip_bases`` —
    Velvet's "tips shorter than 2k" rule transplanted to the overlap
    model, so a genuine long backbone end is never mistaken for an
    error spur.
    """
    out: list[int] = []
    contig_len = dag.assembly.contig_lengths
    for v in np.asarray(nodes).tolist():
        if dag.alive_degree(v) != 1:
            continue
        chain = [v]
        bases = int(contig_len[v])
        prev = v
        cur = int(dag.alive_incident(v)[0][0])
        ok = False
        while bases <= max_tip_bases:
            deg = dag.alive_degree(cur)
            if deg >= 3:
                ok = True  # chain hangs off a junction
                break
            if deg == 1:
                # isolated chain (both ends tips): leave it alone
                break
            nbrs, _ = dag.alive_incident(cur)
            nxt = int(nbrs[0]) if int(nbrs[0]) != prev else int(nbrs[1])
            chain.append(cur)
            bases += int(contig_len[cur])
            prev, cur = cur, nxt
        if ok:
            out.extend(chain)
    return out


def find_dead_ends_sparse(
    dag: DistributedAssemblyGraph, nodes: np.ndarray, max_tip_bases: int = 150
) -> np.ndarray:
    """Vectorized :func:`find_dead_ends`: same set, no per-tip loop.

    All degree-1 tips of the partition walk their chains *in lockstep*
    on the frozen alive view: each peeling round advances every still-
    active walk one hop using the view's degree vector (an ``indptr``
    diff) and CSR neighbour slots.  Rounds run until every walk has
    resolved — at most O(longest chain) iterations of O(active tips)
    vector work, never O(nodes) Python steps.
    """
    nodes = np.asarray(nodes, dtype=np.int64)
    empty = np.empty(0, dtype=np.int64)
    if nodes.size == 0:
        return empty
    view = masked_view(dag)
    deg = view.degrees
    contig_len = dag.assembly.contig_lengths
    tips = nodes[deg[nodes] == 1]
    if tips.size == 0:
        return empty
    n_tips = tips.size
    # Walk state: bases counts the chain collected so far (tip
    # included); cur is the node under inspection this round.
    prev = tips.copy()
    cur = view.dst[view.indptr[tips]]
    bases = contig_len[tips].astype(np.int64)
    ok = np.zeros(n_tips, dtype=bool)
    active = np.arange(n_tips, dtype=np.int64)
    chain_tip: list[np.ndarray] = []
    chain_node: list[np.ndarray] = []
    while active.size:
        live = bases <= max_tip_bases
        d = deg[cur]
        junction = live & (d >= 3)
        ok[active[junction]] = True
        # Walks continue only through interior degree-2 nodes within
        # the base budget; degree-1 means an isolated chain (left
        # alone, like the loop's tip-to-tip break).
        cont = live & (d == 2)
        if not cont.any():
            break
        active, prev, cur, bases = (
            active[cont],
            prev[cont],
            cur[cont],
            bases[cont],
        )
        chain_tip.append(active)
        chain_node.append(cur)
        bases = bases + contig_len[cur]
        lo = view.indptr[cur]
        nbr0 = view.dst[lo]
        nbr1 = view.dst[lo + 1]
        nxt = np.where(nbr0 != prev, nbr0, nbr1)
        prev, cur = cur, nxt
    out = [tips[ok]]
    for t, c in zip(chain_tip, chain_node):
        out.append(c[ok[t]])
    return np.unique(np.concatenate(out))


def dead_end_kernel(
    dag: DistributedAssemblyGraph, part: int, max_tip_bases: int = 150
) -> np.ndarray:
    """Pure kernel: dead-end chain node ids proposed by one partition."""
    found = find_dead_ends(dag, dag.partition_nodes(part), max_tip_bases)
    return np.asarray(found, dtype=np.int64)


def dead_end_sparse_kernel(
    dag: DistributedAssemblyGraph, part: int, max_tip_bases: int = 150
) -> np.ndarray:
    """Sparse-engine kernel: identical proposals, lockstep peeling."""
    return find_dead_ends_sparse(dag, dag.partition_nodes(part), max_tip_bases)


def apply_dead_ends(dag: DistributedAssemblyGraph, proposals, **_params) -> int:
    """Master merge: union the proposals and kill the nodes."""
    return dag.remove_nodes(union_proposals(proposals))


DEAD_ENDS = register_stage(
    "dead_ends",
    dead_end_kernel,
    apply_dead_ends,
    sparse_kernel=dead_end_sparse_kernel,
)


def trim_dead_ends(comm, dag: DistributedAssemblyGraph, max_tip_bases: int = 150) -> int:
    """MPI-style dead-end trimming; returns removed-node count."""
    return run_stage_on_comm(comm, DEAD_ENDS, dag, max_tip_bases=max_tip_bases)


def find_bubbles(dag: DistributedAssemblyGraph, nodes: np.ndarray) -> list[int]:
    """Lighter branch node of each simple bubble anchored in ``nodes``.

    A simple bubble is ``v - a - w`` / ``v - b - w`` with ``a`` and
    ``b`` of degree exactly 2, where both branches extend to the *same
    side* of ``v`` (same delta sign) — two alternative spellings of the
    same genomic interval.  Without the direction check every 4-cycle
    would be popped.  The branch with the shorter contig is recorded.
    """
    out: list[int] = []
    contig_len = dag.assembly.contig_lengths
    g = dag.graph
    for v in np.asarray(nodes).tolist():
        nbrs, eids = dag.alive_incident(v)
        two_deg = [
            (int(u), int(np.sign(g.edge_delta(int(e), v))))
            for u, e in zip(nbrs.tolist(), eids.tolist())
            if dag.alive_degree(int(u)) == 2
        ]
        if len(two_deg) < 2:
            continue
        # group the degree-2 neighbours by (far endpoint, side of v)
        far: dict[tuple[int, int], list[int]] = {}
        for u, side in two_deg:
            u_nbrs, _ = dag.alive_incident(u)
            other = [int(x) for x in u_nbrs.tolist() if int(x) != v]
            if len(other) != 1:
                continue
            far.setdefault((other[0], side), []).append(u)
        for (w, _side), branches in far.items():
            if w == v or len(branches) < 2:
                continue
            branches = sorted(branches, key=lambda u: (int(contig_len[u]), u))
            out.extend(branches[:-1])  # keep the longest branch
    return out


def find_bubbles_sparse(
    dag: DistributedAssemblyGraph, nodes: np.ndarray
) -> np.ndarray:
    """Vectorized :func:`find_bubbles`: same set, grouped two-path join.

    Every (anchor v, degree-2 branch u) row resolves u's far endpoint
    ``w`` from the view's two CSR slots, then a single lexsort groups
    rows by the (anchor, side-of-v, far-endpoint) key; in each group of
    two or more parallel branches, all but the (contig length, id)-max
    branch are proposed — group membership is order-free, so the
    view's (src, dst) order needs no replay of the loop's incident
    order.
    """
    nodes = np.asarray(nodes, dtype=np.int64)
    empty = np.empty(0, dtype=np.int64)
    if nodes.size == 0:
        return empty
    view = masked_view(dag)
    if view.src.size == 0:
        return empty
    in_part = np.zeros(view.n_nodes, dtype=bool)
    in_part[nodes] = True
    deg = view.degrees
    rows = np.flatnonzero(in_part[view.src] & (deg[view.dst] == 2))
    if rows.size == 0:
        return empty
    v = view.src[rows]
    u = view.dst[rows]
    side = np.sign(view.delta[rows])
    # u's far endpoint: the one of its two alive slots that is not v.
    lo = view.indptr[u]
    nbr0 = view.dst[lo]
    nbr1 = view.dst[lo + 1]
    w = np.where(nbr0 != v, nbr0, nbr1)
    keep = w != v
    v, u, side, w = v[keep], u[keep], side[keep], w[keep]
    if v.size == 0:
        return empty
    contig_len = dag.assembly.contig_lengths
    lu = contig_len[u]
    # Group parallel branches by (anchor, side, far endpoint); within a
    # group the (contig length, id)-max branch survives, i.e. the last
    # element under this sort.
    order = np.lexsort((u, lu, w, side, v))
    v, u, side, w = v[order], u[order], side[order], w[order]
    new_group = np.ones(v.size, dtype=bool)
    new_group[1:] = (v[1:] != v[:-1]) | (side[1:] != side[:-1]) | (w[1:] != w[:-1])
    group = np.cumsum(new_group) - 1
    sizes = np.bincount(group)
    last_in_group = np.ones(v.size, dtype=bool)
    last_in_group[:-1] = new_group[1:]
    pop = (sizes[group] >= 2) & ~last_in_group
    return np.unique(u[pop])


def bubble_kernel(dag: DistributedAssemblyGraph, part: int) -> np.ndarray:
    """Pure kernel: lighter-branch node ids proposed by one partition."""
    found = find_bubbles(dag, dag.partition_nodes(part))
    return np.asarray(found, dtype=np.int64)


def bubble_sparse_kernel(dag: DistributedAssemblyGraph, part: int) -> np.ndarray:
    """Sparse-engine kernel: identical proposals, grouped join."""
    return find_bubbles_sparse(dag, dag.partition_nodes(part))


def apply_bubbles(dag: DistributedAssemblyGraph, proposals, **_params) -> int:
    """Master merge: union the proposals and pop the branches."""
    return dag.remove_nodes(union_proposals(proposals))


BUBBLES = register_stage(
    "bubbles",
    bubble_kernel,
    apply_bubbles,
    sparse_kernel=bubble_sparse_kernel,
)


def pop_bubbles(comm, dag: DistributedAssemblyGraph) -> int:
    """MPI-style bubble popping; returns removed-node count."""
    return run_stage_on_comm(comm, BUBBLES, dag)
