"""Distributed error removal: dead-end trimming and bubble popping.

Paper §V-C, after Velvet's tour bus ideas [16]:

- a *dead end* is a short chain hanging off a junction: a degree-1 tip
  followed by at most ``max_tip_nodes`` degree-2 nodes ending at a node
  of degree >= 3 — sequencing errors create such spurs;
- a *bubble* is a pair of parallel single-node paths ``v - a - w`` /
  ``v - b - w``; the lighter branch is popped.

Per-partition kernels detect within their partitions; the master merge
removes.
"""

from __future__ import annotations

import numpy as np

from repro.distributed.dgraph import DistributedAssemblyGraph
from repro.distributed.stages import register_stage, run_stage_on_comm, union_proposals

__all__ = [
    "find_dead_ends",
    "dead_end_kernel",
    "apply_dead_ends",
    "trim_dead_ends",
    "find_bubbles",
    "bubble_kernel",
    "apply_bubbles",
    "pop_bubbles",
]


def find_dead_ends(
    dag: DistributedAssemblyGraph, nodes: np.ndarray, max_tip_bases: int = 150
) -> list[int]:
    """Nodes of short dead-end chains starting at tips in ``nodes``.

    A chain is trimmed only if it hangs off a junction (degree >= 3)
    and its total contig bases do not exceed ``max_tip_bases`` —
    Velvet's "tips shorter than 2k" rule transplanted to the overlap
    model, so a genuine long backbone end is never mistaken for an
    error spur.
    """
    out: list[int] = []
    contig_len = dag.assembly.contig_lengths
    for v in np.asarray(nodes).tolist():
        if dag.alive_degree(v) != 1:
            continue
        chain = [v]
        bases = int(contig_len[v])
        prev = v
        cur = int(dag.alive_incident(v)[0][0])
        ok = False
        while bases <= max_tip_bases:
            deg = dag.alive_degree(cur)
            if deg >= 3:
                ok = True  # chain hangs off a junction
                break
            if deg == 1:
                # isolated chain (both ends tips): leave it alone
                break
            nbrs, _ = dag.alive_incident(cur)
            nxt = int(nbrs[0]) if int(nbrs[0]) != prev else int(nbrs[1])
            chain.append(cur)
            bases += int(contig_len[cur])
            prev, cur = cur, nxt
        if ok:
            out.extend(chain)
    return out


def dead_end_kernel(
    dag: DistributedAssemblyGraph, part: int, max_tip_bases: int = 150
) -> np.ndarray:
    """Pure kernel: dead-end chain node ids proposed by one partition."""
    found = find_dead_ends(dag, dag.partition_nodes(part), max_tip_bases)
    return np.asarray(found, dtype=np.int64)


def apply_dead_ends(dag: DistributedAssemblyGraph, proposals, **_params) -> int:
    """Master merge: union the proposals and kill the nodes."""
    return dag.remove_nodes(union_proposals(proposals))


DEAD_ENDS = register_stage("dead_ends", dead_end_kernel, apply_dead_ends)


def trim_dead_ends(comm, dag: DistributedAssemblyGraph, max_tip_bases: int = 150) -> int:
    """MPI-style dead-end trimming; returns removed-node count."""
    return run_stage_on_comm(comm, DEAD_ENDS, dag, max_tip_bases=max_tip_bases)


def find_bubbles(dag: DistributedAssemblyGraph, nodes: np.ndarray) -> list[int]:
    """Lighter branch node of each simple bubble anchored in ``nodes``.

    A simple bubble is ``v - a - w`` / ``v - b - w`` with ``a`` and
    ``b`` of degree exactly 2, where both branches extend to the *same
    side* of ``v`` (same delta sign) — two alternative spellings of the
    same genomic interval.  Without the direction check every 4-cycle
    would be popped.  The branch with the shorter contig is recorded.
    """
    out: list[int] = []
    contig_len = dag.assembly.contig_lengths
    g = dag.graph
    for v in np.asarray(nodes).tolist():
        nbrs, eids = dag.alive_incident(v)
        two_deg = [
            (int(u), int(np.sign(g.edge_delta(int(e), v))))
            for u, e in zip(nbrs.tolist(), eids.tolist())
            if dag.alive_degree(int(u)) == 2
        ]
        if len(two_deg) < 2:
            continue
        # group the degree-2 neighbours by (far endpoint, side of v)
        far: dict[tuple[int, int], list[int]] = {}
        for u, side in two_deg:
            u_nbrs, _ = dag.alive_incident(u)
            other = [int(x) for x in u_nbrs.tolist() if int(x) != v]
            if len(other) != 1:
                continue
            far.setdefault((other[0], side), []).append(u)
        for (w, _side), branches in far.items():
            if w == v or len(branches) < 2:
                continue
            branches = sorted(branches, key=lambda u: (int(contig_len[u]), u))
            out.extend(branches[:-1])  # keep the longest branch
    return out


def bubble_kernel(dag: DistributedAssemblyGraph, part: int) -> np.ndarray:
    """Pure kernel: lighter-branch node ids proposed by one partition."""
    found = find_bubbles(dag, dag.partition_nodes(part))
    return np.asarray(found, dtype=np.int64)


def apply_bubbles(dag: DistributedAssemblyGraph, proposals, **_params) -> int:
    """Master merge: union the proposals and pop the branches."""
    return dag.remove_nodes(union_proposals(proposals))


BUBBLES = register_stage("bubbles", bubble_kernel, apply_bubbles)


def pop_bubbles(comm, dag: DistributedAssemblyGraph) -> int:
    """MPI-style bubble popping; returns removed-node count."""
    return run_stage_on_comm(comm, BUBBLES, dag)
