"""Stage specifications: pure per-partition kernels plus master merges.

Every distributed graph-cleaning stage of paper §V decomposes into the
same two halves:

- a **kernel** — ``kernel(dag, part, **params)`` — reads one
  partition's view of the :class:`~repro.distributed.dgraph.\
DistributedAssemblyGraph` and returns *proposals* as plain numpy
  arrays (edge ids to drop, node ids to trim, packed sub-paths).
  Kernels never mutate the graph and never communicate, so they can be
  executed anywhere: in-process, on a simulated MPI rank, or inside a
  forked worker process.
- a **merge** — ``merge(dag, proposals, **params)`` — runs on the
  master, conflict-resolves the per-partition proposals (removals are
  idempotent, so a union suffices; sub-paths are joined across
  partition boundaries), mutates the alive-masks, and returns the
  stage result.

The registry maps stage names to :class:`StageSpec` pairs; execution
backends (:mod:`repro.parallel.backend`) look stages up by name so a
forked worker can resolve the kernel without shipping code.

Layering note: this module (and every kernel-defining module under
``repro.distributed``) must not import :mod:`repro.mpi` — enforced
statically by lint rule ARCH001.  The simulated-cluster adapter lives
on the mpi side (:mod:`repro.mpi.stage_backend`) and imports us.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

__all__ = [
    "ENGINES",
    "StageSpec",
    "register_stage",
    "get_stage",
    "all_stages",
    "run_stage_on_comm",
    "union_proposals",
]

#: kernel implementations a stage may offer; every backend accepts any
#: of these names and resolves the kernel via :meth:`StageSpec.kernel_for`.
ENGINES = ("loop", "sparse")


@dataclass(frozen=True)
class StageSpec:
    """One distributed stage as a (kernel, merge) pair.

    ``kernel(dag, part, **params)`` must be a pure, deterministic,
    module-level function returning picklable numpy proposals;
    ``merge(dag, proposals, **params)`` receives the proposal list
    indexed by partition id and applies it on the master's graph.
    ``sparse_kernel``, when present, is a drop-in vectorized kernel
    with the identical signature and proposal semantics, selected via
    the ``engine`` knob (:meth:`kernel_for`); the merge is shared.
    """

    name: str
    kernel: Callable[..., Any]
    merge: Callable[..., Any]
    sparse_kernel: Callable[..., Any] | None = None

    def kernel_for(self, engine: str) -> Callable[..., Any]:
        """The kernel implementing ``engine`` ('loop' or 'sparse').

        ``engine`` is a preference, not a demand: stages without a
        vectorized implementation (e.g. traversal) fall back to the
        loop reference, so an end-to-end sparse run never fails on a
        loop-only stage.
        """
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}; known: {ENGINES}")
        if engine == "sparse" and self.sparse_kernel is not None:
            return self.sparse_kernel
        return self.kernel

    def with_engine(self, engine: str) -> "StageSpec":
        """A spec whose primary kernel is the engine-resolved one.

        Lets engine-unaware drivers (``run_stage_on_comm``, the sim
        cluster body) run the chosen implementation without threading
        the knob through every call site.
        """
        kernel = self.kernel_for(engine)
        if kernel is self.kernel:
            return self
        return StageSpec(
            name=self.name,
            kernel=kernel,
            merge=self.merge,
            sparse_kernel=self.sparse_kernel,
        )


_STAGES: dict[str, StageSpec] = {}


def register_stage(name: str, kernel, merge, sparse_kernel=None) -> StageSpec:
    """Register a stage; returns the spec for module-level reuse."""
    if name in _STAGES:
        raise ValueError(f"duplicate stage name {name!r}")
    spec = StageSpec(
        name=name, kernel=kernel, merge=merge, sparse_kernel=sparse_kernel
    )
    _STAGES[name] = spec
    return spec


def _load_stage_modules() -> None:
    """Import every kernel-defining module (registration side effect)."""
    from repro.distributed import (  # noqa: F401 (imports register stages)
        containment,
        transitive,
        traversal,
        trimming,
    )


def get_stage(name: str) -> StageSpec:
    """Look a stage up by name, importing the stage modules on demand."""
    _load_stage_modules()
    try:
        return _STAGES[name]
    except KeyError:
        raise KeyError(
            f"unknown stage {name!r}; known: {sorted(_STAGES)}"
        ) from None


def all_stages() -> list[StageSpec]:
    """Every registered stage, sorted by name."""
    _load_stage_modules()
    return [_STAGES[name] for name in sorted(_STAGES)]


def union_proposals(proposals) -> np.ndarray:
    """Sorted unique int64 ids across per-partition proposal arrays.

    Boundary objects may be proposed by several owners (the paper notes
    removals are idempotent); the merge deduplicates so removal counts
    stay exact.
    """
    arrays = [np.asarray(p, dtype=np.int64).ravel() for p in proposals]
    if not arrays:
        return np.empty(0, dtype=np.int64)
    return np.unique(np.concatenate(arrays))


def run_stage_on_comm(comm, stage: StageSpec, dag, engine: str = "loop", **params):
    """SPMD driver: run one stage on an MPI-style communicator.

    Rank ``r`` executes the ``engine``-selected kernel for partition
    ``r`` under the virtual clock, proposals are gathered to the root,
    the root merges (also timed), and the result is broadcast — the
    paper's scan-locally/apply-centrally pattern.  The communicator is
    duck-typed (anything with ``rank``/``timed``/``gather``/``bcast``),
    so this module stays free of :mod:`repro.mpi` imports.
    """
    kernel = stage.kernel_for(engine)
    with comm.timed():
        proposal = kernel(dag, comm.rank, **params)
    gathered = comm.gather(proposal, root=0)
    result = None
    if comm.rank == 0:
        with comm.timed():
            result = stage.merge(dag, gathered, **params)
    return comm.bcast(result, root=0)
