"""Reference-based assembly accuracy (a QUAST-lite).

Given the true reference genome(s), evaluate an assembly the way QUAST
would at small scale:

- anchor each contig to a reference via shared k-mers and a consensus
  diagonal (both strands tried);
- verify the anchored placement base-by-base (identity, mismatches);
- flag contigs with no consistent placement as *misassembled*;
- accumulate reference coverage to report *genome fraction* and
  *duplication ratio*.

The simulator gives us the ground truth the paper never had, so the
repository can assert assembly *correctness*, not just contiguity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.mapping import SequenceMapper
from repro.simulate.genome import Genome

__all__ = ["ContigPlacement", "AccuracyReport", "evaluate_assembly"]


@dataclass(frozen=True)
class ContigPlacement:
    """Where one contig landed on the references (or failed to)."""

    contig_index: int
    length: int
    reference: str | None
    position: int | None
    strand: str | None
    identity: float
    placed: bool


@dataclass(frozen=True)
class AccuracyReport:
    """Aggregate accuracy of an assembly against its references."""

    placements: tuple[ContigPlacement, ...]
    #: fraction of reference bases covered by >= 1 placed contig.
    genome_fraction: float
    #: placed contig bases / covered reference bases (1.0 = no dup).
    duplication_ratio: float
    #: mean identity of placed contigs, length-weighted.
    mean_identity: float
    #: contigs with no consistent reference placement.
    n_misassembled: int

    @property
    def n_placed(self) -> int:
        return sum(1 for p in self.placements if p.placed)


def evaluate_assembly(
    contigs: list[np.ndarray],
    references: list[Genome],
    k: int = 21,
    min_identity: float = 0.95,
    min_votes: int = 3,
) -> AccuracyReport:
    """Place every contig on the references and aggregate accuracy."""
    if not references:
        raise ValueError("need at least one reference genome")
    mapper = SequenceMapper([g.codes for g in references], k=k)
    names = [g.name for g in references]
    coverage = [np.zeros(len(g), dtype=bool) for g in references]
    placements: list[ContigPlacement] = []
    placed_bases = 0
    identity_weighted = 0.0

    for ci, contig in enumerate(contigs):
        contig = np.asarray(contig, dtype=np.uint8)
        hit = mapper.place(contig, min_identity=min_identity, min_votes=min_votes)
        if hit is not None:
            placements.append(
                ContigPlacement(
                    contig_index=ci,
                    length=int(contig.size),
                    reference=names[hit.reference],
                    position=hit.position,
                    strand=hit.strand,
                    identity=hit.identity,
                    placed=True,
                )
            )
            coverage[hit.reference][hit.position : hit.position + contig.size] = True
            placed_bases += int(contig.size)
            identity_weighted += hit.identity * contig.size
        else:
            # Record the best unverified identity for diagnostics.
            weak = mapper.place(contig, min_identity=0.0, min_votes=min_votes)
            placements.append(
                ContigPlacement(
                    contig_index=ci,
                    length=int(contig.size),
                    reference=None,
                    position=None,
                    strand=None,
                    identity=0.0 if weak is None else weak.identity,
                    placed=False,
                )
            )

    covered = sum(int(c.sum()) for c in coverage)
    total_ref = sum(c.size for c in coverage)
    return AccuracyReport(
        placements=tuple(placements),
        genome_fraction=covered / total_ref if total_ref else 0.0,
        duplication_ratio=placed_bases / covered if covered else 0.0,
        mean_identity=identity_weighted / placed_bases if placed_bases else 0.0,
        n_misassembled=sum(1 for p in placements if not p.placed),
    )
