"""k-mer seeded sequence-to-reference placement.

The shared engine behind the QUAST-lite evaluator and the scaffolder's
read mapping: index reference sequences by k-mer, place a query by the
consensus diagonal of its k-mer hits (both strands), and verify the
placement base-by-base.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sequence.dna import hamming_identity, reverse_complement
from repro.sequence.kmers import kmer_codes

__all__ = ["Placement", "SequenceMapper"]

_REF_SHIFT = 2**40
_DIAG_BIAS = 2**30


@dataclass(frozen=True)
class Placement:
    """A verified placement of a query on a reference sequence."""

    reference: int
    position: int
    strand: str
    identity: float
    votes: int


class SequenceMapper:
    """Places query sequences on a set of reference code arrays."""

    def __init__(self, references: list[np.ndarray], k: int = 21) -> None:
        if k < 1:
            raise ValueError("k must be positive")
        if not references:
            raise ValueError("need at least one reference sequence")
        self.k = k
        self.references = [np.asarray(r, dtype=np.uint8) for r in references]
        vals_parts, ref_parts, pos_parts = [], [], []
        for ri, codes in enumerate(self.references):
            vals = kmer_codes(codes, k)
            valid = np.flatnonzero(vals >= 0)
            vals_parts.append(vals[valid])
            ref_parts.append(np.full(valid.size, ri, dtype=np.int64))
            pos_parts.append(valid.astype(np.int64))
        vals = np.concatenate(vals_parts)
        order = np.argsort(vals, kind="stable")
        self.vals = vals[order]
        self.refs = np.concatenate(ref_parts)[order]
        self.pos = np.concatenate(pos_parts)[order]

    def _best_diagonal(self, seq: np.ndarray) -> tuple[int, int, int] | None:
        """(reference, start, votes) of the consensus diagonal."""
        vals = kmer_codes(seq, self.k)
        qpos = np.flatnonzero(vals >= 0)
        if qpos.size == 0 or self.vals.size == 0:
            return None
        lo = np.searchsorted(self.vals, vals[qpos], side="left")
        hi = np.searchsorted(self.vals, vals[qpos], side="right")
        counts = hi - lo
        total = int(counts.sum())
        if total == 0:
            return None
        starts = np.repeat(lo, counts)
        within = np.arange(total) - np.repeat(np.cumsum(counts) - counts, counts)
        flat = starts + within
        q = np.repeat(qpos, counts)
        diag = self.pos[flat] - q
        key = self.refs[flat] * _REF_SHIFT + (diag + _DIAG_BIAS)
        uniq, votes = np.unique(key, return_counts=True)
        best = int(np.argmax(votes))
        ref = int(uniq[best] // _REF_SHIFT)
        start = int((uniq[best] % _REF_SHIFT) - _DIAG_BIAS)
        return ref, start, int(votes[best])

    def _verify(self, seq: np.ndarray, ref: int, start: int) -> float | None:
        codes = self.references[ref]
        if start < 0 or start + seq.size > codes.size:
            return None
        return hamming_identity(seq, codes[start : start + seq.size])

    def place(
        self, query: np.ndarray, min_identity: float = 0.9, min_votes: int = 2
    ) -> Placement | None:
        """Best verified placement of ``query`` on any reference/strand."""
        query = np.asarray(query, dtype=np.uint8)
        best: Placement | None = None
        for strand, seq in (("+", query), ("-", reverse_complement(query))):
            hit = self._best_diagonal(seq)
            if hit is None or hit[2] < min_votes:
                continue
            ref, start, votes = hit
            identity = self._verify(seq, ref, start)
            if identity is None or identity < min_identity:
                continue
            if best is None or identity > best.identity:
                best = Placement(
                    reference=ref, position=start, strand=strand,
                    identity=identity, votes=votes,
                )
        return best
