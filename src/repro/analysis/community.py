"""Genus x partition distribution analysis (Fig. 7).

Given per-read genus labels (from the classifier or ground truth) and
per-read partition assignments (from the hybrid graph partitioning),
build the fraction matrix the paper's heat maps display and quantify
its two claims: genera *concentrate* (distributions far from uniform)
and same-phylum genera *co-locate* (their partition profiles
correlate).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = [
    "genus_partition_matrix",
    "max_fraction_per_genus",
    "normalized_entropy_per_genus",
    "profile_correlation",
    "phylum_colocation",
]


def genus_partition_matrix(
    genus_labels: Sequence[str | None],
    partition_labels: np.ndarray,
    genera: Sequence[str],
    k: int,
) -> np.ndarray:
    """Fraction matrix M[g, p] = share of genus g's reads in partition p.

    Unclassified reads (None) and genera outside ``genera`` are
    ignored.  Rows of genera with zero classified reads are all-zero.
    """
    partition_labels = np.asarray(partition_labels, dtype=np.int64)
    if len(genus_labels) != partition_labels.size:
        raise ValueError("one genus label per read required")
    if partition_labels.size and (partition_labels.min() < 0 or partition_labels.max() >= k):
        raise ValueError("partition label out of range")
    index = {g: i for i, g in enumerate(genera)}
    counts = np.zeros((len(genera), k), dtype=np.float64)
    for genus, part in zip(genus_labels, partition_labels.tolist()):
        gi = index.get(genus)
        if gi is not None:
            counts[gi, part] += 1
    totals = counts.sum(axis=1, keepdims=True)
    with np.errstate(invalid="ignore", divide="ignore"):
        fractions = np.where(totals > 0, counts / totals, 0.0)
    return fractions


def max_fraction_per_genus(matrix: np.ndarray) -> np.ndarray:
    """Largest single-partition share per genus (1/k = uniform floor)."""
    return np.asarray(matrix).max(axis=1)


def normalized_entropy_per_genus(matrix: np.ndarray) -> np.ndarray:
    """Shannon entropy of each genus's distribution, normalised to [0, 1].

    0 = all reads in one partition; 1 = perfectly uniform.  All-zero
    rows (no classified reads) report 1.0 (maximally uninformative).
    """
    m = np.asarray(matrix, dtype=np.float64)
    k = m.shape[1]
    if k < 2:
        return np.zeros(m.shape[0])
    out = np.ones(m.shape[0])
    for i, row in enumerate(m):
        total = row.sum()
        if total <= 0:
            continue
        p = row / total
        nz = p[p > 0]
        out[i] = float(-(nz * np.log(nz)).sum() / np.log(k))
    return out


def profile_correlation(matrix: np.ndarray, i: int, j: int) -> float:
    """Pearson correlation of two genera's partition profiles."""
    m = np.asarray(matrix, dtype=np.float64)
    a, b = m[i], m[j]
    if a.std() == 0 or b.std() == 0:
        return 0.0
    return float(np.corrcoef(a, b)[0, 1])


def phylum_colocation(
    matrix: np.ndarray, genera: Sequence[str], phylum_of: dict[str, str]
) -> tuple[float, float]:
    """(mean same-phylum, mean cross-phylum) profile correlation.

    The paper's qualitative claim is same > cross: related genera share
    ancestral sequence, interconnect in the graph, and land together.
    """
    m = np.asarray(matrix, dtype=np.float64)
    same: list[float] = []
    cross: list[float] = []
    for i in range(len(genera)):
        for j in range(i + 1, len(genera)):
            if m[i].sum() == 0 or m[j].sum() == 0:
                continue
            r = profile_correlation(m, i, j)
            if phylum_of[genera[i]] == phylum_of[genera[j]]:
                same.append(r)
            else:
                cross.append(r)
    mean = lambda xs: float(np.mean(xs)) if xs else 0.0
    return mean(same), mean(cross)
