"""Metagenomic community analysis from graph partitions (paper §VI-E).

The paper classifies reads against the HMP gut reference database with
BWA and shows that genera concentrate in few graph partitions and that
phylogenetically related genera co-locate (Fig. 7).  Here the
classifier is a k-mer voter against the simulated reference genomes
(plus optional simulator ground truth), and the same genus x partition
fraction matrices, concentration measures, and phylum co-location
scores are computed.
"""

from repro.analysis.abundance import abundance_error, estimate_abundances, profile_community
from repro.analysis.accuracy import AccuracyReport, ContigPlacement, evaluate_assembly
from repro.analysis.classify import KmerClassifier
from repro.analysis.mapping import Placement, SequenceMapper
from repro.analysis.community import (
    genus_partition_matrix,
    max_fraction_per_genus,
    normalized_entropy_per_genus,
    phylum_colocation,
    profile_correlation,
)
from repro.analysis.heatmap import render_heatmap

__all__ = [
    "KmerClassifier",
    "SequenceMapper",
    "Placement",
    "evaluate_assembly",
    "AccuracyReport",
    "ContigPlacement",
    "estimate_abundances",
    "abundance_error",
    "profile_community",
    "genus_partition_matrix",
    "max_fraction_per_genus",
    "normalized_entropy_per_genus",
    "profile_correlation",
    "phylum_colocation",
    "render_heatmap",
]
