"""ASCII rendering of the genus x partition heat map (Fig. 7)."""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = ["render_heatmap"]

_SHADES = " .:-=+*#%@"


def render_heatmap(
    matrix: np.ndarray,
    row_labels: Sequence[str],
    col_prefix: str = "P",
    cell_width: int = 3,
) -> str:
    """Text heat map: darker glyph = larger fraction (row-normalised).

    Mirrors the paper's Fig. 7 presentation closely enough to eyeball
    genus concentration in a terminal.
    """
    m = np.asarray(matrix, dtype=np.float64)
    if m.ndim != 2:
        raise ValueError("matrix must be 2-D")
    if m.shape[0] != len(row_labels):
        raise ValueError("one row label per matrix row required")
    if cell_width < 1:
        raise ValueError("cell_width must be positive")
    k = m.shape[1]
    label_w = max((len(r) for r in row_labels), default=0)
    header = " " * label_w + " " + "".join(
        f"{col_prefix}{c}".rjust(cell_width) for c in range(k)
    )
    lines = [header]
    for label, row in zip(row_labels, m):
        peak = row.max()
        cells = []
        for v in row:
            frac = v / peak if peak > 0 else 0.0
            shade = _SHADES[min(int(frac * (len(_SHADES) - 1) + 1e-9), len(_SHADES) - 1)]
            cells.append((shade * min(cell_width - 1, 2)).rjust(cell_width))
        lines.append(f"{label:<{label_w}} " + "".join(cells))
    return "\n".join(lines)
