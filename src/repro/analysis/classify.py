"""Read classification against a reference genome database.

Substitute for the paper's BWA-against-HMP step: every reference
genome's canonical k-mers vote for their genus; a read is classified to
the genus winning the most k-mer votes (ties broken toward the larger
count, unclassified if below ``min_votes``).  Against its own simulated
reference set this is more than accurate enough to reproduce Fig. 7,
and ground-truth labels from the simulator bound it from above.
"""

from __future__ import annotations

import numpy as np

from repro.io.readset import ReadSet
from repro.sequence.kmers import canonical_kmer_codes
from repro.simulate.genome import Genome

__all__ = ["KmerClassifier"]


class KmerClassifier:
    """Genus-level k-mer vote classifier."""

    def __init__(self, genomes: list[Genome], k: int = 21) -> None:
        if not genomes:
            raise ValueError("need at least one reference genome")
        if k < 1:
            raise ValueError("k must be positive")
        self.k = k
        self.genera: list[str] = []
        genus_index: dict[str, int] = {}
        kmer_parts: list[np.ndarray] = []
        genus_parts: list[np.ndarray] = []
        for g in genomes:
            genus = g.meta.get("genus", g.name)
            if genus not in genus_index:
                genus_index[genus] = len(self.genera)
                self.genera.append(genus)
            vals = canonical_kmer_codes(g.codes, k)
            vals = np.unique(vals[vals >= 0])
            kmer_parts.append(vals)
            genus_parts.append(np.full(vals.size, genus_index[genus], dtype=np.int64))
        kmers = np.concatenate(kmer_parts)
        genera = np.concatenate(genus_parts)
        # Drop k-mers claimed by more than one genus (ambiguous between
        # related genomes — exactly what BWA multi-mappers would be).
        order = np.argsort(kmers, kind="stable")
        kmers, genera = kmers[order], genera[order]
        first = np.ones(kmers.size, dtype=bool)
        first[1:] = kmers[1:] != kmers[:-1]
        group = np.cumsum(first) - 1
        n_groups = int(group[-1]) + 1 if kmers.size else 0
        gmin = np.full(n_groups, np.iinfo(np.int64).max, dtype=np.int64)
        gmax = np.full(n_groups, -1, dtype=np.int64)
        np.minimum.at(gmin, group, genera)
        np.maximum.at(gmax, group, genera)
        unambiguous = gmin == gmax
        self.kmers = kmers[first][unambiguous]
        self.kmer_genus = gmin[unambiguous]

    def classify_codes(self, codes: np.ndarray, min_votes: int = 2) -> str | None:
        """Genus of one read's code array, or None if unclassified."""
        vals = canonical_kmer_codes(np.asarray(codes, dtype=np.uint8), self.k)
        vals = vals[vals >= 0]
        if vals.size == 0 or self.kmers.size == 0:
            return None
        idx = np.searchsorted(self.kmers, vals)
        idx = np.clip(idx, 0, self.kmers.size - 1)
        hits = self.kmers[idx] == vals
        votes = np.bincount(self.kmer_genus[idx[hits]], minlength=len(self.genera))
        best = int(votes.argmax())
        if votes[best] < min_votes:
            return None
        return self.genera[best]

    def classify_readset(self, reads: ReadSet, min_votes: int = 2) -> list[str | None]:
        """Genus (or None) per read."""
        return [
            self.classify_codes(reads.codes_of(i), min_votes=min_votes)
            for i in range(len(reads))
        ]

    def accuracy_against_truth(self, reads: ReadSet, min_votes: int = 2) -> float:
        """Fraction of truth-labelled reads classified to the right genus."""
        total = correct = 0
        for i, predicted in enumerate(self.classify_readset(reads, min_votes)):
            truth = reads.meta[i].get("genus")
            if truth is None:
                continue
            total += 1
            if predicted == truth:
                correct += 1
        if total == 0:
            raise ValueError("no reads carry ground-truth genus labels")
        return correct / total
