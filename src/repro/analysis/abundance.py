"""Community abundance profiling from classified reads.

The complement of Fig. 7's partition analysis: estimate each genus's
relative abundance from read classification counts (normalised by
genome length, since longer genomes attract proportionally more
reads), and compare profiles against the simulator's ground truth.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.classify import KmerClassifier
from repro.io.readset import ReadSet
from repro.simulate.community import Community

__all__ = ["estimate_abundances", "abundance_error", "profile_community"]


def estimate_abundances(
    genus_labels: list[str | None],
    genera: list[str],
    genome_lengths: dict[str, int],
) -> np.ndarray:
    """Relative abundances from per-read genus labels.

    Read counts are divided by genome length (reads-per-base) before
    normalising, matching how the simulator draws reads (abundance x
    length).  Unclassified reads are ignored.
    """
    if len(genera) == 0:
        raise ValueError("need at least one genus")
    counts = np.zeros(len(genera), dtype=np.float64)
    index = {g: i for i, g in enumerate(genera)}
    for label in genus_labels:
        gi = index.get(label)
        if gi is not None:
            counts[gi] += 1
    lengths = np.array([genome_lengths[g] for g in genera], dtype=np.float64)
    if (lengths <= 0).any():
        raise ValueError("genome lengths must be positive")
    density = counts / lengths
    total = density.sum()
    return density / total if total > 0 else density


def abundance_error(estimated: np.ndarray, truth: np.ndarray) -> float:
    """Total variation distance between two abundance profiles."""
    estimated = np.asarray(estimated, dtype=np.float64)
    truth = np.asarray(truth, dtype=np.float64)
    if estimated.shape != truth.shape:
        raise ValueError("profiles must have equal length")
    return float(0.5 * np.abs(estimated - truth).sum())


def profile_community(
    reads: ReadSet,
    community: Community,
    k: int = 21,
    min_votes: int = 2,
) -> tuple[list[str], np.ndarray, np.ndarray, float]:
    """Classify reads and compare the estimated profile to ground truth.

    Returns (genera, estimated, truth, total-variation error), with
    genera in the community's genome order.
    """
    classifier = KmerClassifier(community.reference_database(), k=k)
    labels = classifier.classify_readset(reads, min_votes=min_votes)
    genera = community.genera
    lengths = {g.meta["genus"]: len(g) for g in community.genomes}
    estimated = estimate_abundances(labels, genera, lengths)
    truth = np.asarray(community.abundances, dtype=np.float64)
    return genera, estimated, truth, abundance_error(estimated, truth)
