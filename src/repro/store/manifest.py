"""Store manifests: the durable index of a sharded store directory.

A sharded store is a directory of fixed-capacity ``.npz`` shard files
plus one ``manifest.json`` describing them: format version, store kind
(``reads``, ``overlaps``, ``graph``, ...), shard capacity, per-shard
record counts, and free-form metadata.  The manifest is written last —
after every shard file has been atomically renamed into place — so its
presence certifies a complete store; a crash mid-pack leaves shards
without a manifest, which the writer detects and resumes from.

Loading raises :class:`ValueError` (matching the ``repro.io.store``
conventions) when the file is not a manifest, was written by an
unsupported format version, or describes a different store kind than
the caller expects.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.io.store import atomic_write_text, fsync_dir

__all__ = ["STORE_VERSION", "MANIFEST_NAME", "ShardInfo", "StoreManifest"]

#: format version of the sharded-store layout; bump on layout changes.
STORE_VERSION = 1

MANIFEST_NAME = "manifest.json"


@dataclass(frozen=True)
class ShardInfo:
    """One shard file as the manifest records it."""

    name: str
    n_records: int
    nbytes: int

    def to_dict(self) -> dict:
        return {"name": self.name, "n_records": self.n_records, "nbytes": self.nbytes}

    @classmethod
    def from_dict(cls, payload: dict) -> "ShardInfo":
        return cls(
            name=str(payload["name"]),
            n_records=int(payload["n_records"]),
            nbytes=int(payload["nbytes"]),
        )


@dataclass
class StoreManifest:
    """Everything needed to open a sharded store directory."""

    kind: str
    shard_size: int
    shards: list[ShardInfo] = field(default_factory=list)
    meta: dict = field(default_factory=dict)
    version: int = STORE_VERSION

    @property
    def n_records(self) -> int:
        return sum(s.n_records for s in self.shards)

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    def to_json(self) -> str:
        return json.dumps(
            {
                "format": "repro.store",
                "version": self.version,
                "kind": self.kind,
                "shard_size": self.shard_size,
                "shards": [s.to_dict() for s in self.shards],
                "meta": self.meta,
            },
            indent=2,
            sort_keys=True,
        )

    def fingerprint(self) -> str:
        """Content digest identifying this exact store layout.

        Incorporated into assembly checkpoint fingerprints so a resume
        against a store whose shards changed underneath it is refused.
        """
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()[:16]

    def save(self, directory: str | Path) -> str:
        """Atomically write ``manifest.json`` into the store directory."""
        directory = str(directory)
        final = os.path.join(directory, MANIFEST_NAME)
        atomic_write_text(final, self.to_json() + "\n")
        fsync_dir(directory)
        return final

    @classmethod
    def load(cls, directory: str | Path, kind: str | None = None) -> "StoreManifest":
        """Read and validate a store manifest.

        Raises :class:`ValueError` when the manifest is missing, not a
        store manifest, version-mismatched, or (with ``kind`` given) of
        a different store kind.
        """
        path = os.path.join(str(directory), MANIFEST_NAME)
        try:
            with open(path, encoding="utf-8") as fh:
                payload = json.load(fh)
        except FileNotFoundError:
            raise ValueError(
                f"not a sharded store: {str(directory)!r} has no {MANIFEST_NAME} "
                "(incomplete pack? re-run with resume=True)"
            ) from None
        except (OSError, json.JSONDecodeError) as exc:
            raise ValueError(f"corrupt store manifest {path!r}: {exc}") from exc
        if not isinstance(payload, dict) or payload.get("format") != "repro.store":
            raise ValueError(f"not a store manifest: {path!r}")
        found = int(payload.get("version", -1))
        if found != STORE_VERSION:
            raise ValueError(
                f"unsupported store version {found} in {path!r} "
                f"(this build reads version {STORE_VERSION})"
            )
        if kind is not None and payload.get("kind") != kind:
            raise ValueError(
                f"store {str(directory)!r} holds {payload.get('kind')!r} "
                f"records, expected {kind!r}"
            )
        return cls(
            kind=str(payload["kind"]),
            shard_size=int(payload["shard_size"]),
            shards=[ShardInfo.from_dict(s) for s in payload.get("shards", ())],
            meta=dict(payload.get("meta", {})),
            version=found,
        )
