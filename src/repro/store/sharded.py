"""Generic sharded ``.npz`` store: fixed-capacity shards + manifest.

A :class:`ShardWriter` streams record batches into numbered shard
files (``shard-00000.npz``, ...), each written atomically through the
same temp-file + ``os.replace`` + directory-fsync path the stage
checkpoints use, and finalizes with a ``manifest.json`` once every
shard is durable.  Because the manifest is written *last*, a crash
mid-pack is detectable (shards without a manifest) and resumable:
re-running the pack with ``resume=True`` verifies the already-durable
shards and skips rewriting them, continuing from the first missing or
short shard.

A :class:`ShardedStore` opens the manifest and serves shard payloads
through a byte-budgeted :class:`~repro.store.cache.ShardCache`, so the
caller's peak memory is O(cache budget), not O(store).
"""

from __future__ import annotations

import os
import zipfile
from pathlib import Path
from typing import Iterator

import numpy as np

from repro.io.store import atomic_savez
from repro.store.cache import ShardCache
from repro.store.manifest import STORE_VERSION, ShardInfo, StoreManifest

__all__ = [
    "DEFAULT_CACHE_BUDGET",
    "shard_name",
    "ShardWriter",
    "ShardedStore",
]

#: default shard-cache byte budget (64 MiB) used when callers do not
#: configure one — small enough to matter at 10^6+ reads, large enough
#: that D-scale datasets never evict.
DEFAULT_CACHE_BUDGET = 64 * 1024 * 1024


def shard_name(index: int) -> str:
    return f"shard-{index:05d}.npz"


def _array_nbytes(arrays: dict) -> int:
    total = 0
    for value in arrays.values():
        total += getattr(value, "nbytes", 0) or 0
    return int(total)


class ShardWriter:
    """Append-only builder of one sharded store directory.

    Subclass-free and kind-agnostic: callers hand complete per-shard
    array dicts to :meth:`write_shard` (the reads/overlaps/graph
    builders chunk their streams to shard capacity first).  Set
    ``resume=True`` to skip shards that already survived a previous
    crashed pack.
    """

    def __init__(
        self,
        path: str | Path,
        kind: str,
        shard_size: int,
        compressed: bool = False,
        resume: bool = False,
        meta: dict | None = None,
    ) -> None:
        if shard_size < 1:
            raise ValueError("shard_size must be >= 1")
        self.path = str(path)
        self.kind = kind
        self.shard_size = int(shard_size)
        self.compressed = bool(compressed)
        self.resume = bool(resume)
        self.meta = dict(meta or {})
        self.shards: list[ShardInfo] = []
        self.reused_shards = 0
        os.makedirs(self.path, exist_ok=True)
        if not resume:
            self._clear_stale()

    def _clear_stale(self) -> None:
        """Drop leftovers of any previous pack (fresh, non-resume build)."""
        for entry in os.listdir(self.path):
            if entry == "manifest.json" or entry.startswith("shard-"):
                with_path = os.path.join(self.path, entry)
                if os.path.isfile(with_path):
                    os.remove(with_path)

    def _reusable(self, final: str, index: int, n_records: int) -> bool:
        """True when a previous pack already wrote this exact shard."""
        if not os.path.exists(final):
            return False
        try:
            with np.load(final) as data:
                return (
                    int(data["store_version"]) == STORE_VERSION
                    and str(data["store_kind"]) == self.kind
                    and int(data["shard_index"]) == index
                    and int(data["n_records"]) == n_records
                )
        except (zipfile.BadZipFile, OSError, KeyError, ValueError):
            return False

    def write_shard(self, arrays: dict, n_records: int) -> ShardInfo:
        """Durably write the next shard (or reuse a surviving one)."""
        index = len(self.shards)
        name = shard_name(index)
        final = os.path.join(self.path, name)
        payload = dict(arrays)
        payload["store_version"] = np.int64(STORE_VERSION)
        payload["store_kind"] = np.str_(self.kind)
        payload["shard_index"] = np.int64(index)
        payload["n_records"] = np.int64(n_records)
        if self.resume and self._reusable(final, index, n_records):
            self.reused_shards += 1
        else:
            atomic_savez(final, compressed=self.compressed, **payload)
        info = ShardInfo(
            name=name, n_records=int(n_records), nbytes=os.path.getsize(final)
        )
        self.shards.append(info)
        return info

    def finalize(self, extra_meta: dict | None = None) -> StoreManifest:
        """Write the manifest (the commit point of the whole pack)."""
        meta = dict(self.meta)
        if extra_meta:
            meta.update(extra_meta)
        manifest = StoreManifest(
            kind=self.kind,
            shard_size=self.shard_size,
            shards=list(self.shards),
            meta=meta,
        )
        manifest.save(self.path)
        return manifest


class ShardedStore:
    """Read view of a sharded store directory with an LRU shard cache."""

    def __init__(
        self,
        path: str | Path,
        kind: str | None = None,
        cache_budget: int = DEFAULT_CACHE_BUDGET,
        cache: ShardCache | None = None,
    ) -> None:
        self.path = str(path)
        self.manifest = StoreManifest.load(self.path, kind=kind)
        self.cache = cache if cache is not None else ShardCache(cache_budget)
        counts = np.fromiter(
            (s.n_records for s in self.manifest.shards),
            dtype=np.int64,
            count=self.manifest.n_shards,
        )
        #: cumulative record counts: shard ``s`` holds records
        #: ``[record_starts[s], record_starts[s + 1])``.
        self.record_starts = np.zeros(self.manifest.n_shards + 1, dtype=np.int64)
        np.cumsum(counts, out=self.record_starts[1:])

    @property
    def kind(self) -> str:
        return self.manifest.kind

    @property
    def n_records(self) -> int:
        return int(self.record_starts[-1])

    @property
    def n_shards(self) -> int:
        return self.manifest.n_shards

    def fingerprint(self) -> str:
        return self.manifest.fingerprint()

    def shard_of(self, record: int) -> int:
        """Index of the shard holding global ``record``."""
        if not 0 <= record < self.n_records:
            raise IndexError(record)
        return int(np.searchsorted(self.record_starts, record, side="right") - 1)

    def shard_path(self, index: int) -> str:
        return os.path.join(self.path, self.manifest.shards[index].name)

    def load_shard(self, index: int) -> dict:
        """Load one shard from disk, validating its stamp (no cache)."""
        info = self.manifest.shards[index]
        path = self.shard_path(index)
        try:
            data = np.load(path)
        except (zipfile.BadZipFile, OSError, ValueError) as exc:
            raise ValueError(f"corrupt shard {path!r}: {exc}") from exc
        with data:
            required = {"store_version", "store_kind", "shard_index", "n_records"}
            missing = sorted(required - set(data.files))
            if missing:
                raise ValueError(f"foreign shard {path!r}: missing keys {missing}")
            found = int(data["store_version"])
            if found != STORE_VERSION:
                raise ValueError(
                    f"unsupported shard version {found} in {path!r} "
                    f"(this build reads version {STORE_VERSION})"
                )
            if str(data["store_kind"]) != self.kind:
                raise ValueError(
                    f"shard {path!r} belongs to a {str(data['store_kind'])!r} "
                    f"store, expected {self.kind!r}"
                )
            if int(data["shard_index"]) != index:
                raise ValueError(
                    f"shard {path!r} is stamped as shard "
                    f"{int(data['shard_index'])}, expected {index} — "
                    "was it moved between stores?"
                )
            if int(data["n_records"]) != info.n_records:
                raise ValueError(
                    f"shard {path!r} holds {int(data['n_records'])} records, "
                    f"manifest expects {info.n_records}"
                )
            return {
                key: data[key]
                for key in data.files
                if key not in ("store_version", "store_kind", "shard_index")
            }

    def shard(self, index: int) -> dict:
        """One shard's arrays, served through the LRU cache."""
        if not 0 <= index < self.n_shards:
            raise IndexError(index)

        def loader() -> tuple[dict, int]:
            arrays = self.load_shard(index)
            return arrays, _array_nbytes(arrays)

        return self.cache.get(("shard", self.path, index), loader)

    def derived(self, index: int, tag, builder) -> np.ndarray:
        """A per-shard derived array (e.g. packed k-mers), cache-backed.

        ``builder(shard_arrays)`` runs on a miss and must return a
        numpy array; its ``nbytes`` charge the same budget the raw
        shards use, so derived data participates in eviction.
        """

        def loader() -> tuple[np.ndarray, int]:
            value = builder(self.shard(index))
            return value, int(getattr(value, "nbytes", 0) or 0)

        return self.cache.get(("derived", self.path, index, tag), loader)

    def iter_shards(self) -> Iterator[tuple[int, dict]]:
        """Yield ``(index, arrays)`` for every shard, in order."""
        for index in range(self.n_shards):
            yield index, self.shard(index)
