"""Store scrubbing: re-validate every shard against its manifest.

``repro verify-store`` is the offline integrity pass for ``repro
pack`` output.  The pack path already writes defensively — shards are
stamped (version / kind / index / record count), renamed into place
atomically, and the manifest is written last — but disks rot, copies
truncate, and people move files between stores.  The scrub re-checks,
for every shard the manifest claims:

- the file exists and its size matches the manifest's ``nbytes``;
- the shard opens as a valid archive and its stamp fields agree with
  the manifest slot (version, kind, index, record count) — the same
  validation the hot read path performs in
  :meth:`~repro.store.sharded.ShardedStore.load_shard`;

plus, store-wide: the manifest fingerprint (which assembly checkpoints
embed) recomputes to a stable value, and no *orphan* shard files sit
in the directory unclaimed by the manifest (debris from an interrupted
re-pack).

With ``quarantine=True`` corrupt shards are moved into
``<store>/quarantine/`` so a follow-up ``repro pack --resume`` of the
same input rebuilds exactly the damaged shards: the resume path treats
a missing shard as work to redo and reuses every intact one.
"""

from __future__ import annotations

import json
import os
import sys
from dataclasses import asdict, dataclass, field

from repro.store.manifest import MANIFEST_NAME, StoreManifest
from repro.store.sharded import ShardedStore

__all__ = ["ShardReport", "VerifyReport", "verify_store", "main"]

QUARANTINE_DIR = "quarantine"


@dataclass(frozen=True)
class ShardReport:
    """Scrub outcome for one manifest shard slot."""

    name: str
    index: int
    ok: bool
    #: "" when ok, else what failed (missing / size / stamp / corrupt).
    error: str = ""
    quarantined: bool = False


@dataclass
class VerifyReport:
    """Scrub outcome for a whole store directory."""

    path: str
    kind: str = ""
    fingerprint: str = ""
    n_shards: int = 0
    n_records: int = 0
    shards: list[ShardReport] = field(default_factory=list)
    #: shard-shaped files present on disk but absent from the manifest.
    orphans: list[str] = field(default_factory=list)
    #: store-level failure (missing/corrupt manifest), shards unchecked.
    fatal: str = ""

    @property
    def ok(self) -> bool:
        return not self.fatal and all(s.ok for s in self.shards)

    @property
    def n_bad(self) -> int:
        return sum(1 for s in self.shards if not s.ok)

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "kind": self.kind,
            "fingerprint": self.fingerprint,
            "n_shards": self.n_shards,
            "n_records": self.n_records,
            "ok": self.ok,
            "fatal": self.fatal,
            "orphans": self.orphans,
            "shards": [asdict(s) for s in self.shards],
        }


def _check_shard(store: ShardedStore, index: int) -> ShardReport:
    info = store.manifest.shards[index]
    path = store.shard_path(index)
    try:
        size = os.path.getsize(path)
    except OSError:
        return ShardReport(info.name, index, ok=False, error="missing")
    if size != info.nbytes:
        return ShardReport(
            info.name,
            index,
            ok=False,
            error=f"size {size} != manifest nbytes {info.nbytes}",
        )
    try:
        store.load_shard(index)
    except ValueError as exc:
        return ShardReport(info.name, index, ok=False, error=str(exc))
    return ShardReport(info.name, index, ok=True)


def _find_orphans(path: str, manifest: StoreManifest) -> list[str]:
    claimed = {s.name for s in manifest.shards}
    orphans = []
    for entry in sorted(os.listdir(path)):
        if entry.endswith(".npz") and entry not in claimed:
            orphans.append(entry)
    return orphans


def _quarantine(store_path: str, shard_name: str) -> bool:
    pen = os.path.join(store_path, QUARANTINE_DIR)
    os.makedirs(pen, exist_ok=True)
    try:
        os.replace(
            os.path.join(store_path, shard_name),
            os.path.join(pen, shard_name),
        )
    except OSError:
        return False  # e.g. the shard is missing entirely
    return True


def verify_store(path: str, quarantine: bool = False) -> VerifyReport:
    """Scrub one store directory; never raises for data problems."""
    report = VerifyReport(path=str(path))
    try:
        store = ShardedStore(path, cache_budget=0)
    except ValueError as exc:
        report.fatal = str(exc)
        return report
    manifest = store.manifest
    report.kind = manifest.kind
    report.fingerprint = manifest.fingerprint()
    report.n_shards = manifest.n_shards
    report.n_records = store.n_records
    for index in range(manifest.n_shards):
        shard = _check_shard(store, index)
        if not shard.ok and quarantine and shard.error != "missing":
            moved = _quarantine(path, shard.name)
            shard = ShardReport(
                shard.name,
                shard.index,
                ok=False,
                error=shard.error,
                quarantined=moved,
            )
        report.shards.append(shard)
    report.orphans = _find_orphans(path, manifest)
    return report


def main(
    path: str, quarantine: bool = False, fmt: str = "text", stream=None
) -> int:
    """CLI entry for ``repro verify-store``; exit 1 on any failure."""
    stream = stream or sys.stdout
    report = verify_store(path, quarantine=quarantine)
    if fmt == "json":
        print(json.dumps(report.to_dict(), indent=2), file=stream)
    else:
        if report.fatal:
            print(f"{path}: FATAL: {report.fatal}", file=stream)
        else:
            print(
                f"{path}: {report.kind} store, {report.n_shards} shards, "
                f"{report.n_records} records, fingerprint "
                f"{report.fingerprint}",
                file=stream,
            )
            for shard in report.shards:
                if shard.ok:
                    continue
                pen = " -> quarantined" if shard.quarantined else ""
                print(f"  BAD {shard.name}: {shard.error}{pen}", file=stream)
            for orphan in report.orphans:
                print(
                    f"  orphan {orphan}: not in {MANIFEST_NAME}", file=stream
                )
            verdict = "ok" if report.ok else f"{report.n_bad} bad shard(s)"
            print(f"  scrub: {verdict}", file=stream)
    return 0 if report.ok else 1
