"""Sharded overlap-graph pair tables.

An :class:`~repro.graph.overlap_graph.OverlapGraph` is stored as its
edge pair table — parallel ``(eu, ev, weights, deltas, identities)``
columns — sharded by edge rows, plus a memory-mapped per-node weight
array.  Dinh & Rajasekaran's memory-efficient overlap-graph
representation motivates keeping the edge set on disk: the pair table
dominates graph memory at scale, while per-shard streaming suffices
for construction and partitioning passes.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Iterator

import numpy as np

from repro.graph.overlap_graph import OverlapGraph
from repro.store.manifest import StoreManifest
from repro.store.reads import _atomic_save_npy
from repro.store.sharded import DEFAULT_CACHE_BUDGET, ShardedStore, ShardWriter

__all__ = ["GRAPH_KIND", "NODE_WEIGHTS_NAME", "pack_graph", "ShardedGraph"]

GRAPH_KIND = "graph"
NODE_WEIGHTS_NAME = "node_weights.npy"

_EDGE_COLUMNS = ("eu", "ev", "weights", "deltas", "identities")


def pack_graph(
    graph: OverlapGraph,
    path: str | Path,
    shard_size: int = 1 << 16,
    compressed: bool = False,
    meta: dict | None = None,
) -> StoreManifest:
    """Shard a graph's edge pair table to disk (edges per shard fixed)."""
    writer = ShardWriter(path, GRAPH_KIND, shard_size, compressed=compressed)
    n_edges = int(graph.eu.size)
    deltas = (
        graph.deltas
        if graph.has_deltas
        else np.zeros(n_edges, dtype=np.int64)
    )
    columns = {
        "eu": graph.eu,
        "ev": graph.ev,
        "weights": graph.weights,
        "deltas": deltas,
        "identities": graph.identities,
    }
    for lo in range(0, max(n_edges, 1), shard_size):
        hi = min(lo + shard_size, n_edges)
        if hi <= lo and n_edges > 0:
            break
        writer.write_shard(
            {
                name: np.ascontiguousarray(col[lo:hi])
                for name, col in columns.items()
            },
            hi - lo,
        )
        if n_edges == 0:
            break
    _atomic_save_npy(
        os.path.join(str(path), NODE_WEIGHTS_NAME),
        np.asarray(graph.node_weights),
    )
    store_meta = {
        "n_nodes": int(graph.n_nodes),
        "n_edges": n_edges,
        "has_deltas": bool(graph.has_deltas),
    }
    if meta:
        store_meta.update(meta)
    return writer.finalize(store_meta)


class ShardedGraph:
    """Stream a sharded graph pair table back, shard by shard."""

    def __init__(
        self, path: str | Path, cache_budget: int = DEFAULT_CACHE_BUDGET
    ) -> None:
        self.store = ShardedStore(path, kind=GRAPH_KIND, cache_budget=cache_budget)
        self.n_nodes = int(self.store.manifest.meta["n_nodes"])
        self.has_deltas = bool(self.store.manifest.meta.get("has_deltas", False))
        self.node_weights = np.load(
            os.path.join(self.store.path, NODE_WEIGHTS_NAME), mmap_mode="r"
        )

    @property
    def n_edges(self) -> int:
        return self.store.n_records

    def iter_edge_shards(self) -> Iterator[dict]:
        """Yield each shard's edge columns (eu, ev, weights, ...)."""
        for _, arrays in self.store.iter_shards():
            yield arrays

    def to_graph(self) -> OverlapGraph:
        """Whole-store materialization (avoid inside kernels — MEM001)."""
        shards = [self.store.load_shard(s) for s in range(self.store.n_shards)]

        def column(name: str, dtype) -> np.ndarray:
            if not shards:
                return np.empty(0, dtype=dtype)
            return np.concatenate([sh[name] for sh in shards])

        return OverlapGraph(
            self.n_nodes,
            column("eu", np.int64),
            column("ev", np.int64),
            column("weights", np.int64),
            node_weights=np.asarray(self.node_weights),
            deltas=column("deltas", np.int64) if self.has_deltas else None,
            identities=column("identities", np.float64),
        )
