"""LRU shard cache with a configurable byte budget.

Every out-of-core structure in :mod:`repro.store` funnels its shard
loads through one :class:`ShardCache`: the cache maps an opaque key
(shard id, or a derived entry such as a shard's packed k-mer array) to
a loaded value plus its byte size, evicts least-recently-used entries
when the budget is exceeded, and keeps hit/miss/eviction counters so
the scale bench can report locality.

A single entry larger than the whole budget is still admitted (the
caller needs the data to make progress) — it simply evicts everything
else and is itself evicted as soon as another entry arrives.  A budget
of 0 therefore degenerates to "load on every access", which is the
correct worst case, not an error.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Hashable

__all__ = ["CacheStats", "ShardCache"]


@dataclass(frozen=True)
class CacheStats:
    """A snapshot of one cache's accounting."""

    hits: int
    misses: int
    evictions: int
    entries: int
    current_bytes: int
    budget_bytes: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": self.entries,
            "current_bytes": self.current_bytes,
            "budget_bytes": self.budget_bytes,
            "hit_rate": self.hit_rate,
        }


class ShardCache:
    """Byte-budgeted LRU cache for shard payloads and derived arrays."""

    def __init__(self, budget_bytes: int) -> None:
        if budget_bytes < 0:
            raise ValueError("budget_bytes must be non-negative")
        self.budget_bytes = int(budget_bytes)
        self._entries: OrderedDict[Hashable, tuple[Any, int]] = OrderedDict()
        self.current_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def keys(self) -> list[Hashable]:
        """Current keys, least recently used first."""
        return list(self._entries)

    def get(self, key: Hashable, loader: Callable[[], tuple[Any, int]]) -> Any:
        """The cached value for ``key``, loading (and admitting) on miss.

        ``loader`` returns ``(value, nbytes)``; it only runs on a miss.
        A hit moves the entry to most-recently-used position.
        """
        entry = self._entries.get(key)
        if entry is not None:
            self.hits += 1
            self._entries.move_to_end(key)
            return entry[0]
        self.misses += 1
        value, nbytes = loader()
        self.put(key, value, nbytes)
        return value

    def put(self, key: Hashable, value: Any, nbytes: int) -> None:
        """Admit (or refresh) an entry, evicting LRU entries over budget."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        old = self._entries.pop(key, None)
        if old is not None:
            self.current_bytes -= old[1]
        self._entries[key] = (value, int(nbytes))
        self.current_bytes += int(nbytes)
        self._evict()

    def _evict(self) -> None:
        while self.current_bytes > self.budget_bytes and len(self._entries) > 1:
            _, (_, nbytes) = self._entries.popitem(last=False)
            self.current_bytes -= nbytes
            self.evictions += 1
        # A lone over-budget entry stays admitted (progress beats purity)
        # unless the budget is zero, in which case nothing is retained.
        if (
            self.budget_bytes == 0
            and self._entries
            and self.current_bytes > 0
        ):
            self._entries.popitem(last=False)
            self.current_bytes = 0
            self.evictions += 1

    def invalidate(self, key: Hashable) -> None:
        entry = self._entries.pop(key, None)
        if entry is not None:
            self.current_bytes -= entry[1]

    def clear(self) -> None:
        self._entries.clear()
        self.current_bytes = 0

    def stats(self) -> CacheStats:
        return CacheStats(
            hits=self.hits,
            misses=self.misses,
            evictions=self.evictions,
            entries=len(self._entries),
            current_bytes=self.current_bytes,
            budget_bytes=self.budget_bytes,
        )
