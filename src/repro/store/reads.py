"""Shard-backed reads: stream a FASTA/FASTQ-scale read set from disk.

:func:`pack_reads` converts any stream of :class:`~repro.io.records.Read`
objects into a sharded store directory while holding at most one shard
of reads in memory; :class:`ShardedReadSet` opens that directory as a
drop-in :class:`~repro.io.readset.ReadSet` whose base codes, qualities,
ids, metadata, and packed k-mer caches all materialize *per shard*
through one byte-budgeted LRU cache, so peak memory is O(shard), not
O(reads).

Layout of a reads store::

    store/
      manifest.json          # written last; certifies a complete pack
      offsets.npy            # global CSR offsets, opened memory-mapped
      shard-00000.npz        # data, offsets (local), ids, meta, quals
      shard-00001.npz
      derived/               # trimmed / reverse-complement children

Reads never straddle shards, so every in-read k-mer window of a shard
is computable from that shard alone — the per-shard packed k-mer
arrays are byte-identical to the corresponding slices of the in-RAM
whole-set cache, which is what keeps sharded and in-RAM assemblies
byte-identical.
"""

from __future__ import annotations

import hashlib
import json
import os
from array import array
from collections.abc import Sequence
from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

from repro.io.readset import ReadSet
from repro.io.records import Read
from repro.io.store import fsync_dir
from repro.sequence.kmers import canonical_kmer_codes, kmer_codes
from repro.sequence.quality import trim_read
from repro.store.manifest import StoreManifest
from repro.store.sharded import DEFAULT_CACHE_BUDGET, ShardedStore, ShardWriter

__all__ = [
    "READS_KIND",
    "OFFSETS_NAME",
    "DEFAULT_SHARD_SIZE",
    "pack_reads",
    "ShardedReadSet",
]

READS_KIND = "reads"
OFFSETS_NAME = "offsets.npy"

#: default reads per shard: at ~100 bp reads this is ~0.4 MB of codes
#: per shard, small enough that a 64 MiB cache holds dozens of shards.
DEFAULT_SHARD_SIZE = 4096


def _atomic_save_npy(final: str, arr: np.ndarray) -> None:
    """np.save with the same crash-safety contract as atomic_savez."""
    tmp = f"{final}.tmp.{os.getpid()}"
    with open(tmp, "wb") as fh:
        np.save(fh, arr)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, final)
    fsync_dir(os.path.dirname(final) or ".")


def _json_uint8(obj) -> np.ndarray:
    return np.frombuffer(json.dumps(obj).encode("utf-8"), dtype=np.uint8)


def _json_load(arr: np.ndarray):
    return json.loads(bytes(np.asarray(arr, dtype=np.uint8).tobytes()).decode("utf-8"))


def pack_reads(
    reads: Iterable[Read],
    path: str | Path,
    shard_size: int = DEFAULT_SHARD_SIZE,
    compressed: bool = False,
    resume: bool = False,
    meta: dict | None = None,
) -> StoreManifest:
    """Stream reads into a sharded store, one shard in memory at a time.

    Accepts any iterable of reads — a FASTA/FASTQ parser generator, a
    synthetic-read generator, or an existing ReadSet — and never
    accumulates more than ``shard_size`` reads before flushing them as
    one durable shard file.  The global ``offsets.npy`` and the
    manifest are written only after every shard is on disk, so a crash
    mid-pack leaves a store that :func:`pack_reads` can finish with
    ``resume=True`` (already-durable shards are verified and skipped;
    the read stream must be reproduced identically).
    """
    writer = ShardWriter(
        path, READS_KIND, shard_size, compressed=compressed, resume=resume
    )
    global_offsets = array("q", [0])
    codes_buf: list[np.ndarray] = []
    quals_buf: list[np.ndarray | None] = []
    ids_buf: list[str] = []
    meta_buf: list[dict] = []
    any_quals = False

    def flush() -> None:
        n = len(ids_buf)
        if n == 0:
            return
        lengths = np.fromiter((c.size for c in codes_buf), dtype=np.int64, count=n)
        local = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(lengths, out=local[1:])
        data = (
            np.concatenate(codes_buf).astype(np.uint8, copy=False)
            if int(local[-1])
            else np.empty(0, dtype=np.uint8)
        )
        shard_quals = any(q is not None for q in quals_buf)
        if shard_quals:
            quals = np.zeros(int(local[-1]), dtype=np.int64)
            for r, q in enumerate(quals_buf):
                if q is not None:
                    quals[local[r] : local[r + 1]] = q
        else:
            quals = np.empty(0, dtype=np.int64)
        writer.write_shard(
            {
                "data": data,
                "offsets": local,
                "ids": _json_uint8(ids_buf),
                "meta": _json_uint8(meta_buf),
                "has_quals": np.bool_(shard_quals),
                "quals": quals,
            },
            n,
        )
        codes_buf.clear()
        quals_buf.clear()
        ids_buf.clear()
        meta_buf.clear()

    for read in reads:
        codes = np.asarray(read.codes, dtype=np.uint8)
        codes_buf.append(codes)
        quals_buf.append(None if read.quals is None else np.asarray(read.quals))
        ids_buf.append(read.id)
        meta_buf.append(read.meta)
        global_offsets.append(global_offsets[-1] + codes.size)
        if read.quals is not None:
            any_quals = True
        if len(ids_buf) >= shard_size:
            flush()
    flush()

    _atomic_save_npy(
        os.path.join(str(path), OFFSETS_NAME),
        np.frombuffer(global_offsets, dtype=np.int64),
    )
    store_meta = {
        "has_quals": any_quals,
        "n_reads": len(global_offsets) - 1,
        "total_bases": int(global_offsets[-1]),
    }
    if meta:
        store_meta.update(meta)
    return writer.finalize(store_meta)


class _ShardColumn(Sequence):
    """Lazy per-read view of a JSON shard column (ids or meta)."""

    def __init__(self, reads: "ShardedReadSet", field: str) -> None:
        self._reads = reads
        self._field = field

    def __len__(self) -> int:
        return len(self._reads)

    def __getitem__(self, i):
        n = len(self)
        if isinstance(i, slice):
            return [self[j] for j in range(*i.indices(n))]
        if not -n <= i < n:
            raise IndexError(i)
        i = i % n if n else i
        shard = self._reads.store.shard_of(i)
        column = self._reads._shard_column(shard, self._field)
        return column[i - int(self._reads.store.record_starts[shard])]


class ShardedReadSet(ReadSet):
    """A ReadSet whose columns live in a sharded store on disk.

    Drop-in for the in-RAM :class:`~repro.io.readset.ReadSet`: every
    read accessor, the k-mer cache API, preprocessing, and subset
    splitting behave identically (and produce byte-identical downstream
    assemblies) — but base codes, qualities, and packed k-mers are
    loaded one shard at a time through an LRU cache, the global offsets
    array is memory-mapped, and preprocessing streams its output into
    derived stores under ``<store>/derived/`` instead of RAM.

    Pickling serializes only ``(store path, cache budget)``: a worker
    process re-opens the shards by path rather than receiving (or
    copy-on-write-inheriting) any mapped array.

    :attr:`data` / :attr:`quals` remain available as *explicit
    whole-store materializations* (via :meth:`to_array`) so legacy
    consumers keep working; streaming code must not touch them — the
    MEM001 lint rule flags such use inside per-partition kernels.
    """

    def __init__(
        self, path: str | Path, cache_budget: int = DEFAULT_CACHE_BUDGET
    ) -> None:
        self._init_from_store(str(path), int(cache_budget))

    def _init_from_store(self, path: str, cache_budget: int) -> None:
        self.store_path = path
        self.cache_budget = cache_budget
        self.store = ShardedStore(
            path, kind=READS_KIND, cache_budget=cache_budget
        )
        offsets_path = os.path.join(path, OFFSETS_NAME)
        try:
            self.offsets = np.load(offsets_path, mmap_mode="r")
        except (OSError, ValueError) as exc:
            raise ValueError(
                f"reads store {path!r} has no readable {OFFSETS_NAME}: {exc}"
            ) from exc
        if self.offsets.shape[0] != self.store.n_records + 1:
            raise ValueError(
                f"reads store {path!r}: {OFFSETS_NAME} describes "
                f"{self.offsets.shape[0] - 1} reads, manifest expects "
                f"{self.store.n_records}"
            )
        self.has_quals = bool(self.store.manifest.meta.get("has_quals", False))
        #: manifest content digest — folded into assembly checkpoint
        #: fingerprints so a resume against changed shards is refused.
        self.store_fingerprint = self.store.fingerprint()
        #: global base offset of each shard's first base (n_shards + 1).
        self._base_bounds = np.asarray(
            self.offsets[self.store.record_starts], dtype=np.int64
        )
        self.ids = _ShardColumn(self, "ids")
        self.meta = _ShardColumn(self, "meta")
        self._kmer_cache = {}  # unused here; kept for base-class parity
        self._materialized: np.ndarray | None = None
        self._materialized_quals: np.ndarray | None = None

    # -- pickling (ships the path, never the arrays) ----------------------

    def __getstate__(self) -> dict:
        return {"store_path": self.store_path, "cache_budget": self.cache_budget}

    def __setstate__(self, state: dict) -> None:
        self._init_from_store(state["store_path"], state["cache_budget"])

    def reopen(self) -> "ShardedReadSet":
        """A fresh view with its own cold cache (for worker processes)."""
        return type(self)(self.store_path, self.cache_budget)

    # -- shard plumbing ---------------------------------------------------

    def _shard_column(self, shard: int, field: str) -> list:
        """Decoded ids/meta list of one shard (cache-backed)."""

        def loader() -> tuple[list, int]:
            raw = self.store.shard(shard)[field]
            return _json_load(raw), int(raw.nbytes)

        return self.store.cache.get(
            ("column", self.store_path, shard, field), loader
        )

    def _shard_kmers(self, shard: int, k: int, canonical: bool) -> np.ndarray:
        """Packed k-mer values of one shard's concatenated codes."""
        packer = canonical_kmer_codes if canonical else kmer_codes

        def build(arrays: dict) -> np.ndarray:
            packed = packer(arrays["data"], int(k))
            packed.setflags(write=False)
            return packed

        return self.store.derived(shard, ("kmers", int(k), bool(canonical)), build)

    def _locate(self, i: int) -> tuple[dict, int]:
        """(shard arrays, local read index) of global read ``i``."""
        shard = self.store.shard_of(int(i))
        return self.store.shard(shard), int(i) - int(self.store.record_starts[shard])

    # -- ReadSet protocol -------------------------------------------------

    def __len__(self) -> int:
        return self.store.n_records

    def codes_of(self, i: int) -> np.ndarray:
        arrays, local = self._locate(i)
        offsets = arrays["offsets"]
        return arrays["data"][int(offsets[local]) : int(offsets[local + 1])]

    def quals_of(self, i: int) -> np.ndarray | None:
        if not self.has_quals:
            return None
        arrays, local = self._locate(i)
        offsets = arrays["offsets"]
        lo, hi = int(offsets[local]), int(offsets[local + 1])
        if not bool(arrays["has_quals"]):
            return np.zeros(hi - lo, dtype=np.int64)
        return arrays["quals"][lo:hi].copy()

    # -- whole-store materialization (explicit; avoid in kernels) ---------

    def to_array(self) -> np.ndarray:
        """The full concatenated code array, loaded shard by shard.

        This is the *explicit* whole-store materialization — O(total
        bases) memory, bypassing the cache so it does not evict the
        working set.  Per-partition kernels must stream instead (lint
        rule MEM001 flags this call inside them).
        """
        if self._materialized is None:
            parts = [
                self.store.load_shard(s)["data"] for s in range(self.store.n_shards)
            ]
            self._materialized = (
                np.concatenate(parts) if parts else np.empty(0, dtype=np.uint8)
            )
            self._materialized.setflags(write=False)
        return self._materialized

    @property
    def data(self) -> np.ndarray:
        return self.to_array()

    @property
    def quals(self) -> np.ndarray | None:
        if not self.has_quals:
            return None
        if self._materialized_quals is None:
            total = int(self.offsets[-1])
            out = np.zeros(total, dtype=np.int64)
            for s in range(self.store.n_shards):
                arrays = self.store.load_shard(s)
                if bool(arrays["has_quals"]):
                    lo = int(self._base_bounds[s])
                    out[lo : lo + arrays["quals"].size] = arrays["quals"]
            self._materialized_quals = out
        return self._materialized_quals

    # -- flat-position access (the overlap engine's primitives) -----------

    def gather_bases(self, flat: np.ndarray) -> np.ndarray:
        flat = np.asarray(flat, dtype=np.int64)
        out = np.empty(flat.size, dtype=np.uint8)
        if flat.size == 0:
            return out
        shard_ids = np.searchsorted(self._base_bounds, flat, side="right") - 1
        for s in np.unique(shard_ids):
            mask = shard_ids == s
            data = self.store.shard(int(s))["data"]
            out[mask] = data[flat[mask] - int(self._base_bounds[s])]
        return out

    def base_span(self, lo: int, length: int) -> np.ndarray:
        shard = int(np.searchsorted(self._base_bounds, lo, side="right") - 1)
        local = int(lo) - int(self._base_bounds[shard])
        data = self.store.shard(shard)["data"]
        if local + length <= data.size:
            return data[local : local + length]
        # Defensive: a span crossing shards (cannot happen for in-read
        # spans, since reads never straddle shards).
        return self.gather_bases(np.arange(lo, lo + length, dtype=np.int64))

    # -- k-mer cache API (per-shard materialization) ----------------------

    def packed_kmers(self, k: int, canonical: bool = False) -> np.ndarray:
        """Whole-set packed k-mers — a whole-store materialization.

        Kept for API parity (byte-identical to the in-RAM cache); the
        streaming accessors :meth:`kmer_codes_of` / :meth:`kmer_table`
        never call it.
        """
        key = (int(k), bool(canonical))
        cached = self._kmer_cache.get(key)
        if cached is None:
            packer = canonical_kmer_codes if canonical else kmer_codes
            cached = packer(self.to_array(), k)
            cached.setflags(write=False)
            self._kmer_cache[key] = cached
        return cached

    def kmer_codes_of(self, i: int, k: int, canonical: bool = False) -> np.ndarray:
        shard = self.store.shard_of(int(i))
        arrays = self.store.shard(shard)
        offsets = arrays["offsets"]
        local = int(i) - int(self.store.record_starts[shard])
        lo = int(offsets[local])
        hi = int(offsets[local + 1]) - k + 1
        if hi <= lo:
            return np.empty(0, dtype=np.int64)
        return self._shard_kmers(shard, k, canonical)[lo:hi]

    def kmer_table(
        self,
        k: int,
        read_indices: np.ndarray | None = None,
        canonical: bool = False,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        if read_indices is None:
            idx = np.arange(len(self), dtype=np.int64)
        else:
            idx = np.asarray(read_indices, dtype=np.int64)
        starts = np.asarray(self.offsets[idx], dtype=np.int64)
        ends = np.asarray(self.offsets[idx + 1], dtype=np.int64)
        n_windows = np.maximum(ends - starts - k + 1, 0)
        total = int(n_windows.sum())
        if total == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy(), empty.copy()
        read_ids = np.repeat(idx, n_windows)
        group_starts = np.cumsum(n_windows) - n_windows
        within = np.arange(total, dtype=np.int64) - np.repeat(group_starts, n_windows)
        flat = np.repeat(starts, n_windows) + within
        read_shards = (
            np.searchsorted(self.store.record_starts, idx, side="right") - 1
        )
        window_shards = np.repeat(read_shards, n_windows)
        values = np.empty(total, dtype=np.int64)
        for s in np.unique(window_shards):
            mask = window_shards == s
            packed = self._shard_kmers(int(s), k, canonical)
            values[mask] = packed[flat[mask] - int(self._base_bounds[s])]
        return values, read_ids, within

    # -- preprocessing (streams into derived stores) ----------------------

    def _derived(self, tag: str, generate: Iterator[Read]) -> "ShardedReadSet":
        """Open-or-pack a derived store keyed by source digest + params."""
        dest = os.path.join(self.store_path, "derived", tag)
        try:
            return ShardedReadSet(dest, self.cache_budget)
        except ValueError:
            pass
        os.makedirs(dest, exist_ok=True)
        pack_reads(
            generate,
            dest,
            shard_size=self.store.manifest.shard_size,
            meta={"derived_from": self.store_fingerprint, "derived_tag": tag},
        )
        return ShardedReadSet(dest, self.cache_budget)

    def trimmed(
        self,
        trim5: int = 0,
        trim3: int = 0,
        window: int = 10,
        step: int = 1,
        min_quality: float = 20.0,
        min_length: int = 1,
    ) -> "ShardedReadSet":
        params = {
            "trim5": trim5,
            "trim3": trim3,
            "window": window,
            "step": step,
            "min_quality": min_quality,
            "min_length": min_length,
            "source": self.store_fingerprint,
        }
        digest = hashlib.sha256(
            json.dumps(params, sort_keys=True).encode("utf-8")
        ).hexdigest()[:12]

        def generate() -> Iterator[Read]:
            for i in range(len(self)):
                codes, quals = trim_read(
                    self.codes_of(i),
                    self.quals_of(i),
                    trim5=trim5,
                    trim3=trim3,
                    window=window,
                    step=step,
                    min_quality=min_quality,
                )
                if codes.size >= min_length:
                    yield Read(self.ids[i], codes.copy(), quals, self.meta[i])

        return self._derived(f"trim-{digest}", generate())

    def with_reverse_complements(self) -> "ShardedReadSet":
        def generate() -> Iterator[Read]:
            for i in range(len(self)):
                yield self[i]
            for i in range(len(self)):
                yield self[i].reverse_complement()

        return self._derived(f"rc-{self.store_fingerprint[:12]}", generate())
