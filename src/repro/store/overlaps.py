"""Sharded PackedOverlaps columns: the overlap list, out of core.

The vectorized overlap engine already speaks
:class:`~repro.align.overlap.PackedOverlaps` — seven parallel numpy
columns per batch.  This module shards those columns to disk so the
full overlap list of a 10^6+-read run never has to live in RAM at
once: :func:`pack_overlaps` appends batches as they are produced (one
work unit at a time), and :class:`ShardedOverlaps` streams them back
shard by shard through the common LRU cache.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

from repro.align.overlap import PackedOverlaps
from repro.store.manifest import StoreManifest
from repro.store.sharded import DEFAULT_CACHE_BUDGET, ShardedStore, ShardWriter

__all__ = ["OVERLAPS_KIND", "pack_overlaps", "ShardedOverlaps"]

OVERLAPS_KIND = "overlaps"

_COLUMNS = ("query", "ref", "q_start", "r_start", "length", "identity", "kind_code")


def _chunk(batch: PackedOverlaps, lo: int, hi: int) -> dict:
    return {
        name: np.ascontiguousarray(getattr(batch, name)[lo:hi])
        for name in _COLUMNS
    }


def pack_overlaps(
    batches: Iterable[PackedOverlaps],
    path: str | Path,
    shard_size: int = 1 << 16,
    compressed: bool = False,
    resume: bool = False,
    meta: dict | None = None,
) -> StoreManifest:
    """Stream PackedOverlaps batches into fixed-capacity column shards.

    Batches may be any size; rows are re-chunked to ``shard_size`` per
    shard, holding at most one shard of pending rows in memory.
    """
    writer = ShardWriter(
        path, OVERLAPS_KIND, shard_size, compressed=compressed, resume=resume
    )
    pending: list[dict] = []
    pending_rows = 0
    total_rows = 0

    def flush(rows: int) -> None:
        nonlocal pending, pending_rows
        if rows == 0:
            return
        arrays = {
            name: np.concatenate([p[name] for p in pending])
            if pending
            else np.empty(0)
            for name in _COLUMNS
        }
        writer.write_shard(arrays, rows)
        pending = []
        pending_rows = 0

    for batch in batches:
        lo = 0
        n = len(batch)
        while lo < n:
            take = min(n - lo, shard_size - pending_rows)
            pending.append(_chunk(batch, lo, lo + take))
            pending_rows += take
            total_rows += take
            lo += take
            if pending_rows >= shard_size:
                flush(pending_rows)
    flush(pending_rows)

    store_meta = {"n_overlaps": total_rows}
    if meta:
        store_meta.update(meta)
    return writer.finalize(store_meta)


class ShardedOverlaps:
    """Stream a sharded overlap store back as PackedOverlaps batches."""

    def __init__(
        self, path: str | Path, cache_budget: int = DEFAULT_CACHE_BUDGET
    ) -> None:
        self.store = ShardedStore(path, kind=OVERLAPS_KIND, cache_budget=cache_budget)

    def __len__(self) -> int:
        return self.store.n_records

    @property
    def n_shards(self) -> int:
        return self.store.n_shards

    def shard_batch(self, index: int) -> PackedOverlaps:
        arrays = self.store.shard(index)
        return PackedOverlaps(**{name: arrays[name] for name in _COLUMNS})

    def iter_batches(self) -> Iterator[PackedOverlaps]:
        for index in range(self.store.n_shards):
            yield self.shard_batch(index)

    def to_packed(self) -> PackedOverlaps:
        """Whole-store materialization (avoid inside kernels — MEM001)."""
        if self.store.n_shards == 0:
            return PackedOverlaps.empty()
        shards = [self.store.load_shard(s) for s in range(self.store.n_shards)]
        return PackedOverlaps(
            **{
                name: np.concatenate([sh[name] for sh in shards])
                for name in _COLUMNS
            }
        )
