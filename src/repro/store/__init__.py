"""Out-of-core sharded storage (docs/architecture.md, storage layer).

Fixed-capacity ``.npz`` shard files plus a manifest, served through a
byte-budgeted LRU cache, let every backend stream 10^6–10^7-read
datasets with peak memory O(shard), not O(dataset):

- :mod:`repro.store.cache` — the LRU byte-budget cache.
- :mod:`repro.store.manifest` — manifest format and fingerprints.
- :mod:`repro.store.sharded` — generic shard writer/reader.
- :mod:`repro.store.reads` — :func:`pack_reads` + :class:`ShardedReadSet`.
- :mod:`repro.store.overlaps` — sharded PackedOverlaps columns.
- :mod:`repro.store.graphs` — sharded overlap-graph pair tables.
- :mod:`repro.store.verify` — offline scrub (``repro verify-store``).
"""

from repro.store.cache import CacheStats, ShardCache
from repro.store.graphs import GRAPH_KIND, ShardedGraph, pack_graph
from repro.store.manifest import (
    MANIFEST_NAME,
    STORE_VERSION,
    ShardInfo,
    StoreManifest,
)
from repro.store.overlaps import OVERLAPS_KIND, ShardedOverlaps, pack_overlaps
from repro.store.reads import (
    DEFAULT_SHARD_SIZE,
    OFFSETS_NAME,
    READS_KIND,
    ShardedReadSet,
    pack_reads,
)
from repro.store.sharded import (
    DEFAULT_CACHE_BUDGET,
    ShardedStore,
    ShardWriter,
    shard_name,
)
from repro.store.verify import ShardReport, VerifyReport, verify_store

__all__ = [
    "CacheStats",
    "ShardCache",
    "ShardInfo",
    "StoreManifest",
    "STORE_VERSION",
    "MANIFEST_NAME",
    "ShardWriter",
    "ShardedStore",
    "shard_name",
    "DEFAULT_CACHE_BUDGET",
    "DEFAULT_SHARD_SIZE",
    "OFFSETS_NAME",
    "READS_KIND",
    "ShardedReadSet",
    "pack_reads",
    "OVERLAPS_KIND",
    "ShardedOverlaps",
    "pack_overlaps",
    "GRAPH_KIND",
    "ShardedGraph",
    "pack_graph",
    "ShardReport",
    "VerifyReport",
    "verify_store",
]
