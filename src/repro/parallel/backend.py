"""Execution backends for the distributed kernel/merge stages.

A backend takes a :class:`~repro.distributed.dgraph.\
DistributedAssemblyGraph` and executes registered stages
(:mod:`repro.distributed.stages`) against it.  Three implementations
cover the repo's execution modes:

``serial``
    An in-process loop: kernels run per partition on the calling
    thread, the merge applies immediately.  The baseline every other
    backend must match bit for bit (and that ``process`` must beat on
    wall-clock — see ``repro bench finish``).

``sim``
    The paper's virtual cluster: kernels run as SPMD rank functions on
    :class:`~repro.mpi.SimCluster` threads, producing the *virtual*
    elapsed times Fig. 6 plots.  Implemented in
    :mod:`repro.mpi.stage_backend` and resolved lazily here so the
    parallel layer carries no mpi import.

``process``
    Real OS parallelism: kernels ship to a ``fork``-context
    :class:`~concurrent.futures.ProcessPoolExecutor` whose workers
    inherit the enriched assembly copy-on-write.  Each task sends only
    the stage name, partition id, and current alive-masks, and returns
    plain numpy proposal arrays; the master merges in-process.  Tasks
    are submitted largest-partition-first (LPT order, shared with the
    overlap executor's scheduling policy) so stragglers don't drain
    the pool.

All three produce byte-identical contigs and alive-masks because the
kernels are pure and deterministic and merges consume proposals in
partition order — the backend only changes *where* kernels run and
which clock measures them.

Fault tolerance (docs/robustness.md): every backend wraps kernel
execution in a :class:`~repro.faults.RetryPolicy` — failed partitions
are retried with capped exponential backoff, the process backend
detects dead pools (a worker SIGKILLed mid-stage), respawns its
workers, and re-runs only the partitions that did not complete, and a
partition that exhausts its retry budget falls back to the in-process
serial loop.  Because kernels are pure, a failed attempt never leaves
partial state behind; merges only run once every proposal is in.  The
resulting contigs stay byte-identical to the fault-free serial run —
the invariant ``tests/faults/test_chaos_equivalence.py`` enforces.
"""

from __future__ import annotations

import concurrent.futures
import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.distributed.stages import ENGINES, StageSpec, get_stage
from repro.faults import (
    DeadlineExceededError,
    FaultInjector,
    FaultReport,
    RetryPolicy,
    StageExecutionError,
    apply_kernel_fault_in_worker,
)

__all__ = [
    "BACKEND_NAMES",
    "StageOutcome",
    "ExecutionBackend",
    "SerialBackend",
    "ProcessBackend",
    "create_backend",
    "partition_costs",
]

#: the recognised backend names, in documentation order.
BACKEND_NAMES = ("serial", "sim", "process")


@dataclass(frozen=True)
class StageOutcome:
    """Result of running one stage through a backend."""

    stage: str
    result: Any
    #: seconds on the backend's clock (wall or virtual).
    elapsed: float
    #: "wall" for serial/process, "virtual" for sim.
    time_kind: str
    #: fault activity during this stage (None only for legacy callers
    #: constructing outcomes by hand).
    faults: FaultReport | None = None


def partition_costs(dag) -> np.ndarray:
    """Estimated kernel cost per partition: its alive-node count."""
    labels = dag.labels[dag.node_alive]
    return np.bincount(labels, minlength=dag.n_parts).astype(np.float64)


class ExecutionBackend:
    """Base class: binds a distributed graph and runs stages on it.

    ``retry`` governs how kernel failures are handled (defaults to the
    standard :class:`~repro.faults.RetryPolicy`); ``injector``
    optionally injects deterministic faults from a
    :class:`~repro.faults.FaultPlan`.  ``fault_report`` accumulates
    activity across every stage run on this backend.  ``engine``
    selects the kernel implementation ("loop" or "sparse") for every
    stage run on this backend; ``run_stage(engine=...)`` overrides it
    per call.
    """

    name: str = ""
    time_kind: str = "wall"

    def __init__(
        self,
        dag,
        retry: RetryPolicy | None = None,
        injector: FaultInjector | None = None,
        engine: str = "loop",
    ) -> None:
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
        self.dag = dag
        self.retry = retry if retry is not None else RetryPolicy()
        self.injector = injector
        self.engine = engine
        self.fault_report = FaultReport()

    @staticmethod
    def _resolve(stage: StageSpec | str) -> StageSpec:
        return get_stage(stage) if isinstance(stage, str) else stage

    def _engine_spec(self, stage: StageSpec | str, engine: str | None) -> tuple[StageSpec, str]:
        """(engine-resolved spec, effective engine name) for one run.

        The sparse engine's mask-independent structure is primed on the
        master here, so sequential stages — and in-process fallbacks —
        share the one sorted build.
        """
        eng = engine if engine is not None else self.engine
        spec = self._resolve(stage).with_engine(eng)
        if eng == "sparse":
            self.dag.prime_sparse()
        return spec, eng

    def run_stage(
        self, stage: StageSpec | str, engine: str | None = None, **params
    ) -> StageOutcome:
        raise NotImplementedError

    def close(self) -> None:
        """Release backend resources (worker pools, clusters)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- shared retry machinery -----------------------------------------

    def _kernel_with_retry(
        self, spec: StageSpec, part: int, params: dict, report: FaultReport
    ):
        """Run one partition's kernel in-process under the retry policy.

        Kernels are pure, so a failed attempt leaves no state to roll
        back; injected faults surface as exceptions here (the worker
        crash / hang semantics belong to the process backend).  After
        the budget is exhausted the partition either falls back to one
        final un-injected in-process run (``fallback_serial``) or the
        stage fails with :class:`StageExecutionError`.
        """
        policy = self.retry
        where = f"part {part}"
        failures: list[str] = []
        attempt = 1
        while True:
            try:
                if self.injector is not None:
                    fault = self.injector.kernel_fault(spec.name, part, attempt)
                    if fault is not None:
                        report.record_injected(fault.kind, spec.name, where)
                    self.injector.fire_kernel_fault(spec.name, part, attempt)
                proposal = spec.kernel(self.dag, part, **params)
            except Exception as exc:  # noqa: BLE001 - recorded and re-raised below
                if isinstance(exc, DeadlineExceededError):
                    report.record_deadline(spec.name, where)
                failures.append(f"{where} attempt {attempt}: {exc}")
                if not policy.allows(attempt + 1):
                    if policy.fallback_serial:
                        report.record_fallback(spec.name, where)
                        return spec.kernel(self.dag, part, **params)
                    raise StageExecutionError(spec.name, attempt, failures) from exc
                report.record_retry(spec.name, where, type(exc).__name__)
                time.sleep(policy.backoff(attempt, token=part))
                attempt += 1
                continue
            if failures:
                report.record_recovery(spec.name, where)
            return proposal

    def _finish_outcome(
        self, spec: StageSpec, result, elapsed: float, report: FaultReport
    ) -> StageOutcome:
        """Merge the stage's fault activity and build the outcome."""
        self.fault_report.merge(report)
        return StageOutcome(
            stage=spec.name,
            result=result,
            elapsed=elapsed,
            time_kind=self.time_kind,
            faults=report,
        )


class SerialBackend(ExecutionBackend):
    """In-process loop over partitions; the equivalence baseline."""

    name = "serial"
    time_kind = "wall"

    def run_stage(
        self, stage: StageSpec | str, engine: str | None = None, **params
    ) -> StageOutcome:
        spec, _ = self._engine_spec(stage, engine)
        dag = self.dag
        report = FaultReport()
        t0 = time.perf_counter()
        proposals = [
            self._kernel_with_retry(spec, part, params, report)
            for part in range(dag.n_parts)
        ]
        result = spec.merge(dag, proposals, **params)
        return self._finish_outcome(spec, result, time.perf_counter() - t0, report)


#: per-worker state installed by the pool initializer (fork-inherited).
_WORKER: dict = {}


def _init_stage_worker(assembly, labels) -> None:
    """Prime one worker with its own distributed view of the graph.

    Under ``fork`` the (large, immutable) assembly is inherited
    copy-on-write; only this view object is constructed per worker.
    """
    from repro.distributed.dgraph import DistributedAssemblyGraph

    _WORKER["dag"] = DistributedAssemblyGraph(assembly, labels)


def _run_stage_task(
    stage_name: str,
    part: int,
    node_alive,
    edge_alive,
    params,
    plan,
    attempt,
    engine: str = "loop",
):
    """Execute one (stage, partition) kernel inside a worker process.

    The master's current alive-masks travel with the task (they are
    the only state stages mutate), so sequential stages see each
    other's removals without re-priming the pool.  ``plan``/``attempt``
    drive fault injection: a "crash" fault really SIGKILLs this
    worker, a "hang" really sleeps past the deadline.  ``engine``
    picks the kernel implementation; the sparse structure is primed
    once per worker and reused across tasks (it is mask-independent).
    """
    if plan is not None:
        apply_kernel_fault_in_worker(plan, stage_name, part, attempt)
    dag = _WORKER["dag"]
    dag.node_alive = node_alive
    dag.edge_alive = edge_alive
    if engine == "sparse":
        dag.prime_sparse()
    return get_stage(stage_name).kernel_for(engine)(dag, part, **params)


def _warmup_worker() -> int:
    return os.getpid()


def _pool_context():
    """Prefer ``fork`` (cheap copy-on-write inheritance of the graph)."""
    import multiprocessing

    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


class ProcessBackend(ExecutionBackend):
    """Kernels on real OS processes; merges on the calling process.

    The pool is created lazily on the first stage and reused across
    stages (workers are re-synchronised through the masks shipped with
    each task).  ``workers=0`` uses one process per partition, capped
    at the core count.

    Fault tolerance: each round submits every unfinished partition,
    collects results under the policy's per-task deadline, and reacts
    per failure class — a clean worker exception retries just that
    partition; a broken pool (worker SIGKILLed) or a missed deadline
    (hung worker) kills and respawns the pool and re-runs only the
    partitions that never completed.  A partition that exhausts its
    attempts (or a pool that keeps dying) falls back to the in-process
    serial loop, so the stage completes whenever the kernels themselves
    are sound.
    """

    name = "process"
    time_kind = "wall"

    def __init__(
        self,
        dag,
        workers: int = 0,
        retry: RetryPolicy | None = None,
        injector: FaultInjector | None = None,
        engine: str = "loop",
    ) -> None:
        super().__init__(dag, retry=retry, injector=injector, engine=engine)
        if workers < 0:
            raise ValueError("workers must be non-negative")
        cores = os.cpu_count() or 1
        self.n_workers = workers if workers > 0 else min(dag.n_parts, cores)
        self._pool: ProcessPoolExecutor | None = None

    @property
    def _plan(self):
        return self.injector.plan if self.injector is not None else None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            pool = ProcessPoolExecutor(
                max_workers=self.n_workers,
                mp_context=_pool_context(),
                initializer=_init_stage_worker,
                initargs=(self.dag.assembly, self.dag.labels),
            )
            # Spawn (and fork-prime) every worker up front so the fork
            # cost lands in backend setup, not in the first stage's
            # measured wall time.
            for f in [pool.submit(_warmup_worker) for _ in range(self.n_workers)]:
                f.result()
            self._pool = pool
        return self._pool

    def worker_pids(self) -> list[int]:
        """PIDs of the live pool workers (spawning the pool if needed)."""
        pool = self._ensure_pool()
        return sorted(pool._processes.keys())

    def _discard_pool(self, kill: bool) -> None:
        """Drop the current pool; ``kill`` SIGKILLs workers first.

        Killing is required for hung workers: ``shutdown`` alone would
        block behind (or leak) a worker sleeping past its deadline.
        ``_processes`` is private executor API, but it is the only
        handle to the worker processes and is stable across the
        supported Python versions.
        """
        pool, self._pool = self._pool, None
        if pool is None:
            return
        if kill:
            for proc in list((pool._processes or {}).values()):
                proc.kill()
        pool.shutdown(wait=not kill, cancel_futures=True)

    def run_stage(
        self, stage: StageSpec | str, engine: str | None = None, **params
    ) -> StageOutcome:
        spec, eng = self._engine_spec(stage, engine)
        dag = self.dag
        if dag.n_parts <= 1 or self.n_workers <= 1:
            # Nothing to parallelise: run in-process, same clock kind,
            # same retry/injection semantics.
            inner = SerialBackend(
                dag, retry=self.retry, injector=self.injector, engine=eng
            )
            outcome = inner.run_stage(spec, **params)
            self.fault_report.merge(inner.fault_report)
            return outcome
        report = FaultReport()
        t0 = time.perf_counter()
        proposals = self._collect_proposals(spec, params, report, eng)
        result = spec.merge(dag, proposals, **params)
        return self._finish_outcome(spec, result, time.perf_counter() - t0, report)

    def _collect_proposals(
        self, spec: StageSpec, params: dict, report: FaultReport, engine: str = "loop"
    ) -> list:
        """Run every partition's kernel to completion, surviving faults."""
        dag = self.dag
        policy = self.retry
        proposals: list = [None] * dag.n_parts
        attempt = {part: 1 for part in range(dag.n_parts)}
        failed_once: set[int] = set()
        failures: list[str] = []
        pending = set(range(dag.n_parts))
        respawns = 0
        # A pool that keeps dying stops being a useful execution
        # substrate regardless of which partition is at fault.
        max_respawns = max(policy.max_attempts, 2)

        while pending:
            over_budget = [p for p in sorted(pending) if not policy.allows(attempt[p])]
            for part in over_budget:
                if not policy.fallback_serial:
                    raise StageExecutionError(
                        spec.name, attempt[part] - 1, failures or ["worker pool failure"]
                    )
                report.record_fallback(spec.name, f"part {part}")
                proposals[part] = spec.kernel(dag, part, **params)
                pending.discard(part)
            if not pending:
                break
            if respawns > max_respawns:
                for part in sorted(pending):
                    if not policy.fallback_serial:
                        raise StageExecutionError(
                            spec.name,
                            attempt[part],
                            failures + ["worker pool kept dying"],
                        )
                    report.record_fallback(spec.name, f"part {part}")
                    proposals[part] = spec.kernel(dag, part, **params)
                pending.clear()
                break

            pool = self._ensure_pool()
            costs = partition_costs(dag)
            submit_order = [
                p for p in np.argsort(-costs, kind="stable").tolist() if p in pending
            ]
            expected = {
                part: (
                    self.injector.kernel_fault(spec.name, part, attempt[part])
                    if self.injector is not None
                    else None
                )
                for part in submit_order
            }
            try:
                futures = {
                    part: pool.submit(
                        _run_stage_task,
                        spec.name,
                        part,
                        dag.node_alive,
                        dag.edge_alive,
                        params,
                        self._plan,
                        attempt[part],
                        engine,
                    )
                    for part in submit_order
                }
            except BrokenProcessPool:
                # A worker died while the pool was idle (e.g. an external
                # kill -9 between stages): the break only surfaces at
                # submit time.  Respawn and re-run the round; attempts
                # are not charged because no kernel ever started.
                self._discard_pool(kill=False)
                report.record_respawn(spec.name, "broken process pool at submit")
                respawns += 1
                continue
            pool_down = False
            round_failed = False
            for part in sorted(futures):
                if pool_down:
                    break  # remaining futures died with the pool
                where = f"part {part}"
                try:
                    proposals[part] = futures[part].result(
                        timeout=policy.task_deadline
                    )
                except concurrent.futures.TimeoutError:
                    # Hung worker: only a pool kill can reclaim it.  The
                    # timeout may surface on an innocent partition queued
                    # behind the hung one, so charge the failure to every
                    # pending partition with an expected hang (plus the
                    # one that timed out, hung or just queue-starved).
                    round_failed = True
                    report.record_deadline(spec.name, where)
                    blamed = {part} | {
                        p
                        for p in pending
                        if expected.get(p) is not None
                        and expected[p].kind == "hang"
                    }
                    for p in sorted(blamed):
                        if expected.get(p) is not None:
                            report.record_injected(
                                expected[p].kind, spec.name, f"part {p}"
                            )
                        failures.append(
                            f"part {p} attempt {attempt[p]}: task deadline "
                            f"({policy.task_deadline}s) exceeded"
                        )
                        report.record_retry(
                            spec.name, f"part {p}", "DeadlineExceeded"
                        )
                        attempt[p] += 1
                        failed_once.add(p)
                    self._discard_pool(kill=True)
                    report.record_respawn(spec.name, "task deadline exceeded")
                    respawns += 1
                    pool_down = True
                except BrokenProcessPool:
                    # A worker died (injected SIGKILL or an external
                    # kill -9): every in-flight future is lost.  Charge
                    # the crash to every pending partition whose plan
                    # entry injected one (the broken pool surfaces on
                    # whichever future is collected first, not
                    # necessarily the partition that crashed).
                    round_failed = True
                    for p in sorted(pending):
                        fault = expected.get(p)
                        if fault is not None and fault.kind == "crash":
                            report.record_injected("crash", spec.name, f"part {p}")
                            failures.append(
                                f"part {p} attempt {attempt[p]}: worker crashed"
                            )
                            report.record_retry(spec.name, f"part {p}", "WorkerCrash")
                            attempt[p] += 1
                            failed_once.add(p)
                    self._discard_pool(kill=False)
                    report.record_respawn(spec.name, "broken process pool")
                    respawns += 1
                    pool_down = True
                except Exception as exc:  # noqa: BLE001 - recorded, retried below
                    # The task itself raised (transient kernel error):
                    # the pool is still healthy, keep collecting.
                    round_failed = True
                    if expected.get(part) is not None:
                        report.record_injected(
                            expected[part].kind, spec.name, where
                        )
                    failures.append(f"{where} attempt {attempt[part]}: {exc}")
                    report.record_retry(spec.name, where, type(exc).__name__)
                    attempt[part] += 1
                    failed_once.add(part)
                else:
                    pending.discard(part)
                    if part in failed_once:
                        report.record_recovery(spec.name, where)
            if round_failed and pending:
                time.sleep(
                    policy.backoff(min(attempt.values()), token=min(pending))
                )
        return proposals

    def close(self) -> None:
        self._discard_pool(kill=False)


def create_backend(
    name: str,
    dag,
    *,
    workers: int = 0,
    cost_model=None,
    sanitize: bool = False,
    retry: RetryPolicy | None = None,
    injector: FaultInjector | None = None,
    engine: str = "loop",
) -> ExecutionBackend:
    """Instantiate a backend by name for one distributed graph.

    ``workers`` only affects ``process``; ``cost_model`` and
    ``sanitize`` only affect ``sim``.  ``retry``, ``injector``, and
    ``engine`` (the finish-kernel implementation) apply to every
    backend.
    """
    if name == "serial":
        return SerialBackend(dag, retry=retry, injector=injector, engine=engine)
    if name == "process":
        return ProcessBackend(
            dag, workers=workers, retry=retry, injector=injector, engine=engine
        )
    if name == "sim":
        # The sim adapter lives in the mpi layer; imported lazily so
        # repro.parallel itself never depends on repro.mpi.
        from repro.mpi.stage_backend import SimBackend

        return SimBackend(
            dag,
            cost_model=cost_model,
            sanitize=sanitize,
            retry=retry,
            injector=injector,
            engine=engine,
        )
    raise ValueError(f"unknown backend {name!r}; expected one of {BACKEND_NAMES}")
