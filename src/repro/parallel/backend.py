"""Execution backends for the distributed kernel/merge stages.

A backend takes a :class:`~repro.distributed.dgraph.\
DistributedAssemblyGraph` and executes registered stages
(:mod:`repro.distributed.stages`) against it.  Three implementations
cover the repo's execution modes:

``serial``
    An in-process loop: kernels run per partition on the calling
    thread, the merge applies immediately.  The baseline every other
    backend must match bit for bit (and that ``process`` must beat on
    wall-clock — see ``repro bench finish``).

``sim``
    The paper's virtual cluster: kernels run as SPMD rank functions on
    :class:`~repro.mpi.SimCluster` threads, producing the *virtual*
    elapsed times Fig. 6 plots.  Implemented in
    :mod:`repro.mpi.stage_backend` and resolved lazily here so the
    parallel layer carries no mpi import.

``process``
    Real OS parallelism: kernels ship to a ``fork``-context
    :class:`~concurrent.futures.ProcessPoolExecutor` whose workers
    inherit the enriched assembly copy-on-write.  Each task sends only
    the stage name, partition id, and current alive-masks, and returns
    plain numpy proposal arrays; the master merges in-process.  Tasks
    are submitted largest-partition-first (LPT order, shared with the
    overlap executor's scheduling policy) so stragglers don't drain
    the pool.

All three produce byte-identical contigs and alive-masks because the
kernels are pure and deterministic and merges consume proposals in
partition order — the backend only changes *where* kernels run and
which clock measures them.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.distributed.stages import StageSpec, get_stage

__all__ = [
    "BACKEND_NAMES",
    "StageOutcome",
    "ExecutionBackend",
    "SerialBackend",
    "ProcessBackend",
    "create_backend",
    "partition_costs",
]

#: the recognised backend names, in documentation order.
BACKEND_NAMES = ("serial", "sim", "process")


@dataclass(frozen=True)
class StageOutcome:
    """Result of running one stage through a backend."""

    stage: str
    result: Any
    #: seconds on the backend's clock (wall or virtual).
    elapsed: float
    #: "wall" for serial/process, "virtual" for sim.
    time_kind: str


def partition_costs(dag) -> np.ndarray:
    """Estimated kernel cost per partition: its alive-node count."""
    labels = dag.labels[dag.node_alive]
    return np.bincount(labels, minlength=dag.n_parts).astype(np.float64)


class ExecutionBackend:
    """Base class: binds a distributed graph and runs stages on it."""

    name: str = ""
    time_kind: str = "wall"

    def __init__(self, dag) -> None:
        self.dag = dag

    @staticmethod
    def _resolve(stage: StageSpec | str) -> StageSpec:
        return get_stage(stage) if isinstance(stage, str) else stage

    def run_stage(self, stage: StageSpec | str, **params) -> StageOutcome:
        raise NotImplementedError

    def close(self) -> None:
        """Release backend resources (worker pools, clusters)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SerialBackend(ExecutionBackend):
    """In-process loop over partitions; the equivalence baseline."""

    name = "serial"
    time_kind = "wall"

    def run_stage(self, stage: StageSpec | str, **params) -> StageOutcome:
        spec = self._resolve(stage)
        dag = self.dag
        t0 = time.perf_counter()
        proposals = [
            spec.kernel(dag, part, **params) for part in range(dag.n_parts)
        ]
        result = spec.merge(dag, proposals, **params)
        return StageOutcome(
            stage=spec.name,
            result=result,
            elapsed=time.perf_counter() - t0,
            time_kind=self.time_kind,
        )


#: per-worker state installed by the pool initializer (fork-inherited).
_WORKER: dict = {}


def _init_stage_worker(assembly, labels) -> None:
    """Prime one worker with its own distributed view of the graph.

    Under ``fork`` the (large, immutable) assembly is inherited
    copy-on-write; only this view object is constructed per worker.
    """
    from repro.distributed.dgraph import DistributedAssemblyGraph

    _WORKER["dag"] = DistributedAssemblyGraph(assembly, labels)


def _run_stage_task(stage_name: str, part: int, node_alive, edge_alive, params):
    """Execute one (stage, partition) kernel inside a worker process.

    The master's current alive-masks travel with the task (they are
    the only state stages mutate), so sequential stages see each
    other's removals without re-priming the pool.
    """
    dag = _WORKER["dag"]
    dag.node_alive = node_alive
    dag.edge_alive = edge_alive
    return get_stage(stage_name).kernel(dag, part, **params)


def _warmup_worker() -> int:
    return os.getpid()


def _pool_context():
    """Prefer ``fork`` (cheap copy-on-write inheritance of the graph)."""
    import multiprocessing

    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


class ProcessBackend(ExecutionBackend):
    """Kernels on real OS processes; merges on the calling process.

    The pool is created lazily on the first stage and reused across
    stages (workers are re-synchronised through the masks shipped with
    each task).  ``workers=0`` uses one process per partition, capped
    at the core count.
    """

    name = "process"
    time_kind = "wall"

    def __init__(self, dag, workers: int = 0) -> None:
        super().__init__(dag)
        if workers < 0:
            raise ValueError("workers must be non-negative")
        cores = os.cpu_count() or 1
        self.n_workers = workers if workers > 0 else min(dag.n_parts, cores)
        self._pool: ProcessPoolExecutor | None = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            pool = ProcessPoolExecutor(
                max_workers=self.n_workers,
                mp_context=_pool_context(),
                initializer=_init_stage_worker,
                initargs=(self.dag.assembly, self.dag.labels),
            )
            # Spawn (and fork-prime) every worker up front so the fork
            # cost lands in backend setup, not in the first stage's
            # measured wall time.
            for f in [pool.submit(_warmup_worker) for _ in range(self.n_workers)]:
                f.result()
            self._pool = pool
        return self._pool

    def run_stage(self, stage: StageSpec | str, **params) -> StageOutcome:
        spec = self._resolve(stage)
        dag = self.dag
        if dag.n_parts <= 1 or self.n_workers <= 1:
            # Nothing to parallelise: run in-process, same clock kind.
            return SerialBackend(dag).run_stage(spec, **params)
        pool = self._ensure_pool()
        t0 = time.perf_counter()
        costs = partition_costs(dag)
        submit_order = np.argsort(-costs, kind="stable").tolist()
        futures = {
            part: pool.submit(
                _run_stage_task,
                spec.name,
                part,
                dag.node_alive,
                dag.edge_alive,
                params,
            )
            for part in submit_order
        }
        proposals = [futures[part].result() for part in range(dag.n_parts)]
        result = spec.merge(dag, proposals, **params)
        return StageOutcome(
            stage=spec.name,
            result=result,
            elapsed=time.perf_counter() - t0,
            time_kind=self.time_kind,
        )

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None


def create_backend(
    name: str,
    dag,
    *,
    workers: int = 0,
    cost_model=None,
    sanitize: bool = False,
) -> ExecutionBackend:
    """Instantiate a backend by name for one distributed graph.

    ``workers`` only affects ``process``; ``cost_model`` and
    ``sanitize`` only affect ``sim``.
    """
    if name == "serial":
        return SerialBackend(dag)
    if name == "process":
        return ProcessBackend(dag, workers=workers)
    if name == "sim":
        # The sim adapter lives in the mpi layer; imported lazily so
        # repro.parallel itself never depends on repro.mpi.
        from repro.mpi.stage_backend import SimBackend

        return SimBackend(dag, cost_model=cost_model, sanitize=sanitize)
    raise ValueError(f"unknown backend {name!r}; expected one of {BACKEND_NAMES}")
