"""ProcessPoolExecutor-backed execution of overlap work units.

Each subset pair of the overlap stage is an independent work unit
(paper §II-B); this module runs them on real OS processes.  Workers are
primed once with the (config, reads) pair via the pool initializer —
under the ``fork`` start method the read set is inherited copy-on-write
and never pickled — and each task ships only its ``(i, j)`` pair ids
out and a :class:`~repro.align.overlap.PackedOverlaps` column batch
back, so inter-process traffic stays flat in the number of overlaps.

Work units are submitted largest-first (LPT order, estimated cost
``|Q|·|R|``, self-pairs halved) so the big tasks never arrive last and
leave the pool draining on one straggler.  Results are merged in
canonical ``subset_pairs`` order, making the output list identical to
the serial driver's.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.align.overlap import Overlap, PackedOverlaps
from repro.io.readset import ReadSet

__all__ = ["ExecutorStats", "run_subset_pairs"]

#: per-worker state installed by the pool initializer.
_WORKER: dict = {}


@dataclass(frozen=True)
class ExecutorStats:
    """Accounting of one multiprocess overlap run."""

    n_workers: int
    n_tasks: int
    candidates: int
    overlaps: int


def _init_worker(config, reads: ReadSet) -> None:
    """Prime one worker process: detector + subset split, computed once.

    A shard-backed ReadSet is re-opened by store path (``reopen``), so
    the worker reads shards from disk through its own cold cache
    instead of retaining the parent's mapped arrays or cache contents
    inherited over ``fork`` — worker RSS stays O(cache budget).
    """
    from repro.align.overlapper import OverlapDetector

    if hasattr(reads, "reopen"):
        reads = reads.reopen()
    _WORKER["detector"] = OverlapDetector(config)
    _WORKER["reads"] = reads
    _WORKER["subsets"] = reads.split(config.n_subsets)
    _WORKER["ref_indexes"] = {}
    _WORKER["query_batches"] = {}


def _run_pair(pair: tuple[int, int]) -> tuple[PackedOverlaps, int]:
    """Execute one subset-pair work unit inside a worker process.

    Reference-subset indexes and query-subset k-mer batches are cached
    per worker, so a worker that draws several pairs sharing a subset
    prepares it once.
    """
    i, j = pair
    detector, reads, subsets = _WORKER["detector"], _WORKER["reads"], _WORKER["subsets"]
    index = _WORKER["ref_indexes"].get(j)
    if index is None:
        index = _WORKER["ref_indexes"][j] = detector._build_index(reads, subsets[j])
    batch = None
    if detector.config.engine != "loop":
        batch = _WORKER["query_batches"].get(i)
        if batch is None:
            batch = _WORKER["query_batches"][i] = detector._query_batch(
                reads, subsets[i]
            )
    return detector.overlap_subset_pair_packed(
        reads, subsets[i], subsets[j], same_subset=(i == j),
        index=index, query_batch=batch,
    )


def _pool_context():
    """Prefer ``fork`` (cheap copy-on-write inheritance of the reads)."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


def run_subset_pairs(
    config, reads: ReadSet, n_workers: int
) -> tuple[list[Overlap], ExecutorStats]:
    """All pairwise overlaps of ``reads`` across ``n_workers`` processes.

    Returns the merged overlap list — identical, element for element,
    to ``OverlapDetector(config).find_overlaps(reads)`` — plus run
    accounting.  ``n_workers <= 1`` short-circuits to in-process serial
    execution (no pool is spawned).
    """
    from repro.align.overlapper import OverlapDetector, subset_pairs
    from repro.parallel.schedule import subset_pair_costs

    if n_workers < 0:
        raise ValueError("n_workers must be non-negative")
    subsets = reads.split(config.n_subsets)
    pairs = subset_pairs(len(subsets))

    if n_workers <= 1 or len(pairs) == 1:
        detector = OverlapDetector(config)
        overlaps = detector.find_overlaps(reads)
        return overlaps, ExecutorStats(
            n_workers=1,
            n_tasks=len(pairs),
            candidates=detector.last_candidates,
            overlaps=len(overlaps),
        )

    costs = subset_pair_costs(pairs, np.array([s.size for s in subsets]))
    submit_order = np.argsort(-costs, kind="stable").tolist()

    packed_by_task: dict[int, tuple[PackedOverlaps, int]] = {}
    max_workers = min(n_workers, len(pairs))
    with ProcessPoolExecutor(
        max_workers=max_workers,
        mp_context=_pool_context(),
        initializer=_init_worker,
        initargs=(config, reads),
    ) as pool:
        futures = {
            task: pool.submit(_run_pair, pairs[task]) for task in submit_order
        }
        for task, future in futures.items():
            packed_by_task[task] = future.result()

    overlaps: list[Overlap] = []
    n_candidates = 0
    for task in range(len(pairs)):
        packed, nc = packed_by_task[task]
        overlaps.extend(packed.to_overlaps())
        n_candidates += nc
    return overlaps, ExecutorStats(
        n_workers=max_workers,
        n_tasks=len(pairs),
        candidates=n_candidates,
        overlaps=len(overlaps),
    )
