"""Static assignment of subset-pair work units to workers.

Subset-pair alignment tasks have predictable cost: candidate
generation and verification scale with the number of query/reference
read combinations, so a pair ``(i, j)`` is estimated at ``|Q|·|R|``
(halved for self-pairs, which only evaluate ordered combinations).
Largest-processing-time (LPT) list scheduling on those estimates gives
a provably 4/3-competitive makespan and measurably tighter rank balance
than blind round-robin — see ``tests/parallel/test_schedule.py`` for
the D1 imbalance comparison.
"""

from __future__ import annotations

import heapq
from collections.abc import Sequence

import numpy as np

__all__ = [
    "subset_pair_costs",
    "lpt_assignment",
    "round_robin_assignment",
    "assignment_imbalance",
]


def subset_pair_costs(
    pairs: Sequence[tuple[int, int]], subset_sizes: np.ndarray
) -> np.ndarray:
    """Estimated cost of each subset-pair work unit.

    ``|Q|·|R|`` read combinations per pair; self-pairs are halved
    because only ordered (q < r) combinations are evaluated.
    """
    sizes = np.asarray(subset_sizes, dtype=np.float64)
    costs = np.empty(len(pairs), dtype=np.float64)
    for t, (i, j) in enumerate(pairs):
        cost = sizes[i] * sizes[j]
        costs[t] = cost / 2.0 if i == j else cost
    return costs


def lpt_assignment(costs: np.ndarray, n_workers: int) -> np.ndarray:
    """Worker id per task under longest-processing-time list scheduling.

    Tasks are assigned largest-first to the currently least-loaded
    worker (ties broken by lowest worker id, then lowest task index),
    which is deterministic: every rank of a simulated cluster computes
    the identical assignment locally with no communication.
    """
    costs = np.asarray(costs, dtype=np.float64)
    if n_workers < 1:
        raise ValueError("n_workers must be >= 1")
    if (costs < 0).any():
        raise ValueError("costs must be non-negative")
    owner = np.zeros(costs.size, dtype=np.int64)
    if costs.size == 0:
        return owner
    loads = [(0.0, w) for w in range(min(n_workers, int(costs.size)))]
    heapq.heapify(loads)
    order = np.argsort(-costs, kind="stable")
    for task in order.tolist():
        load, worker = heapq.heappop(loads)
        owner[task] = worker
        heapq.heappush(loads, (load + float(costs[task]), worker))
    return owner


def round_robin_assignment(n_tasks: int, n_workers: int) -> np.ndarray:
    """Worker id per task under blind round-robin (the legacy policy)."""
    if n_workers < 1:
        raise ValueError("n_workers must be >= 1")
    return np.arange(n_tasks, dtype=np.int64) % n_workers


def assignment_imbalance(costs: np.ndarray, owner: np.ndarray, n_workers: int) -> float:
    """max/mean per-worker load of an assignment (1.0 = perfectly even)."""
    costs = np.asarray(costs, dtype=np.float64)
    loads = np.zeros(n_workers, dtype=np.float64)
    np.add.at(loads, np.asarray(owner, dtype=np.int64), costs)
    mean = loads.mean()
    if mean == 0:
        return 1.0
    return float(loads.max() / mean)
