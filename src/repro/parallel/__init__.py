"""Real (OS-process) parallel execution of assembly work units.

The simulated-MPI layer (``repro.mpi``) models a cluster on threads and
a virtual clock; this package runs the same independent work units on
actual cores via :class:`concurrent.futures.ProcessPoolExecutor`.  Both
layers share the scheduling helpers in :mod:`repro.parallel.schedule`.

Two executor families live here:

- :mod:`repro.parallel.executor` — subset-pair overlap work units for
  the alignment stage;
- :mod:`repro.parallel.backend` — the backend abstraction for the
  distributed kernel/merge stages (``serial`` / ``sim`` / ``process``),
  selected per run via ``AssemblyConfig.backend``.
"""

from repro.parallel.backend import (
    BACKEND_NAMES,
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    StageOutcome,
    create_backend,
    partition_costs,
)
from repro.parallel.executor import ExecutorStats, run_subset_pairs
from repro.parallel.schedule import (
    assignment_imbalance,
    lpt_assignment,
    round_robin_assignment,
    subset_pair_costs,
)

__all__ = [
    "subset_pair_costs",
    "lpt_assignment",
    "round_robin_assignment",
    "assignment_imbalance",
    "run_subset_pairs",
    "ExecutorStats",
    "BACKEND_NAMES",
    "StageOutcome",
    "ExecutionBackend",
    "SerialBackend",
    "ProcessBackend",
    "create_backend",
    "partition_costs",
]
