"""Real (OS-process) parallel execution of assembly work units.

The simulated-MPI layer (``repro.mpi``) models a cluster on threads and
a virtual clock; this package runs the same independent work units on
actual cores via :class:`concurrent.futures.ProcessPoolExecutor`.  Both
layers share the scheduling helpers in :mod:`repro.parallel.schedule`.
"""

from repro.parallel.schedule import (
    assignment_imbalance,
    lpt_assignment,
    round_robin_assignment,
    subset_pair_costs,
)
from repro.parallel.executor import ExecutorStats, run_subset_pairs

__all__ = [
    "subset_pair_costs",
    "lpt_assignment",
    "round_robin_assignment",
    "assignment_imbalance",
    "run_subset_pairs",
    "ExecutorStats",
]
