"""The Focus assembler pipeline (paper §II).

``FocusAssembler.assemble`` runs the six component steps end to end:
read preprocessing, read alignment, multilevel graph set generation,
hybrid graph set generation, hybrid graph trimming, and hybrid graph
traversal — with the distributed stages executed over the configured
number of graph partitions on the configured execution backend
(``serial`` in-process loop, ``sim``ulated MPI cluster with virtual
clocks, or real OS ``process`` workers — see docs/architecture.md).

The pipeline is split into :meth:`FocusAssembler.prepare` (everything
up to and including the hybrid graph — independent of the partition
count) and :meth:`FocusAssembler.finish` (partition, trim, traverse,
contigs), so benchmarks can sweep partition counts without re-aligning
reads.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

from repro.align.overlapper import OverlapDetector
from repro.core.config import AssemblyConfig
from repro.core.pipeline import StageTimer
from repro.core.stats import AssemblyStats
from repro.distributed.dgraph import DistributedAssemblyGraph, HybridAssembly, enrich_hybrid
from repro.distributed.traversal import contigs_from_paths
from repro.faults import FaultInjector, FaultReport
from repro.io.store import CheckpointState, load_checkpoint, save_checkpoint
from repro.graph.coarsen import MultilevelGraphSet, build_multilevel_set
from repro.graph.hybrid import HybridGraphSet, build_hybrid_set
from repro.graph.overlap_graph import OverlapGraph
from repro.io.readset import ReadSet
from repro.mpi.timing import CommCostModel
from repro.parallel.backend import create_backend
from repro.partition.multilevel import (
    PartitionResult,
    partition_via_hybrid,
    partition_via_multilevel,
)
from repro.sequence.dna import decode, reverse_complement

__all__ = ["PreparedAssembly", "AssemblyResult", "FocusAssembler", "deduplicate_contigs"]


def deduplicate_contigs(
    contigs: list[np.ndarray], min_identity: float = 0.98
) -> list[np.ndarray]:
    """Drop contigs that duplicate another up to reverse complement.

    With reverse-complement-augmented reads every genomic region
    assembles twice (once per strand).  The mirror assemblies are built
    from independent consensus calls, so they can differ by a few
    bases or an end offset — containment is therefore checked by
    k-mer-anchored placement at ``min_identity``, not exact substring
    match.  The longer spelling of each mirrored/contained group wins.
    """
    from repro.analysis.mapping import SequenceMapper

    order = sorted(range(len(contigs)), key=lambda i: -contigs[i].size)
    kept: list[np.ndarray] = []
    kept_strings: list[str] = []
    mapper: SequenceMapper | None = None
    mapper_size = 0
    for i in order:
        contig = contigs[i]
        seq = decode(contig)
        rc = decode(reverse_complement(contig))
        # Fast path: exact containment.
        if any(seq in k or rc in k for k in kept_strings):
            continue
        # Near-duplicate path: placement on a kept contig at >= 98%.
        if kept and contig.size >= 64:
            if mapper is None or mapper_size != len(kept):
                mapper = SequenceMapper(kept, k=21)
                mapper_size = len(kept)
            hit = mapper.place(contig, min_identity=min_identity, min_votes=3)
            if hit is not None:
                continue
        kept.append(contig)
        kept_strings.append(seq)
        mapper = None  # rebuilt lazily on next candidate
    return kept


@dataclass
class PreparedAssembly:
    """Partition-count-independent intermediate state of a Focus run."""

    reads: ReadSet
    g0: OverlapGraph
    mls: MultilevelGraphSet
    hyb: HybridGraphSet
    assembly: HybridAssembly
    timer: StageTimer


@dataclass
class AssemblyResult:
    """Everything an assembly run produced, for analysis and benches."""

    contigs: list[np.ndarray]
    stats: AssemblyStats
    timer: StageTimer
    #: per-distributed-stage seconds on the backend's clock — virtual
    #: (simulated-cluster) for the "sim" backend, wall otherwise.
    virtual_times: dict[str, float]
    processed_reads: ReadSet
    g0: OverlapGraph
    mls: MultilevelGraphSet
    hyb: HybridGraphSet
    assembly: HybridAssembly
    dag: DistributedAssemblyGraph
    partition: PartitionResult
    paths: list[list[int]] = field(default_factory=list)
    #: execution backend the distributed stages ran on.
    backend: str = "sim"
    #: finish-kernel implementation the cleaning stages used.
    engine: str = "loop"
    #: clock kind of ``virtual_times``: "virtual" or "wall".
    time_kind: str = "virtual"
    #: cumulative fault-injection/retry/recovery accounting from the
    #: distributed backend (no activity recorded on a clean run).
    fault_report: FaultReport | None = None

    @property
    def stage_times(self) -> dict[str, float]:
        """Alias for :attr:`virtual_times` (clock kind in ``time_kind``)."""
        return self.virtual_times

    @property
    def read_partitions(self) -> np.ndarray:
        """Partition id of every processed read (via its hybrid node)."""
        return self.partition.labels_finest[self.hyb.base_maps[0]]

    def contig_sequences(self) -> list[str]:
        return [decode(c) for c in self.contigs]


class FocusAssembler:
    """End-to-end Focus assembly on the simulated cluster."""

    def __init__(
        self,
        config: AssemblyConfig | None = None,
        cost_model: CommCostModel | None = None,
    ) -> None:
        self.config = config or AssemblyConfig()
        self.cost_model = cost_model or CommCostModel()

    # -- stages ----------------------------------------------------------

    def preprocess(self, reads: ReadSet) -> ReadSet:
        cfg = self.config
        out = reads.trimmed(
            trim5=cfg.trim5,
            trim3=cfg.trim3,
            window=cfg.quality_window,
            step=cfg.quality_step,
            min_quality=cfg.min_quality,
            min_length=cfg.min_read_length,
        )
        if cfg.add_reverse_complements:
            out = out.with_reverse_complements()
        return out

    def prepare(self, reads: ReadSet) -> PreparedAssembly:
        """Preprocess, align, and build the graph structures."""
        cfg = self.config
        timer = StageTimer()
        with timer.stage("preprocess"):
            rs = self.preprocess(reads)
        if len(rs) == 0:
            raise ValueError("no reads survived preprocessing")
        with timer.stage("align"):
            detector = OverlapDetector(cfg.overlap)
            if cfg.overlap_workers > 1:
                overlaps = detector.find_overlaps_processes(rs, cfg.overlap_workers)
            else:
                overlaps = detector.find_overlaps(rs)
        with timer.stage("overlap_graph"):
            g0 = OverlapGraph.from_overlaps(overlaps, len(rs))
        with timer.stage("coarsen"):
            mls = build_multilevel_set(g0, cfg.coarsen)
        with timer.stage("hybrid"):
            hyb = build_hybrid_set(mls, rs.lengths, tolerance=cfg.layout_tolerance)
        with timer.stage("enrich"):
            assembly = enrich_hybrid(
                hyb,
                g0,
                rs,
                tolerance=cfg.layout_tolerance,
                quality_weighted=cfg.quality_weighted_consensus,
            )
        return PreparedAssembly(
            reads=rs, g0=g0, mls=mls, hyb=hyb, assembly=assembly, timer=timer
        )

    def _hybrid_labels(
        self, result: PartitionResult, hyb: HybridGraphSet
    ) -> np.ndarray:
        """Partition label per hybrid node, whatever mode produced it."""
        if result.labels_finest.size == hyb.hybrid.n_nodes:
            return result.labels_finest
        # multilevel mode: labels live on G0; vote per hybrid cluster.
        k = result.k
        votes = np.zeros((hyb.hybrid.n_nodes, k), dtype=np.int64)
        np.add.at(votes, (hyb.base_maps[0], result.labels_g0), 1)
        return votes.argmax(axis=1).astype(np.int64)

    def _fingerprint(self, prep: PreparedAssembly, k: int, mode: str) -> dict:
        """Run identity recorded in checkpoints: a resume against a
        checkpoint from a different input or configuration is refused.

        For shard-backed reads the store manifest digest is included
        (``store``), so resuming against a store whose shards changed
        underneath the checkpoint is refused too; in-RAM read sets
        record ``None``.
        """
        cfg = self.config
        return {
            "n_reads": len(prep.reads),
            "store": getattr(prep.reads, "store_fingerprint", None),
            "n_hybrid_nodes": int(prep.hyb.hybrid.n_nodes),
            "n_partitions": int(k),
            "partition_mode": mode,
            "run_trimming": bool(cfg.run_trimming),
            "transitive_tolerance": int(cfg.transitive_tolerance),
            "containment_min_overlap": int(cfg.containment_min_overlap),
            "containment_min_identity": float(cfg.containment_min_identity),
            "max_tip_bases": int(cfg.max_tip_bases),
            "seed": int(cfg.seed),
        }

    def finish(
        self,
        prep: PreparedAssembly,
        n_partitions: int | None = None,
        partition_mode: str | None = None,
        backend: str | None = None,
        engine: str | None = None,
        checkpoint: str | os.PathLike | None = None,
        resume: bool = False,
        on_stage=None,
    ) -> AssemblyResult:
        """Partition, trim, traverse, and build contigs.

        May be called repeatedly on one :class:`PreparedAssembly` with
        different partition counts/modes/backends; each call works on a
        fresh distributed view.  The distributed stages execute on the
        configured backend (``serial``, ``sim``, or ``process``) —
        contigs are byte-identical across backends; only where the
        kernels run and which clock fills ``virtual_times`` changes.
        ``engine`` overrides ``config.finish_engine`` ("loop" or
        "sparse"); both engines propose identical removals, so it is
        likewise excluded from the checkpoint fingerprint — a
        checkpoint written by one engine resumes under the other.

        With ``checkpoint`` set, the alive-masks and completed-stage
        list are persisted (atomically) after every distributed stage;
        ``resume=True`` restores that state and re-runs only the
        stages that had not completed.  A checkpoint whose fingerprint
        does not match the current run is rejected with
        :class:`ValueError`; a missing checkpoint file simply starts
        from the beginning.  Restored stages keep their recorded times
        in :attr:`AssemblyResult.virtual_times` but add no entry to
        the :class:`StageTimer` (nothing was executed).

        ``on_stage`` is an optional callable invoked with the stage
        name after each distributed stage completes (and, when a
        checkpoint path is set, after its checkpoint is durable) — the
        job service uses it to journal progress, heartbeat leases, and
        observe cancellation between stages.  Restored stages do not
        fire it.  An exception raised by the callback aborts the run
        (the just-written checkpoint survives for the next resume).
        """
        cfg = self.config
        k = cfg.n_partitions if n_partitions is None else n_partitions
        mode = cfg.partition_mode if partition_mode is None else partition_mode
        backend_name = cfg.backend if backend is None else backend
        engine_name = cfg.finish_engine if engine is None else engine
        if engine_name not in ("loop", "sparse"):
            raise ValueError(f"unknown finish engine {engine_name!r}")
        if k < 1 or (k & (k - 1)) != 0:
            raise ValueError("n_partitions must be a power of two")
        if mode not in ("hybrid", "multilevel"):
            raise ValueError(f"unknown partition_mode {mode!r}")
        if resume and checkpoint is None:
            raise ValueError("resume=True requires a checkpoint path")
        ckpt_file: str | None = None
        if checkpoint is not None:
            ckpt_file = str(checkpoint)
            if not ckpt_file.endswith(".npz"):
                ckpt_file += ".npz"

        timer = StageTimer()
        timer.durations.update(prep.timer.durations)
        stage_times: dict[str, float] = {}

        with timer.stage("partition"):
            if mode == "hybrid":
                part = partition_via_hybrid(prep.mls, prep.hyb, k, cfg.partition)
            else:
                part = partition_via_multilevel(prep.mls, k, cfg.partition)
            labels_h = self._hybrid_labels(part, prep.hyb)
            if mode == "multilevel":
                part.labels_finest = labels_h

        dag = DistributedAssemblyGraph(prep.assembly, labels_h)
        fingerprint = self._fingerprint(prep, k, mode)

        completed: list[str] = []
        restored_paths: list[list[int]] | None = None
        if resume and ckpt_file is not None and os.path.exists(ckpt_file):
            state = load_checkpoint(ckpt_file)
            if state.fingerprint != fingerprint:
                raise ValueError(
                    f"checkpoint {ckpt_file!r} does not match this run: "
                    f"saved fingerprint {state.fingerprint} != "
                    f"current {fingerprint}"
                )
            dag.node_alive = np.asarray(state.node_alive, dtype=bool)
            dag.edge_alive = np.asarray(state.edge_alive, dtype=bool)
            completed = list(state.completed)
            stage_times.update(
                {name: float(v) for name, v in state.stage_times.items()}
            )
            restored_paths = state.paths
        restored = frozenset(completed)

        injector = None
        if cfg.fault_plan is not None and not cfg.fault_plan.empty:
            injector = FaultInjector(cfg.fault_plan.scaled_to(dag.n_parts))
        runner = create_backend(
            backend_name,
            dag,
            workers=cfg.backend_workers,
            cost_model=self.cost_model,
            retry=cfg.retry,
            injector=injector,
            engine=engine_name,
        )

        def run(stage: str, **params) -> object:
            out = runner.run_stage(stage, **params)
            stage_times[stage] = out.elapsed
            completed.append(stage)
            if ckpt_file is not None:
                save_checkpoint(
                    CheckpointState(
                        fingerprint=fingerprint,
                        completed=list(completed),
                        node_alive=dag.node_alive,
                        edge_alive=dag.edge_alive,
                        stage_times={
                            name: stage_times[name]
                            for name in completed
                            if name in stage_times
                        },
                        paths=out.result if stage == "traversal" else None,
                    ),
                    ckpt_file,
                )
            if on_stage is not None:
                on_stage(stage)
            return out.result

        trim_sequence = (
            ("transitive", {"tolerance": cfg.transitive_tolerance}),
            (
                "containment",
                {
                    "min_overlap": cfg.containment_min_overlap,
                    "min_identity": cfg.containment_min_identity,
                },
            ),
            ("dead_ends", {"max_tip_bases": cfg.max_tip_bases}),
            ("bubbles", {}),
        )
        try:
            if cfg.run_trimming:
                pending = [s for s in trim_sequence if s[0] not in restored]
                if pending:
                    with timer.stage("trim"):
                        for name, params in pending:
                            run(name, **params)
                stage_times["trim_total"] = sum(
                    stage_times[key]
                    for key in ("transitive", "containment", "dead_ends", "bubbles")
                )

            if "traversal" in restored and restored_paths is not None:
                paths = restored_paths
            else:
                with timer.stage("traverse"):
                    paths = run("traversal")
        finally:
            runner.close()

        with timer.stage("contigs"):
            contigs = contigs_from_paths(dag, paths)
            if cfg.add_reverse_complements and cfg.dedupe_rc:
                contigs = deduplicate_contigs(contigs)

        return AssemblyResult(
            contigs=contigs,
            stats=AssemblyStats.from_contigs(contigs),
            timer=timer,
            virtual_times=stage_times,
            processed_reads=prep.reads,
            g0=prep.g0,
            mls=prep.mls,
            hyb=prep.hyb,
            assembly=prep.assembly,
            dag=dag,
            partition=part,
            paths=paths,
            backend=runner.name,
            time_kind=runner.time_kind,
            fault_report=runner.fault_report,
            engine=engine_name,
        )

    def open_reads(self) -> ReadSet:
        """Open the configured sharded store as a lazy ReadSet."""
        cfg = self.config
        if cfg.store_path is None:
            raise ValueError("config.store_path is not set")
        return ReadSet.open(cfg.store_path, cache_budget=cfg.cache_budget)

    def assemble(self, reads: ReadSet | None = None) -> AssemblyResult:
        """prepare + finish in one call.

        With ``reads=None`` the configured ``store_path`` is opened as
        a shard-backed ReadSet and the whole pipeline streams from it —
        contigs are byte-identical to the in-RAM path on every backend.
        """
        if reads is None:
            reads = self.open_reads()
        return self.finish(self.prepare(reads))
