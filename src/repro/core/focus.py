"""The Focus assembler pipeline (paper §II).

``FocusAssembler.assemble`` runs the six component steps end to end:
read preprocessing, read alignment, multilevel graph set generation,
hybrid graph set generation, hybrid graph trimming, and hybrid graph
traversal — with the distributed stages executed on the simulated MPI
cluster over the configured number of graph partitions.

The pipeline is split into :meth:`FocusAssembler.prepare` (everything
up to and including the hybrid graph — independent of the partition
count) and :meth:`FocusAssembler.finish` (partition, trim, traverse,
contigs), so benchmarks can sweep partition counts without re-aligning
reads.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.align.overlapper import OverlapDetector
from repro.core.config import AssemblyConfig
from repro.core.pipeline import StageTimer
from repro.core.stats import AssemblyStats
from repro.distributed.containment import containment_removal
from repro.distributed.dgraph import DistributedAssemblyGraph, HybridAssembly, enrich_hybrid
from repro.distributed.transitive import transitive_reduction
from repro.distributed.traversal import contigs_from_paths, maximal_paths
from repro.distributed.trimming import pop_bubbles, trim_dead_ends
from repro.graph.coarsen import MultilevelGraphSet, build_multilevel_set
from repro.graph.hybrid import HybridGraphSet, build_hybrid_set
from repro.graph.overlap_graph import OverlapGraph
from repro.io.readset import ReadSet
from repro.mpi.cluster import SimCluster
from repro.mpi.timing import CommCostModel
from repro.partition.multilevel import (
    PartitionResult,
    partition_via_hybrid,
    partition_via_multilevel,
)
from repro.sequence.dna import decode, reverse_complement

__all__ = ["PreparedAssembly", "AssemblyResult", "FocusAssembler", "deduplicate_contigs"]


def deduplicate_contigs(
    contigs: list[np.ndarray], min_identity: float = 0.98
) -> list[np.ndarray]:
    """Drop contigs that duplicate another up to reverse complement.

    With reverse-complement-augmented reads every genomic region
    assembles twice (once per strand).  The mirror assemblies are built
    from independent consensus calls, so they can differ by a few
    bases or an end offset — containment is therefore checked by
    k-mer-anchored placement at ``min_identity``, not exact substring
    match.  The longer spelling of each mirrored/contained group wins.
    """
    from repro.analysis.mapping import SequenceMapper

    order = sorted(range(len(contigs)), key=lambda i: -contigs[i].size)
    kept: list[np.ndarray] = []
    kept_strings: list[str] = []
    mapper: SequenceMapper | None = None
    mapper_size = 0
    for i in order:
        contig = contigs[i]
        seq = decode(contig)
        rc = decode(reverse_complement(contig))
        # Fast path: exact containment.
        if any(seq in k or rc in k for k in kept_strings):
            continue
        # Near-duplicate path: placement on a kept contig at >= 98%.
        if kept and contig.size >= 64:
            if mapper is None or mapper_size != len(kept):
                mapper = SequenceMapper(kept, k=21)
                mapper_size = len(kept)
            hit = mapper.place(contig, min_identity=min_identity, min_votes=3)
            if hit is not None:
                continue
        kept.append(contig)
        kept_strings.append(seq)
        mapper = None  # rebuilt lazily on next candidate
    return kept


@dataclass
class PreparedAssembly:
    """Partition-count-independent intermediate state of a Focus run."""

    reads: ReadSet
    g0: OverlapGraph
    mls: MultilevelGraphSet
    hyb: HybridGraphSet
    assembly: HybridAssembly
    timer: StageTimer


@dataclass
class AssemblyResult:
    """Everything an assembly run produced, for analysis and benches."""

    contigs: list[np.ndarray]
    stats: AssemblyStats
    timer: StageTimer
    #: virtual (simulated-cluster) seconds per distributed stage.
    virtual_times: dict[str, float]
    processed_reads: ReadSet
    g0: OverlapGraph
    mls: MultilevelGraphSet
    hyb: HybridGraphSet
    assembly: HybridAssembly
    dag: DistributedAssemblyGraph
    partition: PartitionResult
    paths: list[list[int]] = field(default_factory=list)

    @property
    def read_partitions(self) -> np.ndarray:
        """Partition id of every processed read (via its hybrid node)."""
        return self.partition.labels_finest[self.hyb.base_maps[0]]

    def contig_sequences(self) -> list[str]:
        return [decode(c) for c in self.contigs]


class FocusAssembler:
    """End-to-end Focus assembly on the simulated cluster."""

    def __init__(
        self,
        config: AssemblyConfig | None = None,
        cost_model: CommCostModel | None = None,
    ) -> None:
        self.config = config or AssemblyConfig()
        self.cost_model = cost_model or CommCostModel()

    # -- stages ----------------------------------------------------------

    def preprocess(self, reads: ReadSet) -> ReadSet:
        cfg = self.config
        out = reads.trimmed(
            trim5=cfg.trim5,
            trim3=cfg.trim3,
            window=cfg.quality_window,
            step=cfg.quality_step,
            min_quality=cfg.min_quality,
            min_length=cfg.min_read_length,
        )
        if cfg.add_reverse_complements:
            out = out.with_reverse_complements()
        return out

    def prepare(self, reads: ReadSet) -> PreparedAssembly:
        """Preprocess, align, and build the graph structures."""
        cfg = self.config
        timer = StageTimer()
        with timer.stage("preprocess"):
            rs = self.preprocess(reads)
        if len(rs) == 0:
            raise ValueError("no reads survived preprocessing")
        with timer.stage("align"):
            detector = OverlapDetector(cfg.overlap)
            if cfg.overlap_workers > 1:
                overlaps = detector.find_overlaps_processes(rs, cfg.overlap_workers)
            else:
                overlaps = detector.find_overlaps(rs)
        with timer.stage("overlap_graph"):
            g0 = OverlapGraph.from_overlaps(overlaps, len(rs))
        with timer.stage("coarsen"):
            mls = build_multilevel_set(g0, cfg.coarsen)
        with timer.stage("hybrid"):
            hyb = build_hybrid_set(mls, rs.lengths, tolerance=cfg.layout_tolerance)
        with timer.stage("enrich"):
            assembly = enrich_hybrid(
                hyb,
                g0,
                rs,
                tolerance=cfg.layout_tolerance,
                quality_weighted=cfg.quality_weighted_consensus,
            )
        return PreparedAssembly(
            reads=rs, g0=g0, mls=mls, hyb=hyb, assembly=assembly, timer=timer
        )

    def _hybrid_labels(
        self, result: PartitionResult, hyb: HybridGraphSet
    ) -> np.ndarray:
        """Partition label per hybrid node, whatever mode produced it."""
        if result.labels_finest.size == hyb.hybrid.n_nodes:
            return result.labels_finest
        # multilevel mode: labels live on G0; vote per hybrid cluster.
        k = result.k
        votes = np.zeros((hyb.hybrid.n_nodes, k), dtype=np.int64)
        np.add.at(votes, (hyb.base_maps[0], result.labels_g0), 1)
        return votes.argmax(axis=1).astype(np.int64)

    def finish(
        self,
        prep: PreparedAssembly,
        n_partitions: int | None = None,
        partition_mode: str | None = None,
    ) -> AssemblyResult:
        """Partition, trim, traverse, and build contigs.

        May be called repeatedly on one :class:`PreparedAssembly` with
        different partition counts/modes; each call works on a fresh
        distributed view.
        """
        cfg = self.config
        k = cfg.n_partitions if n_partitions is None else n_partitions
        mode = cfg.partition_mode if partition_mode is None else partition_mode
        if k < 1 or (k & (k - 1)) != 0:
            raise ValueError("n_partitions must be a power of two")
        if mode not in ("hybrid", "multilevel"):
            raise ValueError(f"unknown partition_mode {mode!r}")

        timer = StageTimer()
        timer.durations.update(prep.timer.durations)
        virtual: dict[str, float] = {}

        with timer.stage("partition"):
            if mode == "hybrid":
                part = partition_via_hybrid(prep.mls, prep.hyb, k, cfg.partition)
            else:
                part = partition_via_multilevel(prep.mls, k, cfg.partition)
            labels_h = self._hybrid_labels(part, prep.hyb)
            if mode == "multilevel":
                part.labels_finest = labels_h

        dag = DistributedAssemblyGraph(prep.assembly, labels_h)
        cluster = SimCluster(k, cost_model=self.cost_model, deadlock_timeout=600.0)

        if cfg.run_trimming:
            with timer.stage("trim"):
                _, s = cluster.run(
                    transitive_reduction, dag, tolerance=cfg.transitive_tolerance
                )
                virtual["transitive"] = s.elapsed
                _, s = cluster.run(
                    containment_removal,
                    dag,
                    min_overlap=cfg.containment_min_overlap,
                    min_identity=cfg.containment_min_identity,
                )
                virtual["containment"] = s.elapsed
                _, s = cluster.run(trim_dead_ends, dag, max_tip_bases=cfg.max_tip_bases)
                virtual["dead_ends"] = s.elapsed
                _, s = cluster.run(pop_bubbles, dag)
                virtual["bubbles"] = s.elapsed
                virtual["trim_total"] = sum(
                    virtual[key]
                    for key in ("transitive", "containment", "dead_ends", "bubbles")
                )

        with timer.stage("traverse"):
            results, s = cluster.run(maximal_paths, dag)
            paths = results[0]
            virtual["traversal"] = s.elapsed

        with timer.stage("contigs"):
            contigs = contigs_from_paths(dag, paths)
            if cfg.add_reverse_complements and cfg.dedupe_rc:
                contigs = deduplicate_contigs(contigs)

        return AssemblyResult(
            contigs=contigs,
            stats=AssemblyStats.from_contigs(contigs),
            timer=timer,
            virtual_times=virtual,
            processed_reads=prep.reads,
            g0=prep.g0,
            mls=prep.mls,
            hyb=prep.hyb,
            assembly=prep.assembly,
            dag=dag,
            partition=part,
            paths=paths,
        )

    def assemble(self, reads: ReadSet) -> AssemblyResult:
        """prepare + finish in one call."""
        return self.finish(self.prepare(reads))
