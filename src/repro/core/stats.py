"""Assembly statistics: N50, max contig, contig counts (Table III)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["n50", "AssemblyStats"]


def n50(lengths) -> int:
    """The classic N50: length L such that contigs >= L hold >= half the bases.

    Returns 0 for an empty assembly.
    """
    lengths = np.asarray(list(lengths), dtype=np.int64)
    if lengths.size == 0:
        return 0
    if (lengths < 0).any():
        raise ValueError("contig lengths must be non-negative")
    desc = np.sort(lengths)[::-1]
    half = lengths.sum() / 2.0
    csum = np.cumsum(desc)
    idx = int(np.searchsorted(csum, half))
    return int(desc[min(idx, desc.size - 1)])


@dataclass(frozen=True)
class AssemblyStats:
    """Summary of one assembly (the columns of Table III)."""

    n_contigs: int
    total_bases: int
    n50: int
    max_contig: int
    mean_contig: float

    @classmethod
    def from_contigs(cls, contigs) -> "AssemblyStats":
        lengths = [int(np.asarray(c).size) for c in contigs]
        if not lengths:
            return cls(n_contigs=0, total_bases=0, n50=0, max_contig=0, mean_contig=0.0)
        return cls(
            n_contigs=len(lengths),
            total_bases=sum(lengths),
            n50=n50(lengths),
            max_contig=max(lengths),
            mean_contig=sum(lengths) / len(lengths),
        )
