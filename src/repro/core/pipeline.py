"""Stage timing for the assembly pipeline."""

from __future__ import annotations

import json
import time
from contextlib import contextmanager

__all__ = ["StageTimer"]


class StageTimer:
    """Collects named wall-clock stage durations in insertion order."""

    def __init__(self) -> None:
        self.durations: dict[str, float] = {}

    @contextmanager
    def stage(self, name: str):
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.durations[name] = self.durations.get(name, 0.0) + (
                time.perf_counter() - t0
            )

    def record(self, name: str, seconds: float) -> None:
        """Record an externally measured duration (e.g. virtual time)."""
        if seconds < 0:
            raise ValueError("duration must be non-negative")
        self.durations[name] = self.durations.get(name, 0.0) + seconds

    @property
    def total(self) -> float:
        return sum(self.durations.values())

    def to_json(self, **metadata) -> str:
        """Machine-readable dump: per-stage durations, total, and any
        caller-supplied tags (backend name, time kind, ...)."""
        payload: dict = {"stages": dict(self.durations), "total": self.total}
        payload.update(metadata)
        return json.dumps(payload, indent=2)

    def report(self) -> str:
        """Human-readable per-stage table."""
        if not self.durations:
            return "(no stages timed)"
        width = max(len(k) for k in self.durations)
        lines = [f"{k:<{width}}  {v:9.4f}s" for k, v in self.durations.items()]
        lines.append(f"{'total':<{width}}  {self.total:9.4f}s")
        return "\n".join(lines)
