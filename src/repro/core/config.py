"""AssemblyConfig: all knobs of the Focus pipeline in one place."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.align.overlapper import OverlapConfig
from repro.faults import FaultPlan, RetryPolicy
from repro.graph.coarsen import CoarsenConfig
from repro.partition.recursive import PartitionConfig

__all__ = ["AssemblyConfig"]


@dataclass(frozen=True)
class AssemblyConfig:
    """End-to-end configuration of a Focus run.

    Defaults follow the paper's evaluation: 50 bp minimum overlap, 90%
    minimum identity, partitioning on the hybrid graph set.
    """

    # -- preprocessing (paper §II-A) --
    trim5: int = 0
    trim3: int = 0
    quality_window: int = 10
    quality_step: int = 1
    min_quality: float = 15.0
    min_read_length: int = 50
    #: add each read's reverse complement (paper §II-A).  Required for
    #: full-coverage assembly of two-stranded data; mirrored contigs
    #: are deduplicated at the end when ``dedupe_rc`` is set.
    add_reverse_complements: bool = True
    dedupe_rc: bool = True

    # -- stage configs --
    overlap: OverlapConfig = field(default_factory=OverlapConfig)
    coarsen: CoarsenConfig = field(default_factory=CoarsenConfig)
    partition: PartitionConfig = field(default_factory=PartitionConfig)

    #: OS worker processes for the alignment stage (0/1 = in-process
    #: serial; N > 1 farms subset pairs to a ProcessPoolExecutor).
    overlap_workers: int = 0

    # -- distributed-stage execution --
    #: execution backend for the distributed graph stages: "serial"
    #: (in-process loop), "sim" (simulated MPI cluster, virtual clocks
    #: — the paper's figures), or "process" (real OS processes).
    backend: str = "sim"
    #: worker processes for the "process" backend (0 = one per
    #: partition, capped at the core count).
    backend_workers: int = 0
    #: finish-kernel implementation for the distributed cleaning
    #: stages: "loop" (scalar per-node reference) or "sparse"
    #: (vectorized masked-CSR engine, docs/performance.md) — both
    #: produce byte-identical contigs on every backend.
    finish_engine: str = "loop"

    # -- fault tolerance (docs/robustness.md) --
    #: retry/backoff/fallback policy wrapped around every distributed
    #: stage execution, on every backend.
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: deterministic fault plan to inject (None = no injection).  With
    #: retries enabled the final contigs stay byte-identical to the
    #: fault-free run under any plan whose faults fit the retry budget.
    fault_plan: FaultPlan | None = None

    # -- graph construction --
    #: offset slack allowed in cluster layouts (0 = exact diagonals).
    layout_tolerance: int = 0
    #: weight consensus votes by Phred base quality.
    quality_weighted_consensus: bool = False

    # -- out-of-core storage (docs/architecture.md, storage layer) --
    #: path of a sharded reads store (``repro pack``).  When set and no
    #: in-RAM reads are passed to :meth:`FocusAssembler.assemble`, the
    #: pipeline streams the store shard by shard.
    store_path: str | None = None
    #: reads per shard when packing stores from this config.
    shard_size: int = 4096
    #: LRU shard-cache byte budget of shard-backed read sets — the
    #: memory ceiling of the streaming data path (64 MiB default).
    cache_budget: int = 64 * 1024 * 1024

    # -- partitioning --
    #: number of graph partitions (k = 2^i).
    n_partitions: int = 4
    #: "hybrid" (the paper's contribution) or "multilevel" (naive baseline).
    partition_mode: str = "hybrid"

    # -- distributed graph cleaning (paper §V) --
    transitive_tolerance: int = 2
    containment_min_overlap: int = 50
    containment_min_identity: float = 0.9
    max_tip_bases: int = 150
    run_trimming: bool = True

    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_partitions < 1 or (self.n_partitions & (self.n_partitions - 1)) != 0:
            raise ValueError("n_partitions must be a power of two")
        if self.partition_mode not in ("hybrid", "multilevel"):
            raise ValueError(f"unknown partition_mode {self.partition_mode!r}")
        if self.min_read_length < 1:
            raise ValueError("min_read_length must be positive")
        if self.overlap_workers < 0:
            raise ValueError("overlap_workers must be non-negative")
        if self.backend not in ("serial", "sim", "process"):
            raise ValueError(f"unknown backend {self.backend!r}")
        if self.backend_workers < 0:
            raise ValueError("backend_workers must be non-negative")
        if self.finish_engine not in ("loop", "sparse"):
            raise ValueError(f"unknown finish_engine {self.finish_engine!r}")
        if self.shard_size < 1:
            raise ValueError("shard_size must be positive")
        if self.cache_budget < 0:
            raise ValueError("cache_budget must be non-negative")
        if self.retry.max_attempts < 1:
            raise ValueError("retry.max_attempts must be >= 1")
