"""The Focus assembler: end-to-end pipeline and assembly statistics."""

from repro.core.config import AssemblyConfig
from repro.core.focus import AssemblyResult, FocusAssembler
from repro.core.pipeline import StageTimer
from repro.core.stats import AssemblyStats, n50

__all__ = [
    "AssemblyConfig",
    "FocusAssembler",
    "AssemblyResult",
    "StageTimer",
    "AssemblyStats",
    "n50",
]
