"""Contig-link evidence from mate pairs.

A *link witness* is one mate pair whose reads place on two different
contigs.  With Illumina FR pairs (mate 1 genome-forward at the
fragment's 5' end, mate 2 genome-reverse at its 3' end) a witness
determines:

- the contigs' order along the genome (mate 1's contig is left),
- each contig's orientation relative to its stored sequence,
- a gap estimate: fragment length minus the bases of the fragment
  lying inside each contig.

Witnesses agreeing on (left contig+orientation, right
contig+orientation) are aggregated into a :class:`ContigLink`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.mapping import Placement, SequenceMapper
from repro.io.readset import ReadSet

__all__ = ["pair_indices", "ContigLink", "build_links", "place_reads", "estimate_insert_size"]


def pair_indices(reads: ReadSet) -> list[tuple[int, int]]:
    """(mate1 index, mate2 index) pairs from pair metadata."""
    by_pair: dict[tuple, dict[int, int]] = {}
    for i, meta in enumerate(reads.meta):
        if "pair" in meta and "mate" in meta:
            key = (meta.get("source"), meta["pair"])
            by_pair.setdefault(key, {})[meta["mate"]] = i
    out = []
    for mates in by_pair.values():
        if 1 in mates and 2 in mates:
            out.append((mates[1], mates[2]))
    return out


def place_reads(
    reads: ReadSet,
    contigs: list[np.ndarray],
    k: int = 17,
    min_identity: float = 0.9,
) -> list[Placement | None]:
    """Best contig placement per read (None when unplaced)."""
    mapper = SequenceMapper(contigs, k=k)
    return [
        mapper.place(reads.codes_of(i), min_identity=min_identity, min_votes=2)
        for i in range(len(reads))
    ]


@dataclass(frozen=True)
class ContigLink:
    """Aggregated evidence that contig ``a`` precedes contig ``b``.

    Orientations are '+' when the stored contig sequence matches the
    genome's forward strand in this scaffold.
    """

    a: int
    a_orient: str
    b: int
    b_orient: str
    n_pairs: int
    gap: float

    def canonical(self) -> "ContigLink":
        """The same link keyed from its lower-numbered contig.

        Reading a scaffold backwards flips both order and orientations.
        """
        if self.a <= self.b:
            return self
        flip = {"+": "-", "-": "+"}
        return ContigLink(
            a=self.b,
            a_orient=flip[self.b_orient],
            b=self.a,
            b_orient=flip[self.a_orient],
            n_pairs=self.n_pairs,
            gap=self.gap,
        )


def _witness(
    p1: Placement,
    p2: Placement,
    read_length: int,
    insert_size: float,
    contig_lengths: np.ndarray,
) -> tuple[tuple[int, str, int, str], float]:
    """(link key, gap estimate) from one cross-contig pair."""
    # Mate 1 is genome-forward: '+' placement means its contig is
    # genome-forward as stored.
    a = p1.reference
    a_orient = "+" if p1.strand == "+" else "-"
    if a_orient == "+":
        tail_a = int(contig_lengths[a]) - p1.position
    else:
        tail_a = p1.position + read_length
    # Mate 2 is genome-reverse: '-' placement means its contig is
    # genome-forward as stored.
    b = p2.reference
    b_orient = "+" if p2.strand == "-" else "-"
    if b_orient == "+":
        head_b = p2.position + read_length
    else:
        head_b = int(contig_lengths[b]) - p2.position
    gap = insert_size - tail_a - head_b
    return (a, a_orient, b, b_orient), gap


def estimate_insert_size(
    placements: list[Placement | None],
    pairs: list[tuple[int, int]],
    read_length: int,
    fallback: float = 400.0,
) -> float:
    """Median fragment length from pairs landing on one contig."""
    spans = []
    for i1, i2 in pairs:
        p1, p2 = placements[i1], placements[i2]
        if p1 is None or p2 is None or p1.reference != p2.reference:
            continue
        if p1.strand == p2.strand:
            continue  # discordant orientation
        left = min(p1.position, p2.position)
        right = max(p1.position, p2.position) + read_length
        spans.append(right - left)
    if not spans:
        return fallback
    return float(np.median(spans))


def build_links(
    reads: ReadSet,
    contigs: list[np.ndarray],
    min_pairs: int = 3,
    k: int = 17,
    insert_size: float | None = None,
) -> list[ContigLink]:
    """Aggregate cross-contig mate pairs into supported links.

    Contig pairs whose witnesses disagree on orientation are dropped as
    ambiguous unless one configuration holds a 3:1 majority.
    """
    pairs = pair_indices(reads)
    if not pairs:
        return []
    read_length = int(reads.length_of(pairs[0][0]))
    placements = place_reads(reads, contigs, k=k)
    if insert_size is None:
        insert_size = estimate_insert_size(placements, pairs, read_length)
    lengths = np.array([c.size for c in contigs], dtype=np.int64)

    witness_gaps: dict[tuple[int, str, int, str], list[float]] = {}
    for i1, i2 in pairs:
        p1, p2 = placements[i1], placements[i2]
        if p1 is None or p2 is None or p1.reference == p2.reference:
            continue
        key, gap = _witness(p1, p2, read_length, insert_size, lengths)
        link = ContigLink(*key, n_pairs=1, gap=gap).canonical()
        witness_gaps.setdefault((link.a, link.a_orient, link.b, link.b_orient), []).append(
            link.gap
        )

    # Resolve per contig-pair orientation conflicts.
    by_pair: dict[tuple[int, int], list[tuple[tuple, list[float]]]] = {}
    for key, gaps in witness_gaps.items():
        by_pair.setdefault((key[0], key[2]), []).append((key, gaps))
    links: list[ContigLink] = []
    for variants in by_pair.values():
        variants.sort(key=lambda kv: -len(kv[1]))
        best_key, best_gaps = variants[0]
        others = sum(len(g) for _, g in variants[1:])
        if len(best_gaps) < min_pairs:
            continue
        if others and len(best_gaps) < 3 * others:
            continue  # ambiguous orientation evidence
        links.append(
            ContigLink(
                a=best_key[0],
                a_orient=best_key[1],
                b=best_key[2],
                b_orient=best_key[3],
                n_pairs=len(best_gaps),
                gap=float(np.median(best_gaps)),
            )
        )
    return links
