"""Chaining contig links into scaffolds."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.io.readset import ReadSet
from repro.scaffold.links import ContigLink, build_links
from repro.sequence.dna import N, reverse_complement

__all__ = ["ScaffoldConfig", "Scaffold", "Scaffolder"]

_FLIP = {"+": "-", "-": "+"}


@dataclass(frozen=True)
class ScaffoldConfig:
    """Scaffolding thresholds."""

    #: minimum concordant pairs supporting a kept link.
    min_pairs: int = 3
    #: k for read-to-contig mapping.
    k: int = 17
    #: gap bases inserted when the estimate is non-positive.
    min_gap: int = 1
    #: override the insert size estimated from same-contig pairs.
    insert_size: float | None = None

    def __post_init__(self) -> None:
        if self.min_pairs < 1:
            raise ValueError("min_pairs must be positive")
        if self.min_gap < 1:
            raise ValueError("min_gap must be positive")


@dataclass
class Scaffold:
    """An ordered, oriented contig chain with estimated gaps.

    ``parts[i] = (contig index, orientation)``; ``gaps[i]`` is the
    estimated gap after part ``i`` (one shorter than ``parts``).
    """

    parts: list[tuple[int, str]]
    gaps: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.parts and len(self.gaps) != len(self.parts) - 1:
            raise ValueError("need exactly one gap per junction")

    @property
    def n_contigs(self) -> int:
        return len(self.parts)

    def reversed(self) -> "Scaffold":
        """The same scaffold read from the other end (mirror strand)."""
        return Scaffold(
            parts=[(c, _FLIP[o]) for c, o in reversed(self.parts)],
            gaps=list(reversed(self.gaps)),
        )

    def canonical(self) -> "Scaffold":
        """Direction-normalised: the lower contig id comes first."""
        if self.parts and self.parts[0][0] > self.parts[-1][0]:
            return self.reversed()
        return self

    def sequence(self, contigs: list[np.ndarray]) -> np.ndarray:
        """The scaffold sequence with N runs across gaps."""
        pieces: list[np.ndarray] = []
        for idx, (contig, orient) in enumerate(self.parts):
            codes = contigs[contig]
            pieces.append(codes if orient == "+" else reverse_complement(codes))
            if idx < len(self.gaps):
                pieces.append(np.full(self.gaps[idx], N, dtype=np.uint8))
        return np.concatenate(pieces) if pieces else np.empty(0, dtype=np.uint8)


class Scaffolder:
    """Builds scaffolds from paired reads and assembled contigs."""

    def __init__(self, config: ScaffoldConfig | None = None) -> None:
        self.config = config or ScaffoldConfig()

    # -- link graph --------------------------------------------------------

    def _reduce_transitive(
        self,
        links: list[ContigLink],
        contig_lengths: np.ndarray,
        slack: float = 500.0,
    ) -> list[ContigLink]:
        """Drop links explained by a two-step path (A->B->C implies A->C).

        Long-insert libraries witness contig pairs that *skip* a short
        intermediate contig; keeping those links would make every
        junction ambiguous.  A link u->w is transitive when some v has
        links u->v and v->w whose gaps plus v's length reproduce u->w's
        gap within ``slack``.
        """
        directed: dict[tuple[int, str], list[tuple[tuple[int, str], float, ContigLink]]] = {}
        for link in links:
            gap = link.gap
            fwd = ((link.a, link.a_orient), (link.b, link.b_orient))
            rev = ((link.b, _FLIP[link.b_orient]), (link.a, _FLIP[link.a_orient]))
            for src, dst in (fwd, rev):
                directed.setdefault(src, []).append((dst, gap, link))
        drop: set[int] = set()
        for src, outs in directed.items():
            if len(outs) < 2:
                continue
            for di, (dst, gap, link) in enumerate(outs):
                for mid, g1, _ in outs:
                    if mid == dst:
                        continue
                    for far, g2, _ in directed.get(mid, ()):
                        if far != dst:
                            continue
                        implied = g1 + float(contig_lengths[mid[0]]) + g2
                        if abs(implied - gap) <= slack:
                            drop.add(id(link))
        return [link for link in links if id(link) not in drop]

    def _unambiguous_successors(
        self, links: list[ContigLink]
    ) -> dict[tuple[int, str], tuple[int, str, int]]:
        """succ[(contig, orient)] -> (next contig, orient, gap); unique only.

        Every link is registered in both reading directions; oriented
        nodes with multiple candidate successors (or predecessors) are
        branch points and terminate chains.
        """
        succ_all: dict[tuple[int, str], list[tuple[int, str, int]]] = {}
        pred_count: dict[tuple[int, str], int] = {}
        cfg = self.config
        for link in links:
            gap = max(cfg.min_gap, int(round(link.gap)))
            fwd = ((link.a, link.a_orient), (link.b, link.b_orient, gap))
            rev = (
                (link.b, _FLIP[link.b_orient]),
                (link.a, _FLIP[link.a_orient], gap),
            )
            for src, dst in (fwd, rev):
                succ_all.setdefault(src, []).append(dst)
                pred_count[(dst[0], dst[1])] = pred_count.get((dst[0], dst[1]), 0) + 1
        return {
            src: dsts[0]
            for src, dsts in succ_all.items()
            if len(dsts) == 1 and pred_count.get((dsts[0][0], dsts[0][1]), 0) == 1
        }

    def _chain(self, n_contigs: int, succ) -> list[Scaffold]:
        has_pred = {(c, o) for (c, o, _g) in succ.values()}
        used = np.zeros(n_contigs, dtype=bool)
        scaffolds: list[Scaffold] = []

        def walk(start: tuple[int, str]) -> Scaffold:
            parts = [start]
            gaps: list[int] = []
            used[start[0]] = True
            cur = start
            while cur in succ:
                nxt_c, nxt_o, gap = succ[cur]
                if used[nxt_c]:
                    break
                parts.append((nxt_c, nxt_o))
                gaps.append(gap)
                used[nxt_c] = True
                cur = (nxt_c, nxt_o)
            return Scaffold(parts=parts, gaps=gaps)

        # Chain starts: oriented nodes with a successor but no predecessor.
        for node in list(succ):
            if node not in has_pred and not used[node[0]]:
                scaffolds.append(walk(node).canonical())
        # Leftover contigs become singleton scaffolds ('+' by convention).
        for c in range(n_contigs):
            if not used[c]:
                scaffolds.append(Scaffold(parts=[(c, "+")], gaps=[]))
                used[c] = True
        return scaffolds

    # -- public API -----------------------------------------------------------

    def scaffold(
        self, reads: ReadSet, contigs: list[np.ndarray]
    ) -> tuple[list[Scaffold], list[ContigLink]]:
        """(scaffolds, kept links) from paired reads over contigs."""
        if not contigs:
            return [], []
        cfg = self.config
        links = build_links(
            reads,
            contigs,
            min_pairs=cfg.min_pairs,
            k=cfg.k,
            insert_size=cfg.insert_size,
        )
        lengths = np.array([c.size for c in contigs], dtype=np.int64)
        links = self._reduce_transitive(links, lengths)
        succ = self._unambiguous_successors(links)
        return self._chain(len(contigs), succ), links
