"""Contig scaffolding with paired-end reads.

Mate pairs whose reads map to *different* contigs witness the contigs'
relative order, orientation and separation.  The scaffolder collects
those witnesses into contig-link candidates, keeps links supported by
enough concordant pairs, chains contigs through unambiguous links, and
emits scaffolds (ordered, oriented contigs with estimated gaps).

This is the classic OLC post-processing stage (cf. PCAP's scaffold
processing, which the paper cites as related work) built on the same
simulated-data substrate as the rest of the repository.
"""

from repro.scaffold.links import ContigLink, build_links, pair_indices
from repro.scaffold.scaffolder import Scaffold, ScaffoldConfig, Scaffolder

__all__ = [
    "ContigLink",
    "build_links",
    "pair_indices",
    "Scaffold",
    "ScaffoldConfig",
    "Scaffolder",
]
