"""The gut-microbiome taxonomy used in the paper's Fig. 7.

The paper classifies reads into ten major genera spanning three phyla
and observes that genera of the same phylum co-locate in graph
partitions.  We reproduce exactly that genus/phylum structure.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Taxon", "GUT_GENERA", "PHYLUM_OF", "phyla", "genera_of_phylum"]


@dataclass(frozen=True)
class Taxon:
    """A genus together with its phylum."""

    genus: str
    phylum: str


#: The ten genera from Fig. 7 with their (real) phylum assignments.
GUT_GENERA: tuple[Taxon, ...] = (
    Taxon("Clostridium", "Firmicutes"),
    Taxon("Eubacterium", "Firmicutes"),
    Taxon("Faecalibacterium", "Firmicutes"),
    Taxon("Roseburia", "Firmicutes"),
    Taxon("Alistipes", "Bacteroidetes"),
    Taxon("Bacteroides", "Bacteroidetes"),
    Taxon("Parabacteroides", "Bacteroidetes"),
    Taxon("Prevotella", "Bacteroidetes"),
    Taxon("Escherichia", "Proteobacteria"),
    Taxon("Acinetobacter", "Proteobacteria"),
)

#: genus name -> phylum name.
PHYLUM_OF: dict[str, str] = {t.genus: t.phylum for t in GUT_GENERA}


def phyla() -> list[str]:
    """Distinct phyla in taxonomy order."""
    seen: list[str] = []
    for t in GUT_GENERA:
        if t.phylum not in seen:
            seen.append(t.phylum)
    return seen


def genera_of_phylum(phylum: str) -> list[str]:
    """All genera belonging to ``phylum`` (may be empty)."""
    return [t.genus for t in GUT_GENERA if t.phylum == phylum]
