"""Illumina-like shotgun read simulation.

Reads are sampled uniformly along each genome (weighted by abundance ×
genome length for communities), on a random strand, with substitution
errors.  Per-base Phred qualities follow the classic Illumina shape —
high and flat over most of the read, decaying toward the 3' end — and
errors are drawn from those qualities, so quality trimming and the
error model are mutually consistent.

Ground truth (genus, genome, position, strand) is recorded in each
read's ``meta``; the community analysis uses it to validate the k-mer
classifier and to compute Fig. 7 with perfect labels.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.io.records import Read
from repro.io.readset import ReadSet
from repro.sequence.dna import reverse_complement
from repro.simulate.community import Community
from repro.simulate.genome import Genome

__all__ = ["ReadSimConfig", "ReadSimulator"]


@dataclass(frozen=True)
class ReadSimConfig:
    """Parameters of the read simulator."""

    read_length: int = 100
    coverage: float = 15.0
    #: mean Phred quality over the flat 5' part of the read.
    base_quality: int = 38
    #: quality at the final 3' base (linear decay over the last third).
    tail_quality: int = 18
    #: std-dev of per-base quality noise.
    quality_jitter: float = 3.0
    #: if set, overrides the quality-derived error rate with a flat rate.
    flat_error_rate: float | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.read_length < 1:
            raise ValueError("read_length must be positive")
        if self.coverage <= 0:
            raise ValueError("coverage must be positive")
        if not 0 <= self.tail_quality <= self.base_quality <= 93:
            raise ValueError("need 0 <= tail_quality <= base_quality <= 93")
        if self.flat_error_rate is not None and not 0.0 <= self.flat_error_rate <= 1.0:
            raise ValueError("flat_error_rate must be in [0, 1]")


class ReadSimulator:
    """Samples reads from genomes or communities."""

    def __init__(self, config: ReadSimConfig | None = None) -> None:
        self.config = config or ReadSimConfig()

    # -- quality / error machinery ---------------------------------------

    def _quality_profile(self) -> np.ndarray:
        """Mean quality at each read position (flat then linear decay)."""
        cfg = self.config
        n = cfg.read_length
        profile = np.full(n, float(cfg.base_quality))
        tail = max(1, n // 3)
        profile[n - tail :] = np.linspace(cfg.base_quality, cfg.tail_quality, tail)
        return profile

    def _draw_qualities(self, rng: np.random.Generator, count: int) -> np.ndarray:
        profile = self._quality_profile()
        quals = profile[None, :] + rng.normal(0.0, self.config.quality_jitter, (count, profile.size))
        return np.clip(np.rint(quals), 2, 41).astype(np.int64)

    def _apply_errors(
        self, codes: np.ndarray, quals: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Substitute bases according to quality-derived error probabilities."""
        if self.config.flat_error_rate is not None:
            p = np.full(codes.shape, self.config.flat_error_rate)
        else:
            p = np.power(10.0, -quals / 10.0)
        out = codes.copy()
        hit = rng.random(codes.shape) < p
        n_hit = int(hit.sum())
        if n_hit:
            out[hit] = (out[hit] + rng.integers(1, 4, size=n_hit)) % 4
        return out

    # -- sampling ---------------------------------------------------------

    def _n_reads_for(self, genome_bases: int) -> int:
        return max(1, int(round(self.config.coverage * genome_bases / self.config.read_length)))

    def simulate_genome(
        self,
        genome: Genome,
        rng: np.random.Generator | None = None,
        n_reads: int | None = None,
        id_prefix: str | None = None,
    ) -> ReadSet:
        """Shotgun-sample one genome; n_reads defaults to coverage-derived."""
        cfg = self.config
        rng = rng or np.random.default_rng(cfg.seed)
        L = len(genome)
        if L < cfg.read_length:
            raise ValueError(
                f"genome {genome.name!r} ({L} bp) shorter than read length {cfg.read_length}"
            )
        count = self._n_reads_for(L) if n_reads is None else int(n_reads)
        prefix = id_prefix if id_prefix is not None else genome.name
        starts = rng.integers(0, L - cfg.read_length + 1, size=count)
        strands = rng.integers(0, 2, size=count)
        quals = self._draw_qualities(rng, count)

        reads: list[Read] = []
        for i in range(count):
            s = int(starts[i])
            fragment = genome.codes[s : s + cfg.read_length]
            if strands[i]:
                fragment = reverse_complement(fragment)
            observed = self._apply_errors(fragment, quals[i].astype(np.float64), rng)
            meta = dict(genome.meta)
            meta.update(
                source=genome.name,
                position=s,
                strand="-" if strands[i] else "+",
            )
            reads.append(Read(f"{prefix}:{i}", observed, quals[i], meta))
        return ReadSet(reads)

    def simulate_paired(
        self,
        genome: Genome,
        insert_size: int = 400,
        insert_sd: float = 30.0,
        rng: np.random.Generator | None = None,
        n_pairs: int | None = None,
        id_prefix: str | None = None,
    ) -> ReadSet:
        """Paired-end sampling (Illumina FR orientation).

        Each fragment of ~``insert_size`` bases yields mate /1 from its
        5' end on the forward strand and mate /2 as the reverse
        complement of its 3' end.  Pair metadata (``pair``, ``mate``,
        fragment position and length) enables scaffolding and
        ground-truth checks.  Mates /1 and /2 of pair ``i`` sit at read
        indices ``2i`` and ``2i + 1``.
        """
        cfg = self.config
        rng = rng or np.random.default_rng(cfg.seed)
        L = len(genome)
        if insert_size < cfg.read_length:
            raise ValueError("insert_size must be at least the read length")
        if L < insert_size + 4 * int(insert_sd):
            raise ValueError(f"genome {genome.name!r} too short for insert {insert_size}")
        if n_pairs is None:
            n_pairs = max(1, int(round(cfg.coverage * L / (2 * cfg.read_length))))
        prefix = id_prefix if id_prefix is not None else genome.name

        reads: list[Read] = []
        for i in range(n_pairs):
            frag_len = max(
                cfg.read_length, int(round(rng.normal(insert_size, insert_sd)))
            )
            frag_len = min(frag_len, L)
            start = int(rng.integers(0, L - frag_len + 1))
            quals = self._draw_qualities(rng, 2)
            fwd = genome.codes[start : start + cfg.read_length]
            rev = reverse_complement(
                genome.codes[start + frag_len - cfg.read_length : start + frag_len]
            )
            for mate, (frag, q) in enumerate(((fwd, quals[0]), (rev, quals[1])), start=1):
                observed = self._apply_errors(frag, q.astype(np.float64), rng)
                meta = dict(genome.meta)
                meta.update(
                    source=genome.name,
                    pair=i,
                    mate=mate,
                    fragment_start=start,
                    fragment_length=frag_len,
                    strand="+" if mate == 1 else "-",
                    position=start if mate == 1 else start + frag_len - cfg.read_length,
                )
                reads.append(Read(f"{prefix}:{i}/{mate}", observed, q, meta))
        return ReadSet(reads)

    def simulate_community(
        self, community: Community, rng: np.random.Generator | None = None
    ) -> ReadSet:
        """Shotgun-sample a community proportional to abundance × length.

        Coverage is interpreted as *average* coverage over the pooled
        genome bases, so skewed abundances give some genera deep and
        some shallow coverage — as in real metagenome runs.
        """
        cfg = self.config
        rng = rng or np.random.default_rng(cfg.seed)
        lengths = np.array([len(g) for g in community.genomes], dtype=np.float64)
        weights = community.abundances * lengths
        weights = weights / weights.sum()
        total_reads = self._n_reads_for(int(lengths.sum()))
        counts = rng.multinomial(total_reads, weights)
        parts = []
        for genome, count in zip(community.genomes, counts.tolist()):
            if count == 0:
                continue
            parts.append(self.simulate_genome(genome, rng=rng, n_reads=count))
        merged: list[Read] = []
        for part in parts:
            merged.extend(part)
        return ReadSet(merged)
