"""Random genome generation, mutation, and repeat insertion."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.sequence.dna import T, decode

__all__ = ["Genome", "random_genome", "mutate", "insert_repeats"]


@dataclass
class Genome:
    """A reference sequence with provenance metadata."""

    name: str
    codes: np.ndarray
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.codes = np.asarray(self.codes, dtype=np.uint8)

    def __len__(self) -> int:
        return int(self.codes.size)

    @property
    def sequence(self) -> str:
        return decode(self.codes)


def random_genome(length: int, rng: np.random.Generator, gc: float = 0.5) -> np.ndarray:
    """A random DNA code array with expected GC content ``gc``.

    Bases are i.i.d. with P(G)=P(C)=gc/2 and P(A)=P(T)=(1-gc)/2.
    """
    if length < 0:
        raise ValueError("length must be non-negative")
    if not 0.0 <= gc <= 1.0:
        raise ValueError("gc must be in [0, 1]")
    at = (1.0 - gc) / 2.0
    probs = np.array([at, gc / 2.0, gc / 2.0, at])
    return rng.choice(4, size=length, p=probs).astype(np.uint8)


def mutate(codes: np.ndarray, rate: float, rng: np.random.Generator) -> np.ndarray:
    """Return a copy with i.i.d. substitutions at the given per-base rate.

    Each mutated base becomes one of the three *other* bases uniformly.
    Used to derive phylogenetically related genomes from a common
    ancestor: two genomes at divergence ``d`` from an ancestor differ at
    roughly ``2d(1 - 2d/3)`` of positions.
    """
    if not 0.0 <= rate <= 1.0:
        raise ValueError("rate must be in [0, 1]")
    codes = np.asarray(codes, dtype=np.uint8)
    out = codes.copy()
    if codes.size == 0 or rate == 0.0:
        return out
    hit = np.flatnonzero(rng.random(codes.size) < rate)
    if hit.size:
        # Shift by 1..3 mod 4 => always a different base.
        out[hit] = (out[hit] + rng.integers(1, 4, size=hit.size)) % 4
    return out


def insert_repeats(
    codes: np.ndarray,
    repeat_length: int,
    n_copies: int,
    rng: np.random.Generator,
    divergence: float = 0.0,
) -> np.ndarray:
    """Insert ``n_copies`` of one repeat element at random positions.

    A fresh random element of ``repeat_length`` bases is generated and
    spliced into the genome at ``n_copies`` random insertion points;
    each copy is independently mutated at ``divergence`` so the repeat
    family can be made imperfect.  Repeats are what make assembly
    graphs non-linear, which is exactly the structure the hybrid graph
    set exists to handle.
    """
    if repeat_length < 1:
        raise ValueError("repeat_length must be positive")
    if n_copies < 0:
        raise ValueError("n_copies must be non-negative")
    codes = np.asarray(codes, dtype=np.uint8)
    if n_copies == 0:
        return codes.copy()
    element = random_genome(repeat_length, rng)
    positions = np.sort(rng.integers(0, codes.size + 1, size=n_copies))
    pieces: list[np.ndarray] = []
    prev = 0
    for pos in positions.tolist():
        pieces.append(codes[prev:pos])
        pieces.append(mutate(element, divergence, rng))
        prev = pos
    pieces.append(codes[prev:])
    out = np.concatenate(pieces)
    assert out.dtype == np.uint8 and out.max(initial=0) <= T
    return out
