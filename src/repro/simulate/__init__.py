"""Synthetic data generation.

This package is the substitution for the paper's three Illumina gut
microbiome SRA runs (Table I: SRR513170, SRR513441, SRR061581) and the
Human Microbiome Project reference database.  It provides:

- random genomes with controllable GC and repeat structure,
- phylogenetically structured metagenome communities over the ten gut
  genera the paper analyses in Fig. 7,
- an Illumina-like read simulator (uniform shotgun sampling,
  substitution errors driven by a decaying 3' quality profile).

All generators are deterministic given a seed.
"""

from repro.simulate.community import Community, CommunityConfig, build_community
from repro.simulate.genome import (
    Genome,
    insert_repeats,
    mutate,
    random_genome,
)
from repro.simulate.reads import ReadSimulator, ReadSimConfig
from repro.simulate.taxonomy import (
    GUT_GENERA,
    PHYLUM_OF,
    Taxon,
    genera_of_phylum,
    phyla,
)

__all__ = [
    "Genome",
    "random_genome",
    "mutate",
    "insert_repeats",
    "Community",
    "CommunityConfig",
    "build_community",
    "ReadSimulator",
    "ReadSimConfig",
    "Taxon",
    "GUT_GENERA",
    "PHYLUM_OF",
    "phyla",
    "genera_of_phylum",
]
