"""Phylogenetically structured metagenome communities.

The paper's Fig. 7 rests on two facts about real gut communities that
the simulator must reproduce:

1. reads of one genus come from one (linear) genome, so they cluster in
   the overlap graph;
2. genera of the same phylum share sequence, so their clusters
   interconnect.

We therefore generate one *ancestor* sequence per phylum and derive
each genus genome from its phylum ancestor by substitution mutations at
``within_phylum_divergence``, followed by appending genus-private
sequence.  Genera of different phyla share nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.simulate.genome import Genome, insert_repeats, mutate, random_genome
from repro.simulate.taxonomy import GUT_GENERA, Taxon

__all__ = ["CommunityConfig", "Community", "build_community"]


@dataclass(frozen=True)
class CommunityConfig:
    """Parameters of a synthetic metagenome community."""

    #: genera present, with phylum labels.
    taxa: tuple[Taxon, ...] = GUT_GENERA
    #: bases of phylum-ancestor sequence inherited by each genus genome.
    shared_length: int = 12_000
    #: bases of genus-private sequence appended to each genome.
    private_length: int = 8_000
    #: per-base substitution divergence of a genus from its phylum ancestor.
    within_phylum_divergence: float = 0.02
    #: repeat element copies inserted into each genome (0 disables).
    repeat_copies: int = 2
    repeat_length: int = 300
    #: Dirichlet concentration for genus abundances (smaller = more skewed).
    abundance_concentration: float = 3.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.shared_length < 0 or self.private_length < 0:
            raise ValueError("sequence lengths must be non-negative")
        if self.shared_length + self.private_length == 0:
            raise ValueError("genomes would be empty")
        if not self.taxa:
            raise ValueError("community needs at least one taxon")


@dataclass
class Community:
    """A simulated community: genomes, labels, and relative abundances."""

    config: CommunityConfig
    genomes: list[Genome]
    abundances: np.ndarray

    def __post_init__(self) -> None:
        if len(self.genomes) != self.abundances.size:
            raise ValueError("one abundance per genome required")
        if self.genomes and not np.isclose(self.abundances.sum(), 1.0):
            raise ValueError("abundances must sum to 1")

    @property
    def genera(self) -> list[str]:
        return [g.meta["genus"] for g in self.genomes]

    @property
    def phylum_of(self) -> dict[str, str]:
        return {g.meta["genus"]: g.meta["phylum"] for g in self.genomes}

    def genome_by_genus(self, genus: str) -> Genome:
        for g in self.genomes:
            if g.meta["genus"] == genus:
                return g
        raise KeyError(genus)

    def reference_database(self) -> list[Genome]:
        """The genomes, playing the role of the HMP gut reference DB."""
        return list(self.genomes)

    @property
    def total_genome_bases(self) -> int:
        return sum(len(g) for g in self.genomes)


def build_community(config: CommunityConfig | None = None, seed: int | None = None) -> Community:
    """Generate a community according to ``config``.

    ``seed`` overrides ``config.seed`` (convenience for building the
    three benchmark datasets D1–D3 from one config).
    """
    config = config or CommunityConfig()
    rng = np.random.default_rng(config.seed if seed is None else seed)

    ancestors: dict[str, np.ndarray] = {}
    for taxon in config.taxa:
        if taxon.phylum not in ancestors:
            ancestors[taxon.phylum] = random_genome(config.shared_length, rng)

    genomes: list[Genome] = []
    for taxon in config.taxa:
        shared = mutate(ancestors[taxon.phylum], config.within_phylum_divergence, rng)
        private = random_genome(config.private_length, rng)
        codes = np.concatenate([shared, private])
        if config.repeat_copies > 0:
            codes = insert_repeats(
                codes, config.repeat_length, config.repeat_copies, rng, divergence=0.01
            )
        genomes.append(
            Genome(
                name=f"{taxon.genus}_genome",
                codes=codes,
                meta={"genus": taxon.genus, "phylum": taxon.phylum},
            )
        )

    alpha = np.full(len(genomes), config.abundance_concentration)
    abundances = rng.dirichlet(alpha)
    return Community(config=config, genomes=genomes, abundances=abundances)
