"""Multilevel recursive bisection (paper §IV, §IV-C).

One *bisection task* partitions a (sub)graph in the classic multilevel
way: coarsen, greedy-grow + KL on the coarsest graph, then project the
bisection down the levels with a KL refinement at each level.  Parts
are then split recursively until ``k = 2^i`` parts exist.

Every task's wall-clock duration is recorded as a :class:`TaskRecord`
carrying its recursion ``step``; step ``i`` has ``2^i`` independent
tasks, which is the natural parallelism Fig. 4 measures (the simulated
MPI scheduler replays these records on ``p`` virtual processors).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.graph.coarsen import CoarsenConfig, MultilevelGraphSet, build_multilevel_set
from repro.graph.overlap_graph import OverlapGraph
from repro.partition.greedy_growing import greedy_grow_bisection
from repro.partition.kl import kl_refine_bisection

__all__ = ["PartitionConfig", "TaskRecord", "bisect_graph_set", "recursive_bisection"]


@dataclass(frozen=True)
class PartitionConfig:
    """Knobs of the whole partitioning pipeline."""

    coarsen: CoarsenConfig = field(default_factory=CoarsenConfig)
    #: greedy-growing edge-weight balance bound (paper: 1.03).
    edge_balance: float = 1.03
    #: KL / k-way early-stop window (paper: 50 moves).
    stall_window: int = 50
    kl_max_passes: int = 6
    kway_max_passes: int = 3
    #: k-way balance bound (paper: 1.03).
    kway_balance: float = 1.03
    #: run the global k-way refinement stage after recursive bisection.
    run_kway: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if self.edge_balance < 1.0 or self.kway_balance < 1.0:
            raise ValueError("balance bounds must be >= 1.0")
        if self.stall_window < 1:
            raise ValueError("stall_window must be positive")


@dataclass(frozen=True)
class TaskRecord:
    """One unit of independently schedulable partitioning work."""

    kind: str  # "bisect" or "kway"
    step: int  # recursion step (bisect) or graph level (kway)
    duration: float  # measured seconds


def bisect_graph_set(
    graphs: list[OverlapGraph],
    mappings: list[np.ndarray],
    config: PartitionConfig,
    rng: np.random.Generator,
) -> np.ndarray:
    """Bisect the finest graph of a precoarsened set (labels 0/1).

    ``graphs[0]`` is the finest; the initial bisection is found on
    ``graphs[-1]`` and projected/refined down.
    """
    labels = greedy_grow_bisection(graphs[-1], rng, edge_balance=config.edge_balance)
    labels, _ = kl_refine_bisection(
        graphs[-1], labels, stall_window=config.stall_window, max_passes=config.kl_max_passes
    )
    for level in range(len(graphs) - 2, -1, -1):
        labels = labels[mappings[level]]  # project coarse -> fine
        labels, _ = kl_refine_bisection(
            graphs[level], labels, stall_window=config.stall_window, max_passes=config.kl_max_passes
        )
    return labels


def _bisect_subgraph(
    graph: OverlapGraph,
    config: PartitionConfig,
    rng: np.random.Generator,
    precoarsened: MultilevelGraphSet | None = None,
) -> np.ndarray:
    mls = precoarsened or build_multilevel_set(graph, config.coarsen)
    return bisect_graph_set(mls.graphs, mls.mappings, config, rng)


def recursive_bisection(
    graph: OverlapGraph,
    k: int,
    config: PartitionConfig | None = None,
    precoarsened: MultilevelGraphSet | None = None,
    tasks: list[TaskRecord] | None = None,
) -> np.ndarray:
    """Partition ``graph`` into ``k = 2^i`` parts by recursive bisection.

    ``precoarsened`` (if given) supplies the multilevel set for the
    first, whole-graph bisection; recursive sub-bisections coarsen
    their induced subgraphs afresh.  ``tasks`` (if given) collects one
    :class:`TaskRecord` per bisection for the Fig. 4 speedup replay.
    """
    config = config or PartitionConfig()
    if k < 1 or (k & (k - 1)) != 0:
        raise ValueError("k must be a power of two")
    rng = np.random.default_rng(config.seed)
    labels = np.zeros(graph.n_nodes, dtype=np.int64)
    if k == 1 or graph.n_nodes == 0:
        return labels

    n_steps = int(np.log2(k))
    # frontier: list of (node index arrays); step i bisects 2^i groups.
    frontier: list[np.ndarray] = [np.arange(graph.n_nodes, dtype=np.int64)]
    for step in range(n_steps):
        next_frontier: list[np.ndarray] = []
        for group in frontier:
            t0 = time.perf_counter()
            if group.size <= 1:
                half = np.zeros(group.size, dtype=np.int64)
            elif step == 0 and precoarsened is not None:
                half = _bisect_subgraph(graph, config, rng, precoarsened=precoarsened)
            else:
                sub, remap = graph.induced_subgraph(group)
                half = _bisect_subgraph(sub, config, rng)[remap[group]]
            if tasks is not None:
                tasks.append(
                    TaskRecord(kind="bisect", step=step, duration=time.perf_counter() - t0)
                )
            left = group[half == 0]
            right = group[half == 1]
            labels[right] = labels[right] * 2 + 1
            labels[left] = labels[left] * 2
            next_frontier.extend([left, right])
        frontier = next_frontier
    return labels
