"""Greedy graph growing (paper §IV-A).

Grows two partitions alternately from random seeds.  The frontier of
the growing partition is a max-gain priority queue, where the gain of
adding ``v`` to the growing part ``P`` is::

    gain(v) = w(v -> P) - w(v -> elsewhere)

Growth hands over to the other part whenever the growing part's
internal edge weight exceeds ``edge_balance`` (1.03, i.e. 3%) times the
other's, and the whole process stops when either part holds at least
half the node weight; remaining nodes join the lighter part.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.graph.overlap_graph import OverlapGraph

__all__ = ["greedy_grow_bisection"]

_UNASSIGNED = -1


def greedy_grow_bisection(
    graph: OverlapGraph,
    rng: np.random.Generator,
    edge_balance: float = 1.03,
) -> np.ndarray:
    """Initial bisection labels (0/1) for every node."""
    if edge_balance < 1.0:
        raise ValueError("edge_balance must be >= 1.0")
    n = graph.n_nodes
    labels = np.full(n, _UNASSIGNED, dtype=np.int64)
    if n == 0:
        return labels
    if n == 1:
        labels[0] = 0
        return labels

    node_w = graph.node_weights
    half_weight = 0.5 * graph.total_node_weight
    part_nw = [0.0, 0.0]  # node weight per part
    part_ew = [0.0, 0.0]  # internal edge weight per part
    # Last pushed gain per (part, node); stale heap entries are skipped.
    gains = np.zeros((2, n))
    heaps: list[list[tuple[float, int]]] = [[], []]

    indptr, adj, adj_edge, weights = graph.indptr, graph.adj, graph.adj_edge, graph.weights

    def gain_of(v: int, part: int) -> float:
        lo, hi = indptr[v], indptr[v + 1]
        w = weights[adj_edge[lo:hi]]
        lab = labels[adj[lo:hi]]
        inside = float(w[lab == part].sum())
        return 2.0 * inside - float(w.sum())

    def add_to_part(v: int, part: int) -> None:
        lo, hi = indptr[v], indptr[v + 1]
        w = weights[adj_edge[lo:hi]]
        lab = labels[adj[lo:hi]]
        part_ew[part] += float(w[lab == part].sum())
        labels[v] = part
        part_nw[part] += node_w[v]
        for u in adj[lo:hi].tolist():
            if labels[u] == _UNASSIGNED:
                g = gain_of(u, part)
                gains[part, u] = g
                heapq.heappush(heaps[part], (-g, u))

    def pop_best(part: int) -> int | None:
        heap = heaps[part]
        while heap:
            negg, u = heapq.heappop(heap)
            if labels[u] == _UNASSIGNED and -negg == gains[part, u]:
                return u
        return None

    def random_seed() -> int | None:
        unassigned = np.flatnonzero(labels == _UNASSIGNED)
        if unassigned.size == 0:
            return None
        return int(rng.choice(unassigned))

    growing = 0
    seed = random_seed()
    add_to_part(seed, growing)

    while part_nw[0] < half_weight and part_nw[1] < half_weight:
        # Edge-weight balance (3% bound): hand growth to the other part.
        if part_ew[growing] > edge_balance * part_ew[1 - growing]:
            growing = 1 - growing
        v = pop_best(growing)
        if v is None:
            v = random_seed()
            if v is None:
                break
        add_to_part(v, growing)

    # Remaining nodes go to the lighter part.
    rest = np.flatnonzero(labels == _UNASSIGNED)
    if rest.size:
        lighter = 0 if part_nw[0] <= part_nw[1] else 1
        labels[rest] = lighter
    return labels
