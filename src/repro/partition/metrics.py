"""Partition quality metrics: edge cut, weights, balance."""

from __future__ import annotations

import numpy as np

from repro.graph.overlap_graph import OverlapGraph

__all__ = [
    "edge_cut",
    "edge_cut_fraction",
    "partition_node_weights",
    "partition_edge_weights",
    "node_weight_balance",
    "internal_external_weights",
]


def _check_labels(graph: OverlapGraph, labels: np.ndarray) -> np.ndarray:
    labels = np.asarray(labels, dtype=np.int64)
    if labels.size != graph.n_nodes:
        raise ValueError("labels must cover every node")
    if labels.size and labels.min() < 0:
        raise ValueError("labels must be non-negative")
    return labels


def edge_cut(graph: OverlapGraph, labels: np.ndarray) -> float:
    """Total weight of edges whose endpoints lie in different parts."""
    labels = _check_labels(graph, labels)
    crossing = labels[graph.eu] != labels[graph.ev]
    return float(graph.weights[crossing].sum())


def edge_cut_fraction(graph: OverlapGraph, labels: np.ndarray) -> float:
    """Edge cut as a fraction of the graph's total edge weight."""
    total = graph.total_edge_weight
    if total == 0:
        return 0.0
    return edge_cut(graph, labels) / total


def partition_node_weights(graph: OverlapGraph, labels: np.ndarray, k: int | None = None) -> np.ndarray:
    """Summed node weight per part."""
    labels = _check_labels(graph, labels)
    k = int(labels.max()) + 1 if k is None else k
    out = np.zeros(k, dtype=np.int64)
    np.add.at(out, labels, graph.node_weights)
    return out


def partition_edge_weights(graph: OverlapGraph, labels: np.ndarray, k: int | None = None) -> np.ndarray:
    """Summed weight of *internal* edges per part (paper's ew_partition)."""
    labels = _check_labels(graph, labels)
    k = int(labels.max()) + 1 if k is None else k
    out = np.zeros(k, dtype=np.float64)
    internal = labels[graph.eu] == labels[graph.ev]
    np.add.at(out, labels[graph.eu[internal]], graph.weights[internal])
    return out


def node_weight_balance(graph: OverlapGraph, labels: np.ndarray, k: int | None = None) -> float:
    """max part weight / ideal part weight (1.0 = perfectly balanced)."""
    weights = partition_node_weights(graph, labels, k)
    ideal = graph.total_node_weight / weights.size
    if ideal == 0:
        return 1.0
    return float(weights.max() / ideal)


def internal_external_weights(
    graph: OverlapGraph, labels: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Per-node internal cost I_v and external cost E_v (paper §IV-B).

    ``I_v`` sums edge weights to same-part neighbours, ``E_v`` to
    other-part neighbours; ``D_v = E_v - I_v`` is the KL move gain.
    """
    labels = _check_labels(graph, labels)
    internal = np.zeros(graph.n_nodes)
    external = np.zeros(graph.n_nodes)
    same = labels[graph.eu] == labels[graph.ev]
    for arr, mask in ((internal, same), (external, ~same)):
        np.add.at(arr, graph.eu[mask], graph.weights[mask])
        np.add.at(arr, graph.ev[mask], graph.weights[mask])
    return internal, external
