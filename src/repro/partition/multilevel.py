"""Partitioning whole graph sets: multilevel (naive) vs hybrid (ours).

``partition_via_multilevel`` is the paper's baseline: the partition is
carried by full un-coarsening all the way to the overlap graph G0, with
refinement at every level.

``partition_via_hybrid`` is the biological-knowledge variant: the same
machinery runs with the *hybrid graph* H0 as its finest level — far
smaller than G0 because contiguous read clusters stay collapsed — and
the resulting partition is mapped onto G0 through cluster membership.

Both return a :class:`PartitionResult` carrying G0 labels, measured
wall time, and the per-task timing records used by the Fig. 4 replay.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.graph.coarsen import MultilevelGraphSet, build_multilevel_set
from repro.graph.hybrid import HybridGraphSet
from repro.graph.overlap_graph import OverlapGraph
from repro.partition.kway import kway_refine
from repro.partition.metrics import edge_cut
from repro.partition.recursive import PartitionConfig, TaskRecord, recursive_bisection

__all__ = [
    "PartitionResult",
    "partition_graph_set",
    "partition_via_multilevel",
    "partition_via_hybrid",
]


@dataclass
class PartitionResult:
    """Outcome of partitioning a graph set into k parts."""

    k: int
    #: labels on the finest graph of the partitioned set (G0 or H0).
    labels_finest: np.ndarray
    #: labels projected onto the overlap graph G0.
    labels_g0: np.ndarray
    #: serial wall-clock seconds for the whole partitioning.
    wall_time: float
    #: per-task timings for the parallel-schedule replay (Fig. 4).
    tasks: list[TaskRecord]
    #: edge cut measured on the finest partitioned graph.
    cut_finest: float
    #: edge cut of the projected labels on the overlap graph.
    cut_g0: float


def _project_labels_up(
    graphs: list[OverlapGraph], mappings: list[np.ndarray], labels_finest: np.ndarray, k: int
) -> list[np.ndarray]:
    """Labels per level: weighted-majority vote of each coarse node's children."""
    per_level = [np.asarray(labels_finest, dtype=np.int64)]
    for level in range(len(graphs) - 1):
        fine_labels = per_level[-1]
        mapping = mappings[level]
        n_coarse = graphs[level + 1].n_nodes
        votes = np.zeros((n_coarse, k), dtype=np.int64)
        np.add.at(votes, (mapping, fine_labels), graphs[level].node_weights)
        per_level.append(votes.argmax(axis=1).astype(np.int64))
    return per_level


def partition_graph_set(
    graphs: list[OverlapGraph],
    mappings: list[np.ndarray],
    k: int,
    config: PartitionConfig | None = None,
    precoarsened: MultilevelGraphSet | None = None,
) -> tuple[np.ndarray, list[TaskRecord], float]:
    """Recursive bisection + per-level k-way refinement on one graph set.

    Returns (labels on the finest graph, task records, wall seconds).
    """
    config = config or PartitionConfig()
    tasks: list[TaskRecord] = []
    t0 = time.perf_counter()
    labels = recursive_bisection(
        graphs[0], k, config=config, precoarsened=precoarsened, tasks=tasks
    )
    if config.run_kway and k > 1:
        per_level = _project_labels_up(graphs, mappings, labels, k)
        refined_finest = labels
        for level, (g, lab) in enumerate(zip(graphs, per_level)):
            t1 = time.perf_counter()
            refined, _gain = kway_refine(
                g,
                lab,
                k=k,
                balance=config.kway_balance,
                stall_window=config.stall_window,
                max_passes=config.kway_max_passes,
            )
            tasks.append(TaskRecord(kind="kway", step=level, duration=time.perf_counter() - t1))
            if level == 0:
                refined_finest = refined
        labels = refined_finest
    wall = time.perf_counter() - t0
    return labels, tasks, wall


def partition_via_multilevel(
    mls: MultilevelGraphSet, k: int, config: PartitionConfig | None = None
) -> PartitionResult:
    """Naive baseline: partition with full un-coarsening to G0."""
    labels, tasks, wall = partition_graph_set(
        mls.graphs, mls.mappings, k, config=config, precoarsened=mls
    )
    g0 = mls.base
    cut = edge_cut(g0, labels)
    return PartitionResult(
        k=k,
        labels_finest=labels,
        labels_g0=labels,
        wall_time=wall,
        tasks=tasks,
        cut_finest=cut,
        cut_g0=cut,
    )


def partition_via_hybrid(
    mls: MultilevelGraphSet,
    hyb: HybridGraphSet,
    k: int,
    config: PartitionConfig | None = None,
) -> PartitionResult:
    """Knowledge-enriched variant: partition the hybrid set, map to G0."""
    config = config or PartitionConfig()
    t0 = time.perf_counter()
    hyb_mls = MultilevelGraphSet(hyb.graphs, hyb.mappings)
    labels_h0, tasks, _ = partition_graph_set(
        hyb.graphs, hyb.mappings, k, config=config, precoarsened=hyb_mls
    )
    labels_g0 = labels_h0[hyb.base_maps[0]]
    wall = time.perf_counter() - t0
    return PartitionResult(
        k=k,
        labels_finest=labels_h0,
        labels_g0=labels_g0,
        wall_time=wall,
        tasks=tasks,
        cut_finest=edge_cut(hyb.hybrid, labels_h0),
        cut_g0=edge_cut(mls.base, labels_g0),
    )
