"""Multilevel graph partitioning — the paper's core contribution.

The pipeline follows Karypis–Kumar multilevel recursive bisection
(paper §IV): greedy graph growing seeds an initial bisection on the
coarsest graph, 2-way Kernighan–Lin refines it, the partition is
projected and refined down the graph levels, parts are recursively
bisected to ``k = 2^i`` parts, and a global k-way Kernighan–Lin pass
polishes every level.

The biological-knowledge variant runs the same machinery with the
*hybrid* graph as the finest level instead of the full overlap graph,
then maps the partition onto the overlap graph through the hybrid
cluster membership.
"""

from repro.partition.greedy_growing import greedy_grow_bisection
from repro.partition.kl import kl_refine_bisection
from repro.partition.kway import kway_refine
from repro.partition.metrics import (
    edge_cut,
    edge_cut_fraction,
    node_weight_balance,
    partition_edge_weights,
    partition_node_weights,
)
from repro.partition.multilevel import (
    PartitionResult,
    partition_graph_set,
    partition_via_hybrid,
    partition_via_multilevel,
)
from repro.partition.recursive import PartitionConfig, TaskRecord, recursive_bisection

__all__ = [
    "greedy_grow_bisection",
    "kl_refine_bisection",
    "kway_refine",
    "edge_cut",
    "edge_cut_fraction",
    "partition_node_weights",
    "partition_edge_weights",
    "node_weight_balance",
    "PartitionConfig",
    "TaskRecord",
    "recursive_bisection",
    "PartitionResult",
    "partition_graph_set",
    "partition_via_hybrid",
    "partition_via_multilevel",
]
