"""Global k-way Kernighan–Lin refinement (paper §IV-D, after [19]).

Boundary nodes are ranked by gain ``D_v = E_v - I_v``.  The top node is
moved to the neighbouring part with the largest external cost, subject
to the balance rule (no move into a part already >= 1.03x the source
part's node weight).  Moves are locked for the pass; the pass stops
after ``stall_window`` (50) moves without improving the running-maximum
partial gain and rolls back to that maximum.  Passes repeat until no
positive-gain pass remains.  Each graph level of a multilevel/hybrid
set can be refined independently — that is the parallelism Fig. 4's
tail uses.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.graph.overlap_graph import OverlapGraph
from repro.partition.metrics import internal_external_weights, partition_node_weights

__all__ = ["kway_refine"]


def _external_per_part(
    graph: OverlapGraph, labels: np.ndarray, v: int
) -> dict[int, float]:
    """Summed edge weight from ``v`` into each *other* part."""
    lo, hi = graph.indptr[v], graph.indptr[v + 1]
    nbrs = graph.adj[lo:hi]
    w = graph.weights[graph.adj_edge[lo:hi]]
    own = labels[v]
    out: dict[int, float] = {}
    for u, wt in zip(labels[nbrs].tolist(), w.tolist()):
        if u != own:
            out[u] = out.get(u, 0.0) + wt
    return out


def kway_refine(
    graph: OverlapGraph,
    labels: np.ndarray,
    k: int | None = None,
    balance: float = 1.03,
    stall_window: int = 50,
    max_passes: int = 4,
) -> tuple[np.ndarray, float]:
    """Refine a k-way partitioning; returns (labels copy, total gain)."""
    labels = np.asarray(labels, dtype=np.int64).copy()
    if labels.size != graph.n_nodes:
        raise ValueError("labels must cover every node")
    if balance < 1.0:
        raise ValueError("balance must be >= 1.0")
    if labels.size == 0:
        return labels, 0.0
    k = int(labels.max()) + 1 if k is None else k

    node_w = graph.node_weights
    total_gain = 0.0

    for _ in range(max_passes):
        internal, external = internal_external_weights(graph, labels)
        part_nw = partition_node_weights(graph, labels, k).astype(np.float64)
        locked = np.zeros(graph.n_nodes, dtype=bool)
        gains = external - internal
        heap = [(-gains[v], v) for v in np.flatnonzero(external > 0).tolist()]
        heapq.heapify(heap)

        moves: list[tuple[int, int, int]] = []  # (node, from, to)
        cum = 0.0
        s_max = 0.0
        s_max_idx = -1
        since_improve = 0

        while heap:
            negg, v = heapq.heappop(heap)
            if locked[v] or -negg != gains[v]:
                continue
            src = int(labels[v])
            ext = _external_per_part(graph, labels, v)
            best_part, best_ext = -1, -np.inf
            for part, wt in ext.items():
                if part_nw[part] >= balance * part_nw[src]:
                    continue  # balance rule blocks this move
                if wt > best_ext:
                    best_part, best_ext = part, wt
            if best_part < 0:
                locked[v] = True
                continue
            gain = best_ext - internal[v]
            # Apply the move.
            labels[v] = best_part
            part_nw[src] -= node_w[v]
            part_nw[best_part] += node_w[v]
            locked[v] = True
            moves.append((v, src, best_part))
            cum += gain
            if cum > s_max:
                s_max = cum
                s_max_idx = len(moves) - 1
                since_improve = 0
            else:
                since_improve += 1
                if since_improve >= stall_window:
                    break
            # Incremental I/E updates for v and its neighbours.
            lo, hi = graph.indptr[v], graph.indptr[v + 1]
            nbrs = graph.adj[lo:hi]
            w = graph.weights[graph.adj_edge[lo:hi]]
            for u, wt in zip(nbrs.tolist(), w.tolist()):
                if labels[u] == src:
                    internal[u] -= wt
                    external[u] += wt
                elif labels[u] == best_part:
                    internal[u] += wt
                    external[u] -= wt
                if not locked[u]:
                    gains[u] = external[u] - internal[u]
                    if external[u] > 0:
                        heapq.heappush(heap, (-gains[u], u))
            own = 0.0
            other = 0.0
            for u, wt in zip(labels[nbrs].tolist(), w.tolist()):
                if u == best_part:
                    own += wt
                else:
                    other += wt
            internal[v] = own
            external[v] = other

        # Roll back past the best prefix.
        for v, src, dst in reversed(moves[s_max_idx + 1 :]):
            labels[v] = src
        if s_max <= 0:
            break
        total_gain += s_max
    return labels, total_gain
