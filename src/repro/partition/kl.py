"""2-way Kernighan–Lin refinement (paper §IV-B).

Implements the O(n^2 log n) variant: nodes of each part live in
priority order by their D value (D = external - internal cost), node
pairs are enumerated in decreasing ``D_a + D_b`` via the diagonal-scan
strategy of Dutt [18] (stop as soon as the remaining pair sums cannot
beat the best gain seen), swapped pairs are locked, and the pass is cut
short once ``stall_window`` (50) consecutive exchanges fail to improve
the running maximum partial gain.  The pass is rolled back to the
prefix with maximal partial gain; passes repeat until no positive gain
remains.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.graph.overlap_graph import OverlapGraph
from repro.partition.metrics import internal_external_weights

__all__ = ["kl_refine_bisection", "edge_weight_between"]


def edge_weight_between(graph: OverlapGraph, a: int, b: int) -> float:
    """Weight of edge (a, b), or 0.0 if absent (scans the smaller side)."""
    if graph.indptr[a + 1] - graph.indptr[a] > graph.indptr[b + 1] - graph.indptr[b]:
        a, b = b, a
    lo, hi = graph.indptr[a], graph.indptr[a + 1]
    nbrs = graph.adj[lo:hi]
    hit = np.flatnonzero(nbrs == b)
    if hit.size == 0:
        return 0.0
    return float(graph.weights[graph.adj_edge[lo + hit[0]]])


def _best_pair(
    graph: OverlapGraph,
    d: np.ndarray,
    cand0: np.ndarray,
    cand1: np.ndarray,
    max_scan: int,
    part_w: np.ndarray,
    node_balance: float,
) -> tuple[int, int, float] | None:
    """Diagonal scan for the max-gain swap pair between two parts.

    ``cand0``/``cand1`` are unlocked nodes sorted by D descending.  A
    pair is admissible only if swapping it keeps the node-weight
    imbalance within ``node_balance`` (or improves it) — coarse nodes
    carry unequal weights, and unconstrained swaps would let the
    partition drift arbitrarily far from half/half.
    """
    if cand0.size == 0 or cand1.size == 0:
        return None
    node_w = graph.node_weights
    ideal = part_w.sum() / 2.0
    cur_max = part_w.max()
    best: tuple[int, int, float] | None = None
    gmax = -np.inf
    # Enumerate (i, j) by decreasing d0[i] + d1[j]:
    # push (i, j+1) always, (i+1, j) only from j == 0 (unique coverage).
    heap = [(-(d[cand0[0]] + d[cand1[0]]), 0, 0)]
    scanned = 0
    while heap and scanned < max_scan:
        neg_sum, i, j = heapq.heappop(heap)
        dsum = -neg_sum
        if dsum <= gmax:
            break
        a, b = int(cand0[i]), int(cand1[j])
        scanned += 1
        shift = node_w[b] - node_w[a]
        new_max = max(part_w[0] + shift, part_w[1] - shift)
        if new_max <= node_balance * ideal or new_max <= cur_max:
            gain = d[a] + d[b] - 2.0 * edge_weight_between(graph, a, b)
            if gain > gmax:
                gmax = gain
                best = (a, b, gain)
        if j + 1 < cand1.size:
            heapq.heappush(heap, (-(d[cand0[i]] + d[cand1[j + 1]]), i, j + 1))
        if j == 0 and i + 1 < cand0.size:
            heapq.heappush(heap, (-(d[cand0[i + 1]] + d[cand1[0]]), i + 1, 0))
    return best


def kl_refine_bisection(
    graph: OverlapGraph,
    labels: np.ndarray,
    stall_window: int = 50,
    max_passes: int = 8,
    max_scan: int = 400,
    node_balance: float = 1.1,
) -> tuple[np.ndarray, float]:
    """Refine a 0/1 bisection in place-style; returns (labels, total gain).

    ``labels`` is not modified; a refined copy is returned together
    with the total edge-cut improvement achieved across passes.
    """
    labels = np.asarray(labels, dtype=np.int64).copy()
    if labels.size != graph.n_nodes:
        raise ValueError("labels must cover every node")
    if labels.size == 0:
        return labels, 0.0
    if set(np.unique(labels).tolist()) - {0, 1}:
        raise ValueError("bisection labels must be 0/1")

    total_gain = 0.0
    indptr, adj, adj_edge, weights = graph.indptr, graph.adj, graph.adj_edge, graph.weights

    for _ in range(max_passes):
        internal, external = internal_external_weights(graph, labels)
        d = external - internal
        locked = np.zeros(graph.n_nodes, dtype=bool)
        part_w = np.array(
            [
                float(graph.node_weights[labels == 0].sum()),
                float(graph.node_weights[labels == 1].sum()),
            ]
        )
        swaps: list[tuple[int, int]] = []
        cum = 0.0
        s_max = 0.0
        s_max_idx = -1
        since_improve = 0

        while True:
            free = ~locked
            cand0 = np.flatnonzero(free & (labels == 0))
            cand1 = np.flatnonzero(free & (labels == 1))
            cand0 = cand0[np.argsort(-d[cand0], kind="stable")]
            cand1 = cand1[np.argsort(-d[cand1], kind="stable")]
            pair = _best_pair(graph, d, cand0, cand1, max_scan, part_w, node_balance)
            if pair is None:
                break
            a, b, gain = pair
            labels[a], labels[b] = 1, 0
            shift = graph.node_weights[b] - graph.node_weights[a]
            part_w[0] += shift
            part_w[1] -= shift
            locked[a] = locked[b] = True
            swaps.append((a, b))
            cum += gain
            if cum > s_max:
                s_max = cum
                s_max_idx = len(swaps) - 1
                since_improve = 0
            else:
                since_improve += 1
                if since_improve >= stall_window:
                    break
            # D updates (KL): x in P0 gains 2w(x,a) - 2w(x,b); P1 mirrored.
            for moved, joined_part in ((a, 1), (b, 0)):
                lo, hi = indptr[moved], indptr[moved + 1]
                nbrs = adj[lo:hi]
                w = weights[adj_edge[lo:hi]]
                left_part = 1 - joined_part  # part the node departed
                same = labels[nbrs] == left_part
                d[nbrs[same]] += 2.0 * w[same]
                other = labels[nbrs] == joined_part
                d[nbrs[other]] -= 2.0 * w[other]

        # Roll back to the best prefix.
        for a, b in reversed(swaps[s_max_idx + 1 :]):
            labels[a], labels[b] = 0, 1
        if s_max <= 0:
            break
        total_gain += s_max
    return labels, total_gain
