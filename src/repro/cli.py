"""Command-line interface: simulate, overlap, assemble, bench, stats.

Usage examples::

    python -m repro simulate-genome --length 25000 --seed 1 -o genome.fasta
    python -m repro simulate-reads --genome genome.fasta --coverage 12 -o reads.fastq
    python -m repro simulate-community --seed 7 --coverage 8 -o reads.fastq --refs refs.fasta
    python -m repro overlap reads.fastq -o overlaps.tsv --workers 4
    python -m repro pack reads.fastq -o reads.store --shard-size 4096
    python -m repro assemble --store reads.store -o contigs.fasta
    python -m repro assemble reads.fastq -o contigs.fasta --partitions 4 --workers 4
    python -m repro assemble reads.fastq -o contigs.fasta --backend process --timings t.json
    python -m repro assemble reads.fastq -o contigs.fasta --checkpoint ckpt.npz --resume
    python -m repro assemble reads.fastq -o contigs.fasta --fault-plan random:7 --retries 3
    python -m repro bench overlap -o BENCH_overlap.json
    python -m repro bench finish -o BENCH_finish.json
    python -m repro bench chaos -o BENCH_chaos.json
    python -m repro bench scale -o BENCH_scale.json --datasets S4 S5
    python -m repro stats contigs.fasta
    python -m repro submit jobs.store reads.fastq --partitions 4 --retries 3
    python -m repro serve jobs.store --workers 2 --drain
    python -m repro jobs jobs.store
    python -m repro cancel jobs.store job-ab12cd34ef
    python -m repro verify-store reads.store --quarantine
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.core.config import AssemblyConfig
from repro.core.focus import FocusAssembler
from repro.core.stats import AssemblyStats
from repro.io.fasta import parse_fasta, write_fasta
from repro.io.fastq import parse_fastq, write_fastq
from repro.io.records import Read
from repro.io.readset import ReadSet
from repro.simulate.community import CommunityConfig, build_community
from repro.simulate.genome import Genome, random_genome
from repro.simulate.reads import ReadSimConfig, ReadSimulator

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Focus parallel NGS assembler (IPDPSW 2017 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("simulate-genome", help="generate a random genome FASTA")
    p.add_argument("--length", type=int, default=25_000)
    p.add_argument("--gc", type=float, default=0.5)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("-o", "--output", required=True)

    p = sub.add_parser("simulate-reads", help="shotgun-sample reads from a genome FASTA")
    p.add_argument("--genome", required=True)
    p.add_argument("--coverage", type=float, default=12.0)
    p.add_argument("--read-length", type=int, default=100)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("-o", "--output", required=True)

    p = sub.add_parser(
        "simulate-community", help="generate a gut-community read set (FASTQ)"
    )
    p.add_argument("--coverage", type=float, default=8.0)
    p.add_argument("--read-length", type=int, default=100)
    p.add_argument("--shared-length", type=int, default=4000)
    p.add_argument("--private-length", type=int, default=3000)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("-o", "--output", required=True)
    p.add_argument("--refs", help="also write the reference genomes to this FASTA")

    p = sub.add_parser(
        "pack", help="pack a FASTA/FASTQ read set into a sharded store"
    )
    p.add_argument("reads", help="FASTA/FASTQ read set")
    p.add_argument("-o", "--output", required=True, help="store directory")
    p.add_argument(
        "--shard-size", type=int, default=4096, help="reads per shard"
    )
    p.add_argument(
        "--resume",
        action="store_true",
        help="reuse intact shards from an interrupted pack of the same input",
    )

    p = sub.add_parser("assemble", help="assemble a FASTA/FASTQ read set")
    p.add_argument(
        "reads", nargs="?", help="FASTA/FASTQ read set (omit with --store)"
    )
    p.add_argument(
        "--store",
        metavar="DIR",
        help="assemble from a sharded read store (``repro pack``) instead "
        "of an in-RAM read file; peak memory stays O(cache budget)",
    )
    p.add_argument(
        "--cache-budget-mb",
        type=int,
        default=64,
        help="LRU shard-cache byte budget for --store, in MiB",
    )
    p.add_argument("-o", "--output", required=True, help="contigs FASTA")
    p.add_argument("--partitions", type=int, default=4)
    p.add_argument("--mode", choices=("hybrid", "multilevel"), default="hybrid")
    p.add_argument("--min-overlap", type=int, default=50)
    p.add_argument("--min-identity", type=float, default=0.9)
    p.add_argument(
        "--workers",
        type=int,
        default=0,
        help="worker processes for the alignment stage (0/1 = serial)",
    )
    p.add_argument(
        "--backend",
        choices=("serial", "sim", "process"),
        default="sim",
        help="execution backend for the distributed graph stages: "
        "in-process serial loop, simulated MPI cluster (virtual "
        "clocks, the paper's figures), or real OS processes",
    )
    p.add_argument(
        "--backend-workers",
        type=int,
        default=0,
        help="worker processes for --backend process (0 = one per partition)",
    )
    p.add_argument(
        "--finish-engine",
        choices=("loop", "sparse"),
        default="loop",
        help="finish-kernel implementation for the distributed cleaning "
        "stages: scalar per-node loop or vectorized masked-CSR sparse "
        "engine (identical contigs, see docs/performance.md)",
    )
    p.add_argument(
        "--timings",
        metavar="PATH",
        help="write per-stage durations as JSON (tagged with the backend, "
        "whether distributed-stage times are wall or virtual, and the "
        "fault report when injection or recovery happened)",
    )
    p.add_argument(
        "--checkpoint",
        metavar="PATH",
        help="persist a stage checkpoint (.npz) after every completed "
        "distributed stage; combine with --resume to restart from it",
    )
    p.add_argument(
        "--resume",
        action="store_true",
        help="resume from --checkpoint, skipping already-completed stages "
        "(starts fresh when the checkpoint file does not exist yet)",
    )
    p.add_argument(
        "--fault-plan",
        metavar="PATH|random:SEED",
        help="inject deterministic faults: path to a FaultPlan JSON file, "
        "or random:SEED to generate a seeded chaos plan "
        "(see docs/robustness.md)",
    )
    p.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help="max attempts per distributed stage/partition before serial "
        "fallback (default: 3)",
    )
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser(
        "overlap", help="compute pairwise read overlaps, write a TSV"
    )
    p.add_argument("reads", help="FASTA/FASTQ read set")
    p.add_argument("-o", "--output", required=True, help="overlap TSV")
    p.add_argument(
        "--workers",
        type=int,
        default=0,
        help="worker processes (0/1 = serial in-process)",
    )
    p.add_argument(
        "--engine",
        choices=("vectorized", "loop"),
        default="vectorized",
        help="vectorized batch engine or the legacy per-query loop",
    )
    p.add_argument("--subsets", type=int, default=4, help="read-subset count")
    p.add_argument("--min-overlap", type=int, default=50)
    p.add_argument("--min-identity", type=float, default=0.9)

    p = sub.add_parser("stats", help="print N50/max/count for a contig FASTA")
    p.add_argument("contigs")

    p = sub.add_parser(
        "submit",
        help="submit an assembly job to a durable job store",
        description=(
            "Durably enqueues one checkpointed assembly job.  The store "
            "directory is created on first use; a supervisor (`repro "
            "serve`) picks the job up, and the job survives any crash — "
            "worker or supervisor — by resuming from its last durable "
            "stage checkpoint."
        ),
    )
    p.add_argument("store", help="job store directory (created if absent)")
    p.add_argument(
        "reads", nargs="?", help="FASTA/FASTQ read set (omit with --reads-store)"
    )
    p.add_argument(
        "--reads-store",
        metavar="DIR",
        help="sharded read store (`repro pack`) instead of a read file",
    )
    p.add_argument("--name", default="job", help="job name prefix")
    p.add_argument("--partitions", type=int, default=4)
    p.add_argument(
        "--partition-mode", choices=("hybrid", "multilevel"), default="hybrid"
    )
    p.add_argument(
        "--backend", choices=("serial", "sim", "process"), default="serial"
    )
    p.add_argument("--engine", choices=("loop", "sparse"), default="loop")
    p.add_argument("--min-overlap", type=int, default=50)
    p.add_argument("--min-identity", type=float, default=0.9)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--priority", type=int, default=0, help="larger runs first"
    )
    p.add_argument(
        "--memory-mb",
        type=int,
        default=0,
        help="admission-control charge in MiB (0 = the shard-cache budget)",
    )
    p.add_argument(
        "--cache-budget-mb",
        type=int,
        default=64,
        help="LRU shard-cache budget for store-backed reads, in MiB",
    )
    p.add_argument(
        "--retries",
        type=int,
        default=3,
        help="max attempts before the job is marked failed",
    )
    p.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="per-attempt wall-second budget before the watchdog kills it",
    )

    p = sub.add_parser(
        "serve",
        help="run a job-store supervisor (schedule + recover jobs)",
        description=(
            "Polls the job store: admits queued jobs up to the worker and "
            "memory quotas (highest priority first; an oversized job is "
            "admitted alone as the serial fallback), heartbeat-leases "
            "them to worker processes, SIGKILLs workers past their "
            "deadline, and requeues any job whose lease went stale — "
            "including jobs orphaned by a previous supervisor that "
            "crashed.  Multiple supervisors may serve one store; lease "
            "arbitration guarantees each job has at most one owner."
        ),
    )
    p.add_argument("store", help="job store directory")
    p.add_argument("--owner", default=None, help="supervisor name in leases")
    p.add_argument(
        "--workers", type=int, default=2, help="max concurrent worker processes"
    )
    p.add_argument(
        "--memory-budget-mb",
        type=int,
        default=256,
        help="admission-control byte budget across running jobs, in MiB",
    )
    p.add_argument(
        "--lease-ttl", type=float, default=15.0, help="lease TTL in seconds"
    )
    p.add_argument(
        "--poll-interval", type=float, default=0.5, help="scheduler pass period"
    )
    p.add_argument(
        "--drain",
        action="store_true",
        help="exit once every job in the store is terminal",
    )
    p.add_argument(
        "--max-seconds",
        type=float,
        default=3600.0,
        help="hard wall-clock bound on the serve loop",
    )

    p = sub.add_parser(
        "jobs",
        help="list jobs in a job store (state, attempt, stage, owner)",
    )
    p.add_argument("store", help="job store directory")
    p.add_argument(
        "--journal",
        metavar="JOB_ID",
        help="print the journaled transition history of one job instead",
    )

    p = sub.add_parser("cancel", help="cancel a queued or running job")
    p.add_argument("store", help="job store directory")
    p.add_argument("job_id", help="job to cancel")

    p = sub.add_parser(
        "verify-store",
        help="scrub a sharded read/graph store (stamps + fingerprints)",
        description=(
            "Re-validates every shard of a `repro pack` store against "
            "its manifest: per-shard stamp fields, payload integrity, "
            "and manifest fingerprints.  Exits 1 if any shard fails.  "
            "With --quarantine, corrupt shards are moved aside so a "
            "re-pack --resume rebuilds exactly the damaged ones."
        ),
    )
    p.add_argument("store", help="store directory (`repro pack` output)")
    p.add_argument(
        "--quarantine",
        action="store_true",
        help="move corrupt shards to <store>/quarantine/ instead of "
        "just reporting them",
    )
    p.add_argument("--format", choices=("text", "json"), default="text")

    p = sub.add_parser(
        "bench",
        help="performance benchmarks on the standard D1-D3 datasets",
    )
    bench_sub = p.add_subparsers(dest="bench_command", required=True)
    b = bench_sub.add_parser(
        "overlap",
        help="time the overlap engines (loop / vectorized / process)",
        description=(
            "Times the legacy loop engine, the vectorized engine, and the "
            "multiprocess driver on D1-D3, verifies all three produce "
            "identical overlap sets, and writes the trajectory JSON.  "
            "Exits nonzero if vectorized is slower than loop anywhere."
        ),
    )
    b.add_argument(
        "-o", "--output", default="BENCH_overlap.json", help="trajectory JSON path"
    )
    b.add_argument("--workers", type=int, default=4, help="process-engine worker count")
    b.add_argument("--subsets", type=int, default=4, help="read-subset count")
    b.add_argument(
        "--datasets",
        nargs="*",
        help="subset of dataset names to run (default: all of D1-D3)",
    )
    b = bench_sub.add_parser(
        "finish",
        help="time the distributed finish stages across backends",
        description=(
            "Times the distributed graph stages (trim + traversal) on "
            "D1/D2 plus synthetic finish-scale graphs across partition "
            "counts, backends, and finish engines, verifies "
            "byte-identical contigs across every backend x engine "
            "cell, and writes the trajectory JSON.  Exits nonzero if "
            "any cell disagrees, if (on multi-core hosts) the process "
            "backend is slower than serial at >= 4 partitions, or if "
            "the sparse engine is slower than the loop engine on a "
            "large dataset."
        ),
    )
    b.add_argument(
        "-o", "--output", default="BENCH_finish.json", help="trajectory JSON path"
    )
    b.add_argument(
        "--workers",
        type=int,
        default=0,
        help="process-backend worker count (0 = one per partition)",
    )
    b.add_argument(
        "--partitions",
        type=int,
        nargs="*",
        default=[4, 8],
        help="partition counts to sweep (powers of two)",
    )
    b.add_argument(
        "--datasets",
        nargs="*",
        help="subset of dataset names to run (default: D1 D2 S4 S5)",
    )
    b.add_argument(
        "--engine",
        choices=("loop", "sparse", "both"),
        default="both",
        help="finish engines to time (default: both, with per-stage "
        "loop-vs-sparse speedup rows)",
    )
    b = bench_sub.add_parser(
        "chaos",
        help="measure fault-recovery overhead under seeded fault plans",
        description=(
            "Runs the distributed finish stages fault-free and under "
            "seeded chaos fault plans on each backend, verifies the "
            "recovered contigs are byte-identical to the fault-free "
            "run, and writes recovery overhead (retries, respawns, "
            "fallbacks, slowdown) to the trajectory JSON.  Exits "
            "nonzero if any faulted run fails to recover the exact "
            "fault-free contigs."
        ),
    )
    b.add_argument(
        "-o", "--output", default="BENCH_chaos.json", help="trajectory JSON path"
    )
    b.add_argument(
        "--backends",
        nargs="*",
        default=["serial", "sim", "process"],
        choices=("serial", "sim", "process"),
        help="backends to chaos-test (default: all three)",
    )
    b.add_argument(
        "--seeds",
        type=int,
        nargs="*",
        default=[1, 2],
        help="fault-plan seeds to sweep per backend",
    )
    b.add_argument(
        "--partitions", type=int, default=4, help="partition count (power of two)"
    )
    b.add_argument(
        "--service",
        action="store_true",
        help="also run the assembly-service SIGKILL axis: kill the "
        "worker and the supervisor mid-stage (and race two supervisors "
        "over a stale lease), gating byte-identical recovered contigs",
    )
    b = bench_sub.add_parser(
        "scale",
        help="out-of-core sweep: pack + stream 10^4-10^6 read equivalents",
        description=(
            "Stream-synthesizes the S4/S5/S6 scale datasets (10^4 to "
            "10^6 read equivalents) into sharded stores, runs a "
            "shard-pair-wise k-mer scan over each with a bounded LRU "
            "cache, and assembles the small SE dataset from the store "
            "and from RAM on every backend.  Writes the trajectory "
            "JSON with per-cell wall time, tracked allocation peak, "
            "and RSS high-water mark.  Exits 1 if any stream cell's "
            "tracked peak exceeds the cache budget plus slack, 2 if "
            "sharded and in-RAM contigs differ anywhere."
        ),
    )
    b.add_argument(
        "-o", "--output", default="BENCH_scale.json", help="trajectory JSON path"
    )
    b.add_argument(
        "--datasets",
        nargs="*",
        help="subset of scale dataset names to run (default: S4 S5 S6)",
    )
    b.add_argument(
        "--shard-size", type=int, default=4096, help="reads per shard"
    )
    b.add_argument(
        "--cache-budget-mb",
        type=int,
        default=64,
        help="LRU shard-cache byte budget, in MiB (the memory ceiling)",
    )
    b.add_argument(
        "--skip-equivalence",
        action="store_true",
        help="skip the in-RAM-vs-sharded assembly equivalence cell",
    )

    p = sub.add_parser(
        "lint",
        help="static correctness checks (MPI model + kernel purity)",
        description=(
            "AST checks for the simulated-MPI programming model and the "
            "distributed kernel contract: MPI001 collective-symmetry, "
            "MPI002 reserved-tag, MPI003 mutate-after-send, DET001 "
            "unseeded-rng, PERF001 untimed-compute, PERF002 "
            "scalarized-hot-loop, ARCH001 kernel-imports-mpi, plus the "
            "whole-program rules PURE001 kernel-mutates-state, PURE002 "
            "kernel-reaches-nondeterminism, and ARCH002 stage-contract "
            "(interprocedural, resolved over the full call graph), "
            "ROB001 swallowed-exception, and MEM001 "
            "whole-store-materialization in partition kernels.  "
            "Suppress per line with `# noqa: RULEID`."
        ),
    )
    p.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    p.add_argument("--format", choices=("text", "json"), default="text")
    p.add_argument(
        "--strict",
        action="store_true",
        help="exit nonzero on warnings too, not just errors",
    )
    p.add_argument(
        "--stats",
        action="store_true",
        help="print per-rule counts, files analyzed, and cache hit rate",
    )
    p.add_argument(
        "--baseline",
        metavar="FILE",
        help="suppress findings fingerprinted in FILE (adopt-then-burn-down)",
    )
    p.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the current findings to --baseline FILE and exit 0",
    )
    p.add_argument(
        "--list-rules", action="store_true", help="print the rule table and exit"
    )
    p.add_argument(
        "--protocol-report",
        metavar="FUNCTION",
        help=(
            "instead of linting, dump the reconstructed per-role "
            "communication protocol of the named comm-taking function "
            "(plain or dotted name) as text/JSON"
        ),
    )

    return parser


def _load_reads(path: str) -> ReadSet:
    if path.endswith((".fq", ".fastq")):
        return ReadSet(parse_fastq(path))
    return ReadSet(parse_fasta(path))


def _cmd_simulate_genome(args) -> int:
    rng = np.random.default_rng(args.seed)
    codes = random_genome(args.length, rng, gc=args.gc)
    write_fasta([Read("genome", codes)], args.output)
    print(f"wrote {args.length:,} bp genome to {args.output}")
    return 0


def _cmd_simulate_reads(args) -> int:
    genomes = list(parse_fasta(args.genome))
    if not genomes:
        print("error: genome FASTA is empty", file=sys.stderr)
        return 1
    sim = ReadSimulator(
        ReadSimConfig(read_length=args.read_length, coverage=args.coverage, seed=args.seed)
    )
    all_reads: list[Read] = []
    for rec in genomes:
        rs = sim.simulate_genome(Genome(rec.id, rec.codes))
        all_reads.extend(rs)
    write_fastq(all_reads, args.output)
    print(f"wrote {len(all_reads):,} reads to {args.output}")
    return 0


def _cmd_simulate_community(args) -> int:
    community = build_community(
        CommunityConfig(
            shared_length=args.shared_length, private_length=args.private_length
        ),
        seed=args.seed,
    )
    sim = ReadSimulator(
        ReadSimConfig(read_length=args.read_length, coverage=args.coverage, seed=args.seed)
    )
    reads = sim.simulate_community(community)
    write_fastq(list(reads), args.output)
    print(f"wrote {len(reads):,} reads from {len(community.genomes)} genomes to {args.output}")
    if args.refs:
        write_fasta(
            [Read(g.meta["genus"], g.codes) for g in community.genomes], args.refs
        )
        print(f"wrote reference genomes to {args.refs}")
    return 0


def _parse_fault_plan(spec: str, stages: tuple[str, ...], n_parts: int):
    """``--fault-plan`` value: a JSON file path or ``random:SEED``."""
    from repro.faults import FaultPlan

    if spec.startswith("random:") or spec == "random":
        _, _, seed_text = spec.partition(":")
        try:
            seed = int(seed_text) if seed_text else 0
        except ValueError:
            raise ValueError(
                f"bad --fault-plan {spec!r}: expected random:<integer seed>"
            ) from None
        return FaultPlan.random(seed, stages, n_parts)
    with open(spec, encoding="utf-8") as fh:
        return FaultPlan.from_json(fh.read())


def _cmd_pack(args) -> int:
    from repro.store import pack_reads

    records = (
        parse_fastq(args.reads)
        if args.reads.endswith((".fq", ".fastq"))
        else parse_fasta(args.reads)
    )
    manifest = pack_reads(
        records,
        args.output,
        shard_size=args.shard_size,
        resume=args.resume,
        meta={"source": args.reads},
    )
    print(
        f"packed {manifest.n_records:,} reads into {manifest.n_shards} "
        f"shards at {args.output}"
    )
    return 0


def _cmd_assemble(args) -> int:
    from repro.align.overlapper import OverlapConfig
    from repro.distributed.stages import all_stages
    from repro.faults import RetryPolicy

    if args.store and args.reads:
        print("error: pass a reads file or --store, not both", file=sys.stderr)
        return 1
    if args.store:
        reads = ReadSet.open(args.store, cache_budget=args.cache_budget_mb << 20)
    elif args.reads:
        reads = _load_reads(args.reads)
    else:
        print("error: a reads file or --store is required", file=sys.stderr)
        return 1
    if len(reads) == 0:
        print("error: no reads in input", file=sys.stderr)
        return 1
    if args.resume and not args.checkpoint:
        print("error: --resume requires --checkpoint", file=sys.stderr)
        return 1
    fault_plan = None
    if args.fault_plan:
        stage_names = tuple(spec.name for spec in all_stages())
        try:
            fault_plan = _parse_fault_plan(
                args.fault_plan, stage_names, args.partitions
            )
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    retry = RetryPolicy() if args.retries is None else RetryPolicy(max_attempts=args.retries)
    config = AssemblyConfig(
        n_partitions=args.partitions,
        partition_mode=args.mode,
        overlap=OverlapConfig(min_overlap=args.min_overlap, min_identity=args.min_identity),
        overlap_workers=args.workers,
        backend=args.backend,
        backend_workers=args.backend_workers,
        finish_engine=args.finish_engine,
        retry=retry,
        fault_plan=fault_plan,
        store_path=args.store,
        cache_budget=args.cache_budget_mb << 20,
        seed=args.seed,
    )
    assembler = FocusAssembler(config)
    result = assembler.finish(
        assembler.prepare(reads),
        checkpoint=args.checkpoint,
        resume=args.resume,
    )
    contigs = [
        Read(f"contig_{i}", c) for i, c in enumerate(result.contigs)
    ]
    write_fasta(contigs, args.output)
    fault_report = result.fault_report
    if args.timings:
        extra = {}
        if fault_report is not None and fault_report.has_activity:
            extra["faults"] = fault_report.to_dict()
        with open(args.timings, "w", encoding="utf-8") as fh:
            fh.write(
                result.timer.to_json(
                    backend=result.backend,
                    distributed={
                        "time_kind": result.time_kind,
                        "stages": result.virtual_times,
                    },
                    **extra,
                )
                + "\n"
            )
    s = result.stats
    print(result.timer.report())
    print(
        f"assembled {len(reads):,} reads -> {s.n_contigs} contigs "
        f"(N50 {s.n50:,} bp, max {s.max_contig:,} bp) "
        f"[{result.backend} backend] -> {args.output}"
    )
    if fault_report is not None and fault_report.has_activity:
        print(f"fault report: {fault_report.summary()}")
    if args.checkpoint:
        print(f"stage checkpoint at {args.checkpoint}")
    if args.timings:
        print(f"wrote stage timings to {args.timings}")
    return 0


def _cmd_overlap(args) -> int:
    import time

    from repro.align.overlapper import OverlapConfig, OverlapDetector

    reads = _load_reads(args.reads)
    if len(reads) == 0:
        print("error: no reads in input", file=sys.stderr)
        return 1
    config = OverlapConfig(
        min_overlap=args.min_overlap,
        min_identity=args.min_identity,
        n_subsets=args.subsets,
        engine=args.engine,
    )
    detector = OverlapDetector(config)
    t0 = time.perf_counter()
    if args.workers > 1:
        overlaps = detector.find_overlaps_processes(reads, args.workers)
    else:
        overlaps = detector.find_overlaps(reads)
    wall = time.perf_counter() - t0
    with open(args.output, "w", encoding="utf-8") as fh:
        fh.write("query\tref\tq_start\tr_start\tlength\tidentity\tkind\n")
        for o in overlaps:
            fh.write(
                f"{o.query}\t{o.ref}\t{o.q_start}\t{o.r_start}\t"
                f"{o.length}\t{o.identity:.6f}\t{o.kind.value}\n"
            )
    mode = f"{args.workers} workers" if args.workers > 1 else f"serial/{args.engine}"
    print(
        f"found {len(overlaps):,} overlaps in {len(reads):,} reads "
        f"({mode}, {wall:.2f}s) -> {args.output}"
    )
    return 0


def _cmd_bench(args) -> int:
    if args.bench_command == "overlap":
        from repro.bench.overlap_bench import main as bench_overlap_main

        return bench_overlap_main(
            output=args.output,
            workers=args.workers,
            n_subsets=args.subsets,
            dataset_names=args.datasets,
        )
    if args.bench_command == "finish":
        from repro.bench.finish_bench import main as bench_finish_main

        return bench_finish_main(
            output=args.output,
            workers=args.workers,
            partitions=tuple(args.partitions),
            dataset_names=args.datasets,
            engine=args.engine,
        )
    if args.bench_command == "chaos":
        from repro.bench.chaos_bench import main as bench_chaos_main

        return bench_chaos_main(
            output=args.output,
            backends=tuple(args.backends),
            seeds=tuple(args.seeds),
            n_partitions=args.partitions,
            service=args.service,
        )
    if args.bench_command == "scale":
        from repro.bench.scale_bench import main as bench_scale_main

        return bench_scale_main(
            output=args.output,
            dataset_names=args.datasets,
            shard_size=args.shard_size,
            cache_budget=args.cache_budget_mb << 20,
            skip_equivalence=args.skip_equivalence,
        )
    raise AssertionError(f"unknown bench command {args.bench_command!r}")


def _cmd_stats(args) -> int:
    lengths = [len(rec) for rec in parse_fasta(args.contigs)]
    if not lengths:
        print("error: no contigs in input", file=sys.stderr)
        return 1
    s = AssemblyStats.from_contigs([np.zeros(n, dtype=np.uint8) for n in lengths])
    print(f"contigs:     {s.n_contigs}")
    print(f"total bases: {s.total_bases:,}")
    print(f"N50:         {s.n50:,} bp")
    print(f"max contig:  {s.max_contig:,} bp")
    print(f"mean contig: {s.mean_contig:,.1f} bp")
    return 0


def _cmd_submit(args) -> int:
    from repro.faults import RetryPolicy
    from repro.service import JobSpec, JobStore

    if (args.reads is None) == (args.reads_store is None):
        print(
            "error: give exactly one of READS or --reads-store",
            file=sys.stderr,
        )
        return 1
    try:
        spec = JobSpec(
            name=args.name,
            reads_path=args.reads,
            reads_store=args.reads_store,
            n_partitions=args.partitions,
            partition_mode=args.partition_mode,
            backend=args.backend,
            engine=args.engine,
            min_overlap=args.min_overlap,
            min_identity=args.min_identity,
            seed=args.seed,
            priority=args.priority,
            memory_bytes=args.memory_mb << 20,
            cache_budget=args.cache_budget_mb << 20,
            retry=RetryPolicy(max_attempts=args.retries),
            deadline=args.deadline,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    store = JobStore(args.store, create=True)
    record = store.submit(spec)
    print(f"submitted {record.job_id} (queued, priority {record.priority})")
    return 0


def _cmd_serve(args) -> int:
    from repro.service import JobStore, Supervisor

    try:
        store = JobStore(args.store)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    sup = Supervisor(
        store,
        owner=args.owner,
        max_workers=args.workers,
        memory_budget=args.memory_budget_mb << 20,
        lease_ttl=args.lease_ttl,
        poll_interval=args.poll_interval,
    )
    print(
        f"serving {args.store} as {sup.owner} "
        f"(workers={args.workers}, ttl={args.lease_ttl}s)"
    )
    try:
        sup.run(drain=args.drain, max_seconds=args.max_seconds)
    except KeyboardInterrupt:
        sup.shutdown(kill=False)
        print("supervisor stopped; running workers keep their leases")
        return 130
    states = [r.state for r in store.load_records()]
    print(
        f"serve loop done: {len(states)} jobs "
        f"({states.count('done')} done, {states.count('failed')} failed, "
        f"{states.count('cancelled')} cancelled)"
    )
    return 0


def _cmd_jobs(args) -> int:
    from repro.bench.reporting import format_table
    from repro.service import JobStore

    try:
        store = JobStore(args.store)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.journal:
        try:
            entries = store.journal(args.journal)
        except KeyError:
            print(f"error: no such job {args.journal!r}", file=sys.stderr)
            return 1
        for e in entries:
            stamp = time.strftime("%H:%M:%S", time.localtime(e.ts))
            info = " ".join(f"{k}={v}" for k, v in sorted(e.info.items()))
            print(
                f"{stamp}  {e.state_from:>13s} -> {e.state_to:<13s} "
                f"attempt {e.attempt}  {info}"
            )
        return 0
    rows = []
    for record in store.load_records():
        lease = store.read_lease(record.job_id)
        owner = lease.owner if lease and not lease.stale() else "-"
        rows.append(
            [
                record.job_id,
                record.state,
                record.attempt,
                record.priority,
                record.stage or "-",
                owner,
                record.error or "-",
            ]
        )
    if not rows:
        print("no jobs")
        return 0
    print(
        format_table(
            ["Job", "State", "Attempt", "Priority", "Stage", "Owner", "Error"],
            rows,
        )
    )
    return 0


def _cmd_cancel(args) -> int:
    from repro.service import JobStore

    try:
        store = JobStore(args.store)
        outcome = store.request_cancel(args.job_id)
    except (KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(f"{args.job_id}: {outcome}")
    return 0 if outcome != "ignored" else 1


def _cmd_verify_store(args) -> int:
    from repro.store.verify import main as verify_main

    return verify_main(args.store, quarantine=args.quarantine, fmt=args.format)


def _cmd_lint(args) -> int:
    from repro.lint import all_rules, run as lint_run

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id}  [{rule.severity}]  {rule.summary}")
        return 0
    return lint_run(
        args.paths,
        fmt=args.format,
        strict=args.strict,
        stats=args.stats,
        baseline=args.baseline,
        update_baseline=args.write_baseline,
        protocol_report=args.protocol_report,
    )


_COMMANDS = {
    "simulate-genome": _cmd_simulate_genome,
    "simulate-reads": _cmd_simulate_reads,
    "simulate-community": _cmd_simulate_community,
    "pack": _cmd_pack,
    "assemble": _cmd_assemble,
    "overlap": _cmd_overlap,
    "stats": _cmd_stats,
    "bench": _cmd_bench,
    "lint": _cmd_lint,
    "submit": _cmd_submit,
    "serve": _cmd_serve,
    "jobs": _cmd_jobs,
    "cancel": _cmd_cancel,
    "verify-store": _cmd_verify_store,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except BrokenPipeError:
        # Output piped into a consumer that closed early (`lint | head`).
        # Point stdout at devnull so the interpreter's exit flush does not
        # raise again, and exit with the conventional SIGPIPE status.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 141
