"""Vectorised k-mer extraction and integer packing.

A k-mer over the 2-bit alphabet packs into an integer::

    value = sum_j codes[j] * 4**(k - 1 - j)

i.e. the leftmost base is the most significant 2-bit digit.  With
``int64`` this supports k <= 31.  All routines reject windows that
contain ``N`` (code 4) by reporting their positions so callers can mask
them out.
"""

from __future__ import annotations

import numpy as np

from repro.sequence.dna import N

__all__ = [
    "max_k_for_dtype",
    "pack_kmer",
    "unpack_kmer",
    "revcomp_kmer_code",
    "kmer_codes",
    "kmer_positions",
    "canonical_kmer_codes",
]


def max_k_for_dtype(dtype=np.int64) -> int:
    """Largest k such that 4**k fits the signed integer dtype."""
    bits = np.dtype(dtype).itemsize * 8 - 1
    return bits // 2


def _check_k(k: int) -> None:
    if not 1 <= k <= max_k_for_dtype():
        raise ValueError(f"k must be in 1..{max_k_for_dtype()}, got {k}")


def pack_kmer(codes: np.ndarray) -> int:
    """Pack a single k-mer code array into its integer value."""
    codes = np.asarray(codes, dtype=np.int64)
    _check_k(codes.size)
    if (codes >= N).any():
        raise ValueError("cannot pack a k-mer containing N")
    value = 0
    for c in codes.tolist():
        value = (value << 2) | c
    return value


def unpack_kmer(value: int, k: int) -> np.ndarray:
    """Inverse of :func:`pack_kmer`."""
    _check_k(k)
    out = np.empty(k, dtype=np.uint8)
    for j in range(k - 1, -1, -1):
        out[j] = value & 3
        value >>= 2
    return out


def revcomp_kmer_code(values: np.ndarray | int, k: int):
    """Reverse-complement packed k-mer value(s) without unpacking.

    Works elementwise on arrays.  Complementing a 2-bit base is
    ``3 - b`` i.e. ``b ^ 3``; reversing swaps digit order.
    """
    _check_k(k)
    scalar = np.isscalar(values)
    v = np.asarray(values, dtype=np.int64)
    out = np.zeros_like(v)
    for _ in range(k):
        out = (out << 2) | ((v & 3) ^ 3)
        v = v >> 2
    return int(out) if scalar else out


def kmer_codes(codes: np.ndarray, k: int) -> np.ndarray:
    """Packed values of every k-mer window of ``codes`` (length n-k+1).

    Windows containing ``N`` get the value -1.  Vectorised via a
    sliding-window polynomial evaluation.
    """
    _check_k(k)
    codes = np.asarray(codes, dtype=np.uint8)
    n = codes.size
    if n < k:
        return np.empty(0, dtype=np.int64)
    # Horner accumulation over the k window positions: k passes of O(n)
    # int64 work.  Peak memory is a few n-length arrays, where the
    # sliding-window matmul formulation materialized an (n, k) int64
    # matrix — the difference between O(shard) and O(shard * k)
    # transients on the out-of-core streaming path.
    n_windows = n - k + 1
    values = np.zeros(n_windows, dtype=np.int64)
    has_n = np.zeros(n_windows, dtype=bool)
    for j in range(k):
        col = codes[j : j + n_windows]
        np.left_shift(values, 2, out=values)
        values |= col  # N codes pollute bits; their windows become -1 below
        has_n |= col == N
    values[has_n] = -1
    return values


def kmer_positions(codes: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
    """(positions, packed values) of all valid (N-free) k-mers."""
    values = kmer_codes(codes, k)
    pos = np.flatnonzero(values >= 0)
    return pos, values[pos]


def canonical_kmer_codes(codes: np.ndarray, k: int) -> np.ndarray:
    """Packed canonical k-mers: min(value, revcomp value) per window.

    Canonicalisation makes k-mer identity strand-independent, which the
    de Bruijn baseline and the read classifier both rely on.  Invalid
    (N-containing) windows remain -1.
    """
    values = kmer_codes(codes, k)
    valid = values >= 0
    out = values.copy()
    if valid.any():
        rc = revcomp_kmer_code(values[valid], k)
        out[valid] = np.minimum(values[valid], rc)
    return out
