"""Phred quality scores and the Focus read-trimming rule.

Focus trims each read in two stages (paper §II-A):

1. fixed-length trims of the 5' and 3' ends (adaptor/tag removal);
2. quality trimming: a sliding window of length ``l`` moves from the
   3' end toward the 5' end in steps of ``k``; at the first window
   whose *average* quality exceeds the threshold ``q``, the read is cut
   from that window's right end to the 3' end.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "PHRED_OFFSET",
    "encode_phred",
    "decode_phred",
    "error_probabilities",
    "sliding_window_trim_index",
    "trim_read",
]

#: Sanger / Illumina 1.8+ ASCII offset.
PHRED_OFFSET = 33


def encode_phred(quals: np.ndarray, offset: int = PHRED_OFFSET) -> str:
    """Encode integer quality scores as a FASTQ quality string."""
    quals = np.asarray(quals, dtype=np.int64)
    if quals.size and (quals.min() < 0 or quals.max() > 93):
        raise ValueError("phred scores must be in 0..93")
    return (quals + offset).astype(np.uint8).tobytes().decode("ascii")


def decode_phred(qstring: str, offset: int = PHRED_OFFSET) -> np.ndarray:
    """Decode a FASTQ quality string into integer scores."""
    arr = np.frombuffer(qstring.encode("ascii"), dtype=np.uint8).astype(np.int64)
    quals = arr - offset
    if quals.size and quals.min() < 0:
        raise ValueError("quality string contains characters below the offset")
    return quals


def error_probabilities(quals: np.ndarray) -> np.ndarray:
    """Per-base error probability 10**(-Q/10)."""
    return np.power(10.0, -np.asarray(quals, dtype=np.float64) / 10.0)


def sliding_window_trim_index(
    quals: np.ndarray,
    window: int = 10,
    step: int = 1,
    min_quality: float = 20.0,
) -> int:
    """Return the trimmed length of a read under the Focus 3' rule.

    Windows of ``window`` bases are examined starting at the 3' end and
    moving 5'-ward by ``step``.  The first window whose mean quality is
    strictly greater than ``min_quality`` determines the cut: the read
    keeps positions ``[0, right_end_of_window)``.  If no window passes,
    0 is returned (the read is discarded).  Reads shorter than
    ``window`` are evaluated as a single window.
    """
    quals = np.asarray(quals, dtype=np.float64)
    n = quals.size
    if window <= 0 or step <= 0:
        raise ValueError("window and step must be positive")
    if n == 0:
        return 0
    if n <= window:
        return n if quals.mean() > min_quality else 0
    means = np.lib.stride_tricks.sliding_window_view(quals, window).mean(axis=1)
    # Window starting at position s covers [s, s+window); its right end
    # is s+window.  Scan from the 3'-most start backwards in ``step``s.
    starts = np.arange(n - window, -1, -step)
    passing = means[starts] > min_quality
    if not passing.any():
        return 0
    s = int(starts[np.argmax(passing)])
    return s + window


def trim_read(
    codes: np.ndarray,
    quals: np.ndarray | None = None,
    trim5: int = 0,
    trim3: int = 0,
    window: int = 10,
    step: int = 1,
    min_quality: float = 20.0,
) -> tuple[np.ndarray, np.ndarray | None]:
    """Apply fixed 5'/3' trims then quality trimming; returns new arrays.

    ``quals`` may be ``None`` (FASTA input), in which case only the
    fixed trims apply.  Over-aggressive fixed trims yield empty arrays
    rather than raising, mirroring how an assembler drops short reads
    downstream.
    """
    if trim5 < 0 or trim3 < 0:
        raise ValueError("fixed trim lengths must be non-negative")
    codes = np.asarray(codes, dtype=np.uint8)
    n = codes.size
    lo = min(trim5, n)
    hi = max(lo, n - trim3)
    codes = codes[lo:hi]
    if quals is None:
        return codes, None
    quals = np.asarray(quals)[lo:hi]
    if quals.size != codes.size:
        raise ValueError("quality array length does not match sequence")
    keep = sliding_window_trim_index(quals, window=window, step=step, min_quality=min_quality)
    return codes[:keep], quals[:keep]
