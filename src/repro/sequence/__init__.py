"""DNA sequence primitives: 2-bit encoding, k-mers, and quality handling.

Everything in this package operates on numpy ``uint8`` *code arrays*
(A=0, C=1, G=2, T=3, N=4) rather than Python strings so that the
base-level work of the assembler — reverse complements, k-mer
extraction, identity checks — is vectorised.
"""

from repro.sequence.dna import (
    A,
    C,
    G,
    T,
    N,
    CODE_TO_BASE,
    complement,
    decode,
    encode,
    gc_content,
    hamming_identity,
    is_valid_codes,
    reverse_complement,
)
from repro.sequence.kmers import (
    canonical_kmer_codes,
    kmer_codes,
    kmer_positions,
    max_k_for_dtype,
    pack_kmer,
    revcomp_kmer_code,
    unpack_kmer,
)
from repro.sequence.quality import (
    PHRED_OFFSET,
    decode_phred,
    encode_phred,
    error_probabilities,
    sliding_window_trim_index,
    trim_read,
)

__all__ = [
    "A",
    "C",
    "G",
    "T",
    "N",
    "CODE_TO_BASE",
    "encode",
    "decode",
    "complement",
    "reverse_complement",
    "gc_content",
    "hamming_identity",
    "is_valid_codes",
    "kmer_codes",
    "canonical_kmer_codes",
    "kmer_positions",
    "pack_kmer",
    "unpack_kmer",
    "revcomp_kmer_code",
    "max_k_for_dtype",
    "PHRED_OFFSET",
    "encode_phred",
    "decode_phred",
    "error_probabilities",
    "sliding_window_trim_index",
    "trim_read",
]
