"""2-bit DNA encoding and base-level operations.

The assembler stores nucleotides as numpy ``uint8`` codes::

    A = 0, C = 1, G = 2, T = 3, N = 4

The 0..3 codes are chosen so that the complement of a valid base ``b``
is simply ``3 - b``, which makes reverse complementation a single
vectorised expression.  ``N`` (code 4) is preserved by all operations
(its "complement" is defined as ``N``).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "A",
    "C",
    "G",
    "T",
    "N",
    "CODE_TO_BASE",
    "encode",
    "decode",
    "complement",
    "reverse_complement",
    "gc_content",
    "hamming_identity",
    "is_valid_codes",
]

A, C, G, T, N = 0, 1, 2, 3, 4

#: Index with a code to get the ASCII base character.
CODE_TO_BASE = np.frombuffer(b"ACGTN", dtype=np.uint8)

# Build the 256-entry ASCII -> code lookup table once.  Unknown
# characters map to a sentinel (255) so that ``encode`` can detect them.
_BASE_TO_CODE = np.full(256, 255, dtype=np.uint8)
for _i, _ch in enumerate(b"ACGTN"):
    _BASE_TO_CODE[_ch] = _i
for _i, _ch in enumerate(b"acgtn"):
    _BASE_TO_CODE[_ch] = _i

# Complement table over codes: A<->T, C<->G, N->N.
_COMPLEMENT = np.array([3, 2, 1, 0, 4], dtype=np.uint8)


def encode(seq: str | bytes) -> np.ndarray:
    """Encode a DNA string into a ``uint8`` code array.

    Accepts upper- or lower-case ``ACGTN``.  Raises ``ValueError`` on
    any other character (assembly must not silently corrupt data).

    >>> encode("ACGT")
    array([0, 1, 2, 3], dtype=uint8)
    """
    if isinstance(seq, str):
        raw = seq.encode("ascii")
    else:
        raw = bytes(seq)
    arr = np.frombuffer(raw, dtype=np.uint8)
    codes = _BASE_TO_CODE[arr]
    if codes.size and codes.max() == 255:
        bad = chr(int(arr[np.argmax(codes == 255)]))
        raise ValueError(f"invalid DNA character {bad!r}")
    return codes


def decode(codes: np.ndarray) -> str:
    """Decode a code array back into an upper-case DNA string."""
    codes = np.asarray(codes, dtype=np.uint8)
    if codes.size and codes.max() > N:
        raise ValueError("code array contains values outside 0..4")
    return CODE_TO_BASE[codes].tobytes().decode("ascii")


def complement(codes: np.ndarray) -> np.ndarray:
    """Return the complement of each code (A<->T, C<->G, N->N)."""
    return _COMPLEMENT[np.asarray(codes, dtype=np.uint8)]


def reverse_complement(codes: np.ndarray) -> np.ndarray:
    """Return the reverse complement of a code array."""
    return complement(codes)[::-1].copy()


def gc_content(codes: np.ndarray) -> float:
    """Fraction of called bases (excluding N) that are G or C.

    Returns 0.0 for an empty or all-N sequence.
    """
    codes = np.asarray(codes, dtype=np.uint8)
    called = codes[codes != N]
    if called.size == 0:
        return 0.0
    return float(np.count_nonzero((called == G) | (called == C)) / called.size)


def hamming_identity(a: np.ndarray, b: np.ndarray) -> float:
    """Fraction of positions at which two equal-length code arrays agree.

    This is the identity measure used by the fast ungapped overlap
    verifier.  Raises ``ValueError`` on length mismatch; returns 1.0 for
    two empty arrays (an empty alignment has no mismatches).
    """
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape != b.shape:
        raise ValueError(f"length mismatch: {a.shape} vs {b.shape}")
    if a.size == 0:
        return 1.0
    return float(np.count_nonzero(a == b) / a.size)


def is_valid_codes(codes: np.ndarray, allow_n: bool = True) -> bool:
    """True if every element is a legal base code."""
    codes = np.asarray(codes)
    if codes.size == 0:
        return True
    hi = N if allow_n else T
    return bool((codes >= 0).all() and (codes <= hi).all())
