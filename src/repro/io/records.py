"""The Read record: one sequencing read plus optional quality and metadata."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.sequence.dna import decode, encode, reverse_complement

__all__ = ["Read"]


@dataclass
class Read:
    """A single sequencing read.

    Attributes
    ----------
    id:
        Read identifier (unique within a dataset by convention).
    codes:
        2-bit base codes (``uint8``), see :mod:`repro.sequence.dna`.
    quals:
        Optional integer Phred scores, same length as ``codes``.
    meta:
        Free-form metadata.  The read simulator records the source
        genus, genome position and strand here, which the community
        analysis uses as ground truth.
    """

    id: str
    codes: np.ndarray
    quals: np.ndarray | None = None
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.codes = np.asarray(self.codes, dtype=np.uint8)
        if self.quals is not None:
            self.quals = np.asarray(self.quals, dtype=np.int64)
            if self.quals.size != self.codes.size:
                raise ValueError(
                    f"read {self.id!r}: {self.quals.size} quality scores for "
                    f"{self.codes.size} bases"
                )

    @classmethod
    def from_string(cls, read_id: str, seq: str, quals=None, meta=None) -> "Read":
        """Build a Read from a plain DNA string."""
        return cls(read_id, encode(seq), quals=quals, meta=dict(meta or {}))

    @property
    def sequence(self) -> str:
        """The read as an upper-case DNA string."""
        return decode(self.codes)

    def __len__(self) -> int:
        return int(self.codes.size)

    def reverse_complement(self, suffix: str = "/rc") -> "Read":
        """The reverse-complement read (qualities reversed accordingly)."""
        quals = None if self.quals is None else self.quals[::-1].copy()
        meta = dict(self.meta)
        meta["rc_of"] = self.id
        return Read(self.id + suffix, reverse_complement(self.codes), quals, meta)
