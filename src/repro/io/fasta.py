"""Minimal, strict FASTA reader and writer."""

from __future__ import annotations

import io
from collections.abc import Iterable, Iterator
from pathlib import Path

from repro.io.records import Read

__all__ = ["parse_fasta", "write_fasta"]


def _open_text(source) -> io.TextIOBase:
    if isinstance(source, (str, Path)):
        return open(source, "r", encoding="ascii")
    return source


def parse_fasta(source) -> Iterator[Read]:
    """Yield :class:`Read` records from a FASTA path or text stream.

    Multi-line sequences are supported; blank lines are ignored.  A
    sequence line before any header is an error.
    """
    fh = _open_text(source)
    close = isinstance(source, (str, Path))
    try:
        header: str | None = None
        chunks: list[str] = []
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            if line.startswith(">"):
                if header is not None:
                    yield Read.from_string(header, "".join(chunks))
                header = line[1:].split()[0] if len(line) > 1 else ""
                if not header:
                    raise ValueError(f"line {lineno}: empty FASTA header")
                chunks = []
            else:
                if header is None:
                    raise ValueError(f"line {lineno}: sequence data before any header")
                chunks.append(line)
        if header is not None:
            yield Read.from_string(header, "".join(chunks))
    finally:
        if close:
            fh.close()


def write_fasta(reads: Iterable[Read], dest, width: int = 70) -> None:
    """Write reads to a FASTA path or text stream, wrapping at ``width``."""
    if width < 1:
        raise ValueError("width must be positive")
    fh = _open_text(dest) if not isinstance(dest, (str, Path)) else open(dest, "w", encoding="ascii")
    close = isinstance(dest, (str, Path))
    try:
        for read in reads:
            fh.write(f">{read.id}\n")
            seq = read.sequence
            for i in range(0, len(seq), width):
                fh.write(seq[i : i + width] + "\n")
    finally:
        if close:
            fh.close()
