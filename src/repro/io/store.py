"""Binary persistence for the expensive pipeline intermediates.

Read alignment dominates pipeline cost, so being able to save the
overlap graph (and the read set it refers to) and resume later is the
single most useful checkpoint.  Everything is stored in a single
``.npz`` archive of numpy arrays — no pickle, no code execution on
load.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.graph.overlap_graph import OverlapGraph
from repro.io.readset import ReadSet
from repro.io.records import Read

__all__ = ["save_graph", "load_graph", "save_readset", "load_readset"]

_GRAPH_VERSION = 1
_READSET_VERSION = 1


def save_graph(graph: OverlapGraph, dest) -> None:
    """Write an OverlapGraph to an ``.npz`` archive."""
    np.savez_compressed(
        dest,
        version=np.int64(_GRAPH_VERSION),
        n_nodes=np.int64(graph.n_nodes),
        eu=graph.eu,
        ev=graph.ev,
        weights=graph.weights,
        deltas=graph.deltas,
        identities=graph.identities,
        node_weights=graph.node_weights,
        has_deltas=np.bool_(graph.has_deltas),
    )


def load_graph(source) -> OverlapGraph:
    """Read an OverlapGraph written by :func:`save_graph`."""
    with np.load(source) as data:
        if int(data["version"]) != _GRAPH_VERSION:
            raise ValueError(f"unsupported graph archive version {int(data['version'])}")
        return OverlapGraph(
            int(data["n_nodes"]),
            data["eu"],
            data["ev"],
            data["weights"],
            node_weights=data["node_weights"],
            deltas=data["deltas"] if bool(data["has_deltas"]) else None,
            identities=data["identities"],
        )


def save_readset(reads: ReadSet, dest) -> None:
    """Write a ReadSet (ids, bases, qualities, JSON metadata) to ``.npz``."""
    meta_json = json.dumps(reads.meta).encode("utf-8")
    np.savez_compressed(
        dest,
        version=np.int64(_READSET_VERSION),
        data=reads.data,
        offsets=reads.offsets,
        ids=np.array(reads.ids, dtype=object) if reads.ids else np.array([], dtype=object),
        quals=reads.quals if reads.quals is not None else np.array([]),
        has_quals=np.bool_(reads.quals is not None),
        meta=np.frombuffer(meta_json, dtype=np.uint8),
    )


def load_readset(source) -> ReadSet:
    """Read a ReadSet written by :func:`save_readset`."""
    with np.load(source, allow_pickle=True) as data:
        if int(data["version"]) != _READSET_VERSION:
            raise ValueError(f"unsupported readset archive version {int(data['version'])}")
        offsets = data["offsets"]
        codes = data["data"]
        ids = [str(x) for x in data["ids"].tolist()]
        has_quals = bool(data["has_quals"])
        quals = data["quals"] if has_quals else None
        meta = json.loads(bytes(data["meta"].tobytes()).decode("utf-8"))
        reads = []
        for i, rid in enumerate(ids):
            lo, hi = int(offsets[i]), int(offsets[i + 1])
            reads.append(
                Read(
                    rid,
                    codes[lo:hi].copy(),
                    quals[lo:hi].copy() if has_quals else None,
                    dict(meta[i]),
                )
            )
        return ReadSet(reads)
