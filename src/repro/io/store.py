"""Binary persistence for the expensive pipeline intermediates.

Read alignment dominates pipeline cost, so being able to save the
overlap graph (and the read set it refers to) and resume later is the
single most useful checkpoint.  Everything is stored in a single
``.npz`` archive of numpy arrays — no pickle, no code execution on
load.

Stage checkpoints (:func:`save_checkpoint` / :func:`load_checkpoint`)
extend the same format to the distributed finish pipeline: after each
completed stage the assembler persists the alive-masks, completed
stage list, per-stage times, and (after traversal) the packed paths,
so ``repro assemble --resume`` restarts from the last good stage
instead of the beginning (see docs/robustness.md).

Every archive write is atomic — the bytes go to a temporary file in
the destination directory which is then ``os.replace``d over the
target — so a crash mid-write can never leave a truncated or corrupt
archive: either the previous file survives untouched or the new one
is complete.
"""

from __future__ import annotations

import itertools
import json
import os
import pickle
import zipfile
from contextlib import contextmanager, suppress
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.graph.overlap_graph import OverlapGraph
from repro.io.readset import ReadSet
from repro.io.records import Read

__all__ = [
    "atomic_savez",
    "atomic_write_text",
    "fsync_dir",
    "save_graph",
    "load_graph",
    "save_readset",
    "load_readset",
    "CheckpointState",
    "save_checkpoint",
    "load_checkpoint",
]

_GRAPH_VERSION = 1
_READSET_VERSION = 1
_CHECKPOINT_VERSION = 1

_GRAPH_KEYS = (
    "version",
    "n_nodes",
    "eu",
    "ev",
    "weights",
    "deltas",
    "identities",
    "node_weights",
    "has_deltas",
)
_READSET_KEYS = ("version", "data", "offsets", "ids", "has_quals", "quals", "meta")
_CHECKPOINT_KEYS = (
    "version",
    "fingerprint",
    "completed",
    "node_alive",
    "edge_alive",
    "stage_times",
    "has_paths",
    "paths_flat",
    "paths_offsets",
)


def fsync_dir(path: str | Path) -> None:
    """fsync a directory so a completed ``os.replace`` survives power loss.

    ``os.replace`` makes the rename atomic with respect to crashes of
    this process, but the *directory entry* itself lives in the parent
    directory's data — until that is flushed, a power loss can roll the
    rename back.  Platforms whose directories cannot be opened or
    fsynced (some network filesystems, Windows) are silently skipped:
    the write is still atomic, just not power-loss durable.
    """
    try:
        fd = os.open(str(path), os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir-open
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - filesystem without dir-fsync
        pass
    finally:
        os.close(fd)


def _atomic_savez(dest, compressed: bool = True, **arrays) -> None:
    """Write an ``.npz`` archive atomically (temp file + ``os.replace``).

    File-like destinations are written directly (the caller owns their
    durability); for paths the archive is fully written and flushed to
    a sibling temporary file first, so a crash at any point leaves the
    previous archive intact, and the containing directory is fsynced
    after the rename so the new name survives power loss.  Mimics
    numpy's extension behavior: a path without ``.npz`` gets it
    appended.
    """
    writer = np.savez_compressed if compressed else np.savez
    if not isinstance(dest, (str, Path)):
        writer(dest, **arrays)
        return
    final = str(dest)
    if not final.endswith(".npz"):
        final += ".npz"
    tmp = f"{final}.tmp.{os.getpid()}"
    try:
        with open(tmp, "wb") as fh:
            writer(fh, **arrays)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, final)
        fsync_dir(os.path.dirname(final) or ".")
    except BaseException:
        with suppress(OSError):
            os.remove(tmp)
        raise


#: public name of the atomic archive writer — the sharded store layer
#: (:mod:`repro.store`) persists its shard files through the same
#: crash-safe path the stage checkpoints use.
atomic_savez = _atomic_savez

#: process-wide tmp-name disambiguator (``itertools.count`` increments
#: are atomic under the GIL, so threads never mint the same name).
_tmp_counter = itertools.count()


def atomic_write_text(path: str | Path, text: str) -> None:
    """Durably replace a small text file (tmp + fsync + ``os.replace``).

    The same crash-safety contract as :func:`atomic_savez`: a reader
    never observes a truncated file — either the previous content
    survives or the new content is complete and the rename is fsynced
    into the parent directory.  Store manifests and the job-service
    records (:mod:`repro.service`) are written through this path.
    """
    final = str(path)
    # Unique per call, not just per process: concurrent writers in one
    # process (supervisor threads) must not share a tmp name.
    tmp = f"{final}.tmp.{os.getpid()}.{next(_tmp_counter)}"
    try:
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, final)
        fsync_dir(os.path.dirname(final) or ".")
    except BaseException:
        with suppress(OSError):
            os.remove(tmp)
        raise


@contextmanager
def _open_archive(source, kind: str, keys: tuple[str, ...], version: int):
    """np.load with clear errors: not-an-archive, missing keys, bad version."""
    try:
        data = np.load(source, allow_pickle=(kind == "readset"))
    except (zipfile.BadZipFile, pickle.UnpicklingError, ValueError, OSError) as exc:
        raise ValueError(f"not a {kind} archive: {source!r} ({exc})") from exc
    with data:
        missing = sorted(set(keys) - set(data.files))
        if missing:
            raise ValueError(
                f"corrupt or foreign {kind} archive {source!r}: "
                f"missing keys {missing}"
            )
        found = int(data["version"])
        if found != version:
            raise ValueError(
                f"unsupported {kind} archive version {found} "
                f"(this build reads version {version})"
            )
        yield data


def save_graph(graph: OverlapGraph, dest) -> None:
    """Write an OverlapGraph to an ``.npz`` archive (atomically)."""
    _atomic_savez(
        dest,
        version=np.int64(_GRAPH_VERSION),
        n_nodes=np.int64(graph.n_nodes),
        eu=graph.eu,
        ev=graph.ev,
        weights=graph.weights,
        deltas=graph.deltas,
        identities=graph.identities,
        node_weights=graph.node_weights,
        has_deltas=np.bool_(graph.has_deltas),
    )


def load_graph(source) -> OverlapGraph:
    """Read an OverlapGraph written by :func:`save_graph`.

    Raises :class:`ValueError` (never a bare ``KeyError``) when the
    file is not an archive, is missing expected arrays, or was written
    by an unsupported format version.
    """
    with _open_archive(source, "graph", _GRAPH_KEYS, _GRAPH_VERSION) as data:
        return OverlapGraph(
            int(data["n_nodes"]),
            data["eu"],
            data["ev"],
            data["weights"],
            node_weights=data["node_weights"],
            deltas=data["deltas"] if bool(data["has_deltas"]) else None,
            identities=data["identities"],
        )


def save_readset(reads: ReadSet, dest) -> None:
    """Write a ReadSet (ids, bases, qualities, JSON metadata) to ``.npz``."""
    meta_json = json.dumps(reads.meta).encode("utf-8")
    _atomic_savez(
        dest,
        version=np.int64(_READSET_VERSION),
        data=reads.data,
        offsets=reads.offsets,
        ids=np.array(reads.ids, dtype=object) if reads.ids else np.array([], dtype=object),
        quals=reads.quals if reads.quals is not None else np.array([]),
        has_quals=np.bool_(reads.quals is not None),
        meta=np.frombuffer(meta_json, dtype=np.uint8),
    )


def load_readset(source) -> ReadSet:
    """Read a ReadSet written by :func:`save_readset`.

    Raises :class:`ValueError` (never a bare ``KeyError``) when the
    file is not an archive, is missing expected arrays, or was written
    by an unsupported format version.
    """
    with _open_archive(source, "readset", _READSET_KEYS, _READSET_VERSION) as data:
        offsets = data["offsets"]
        codes = data["data"]
        ids = [str(x) for x in data["ids"].tolist()]
        has_quals = bool(data["has_quals"])
        quals = data["quals"] if has_quals else None
        meta = json.loads(bytes(data["meta"].tobytes()).decode("utf-8"))
        reads = []
        for i, rid in enumerate(ids):
            lo, hi = int(offsets[i]), int(offsets[i + 1])
            reads.append(
                Read(
                    rid,
                    codes[lo:hi].copy(),
                    quals[lo:hi].copy() if has_quals else None,
                    dict(meta[i]),
                )
            )
        return ReadSet(reads)


@dataclass
class CheckpointState:
    """Everything needed to resume a finish pipeline mid-stage-sequence.

    ``fingerprint`` identifies the run (read counts, partition count,
    trimming parameters, ...): a resume against a checkpoint from a
    different configuration is refused rather than silently producing
    wrong contigs.  ``completed`` lists finished stages in execution
    order; ``stage_times`` holds their recorded per-stage seconds;
    ``paths`` is present once the traversal stage has completed.
    """

    fingerprint: dict
    completed: list[str] = field(default_factory=list)
    node_alive: np.ndarray | None = None
    edge_alive: np.ndarray | None = None
    stage_times: dict = field(default_factory=dict)
    paths: list[list[int]] | None = None


def _json_array(obj) -> np.ndarray:
    return np.frombuffer(json.dumps(obj).encode("utf-8"), dtype=np.uint8)


def _json_value(arr: np.ndarray):
    return json.loads(bytes(arr.tobytes()).decode("utf-8"))


def save_checkpoint(state: CheckpointState, dest) -> None:
    """Persist a stage checkpoint atomically (see :class:`CheckpointState`)."""
    if state.node_alive is None or state.edge_alive is None:
        raise ValueError("checkpoint needs both alive-masks")
    paths = state.paths
    if paths is not None:
        offsets = np.zeros(len(paths) + 1, dtype=np.int64)
        if paths:
            offsets[1:] = np.cumsum([len(p) for p in paths])
        flat = (
            np.concatenate([np.asarray(p, dtype=np.int64) for p in paths])
            if paths
            else np.empty(0, dtype=np.int64)
        )
    else:
        offsets = np.empty(0, dtype=np.int64)
        flat = np.empty(0, dtype=np.int64)
    _atomic_savez(
        dest,
        version=np.int64(_CHECKPOINT_VERSION),
        fingerprint=_json_array(state.fingerprint),
        completed=_json_array(list(state.completed)),
        node_alive=np.asarray(state.node_alive, dtype=bool),
        edge_alive=np.asarray(state.edge_alive, dtype=bool),
        stage_times=_json_array(state.stage_times),
        has_paths=np.bool_(paths is not None),
        paths_flat=flat,
        paths_offsets=offsets,
    )


def load_checkpoint(source) -> CheckpointState:
    """Read a checkpoint written by :func:`save_checkpoint`.

    Raises :class:`ValueError` (never a bare ``KeyError``) when the
    file is not an archive, is missing expected arrays, or was written
    by an unsupported format version.
    """
    with _open_archive(
        source, "checkpoint", _CHECKPOINT_KEYS, _CHECKPOINT_VERSION
    ) as data:
        paths: list[list[int]] | None = None
        if bool(data["has_paths"]):
            flat = data["paths_flat"]
            offsets = data["paths_offsets"]
            paths = [
                flat[int(offsets[i]) : int(offsets[i + 1])].tolist()
                for i in range(len(offsets) - 1)
            ]
        return CheckpointState(
            fingerprint=_json_value(data["fingerprint"]),
            completed=list(_json_value(data["completed"])),
            node_alive=data["node_alive"].astype(bool),
            edge_alive=data["edge_alive"].astype(bool),
            stage_times=_json_value(data["stage_times"]),
            paths=paths,
        )
