"""Binary persistence for the expensive pipeline intermediates.

Read alignment dominates pipeline cost, so being able to save the
overlap graph (and the read set it refers to) and resume later is the
single most useful checkpoint.  Everything is stored in a single
``.npz`` archive of numpy arrays — no pickle, no code execution on
load.
"""

from __future__ import annotations

import json
import pickle
import zipfile
from contextlib import contextmanager
from pathlib import Path

import numpy as np

from repro.graph.overlap_graph import OverlapGraph
from repro.io.readset import ReadSet
from repro.io.records import Read

__all__ = ["save_graph", "load_graph", "save_readset", "load_readset"]

_GRAPH_VERSION = 1
_READSET_VERSION = 1

_GRAPH_KEYS = (
    "version",
    "n_nodes",
    "eu",
    "ev",
    "weights",
    "deltas",
    "identities",
    "node_weights",
    "has_deltas",
)
_READSET_KEYS = ("version", "data", "offsets", "ids", "has_quals", "quals", "meta")


@contextmanager
def _open_archive(source, kind: str, keys: tuple[str, ...], version: int):
    """np.load with clear errors: not-an-archive, missing keys, bad version."""
    try:
        data = np.load(source, allow_pickle=(kind == "readset"))
    except (zipfile.BadZipFile, pickle.UnpicklingError, ValueError, OSError) as exc:
        raise ValueError(f"not a {kind} archive: {source!r} ({exc})") from exc
    with data:
        missing = sorted(set(keys) - set(data.files))
        if missing:
            raise ValueError(
                f"corrupt or foreign {kind} archive {source!r}: "
                f"missing keys {missing}"
            )
        found = int(data["version"])
        if found != version:
            raise ValueError(
                f"unsupported {kind} archive version {found} "
                f"(this build reads version {version})"
            )
        yield data


def save_graph(graph: OverlapGraph, dest) -> None:
    """Write an OverlapGraph to an ``.npz`` archive."""
    np.savez_compressed(
        dest,
        version=np.int64(_GRAPH_VERSION),
        n_nodes=np.int64(graph.n_nodes),
        eu=graph.eu,
        ev=graph.ev,
        weights=graph.weights,
        deltas=graph.deltas,
        identities=graph.identities,
        node_weights=graph.node_weights,
        has_deltas=np.bool_(graph.has_deltas),
    )


def load_graph(source) -> OverlapGraph:
    """Read an OverlapGraph written by :func:`save_graph`.

    Raises :class:`ValueError` (never a bare ``KeyError``) when the
    file is not an archive, is missing expected arrays, or was written
    by an unsupported format version.
    """
    with _open_archive(source, "graph", _GRAPH_KEYS, _GRAPH_VERSION) as data:
        return OverlapGraph(
            int(data["n_nodes"]),
            data["eu"],
            data["ev"],
            data["weights"],
            node_weights=data["node_weights"],
            deltas=data["deltas"] if bool(data["has_deltas"]) else None,
            identities=data["identities"],
        )


def save_readset(reads: ReadSet, dest) -> None:
    """Write a ReadSet (ids, bases, qualities, JSON metadata) to ``.npz``."""
    meta_json = json.dumps(reads.meta).encode("utf-8")
    np.savez_compressed(
        dest,
        version=np.int64(_READSET_VERSION),
        data=reads.data,
        offsets=reads.offsets,
        ids=np.array(reads.ids, dtype=object) if reads.ids else np.array([], dtype=object),
        quals=reads.quals if reads.quals is not None else np.array([]),
        has_quals=np.bool_(reads.quals is not None),
        meta=np.frombuffer(meta_json, dtype=np.uint8),
    )


def load_readset(source) -> ReadSet:
    """Read a ReadSet written by :func:`save_readset`.

    Raises :class:`ValueError` (never a bare ``KeyError``) when the
    file is not an archive, is missing expected arrays, or was written
    by an unsupported format version.
    """
    with _open_archive(source, "readset", _READSET_KEYS, _READSET_VERSION) as data:
        offsets = data["offsets"]
        codes = data["data"]
        ids = [str(x) for x in data["ids"].tolist()]
        has_quals = bool(data["has_quals"])
        quals = data["quals"] if has_quals else None
        meta = json.loads(bytes(data["meta"].tobytes()).decode("utf-8"))
        reads = []
        for i, rid in enumerate(ids):
            lo, hi = int(offsets[i]), int(offsets[i + 1])
            reads.append(
                Read(
                    rid,
                    codes[lo:hi].copy(),
                    quals[lo:hi].copy() if has_quals else None,
                    dict(meta[i]),
                )
            )
        return ReadSet(reads)
