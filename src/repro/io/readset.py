"""ReadSet: a columnar container for many reads.

Reads are stored as one concatenated ``uint8`` code array plus an
``int64`` offsets array (CSR-style ragged layout), which keeps the
memory footprint flat and lets alignment kernels slice views instead of
copying per-read arrays.

The same layout powers the per-set **k-mer code cache**: packing the
whole concatenated code array once per k yields every read's k-mer
values as slices of a single array (windows that straddle a read
boundary exist in the cache but are never exposed), so the alignment
index build, the query path, and the correction spectrum all share one
packing pass instead of re-packing per read per consumer.  The cache
costs 8 bytes per base per (k, canonical) combination — see
docs/performance.md for the trade-off.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

import numpy as np

from repro.io.records import Read
from repro.sequence.dna import decode
from repro.sequence.kmers import canonical_kmer_codes, kmer_codes
from repro.sequence.quality import trim_read

__all__ = ["ReadSet"]


class ReadSet:
    """An ordered collection of reads with columnar storage.

    Construct with :meth:`from_reads` (or ``ReadSet(reads)``); the
    container is immutable after construction — preprocessing steps
    return new ReadSets.
    """

    def __init__(self, reads: Iterable[Read] = ()) -> None:
        reads = list(reads)
        self.ids: list[str] = [r.id for r in reads]
        self.meta: list[dict] = [r.meta for r in reads]
        lengths = np.fromiter((len(r) for r in reads), dtype=np.int64, count=len(reads))
        self.offsets = np.zeros(len(reads) + 1, dtype=np.int64)
        np.cumsum(lengths, out=self.offsets[1:])
        self.data = np.empty(int(self.offsets[-1]), dtype=np.uint8)
        has_quals = any(r.quals is not None for r in reads)
        self.quals = np.zeros(int(self.offsets[-1]), dtype=np.int64) if has_quals else None
        for i, r in enumerate(reads):
            lo, hi = self.offsets[i], self.offsets[i + 1]
            self.data[lo:hi] = r.codes
            if self.quals is not None and r.quals is not None:
                self.quals[lo:hi] = r.quals
        #: packed k-mer values of ``data``, keyed (k, canonical); lazy.
        self._kmer_cache: dict[tuple[int, bool], np.ndarray] = {}

    def __getstate__(self) -> dict:
        # The k-mer cache is derived data and can be large (8 bytes per
        # base per entry): drop it so pickling a ReadSet — e.g. shipping
        # it to ProcessPoolExecutor workers — stays cheap.  Workers
        # rebuild it lazily on first use.
        state = self.__dict__.copy()
        state["_kmer_cache"] = {}
        return state

    # -- construction ---------------------------------------------------

    @classmethod
    def from_reads(cls, reads: Iterable[Read]) -> "ReadSet":
        return cls(reads)

    @classmethod
    def from_strings(cls, seqs: Sequence[str], prefix: str = "r") -> "ReadSet":
        """Convenience constructor for tests: numbered reads from strings."""
        return cls(Read.from_string(f"{prefix}{i}", s) for i, s in enumerate(seqs))

    @classmethod
    def open(cls, path, cache_budget: int | None = None) -> "ReadSet":
        """Open a sharded reads store as a lazy, shard-backed ReadSet.

        The returned set streams base codes, qualities, and packed
        k-mers one shard at a time through an LRU cache bounded by
        ``cache_budget`` bytes (default: the store layer's 64 MiB), so
        peak memory is O(shard), not O(reads).  Build the store with
        ``repro pack`` or :func:`repro.store.pack_reads`.
        """
        from repro.store.reads import ShardedReadSet
        from repro.store.sharded import DEFAULT_CACHE_BUDGET

        budget = DEFAULT_CACHE_BUDGET if cache_budget is None else int(cache_budget)
        return ShardedReadSet(path, cache_budget=budget)

    # -- basic protocol ---------------------------------------------------

    def __len__(self) -> int:
        return len(self.ids)

    def __iter__(self) -> Iterator[Read]:
        for i in range(len(self)):
            yield self[i]

    def __getitem__(self, i: int) -> Read:
        if not -len(self) <= i < len(self):
            raise IndexError(i)
        i = i % len(self) if len(self) else i
        return Read(self.ids[i], self.codes_of(i).copy(), self.quals_of(i), self.meta[i])

    def codes_of(self, i: int) -> np.ndarray:
        """Zero-copy view of read ``i``'s base codes."""
        return self.data[self.offsets[i] : self.offsets[i + 1]]

    def quals_of(self, i: int) -> np.ndarray | None:
        if self.quals is None:
            return None
        return self.quals[self.offsets[i] : self.offsets[i + 1]].copy()

    def sequence_of(self, i: int) -> str:
        return decode(self.codes_of(i))

    def length_of(self, i: int) -> int:
        return int(self.offsets[i + 1] - self.offsets[i])

    @property
    def lengths(self) -> np.ndarray:
        return np.diff(self.offsets)

    @property
    def total_bases(self) -> int:
        return int(self.offsets[-1])

    # -- flat-position access ---------------------------------------------
    # The vectorized overlap engine addresses bases by absolute position
    # in the concatenated code array.  These two primitives are the only
    # way it touches the bases, so the shard-backed subclass can serve
    # them from per-shard arrays instead of one whole-set array.

    def gather_bases(self, flat: np.ndarray) -> np.ndarray:
        """Base codes at the given absolute positions of :attr:`data`."""
        return self.data[flat]

    def base_span(self, lo: int, length: int) -> np.ndarray:
        """Contiguous base codes ``data[lo : lo + length]`` (one read)."""
        return self.data[lo : lo + length]

    # -- k-mer code cache -------------------------------------------------

    def packed_kmers(self, k: int, canonical: bool = False) -> np.ndarray:
        """Packed k-mer values of the whole concatenated code array.

        Computed once per ``(k, canonical)`` and cached (read-only view;
        the container is immutable).  Entry ``p`` is the window starting
        at absolute position ``p`` of :attr:`data`; windows that straddle
        a read boundary are present but meaningless — callers must slice
        through :meth:`kmer_codes_of` / :meth:`kmer_table`, which never
        expose them.
        """
        key = (int(k), bool(canonical))
        cached = self._kmer_cache.get(key)
        if cached is None:
            packer = canonical_kmer_codes if canonical else kmer_codes
            cached = packer(self.data, k)
            cached.setflags(write=False)
            self._kmer_cache[key] = cached
        return cached

    def kmer_codes_of(self, i: int, k: int, canonical: bool = False) -> np.ndarray:
        """Packed k-mer values of read ``i`` (cache-backed view).

        Equal to ``kmer_codes(self.codes_of(i), k)`` (length
        ``len_i - k + 1``, invalid windows -1) but computed via the
        per-set cache, so repeated callers never re-pack the read.
        """
        lo = int(self.offsets[i])
        hi = int(self.offsets[i + 1]) - k + 1
        if hi <= lo:
            return np.empty(0, dtype=np.int64)
        return self.packed_kmers(k, canonical)[lo:hi]

    def kmer_table(
        self,
        k: int,
        read_indices: np.ndarray | None = None,
        canonical: bool = False,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """All k-mer windows of the given reads in one flat table.

        Returns parallel ``int64`` arrays ``(values, read_ids,
        offsets)``: the packed value of every window (invalid windows
        -1), the read it belongs to, and its offset within that read —
        reads in ``read_indices`` order, windows in position order.
        This is the bulk primitive behind the k-mer index build and the
        whole-subset query pass; no per-read Python loop.
        """
        if read_indices is None:
            idx = np.arange(len(self), dtype=np.int64)
        else:
            idx = np.asarray(read_indices, dtype=np.int64)
        n_windows = np.maximum(self.offsets[idx + 1] - self.offsets[idx] - k + 1, 0)
        total = int(n_windows.sum())
        if total == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy(), empty.copy()
        read_ids = np.repeat(idx, n_windows)
        group_starts = np.cumsum(n_windows) - n_windows
        within = np.arange(total, dtype=np.int64) - np.repeat(group_starts, n_windows)
        flat = np.repeat(self.offsets[idx], n_windows) + within
        return self.packed_kmers(k, canonical)[flat], read_ids, within

    # -- preprocessing ---------------------------------------------------

    def trimmed(
        self,
        trim5: int = 0,
        trim3: int = 0,
        window: int = 10,
        step: int = 1,
        min_quality: float = 20.0,
        min_length: int = 1,
    ) -> "ReadSet":
        """Apply the Focus trimming rule to every read; drop short reads."""
        out: list[Read] = []
        for i in range(len(self)):
            codes, quals = trim_read(
                self.codes_of(i),
                self.quals_of(i),
                trim5=trim5,
                trim3=trim3,
                window=window,
                step=step,
                min_quality=min_quality,
            )
            if codes.size >= min_length:
                out.append(Read(self.ids[i], codes.copy(), quals, self.meta[i]))
        return ReadSet(out)

    def with_reverse_complements(self) -> "ReadSet":
        """Append the reverse complement of every read (paper §II-A).

        The forward read ``i`` and its reverse complement ``i + n`` are
        paired; :meth:`mate_of` maps between them.
        """
        fwd = list(self)
        return ReadSet(fwd + [r.reverse_complement() for r in fwd])

    def mate_of(self, i: int) -> int:
        """Index of read ``i``'s reverse complement in an rc-augmented set."""
        n = len(self)
        if n % 2 != 0:
            raise ValueError("read set was not built with with_reverse_complements()")
        half = n // 2
        return i + half if i < half else i - half

    def split(self, n_subsets: int) -> list[np.ndarray]:
        """Split read indices into ``n_subsets`` contiguous chunks.

        Used to farm pairwise alignment of subset pairs out to ranks.
        """
        if n_subsets < 1:
            raise ValueError("n_subsets must be >= 1")
        return [np.asarray(c, dtype=np.int64) for c in np.array_split(np.arange(len(self)), n_subsets)]

    def subset(self, indices: np.ndarray) -> "ReadSet":
        """A new ReadSet containing the given reads (copies)."""
        return ReadSet(self[int(i)] for i in indices)
