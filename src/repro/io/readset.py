"""ReadSet: a columnar container for many reads.

Reads are stored as one concatenated ``uint8`` code array plus an
``int64`` offsets array (CSR-style ragged layout), which keeps the
memory footprint flat and lets alignment kernels slice views instead of
copying per-read arrays.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

import numpy as np

from repro.io.records import Read
from repro.sequence.dna import decode
from repro.sequence.quality import trim_read

__all__ = ["ReadSet"]


class ReadSet:
    """An ordered collection of reads with columnar storage.

    Construct with :meth:`from_reads` (or ``ReadSet(reads)``); the
    container is immutable after construction — preprocessing steps
    return new ReadSets.
    """

    def __init__(self, reads: Iterable[Read] = ()) -> None:
        reads = list(reads)
        self.ids: list[str] = [r.id for r in reads]
        self.meta: list[dict] = [r.meta for r in reads]
        lengths = np.fromiter((len(r) for r in reads), dtype=np.int64, count=len(reads))
        self.offsets = np.zeros(len(reads) + 1, dtype=np.int64)
        np.cumsum(lengths, out=self.offsets[1:])
        self.data = np.empty(int(self.offsets[-1]), dtype=np.uint8)
        has_quals = any(r.quals is not None for r in reads)
        self.quals = np.zeros(int(self.offsets[-1]), dtype=np.int64) if has_quals else None
        for i, r in enumerate(reads):
            lo, hi = self.offsets[i], self.offsets[i + 1]
            self.data[lo:hi] = r.codes
            if self.quals is not None and r.quals is not None:
                self.quals[lo:hi] = r.quals

    # -- construction ---------------------------------------------------

    @classmethod
    def from_reads(cls, reads: Iterable[Read]) -> "ReadSet":
        return cls(reads)

    @classmethod
    def from_strings(cls, seqs: Sequence[str], prefix: str = "r") -> "ReadSet":
        """Convenience constructor for tests: numbered reads from strings."""
        return cls(Read.from_string(f"{prefix}{i}", s) for i, s in enumerate(seqs))

    # -- basic protocol ---------------------------------------------------

    def __len__(self) -> int:
        return len(self.ids)

    def __iter__(self) -> Iterator[Read]:
        for i in range(len(self)):
            yield self[i]

    def __getitem__(self, i: int) -> Read:
        if not -len(self) <= i < len(self):
            raise IndexError(i)
        i = i % len(self) if len(self) else i
        return Read(self.ids[i], self.codes_of(i).copy(), self.quals_of(i), self.meta[i])

    def codes_of(self, i: int) -> np.ndarray:
        """Zero-copy view of read ``i``'s base codes."""
        return self.data[self.offsets[i] : self.offsets[i + 1]]

    def quals_of(self, i: int) -> np.ndarray | None:
        if self.quals is None:
            return None
        return self.quals[self.offsets[i] : self.offsets[i + 1]].copy()

    def sequence_of(self, i: int) -> str:
        return decode(self.codes_of(i))

    def length_of(self, i: int) -> int:
        return int(self.offsets[i + 1] - self.offsets[i])

    @property
    def lengths(self) -> np.ndarray:
        return np.diff(self.offsets)

    @property
    def total_bases(self) -> int:
        return int(self.offsets[-1])

    # -- preprocessing ---------------------------------------------------

    def trimmed(
        self,
        trim5: int = 0,
        trim3: int = 0,
        window: int = 10,
        step: int = 1,
        min_quality: float = 20.0,
        min_length: int = 1,
    ) -> "ReadSet":
        """Apply the Focus trimming rule to every read; drop short reads."""
        out: list[Read] = []
        for i in range(len(self)):
            codes, quals = trim_read(
                self.codes_of(i),
                self.quals_of(i),
                trim5=trim5,
                trim3=trim3,
                window=window,
                step=step,
                min_quality=min_quality,
            )
            if codes.size >= min_length:
                out.append(Read(self.ids[i], codes.copy(), quals, self.meta[i]))
        return ReadSet(out)

    def with_reverse_complements(self) -> "ReadSet":
        """Append the reverse complement of every read (paper §II-A).

        The forward read ``i`` and its reverse complement ``i + n`` are
        paired; :meth:`mate_of` maps between them.
        """
        fwd = list(self)
        return ReadSet(fwd + [r.reverse_complement() for r in fwd])

    def mate_of(self, i: int) -> int:
        """Index of read ``i``'s reverse complement in an rc-augmented set."""
        n = len(self)
        if n % 2 != 0:
            raise ValueError("read set was not built with with_reverse_complements()")
        half = n // 2
        return i + half if i < half else i - half

    def split(self, n_subsets: int) -> list[np.ndarray]:
        """Split read indices into ``n_subsets`` contiguous chunks.

        Used to farm pairwise alignment of subset pairs out to ranks.
        """
        if n_subsets < 1:
            raise ValueError("n_subsets must be >= 1")
        return [np.asarray(c, dtype=np.int64) for c in np.array_split(np.arange(len(self)), n_subsets)]

    def subset(self, indices: np.ndarray) -> "ReadSet":
        """A new ReadSet containing the given reads (copies)."""
        return ReadSet(self[int(i)] for i in indices)
