"""Minimal, strict 4-line FASTQ reader and writer."""

from __future__ import annotations

import io
from collections.abc import Iterable, Iterator
from pathlib import Path

from repro.io.records import Read
from repro.sequence.quality import decode_phred, encode_phred

__all__ = ["parse_fastq", "write_fastq"]


def _open_text(source, mode="r") -> io.TextIOBase:
    if isinstance(source, (str, Path)):
        return open(source, mode, encoding="ascii")
    return source


def parse_fastq(source) -> Iterator[Read]:
    """Yield :class:`Read` records from a 4-line-per-record FASTQ source."""
    fh = _open_text(source)
    close = isinstance(source, (str, Path))
    try:
        while True:
            header = fh.readline()
            if not header:
                return
            header = header.rstrip("\n")
            if not header.startswith("@") or len(header) < 2:
                raise ValueError(f"malformed FASTQ header: {header!r}")
            seq = fh.readline().rstrip("\n")
            plus = fh.readline().rstrip("\n")
            qual = fh.readline().rstrip("\n")
            if not plus.startswith("+"):
                raise ValueError(f"missing '+' separator after {header!r}")
            if len(qual) != len(seq):
                raise ValueError(
                    f"record {header!r}: quality length {len(qual)} != sequence length {len(seq)}"
                )
            read_id = header[1:].split()[0]
            yield Read.from_string(read_id, seq, quals=decode_phred(qual))
    finally:
        if close:
            fh.close()


def write_fastq(reads: Iterable[Read], dest) -> None:
    """Write reads (which must carry qualities) to FASTQ."""
    fh = _open_text(dest, "w")
    close = isinstance(dest, (str, Path))
    try:
        for read in reads:
            if read.quals is None:
                raise ValueError(f"read {read.id!r} has no quality scores")
            fh.write(f"@{read.id}\n{read.sequence}\n+\n{encode_phred(read.quals)}\n")
    finally:
        if close:
            fh.close()
