"""GFA 1.0 export of assembly graphs.

GFA (Graphical Fragment Assembly) is the de-facto interchange format
for assembly graphs (Bandage, gfatools, ...).  We export the enriched
hybrid graph: every hybrid node's contig becomes an ``S`` segment and
every contig-overlap edge an ``L`` link whose CIGAR records the implied
overlap length.  Edge direction comes from the contig deltas: a
positive delta means the source contig's suffix overlaps the target's
prefix (``+``/``+`` link).
"""

from __future__ import annotations

import io
from pathlib import Path

import numpy as np

from repro.distributed.dgraph import DistributedAssemblyGraph, HybridAssembly
from repro.sequence.dna import decode

__all__ = ["write_gfa", "gfa_string"]


def _segments_and_links(assembly: HybridAssembly, alive_nodes=None, alive_edges=None):
    g = assembly.graph
    n = g.n_nodes
    node_ok = np.ones(n, dtype=bool) if alive_nodes is None else np.asarray(alive_nodes)
    edge_ok = (
        np.ones(g.n_edges, dtype=bool) if alive_edges is None else np.asarray(alive_edges)
    )
    segments = [
        (f"contig{v}", assembly.contigs[v]) for v in range(n) if node_ok[v]
    ]
    links = []
    for e in range(g.n_edges):
        u, v = int(g.eu[e]), int(g.ev[e])
        if not (edge_ok[e] and node_ok[u] and node_ok[v]):
            continue
        d = int(g.deltas[e])
        lu, lv = assembly.contigs[u].size, assembly.contigs[v].size
        overlap = min(lu, d + lv) - max(0, d)
        overlap = max(int(overlap), 0)
        if d >= 0:
            links.append((f"contig{u}", f"contig{v}", overlap))
        else:
            links.append((f"contig{v}", f"contig{u}", overlap))
    return segments, links


def gfa_string(
    source: HybridAssembly | DistributedAssemblyGraph, include_sequences: bool = True
) -> str:
    """Render the assembly graph as a GFA 1.0 document.

    Passing a :class:`DistributedAssemblyGraph` exports only its alive
    nodes and edges (i.e. the post-trimming graph).
    """
    if isinstance(source, DistributedAssemblyGraph):
        assembly = source.assembly
        alive_nodes, alive_edges = source.node_alive, source.edge_alive
    else:
        assembly = source
        alive_nodes = alive_edges = None
    segments, links = _segments_and_links(assembly, alive_nodes, alive_edges)
    out = io.StringIO()
    out.write("H\tVN:Z:1.0\n")
    for name, codes in segments:
        seq = decode(codes) if include_sequences else "*"
        out.write(f"S\t{name}\t{seq}\tLN:i:{codes.size}\n")
    for src, dst, overlap in links:
        out.write(f"L\t{src}\t+\t{dst}\t+\t{overlap}M\n")
    return out.getvalue()


def write_gfa(
    source: HybridAssembly | DistributedAssemblyGraph,
    dest,
    include_sequences: bool = True,
) -> None:
    """Write the GFA document to a path or text stream."""
    text = gfa_string(source, include_sequences=include_sequences)
    if isinstance(dest, (str, Path)):
        Path(dest).write_text(text, encoding="ascii")
    else:
        dest.write(text)
