"""Sequence input/output: FASTA/FASTQ parsing and the ReadSet container."""

from repro.io.fasta import parse_fasta, write_fasta
from repro.io.fastq import parse_fastq, write_fastq
from repro.io.records import Read
from repro.io.readset import ReadSet

__all__ = [
    "Read",
    "ReadSet",
    "parse_fasta",
    "write_fasta",
    "parse_fastq",
    "write_fastq",
]
