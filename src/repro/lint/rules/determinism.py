"""DET001: unseeded module-level RNG calls.

Every figure in the reproduction is regenerated from seeds; a single
``random.random()`` or ``np.random.shuffle()`` draws from hidden global
state and makes runs non-reproducible (and, inside rank functions,
thread-schedule-dependent).  The project convention is an explicit
seeded generator: ``np.random.default_rng(seed)`` or
``random.Random(seed)``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.context import FileContext, dotted_name
from repro.lint.findings import Finding, Severity
from repro.lint.registry import Rule, register

__all__ = ["UnseededRng"]

#: attributes of ``random`` / ``np.random`` that are themselves seeded
#: constructors or stateless types, not global-state draws.
_ALLOWED_TAILS = frozenset(
    {"Random", "SystemRandom", "default_rng", "Generator", "SeedSequence",
     "PCG64", "Philox", "SFC64", "MT19937", "BitGenerator", "RandomState"}
)

_NUMPY_PREFIXES = ("np.random.", "numpy.random.")


@register
class UnseededRng(Rule):
    id = "DET001"
    severity = Severity.WARNING
    summary = "module-level RNG call instead of a seeded Generator"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        plain_random_imported = any(
            isinstance(node, ast.Import)
            and any(a.name == "random" and a.asname is None for a in node.names)
            for node in ast.walk(ctx.tree)
        )
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            offender = self._offending_call(name, plain_random_imported)
            if offender is None:
                continue
            yield self.finding(
                ctx,
                node,
                f"`{offender}` draws from hidden global RNG state, breaking "
                "run-to-run reproducibility; use a seeded "
                "`np.random.default_rng(seed)` / `random.Random(seed)` instead",
            )

    @staticmethod
    def _offending_call(name: str, plain_random_imported: bool) -> str | None:
        for prefix in _NUMPY_PREFIXES:
            if name.startswith(prefix):
                tail = name[len(prefix):].split(".", 1)[0]
                if tail not in _ALLOWED_TAILS:
                    return name
        if plain_random_imported and name.startswith("random."):
            tail = name.split(".", 2)[1]
            if tail not in _ALLOWED_TAILS:
                return name
        return None
