"""DET001: unseeded module-level RNG calls.

Every figure in the reproduction is regenerated from seeds; a single
``random.random()`` or ``np.random.shuffle()`` draws from hidden global
state and makes runs non-reproducible (and, inside rank functions,
thread-schedule-dependent).  The project convention is an explicit
seeded generator: ``np.random.default_rng(seed)`` or
``random.Random(seed)``.

Flagged forms:

- ``np.random.<draw>(...)`` / ``numpy.random.<draw>(...)``;
- ``random.<draw>(...)`` when the stdlib module is imported —
  including the in-place reorderers ``random.shuffle`` /
  ``random.choice`` / ``random.sample``;
- bare calls of names *imported from* ``random`` or ``numpy.random``
  (``from random import shuffle`` then ``shuffle(xs)`` hits exactly
  the same global generator the dotted form does).

Seeded constructors and stateless types (``default_rng``, ``Random``,
``Generator``, bit generators) are never flagged.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.context import FileContext, dotted_name
from repro.lint.findings import Finding, Severity
from repro.lint.registry import Rule, register

__all__ = ["UnseededRng"]

#: attributes of ``random`` / ``np.random`` that are themselves seeded
#: constructors or stateless types, not global-state draws.
_ALLOWED_TAILS = frozenset(
    {"Random", "SystemRandom", "default_rng", "Generator", "SeedSequence",
     "PCG64", "Philox", "SFC64", "MT19937", "BitGenerator", "RandomState"}
)

_NUMPY_PREFIXES = ("np.random.", "numpy.random.")

#: modules whose from-imports are global-generator draws.
_FROM_MODULES = ("random", "numpy.random")


def _from_import_draws(tree: ast.Module) -> dict[str, str]:
    """Local alias -> dotted global-state draw, from ``from`` imports."""
    out: dict[str, str] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.ImportFrom) or node.level:
            continue
        if node.module not in _FROM_MODULES:
            continue
        for alias in node.names:
            if alias.name != "*" and alias.name not in _ALLOWED_TAILS:
                out[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return out


@register
class UnseededRng(Rule):
    id = "DET001"
    severity = Severity.WARNING
    summary = "module-level RNG call instead of a seeded Generator"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        plain_random_imported = any(
            isinstance(node, ast.Import)
            and any(a.name == "random" and a.asname is None for a in node.names)
            for node in ast.walk(ctx.tree)
        )
        from_draws = _from_import_draws(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            offender = self._offending_call(name, plain_random_imported, from_draws)
            if offender is None:
                continue
            yield self.finding(
                ctx,
                node,
                f"`{offender}` draws from hidden global RNG state, breaking "
                "run-to-run reproducibility; use a seeded "
                "`np.random.default_rng(seed)` / `random.Random(seed)` instead",
            )

    @staticmethod
    def _offending_call(
        name: str, plain_random_imported: bool, from_draws: dict[str, str]
    ) -> str | None:
        for prefix in _NUMPY_PREFIXES:
            if name.startswith(prefix):
                tail = name[len(prefix):].split(".", 1)[0]
                if tail not in _ALLOWED_TAILS:
                    return name
        if plain_random_imported and name.startswith("random."):
            tail = name.split(".", 2)[1]
            if tail not in _ALLOWED_TAILS:
                return name
        if "." not in name and name in from_draws:
            return from_draws[name]
        return None
