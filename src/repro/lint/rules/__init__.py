"""Rule modules; importing this package registers every rule."""

from repro.lint.rules import arch, determinism, mpi, perf  # noqa: F401 (registration side effect)
