"""Rule modules; importing this package registers every rule."""

from repro.lint.rules import (  # noqa: F401 (registration side effect)
    arch,
    determinism,
    memory,
    mpi,
    perf,
    protocol,
    purity,
    robustness,
)
