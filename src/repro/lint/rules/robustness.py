"""Robustness rules: ROB001 swallowed exception, ROB002 unbounded poll.

ROB001: a ``try`` handler that catches everything (bare ``except:`` or
``except Exception``/``except BaseException``) and whose body does
nothing but ``pass`` (or a bare ``...``) erases the failure entirely:
no retry, no fallback, no record in the fault report, no message —
the pipeline continues on state of unknown validity.  In a
fault-tolerant assembler every failure must be either handled
(retried, rolled back, recorded) or propagated (see
docs/robustness.md).  Narrow handlers (``except OSError: pass``) are
allowed — swallowing a *specific* anticipated error is a decision;
swallowing *everything* is a bug magnet — and so are broad handlers
that actually do something (log, re-raise, record, fall back).
Prefer ``contextlib.suppress(SpecificError)`` for intentional
narrow suppression.

ROB002: a ``while True`` loop that sleeps but can never leave — no
``break`` of its own, no ``return``, no ``raise`` — polls forever
when the condition it is waiting for never arrives.  The job service
is built from polling loops (supervisor passes, chaos waits,
heartbeats), and each one is bounded by a deadline, a stop flag, or an
escape statement; an unbounded one turns a dead peer into a hung
process, which is strictly worse (nothing requeues a process that is
merely asleep).  Put the bound in the loop condition (``while
time.time() < deadline``), or keep ``while True`` and add an explicit
escape (``if ...: break`` / ``raise TimeoutError``).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.context import FileContext
from repro.lint.findings import Finding, Severity
from repro.lint.registry import Rule, register

__all__ = ["SwallowedException", "UnboundedPollLoop"]

#: names whose catch-all handlers ROB001 flags when the body is empty.
_BROAD_NAMES = ("Exception", "BaseException")


def _is_broad_handler(handler: ast.ExceptHandler) -> bool:
    """Bare ``except:`` or ``except Exception``/``BaseException``."""
    etype = handler.type
    if etype is None:
        return True
    if isinstance(etype, ast.Name):
        return etype.id in _BROAD_NAMES
    if isinstance(etype, ast.Tuple):
        return any(
            isinstance(el, ast.Name) and el.id in _BROAD_NAMES
            for el in etype.elts
        )
    return False


def _body_swallows(body: list[ast.stmt]) -> bool:
    """True when every statement is ``pass``, ``...``, or a docstring."""
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            # `...` or a bare string; neither handles the error.
            continue
        return False
    return True


@register
class SwallowedException(Rule):
    id = "ROB001"
    severity = Severity.ERROR
    summary = "broad except handler silently swallows the exception"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not _is_broad_handler(node):
                continue
            if not _body_swallows(node.body):
                continue
            caught = (
                ast.unparse(node.type) if node.type is not None else "everything"
            )
            yield self.finding(
                ctx,
                node,
                f"handler catches {caught} and does nothing — the failure "
                "is erased with no retry, record, or message; handle it "
                "(retry/fallback/log), narrow the exception type, or use "
                "contextlib.suppress(SpecificError) to make intentional "
                "suppression explicit",
            )


def _is_while_true(node: ast.While) -> bool:
    test = node.test
    return isinstance(test, ast.Constant) and bool(test.value) is True


def _is_sleep_call(node: ast.Call) -> bool:
    """``sleep(...)`` or ``<anything>.sleep(...)``."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id == "sleep"
    if isinstance(func, ast.Attribute):
        return func.attr == "sleep"
    return False


def _loop_traits(body: list[ast.stmt]) -> tuple[bool, bool]:
    """(sleeps, escapes) for a ``while`` body.

    ``escapes`` means the loop itself can end: a ``break`` belonging to
    *this* loop (not to a nested ``for``/``while``), or a ``return`` /
    ``raise`` anywhere in the body outside nested function and class
    definitions (those run on their own call stack and cannot end this
    loop's iteration).
    """
    sleeps = False
    escapes = False
    stack: list[tuple[ast.AST, bool]] = [(stmt, True) for stmt in body]
    while stack:
        node, this_loop = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        if isinstance(node, ast.Break):
            if this_loop:
                escapes = True
            continue
        if isinstance(node, (ast.Return, ast.Raise)):
            escapes = True
            continue
        if isinstance(node, ast.Call) and _is_sleep_call(node):
            sleeps = True
        nested = isinstance(node, (ast.While, ast.For, ast.AsyncFor))
        for child in ast.iter_child_nodes(node):
            stack.append((child, this_loop and not nested))
    return sleeps, escapes


@register
class UnboundedPollLoop(Rule):
    id = "ROB002"
    severity = Severity.ERROR
    summary = "unbounded poll loop: while True + sleep with no escape"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.While) or not _is_while_true(node):
                continue
            sleeps, escapes = _loop_traits(node.body)
            if not sleeps or escapes:
                continue
            yield self.finding(
                ctx,
                node,
                "while True sleeps but has no break/return/raise — if the "
                "awaited condition never arrives this process hangs "
                "forever; bound the loop with a deadline or stop flag in "
                "the condition, or add an explicit escape",
            )
