"""Robustness rules: ROB001 swallowed exception.

A ``try`` handler that catches everything (bare ``except:`` or
``except Exception``/``except BaseException``) and whose body does
nothing but ``pass`` (or a bare ``...``) erases the failure entirely:
no retry, no fallback, no record in the fault report, no message —
the pipeline continues on state of unknown validity.  In a
fault-tolerant assembler every failure must be either handled
(retried, rolled back, recorded) or propagated (see
docs/robustness.md).  Narrow handlers (``except OSError: pass``) are
allowed — swallowing a *specific* anticipated error is a decision;
swallowing *everything* is a bug magnet — and so are broad handlers
that actually do something (log, re-raise, record, fall back).
Prefer ``contextlib.suppress(SpecificError)`` for intentional
narrow suppression.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.context import FileContext
from repro.lint.findings import Finding, Severity
from repro.lint.registry import Rule, register

__all__ = ["SwallowedException"]

#: names whose catch-all handlers ROB001 flags when the body is empty.
_BROAD_NAMES = ("Exception", "BaseException")


def _is_broad_handler(handler: ast.ExceptHandler) -> bool:
    """Bare ``except:`` or ``except Exception``/``BaseException``."""
    etype = handler.type
    if etype is None:
        return True
    if isinstance(etype, ast.Name):
        return etype.id in _BROAD_NAMES
    if isinstance(etype, ast.Tuple):
        return any(
            isinstance(el, ast.Name) and el.id in _BROAD_NAMES
            for el in etype.elts
        )
    return False


def _body_swallows(body: list[ast.stmt]) -> bool:
    """True when every statement is ``pass``, ``...``, or a docstring."""
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            # `...` or a bare string; neither handles the error.
            continue
        return False
    return True


@register
class SwallowedException(Rule):
    id = "ROB001"
    severity = Severity.ERROR
    summary = "broad except handler silently swallows the exception"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not _is_broad_handler(node):
                continue
            if not _body_swallows(node.body):
                continue
            caught = (
                ast.unparse(node.type) if node.type is not None else "everything"
            )
            yield self.finding(
                ctx,
                node,
                f"handler catches {caught} and does nothing — the failure "
                "is erased with no retry, record, or message; handle it "
                "(retry/fallback/log), narrow the exception type, or use "
                "contextlib.suppress(SpecificError) to make intentional "
                "suppression explicit",
            )
