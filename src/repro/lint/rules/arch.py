"""Architecture rules: ARCH001 kernel module imports the MPI layer.

The distributed stages are split into pure per-partition *kernels*
(functions named ``*_kernel``) and master-side merges so that the same
algorithm runs unchanged on every execution backend — in-process
serial, the simulated MPI cluster, and real OS processes (see
docs/architecture.md).  A kernel module that imports ``repro.mpi``
couples the algorithm to one backend and breaks the layering that the
process backend relies on (kernels are resolved by name inside forked
workers that never construct a communicator).  Driver modules that
*orchestrate* kernels over a communicator may import ``repro.mpi``
freely — the rule only fires on modules that define kernels.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.context import FileContext
from repro.lint.findings import Finding, Severity
from repro.lint.registry import Rule, register

__all__ = ["KernelImportsMpi"]


def _defines_kernel(tree: ast.AST) -> bool:
    """True when the module defines a ``*_kernel`` function."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.name.endswith("_kernel"):
                return True
    return False


def _mpi_imports(tree: ast.AST) -> Iterator[ast.AST]:
    """Import statements that pull in ``repro.mpi`` or a submodule."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            if any(
                alias.name == "repro.mpi" or alias.name.startswith("repro.mpi.")
                for alias in node.names
            ):
                yield node
        elif isinstance(node, ast.ImportFrom):
            mod = node.module or ""
            if mod == "repro.mpi" or mod.startswith("repro.mpi."):
                yield node
            elif mod == "repro" and any(a.name == "mpi" for a in node.names):
                yield node


@register
class KernelImportsMpi(Rule):
    id = "ARCH001"
    severity = Severity.ERROR
    summary = "distributed kernel module imports repro.mpi (backend coupling)"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        path = ctx.path.replace("\\", "/")
        if "repro/distributed/" not in path:
            return
        if not _defines_kernel(ctx.tree):
            return
        for node in _mpi_imports(ctx.tree):
            yield self.finding(
                ctx,
                node,
                "module defines a `*_kernel` function but imports repro.mpi "
                "— kernels must stay backend-agnostic; move communicator "
                "orchestration to a driver module (or the stage registry) "
                "so the process backend can run the kernel in a forked "
                "worker",
            )
