"""Memory rule: MEM001 whole-store materialization in a partition kernel.

The out-of-core contract (docs/architecture.md, storage layer): a
per-partition kernel sees O(partition) data, never O(dataset).  The
sharded stores keep that true by handing kernels shard-sized views;
the escape hatches that rebuild the full in-RAM object —
``ShardedReadSet.to_array()``, ``ShardedOverlaps.to_packed()``,
``ShardedGraph.to_graph()`` — exist for tooling and tests, not for
kernels.  One such call inside a kernel silently restores the O(reads)
peak memory the store was built to remove, on *every* partition at
once.

MEM001 flags, inside any function named ``*_kernel``:

- calls to the materialization methods ``.to_array()`` /
  ``.to_packed()`` / ``.to_graph()``;
- a full-concatenate of a shard stream: ``np.concatenate`` /
  ``np.vstack`` / ``np.hstack`` fed (anywhere in its arguments) by an
  ``iter_shards()`` / ``iter_batches()`` / ``iter_edge_shards()``
  call — gluing every shard back together is materialization with
  extra steps.

Kernels that genuinely need a full view (none today) must say so with
``# noqa: MEM001`` at the call site.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.context import FileContext
from repro.lint.findings import Finding, Severity
from repro.lint.registry import Rule, register

__all__ = ["WholeStoreMaterialization"]

#: sharded-store methods that rebuild the full in-RAM object.
MATERIALIZE_METHODS = frozenset({"to_array", "to_packed", "to_graph"})

#: shard-stream iterators of the sharded stores.
SHARD_ITERATORS = frozenset({"iter_shards", "iter_batches", "iter_edge_shards"})

#: array-gluing callables (bare or ``np.``-qualified).
CONCATENATORS = frozenset({"concatenate", "vstack", "hstack"})


def _call_name(call: ast.Call) -> str | None:
    """Trailing name of the called expression (``np.vstack`` -> ``vstack``)."""
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    if isinstance(call.func, ast.Name):
        return call.func.id
    return None


def _feeds_on_shard_stream(call: ast.Call) -> bool:
    """True when any argument contains an ``iter_*shards*()``-style call."""
    for arg in list(call.args) + [kw.value for kw in call.keywords]:
        for sub in ast.walk(arg):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr in SHARD_ITERATORS
            ):
                return True
    return False


@register
class WholeStoreMaterialization(Rule):
    id = "MEM001"
    severity = Severity.WARNING
    summary = "partition kernel materializes a whole sharded store"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for func in ctx.functions():
            if not func.name.endswith("_kernel"):
                continue
            for node in ast.walk(func):
                if not isinstance(node, ast.Call):
                    continue
                name = _call_name(node)
                if (
                    isinstance(node.func, ast.Attribute)
                    and name in MATERIALIZE_METHODS
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"kernel calls `.{name}()`, rebuilding the whole "
                        "store in RAM — stream shard views instead "
                        "(`shard()`/`shard_batch()`/`iter_edge_shards()`), "
                        "or mark a deliberate full view with "
                        "`# noqa: MEM001`",
                    )
                elif name in CONCATENATORS and _feeds_on_shard_stream(node):
                    yield self.finding(
                        ctx,
                        node,
                        f"kernel `{name}`s a full shard stream back into one "
                        "array — that is whole-store materialization; "
                        "process shards independently or mark a deliberate "
                        "full view with `# noqa: MEM001`",
                    )
