"""Interprocedural purity rules: PURE001, PURE002, ARCH002.

The kernel/merge split (``docs/architecture.md``) makes every
execution backend — serial loop, simulated MPI cluster, forked process
pool — interchangeable **only if kernels are pure**: the process
backend runs kernels in workers that inherit the enriched assembly
copy-on-write and resolve kernels by name, so a kernel that mutates
its inputs or module globals diverges silently from the serial
baseline, and one that reaches hidden nondeterminism (unseeded RNG,
the wall clock, the filesystem) breaks the paper's Table III
invariance claim (identical assembly quality at every partition
count).  ARCH001 checks the *import* discipline per file; these rules
walk the whole-program call graph, so a kernel calling a helper in
another module that mutates shared state is caught too.

- **PURE001** — a ``*_kernel`` function, directly or via any
  transitively called helper, mutates one of its parameters or a
  module global.
- **PURE002** — a ``*_kernel`` function transitively reaches an
  unseeded RNG draw, a wall-clock read, or filesystem/network I/O
  (the interprocedural generalization of DET001).
- **ARCH002** — a ``repro.distributed.stages.register_stage`` call
  whose kernel/merge do not satisfy the registry contract:
  module-level named functions, kernel named ``*_kernel`` and callable
  as ``kernel(dag, part, **params)``, merge callable as
  ``merge(dag, proposals, **params)``.

The underlying analysis is optimistic about calls it cannot resolve
(object methods, out-of-tree imports) — see ``repro.lint.project`` —
so every finding here points at a concrete mutation/effect site.
Findings anchor at the kernel ``def`` (PURE001/PURE002) or the
``register_stage`` call (ARCH002); suppress a deliberate exception
with ``# noqa: RULEID`` on that line.
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.findings import Finding, Severity
from repro.lint.project import (
    ArgRef,
    CallSite,
    FileSummary,
    FunctionInfo,
    ProjectContext,
)
from repro.lint.registry import ProjectRule, register

__all__ = ["KernelMutatesState", "KernelReachesNondeterminism", "StageContract"]

REGISTER_STAGE_FQ = "repro.distributed.stages.register_stage"

_AMBIENT_LABEL = {
    "rng": "an unseeded RNG draw",
    "clock": "a wall-clock read",
    "io": "filesystem/network I/O",
}


def _iter_kernels(project: ProjectContext) -> Iterator[FunctionInfo]:
    for info in project.functions.values():
        if info.name.endswith("_kernel") and info.is_module_level:
            yield info


def _chain_text(project: ProjectContext, via: tuple[str, ...], owner: str) -> str:
    """Human-readable call chain ``via helper -> helper2`` for a witness."""
    if not via:
        return ""
    names = []
    for fq in via:
        info = project.functions.get(fq)
        names.append(f"`{info.name if info else fq}`")
    return " via " + " -> ".join(names)


def _site_text(project: ProjectContext, owner: str, lineno: int) -> str:
    info = project.functions.get(owner)
    return f"{info.path if info else owner}:{lineno}"


@register
class KernelMutatesState(ProjectRule):
    id = "PURE001"
    severity = Severity.ERROR
    summary = "kernel (or a transitive helper) mutates a parameter or module global"

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        for info in _iter_kernels(project):
            s = project.summary(info.fq)
            for pname, (via, eff, owner) in sorted(s.mutated_params.items()):
                yield self.finding_at(
                    info.path,
                    info.lineno,
                    info.col,
                    f"kernel `{info.name}` mutates its parameter `{pname}`"
                    f"{_chain_text(project, via, owner)}: {eff.detail} at "
                    f"{_site_text(project, owner, eff.lineno)} — kernels must "
                    "return proposals, never mutate shared state, or the "
                    "process backend diverges from the serial baseline",
                )
            for gname, (via, eff, owner) in sorted(s.mutated_globals.items()):
                yield self.finding_at(
                    info.path,
                    info.lineno,
                    info.col,
                    f"kernel `{info.name}` mutates module global `{gname}`"
                    f"{_chain_text(project, via, owner)}: {eff.detail} at "
                    f"{_site_text(project, owner, eff.lineno)} — forked "
                    "workers never see master-side global state, so this "
                    "breaks serial-vs-process equivalence",
                )


@register
class KernelReachesNondeterminism(ProjectRule):
    id = "PURE002"
    severity = Severity.ERROR
    summary = "kernel transitively reaches unseeded RNG, wall clock, or I/O"

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        for info in _iter_kernels(project):
            s = project.summary(info.fq)
            for kind in ("rng", "clock", "io"):
                hit = s.ambient.get(kind)
                if hit is None:
                    continue
                via, eff, owner = hit
                yield self.finding_at(
                    info.path,
                    info.lineno,
                    info.col,
                    f"kernel `{info.name}` reaches {_AMBIENT_LABEL[kind]}"
                    f"{_chain_text(project, via, owner)}: {eff.detail} at "
                    f"{_site_text(project, owner, eff.lineno)} — kernel "
                    "output must be a pure function of (dag, part, params) "
                    "so every backend produces identical proposals",
                )


def _stage_arg(cs: CallSite, index: int, kwname: str) -> ArgRef | None:
    if len(cs.pos) > index:
        return cs.pos[index]
    for name, ref in cs.kw:
        if name == kwname:
            return ref
    return None


@register
class StageContract(ProjectRule):
    id = "ARCH002"
    severity = Severity.ERROR
    summary = "register_stage kernel/merge does not match the registry contract"

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        for summary in project.files.values():
            calls = list(summary.module_calls)
            for info in summary.functions.values():
                calls.extend(info.calls)
            for cs in calls:
                fq = project.resolve_import_target(summary.module, cs.callee)
                if fq != REGISTER_STAGE_FQ:
                    continue
                yield from self._check_registration(project, summary, cs)

    def _check_registration(
        self, project: ProjectContext, summary: FileSummary, cs: CallSite
    ) -> Iterator[Finding]:
        for role, index, checker in (
            ("kernel", 1, self._check_kernel),
            ("merge", 2, self._check_merge),
        ):
            ref = _stage_arg(cs, index, role)
            if ref is None:
                continue
            if ref.kind == "lambda":
                yield self._contract_finding(
                    summary, cs,
                    f"{role} is a lambda — stages must register module-level "
                    "named functions so forked workers can resolve them by "
                    "name",
                )
                continue
            if ref.kind not in ("name", "attr") or ref.text is None:
                continue  # dynamically built callable: cannot verify
            fn = project.resolve_call(summary.module, ref.text)
            if fn is None:
                continue  # out-of-project function: cannot verify
            if not fn.is_module_level:
                yield self._contract_finding(
                    summary, cs,
                    f"{role} `{ref.text}` resolves to `{fn.qualname}`, which "
                    "is not a module-level function — forked workers resolve "
                    "stages by name at import time",
                )
                continue
            yield from checker(summary, cs, fn)

    def _check_kernel(
        self, summary: FileSummary, cs: CallSite, fn: FunctionInfo
    ) -> Iterator[Finding]:
        if not fn.name.endswith("_kernel"):
            yield self._contract_finding(
                summary, cs,
                f"kernel `{fn.name}` is not named `*_kernel` — the naming "
                "convention is what ARCH001/PURE001 key their static "
                "guarantees on",
            )
        if len(fn.pos_params) < 2 and not fn.has_vararg:
            yield self._contract_finding(
                summary, cs,
                f"kernel `{fn.name}` takes {len(fn.pos_params)} positional "
                "parameter(s); backends invoke `kernel(dag, part, **params)`",
            )

    def _check_merge(
        self, summary: FileSummary, cs: CallSite, fn: FunctionInfo
    ) -> Iterator[Finding]:
        if len(fn.pos_params) < 2 and not fn.has_vararg:
            yield self._contract_finding(
                summary, cs,
                f"merge `{fn.name}` takes {len(fn.pos_params)} positional "
                "parameter(s); backends invoke "
                "`merge(dag, proposals, **params)`",
            )

    def _contract_finding(
        self, summary: FileSummary, cs: CallSite, detail: str
    ) -> Finding:
        return self.finding_at(
            summary.path,
            cs.lineno,
            cs.col,
            f"stage registration violates the StageSpec contract: {detail}",
        )
