"""Protocol rules MPI004–MPI007: whole-program send/recv matching.

These rules consume the flow-sensitive protocol analysis
(:mod:`repro.lint.protocol`): each root SPMD driver is abstract-
interpreted into per-rank ordered communication events at a small
model-cluster size, simulated under eager-send/blocking-recv
semantics, and the terminal state is classified.

- **MPI004** unmatched point-to-point: a send nobody receives, or a
  recv whose matching send never materializes in the peer's protocol.
- **MPI005** cyclic-wait deadlock: roles blocked on each other's
  receives while every needed send sits *later* in the peer's
  protocol — the witness names both roles' blocking events.
- **MPI006** collective divergence: the whole-program generalization
  of MPI001 — a rank-guarded call chain that reaches a collective, a
  collective inside a loop whose trip count derives from rank-local
  data, or a simulation that parks ranks at mismatched collectives.
- **MPI007** payload-contract mismatch: a matched send/recv pair where
  the sent object's inferred type cannot support the receiver's
  downstream use (``.append`` on a dict payload, iteration over None).

Imprecise drivers (branches on runtime data that communicate on both
sides, peers the evaluator cannot resolve) produce *no* findings —
the analysis is optimistic and the runtime sanitizer remains the
dynamic backstop for what it cannot model.
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.findings import Finding, Severity
from repro.lint.project import ProjectContext
from repro.lint.protocol import (
    _USE_SUPPORTED,
    CommEvent,
    analyze_protocols,
)
from repro.lint.registry import ProjectRule, register

__all__ = [
    "UnmatchedPointToPoint",
    "CyclicWaitDeadlock",
    "CollectiveDivergence",
    "PayloadContractMismatch",
]


def _ranks_text(ranks: list[int]) -> str:
    if len(ranks) == 1:
        return f"rank {ranks[0]}"
    return "ranks " + ",".join(str(r) for r in sorted(ranks))


def _via_text(ev: CommEvent) -> str:
    if not ev.via:
        return ""
    chain = " -> ".join(fq.rsplit(".", 1)[-1] for fq in ev.via)
    return f" (reached via {chain})"


def _short(fq: str) -> str:
    return fq.rsplit(".", 1)[-1]


@register
class UnmatchedPointToPoint(ProjectRule):
    id = "MPI004"
    severity = Severity.ERROR
    summary = "point-to-point send/recv with no matching counterpart in the peer's protocol"

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        analysis = analyze_protocols(project)
        for fq in sorted(analysis.outcomes):
            out = analysis.outcomes[fq]
            sites: dict[tuple[str, int, str], list[CommEvent]] = {}
            for ev in out.unreceived:
                sites.setdefault((ev.path, ev.lineno, "send"), []).append(ev)
            for ev in out.unmatched_recvs:
                sites.setdefault((ev.path, ev.lineno, "recv"), []).append(ev)
            for (path, lineno, kind), events in sorted(sites.items()):
                ranks = sorted({e.rank for e in events})
                ev = events[0]
                if kind == "send":
                    msg = (
                        f"`{ev.describe()}` by {_ranks_text(ranks)} in driver "
                        f"`{_short(fq)}` is never received: the destination "
                        "finishes its protocol with the message still in "
                        f"flight{_via_text(ev)}; every eager send needs a "
                        "matching recv on the same (source, tag)"
                    )
                else:
                    msg = (
                        f"`{ev.describe()}` blocks {_ranks_text(ranks)} in "
                        f"driver `{_short(fq)}` forever: no send with a "
                        "matching (dest, tag) exists anywhere in the source "
                        f"rank's protocol{_via_text(ev)}"
                    )
                yield self.finding_at(path, lineno, 0, msg)


@register
class CyclicWaitDeadlock(ProjectRule):
    id = "MPI005"
    severity = Severity.ERROR
    summary = "cyclic wait: roles recv from each other before their matching sends"

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        analysis = analyze_protocols(project)
        for fq in sorted(analysis.outcomes):
            out = analysis.outcomes[fq]
            for cycle in out.cycles:
                anchor_rank = min(cycle)
                anchor = out.blocked[anchor_rank]
                legs = []
                for r in sorted(cycle):
                    ev = out.blocked[r]
                    legs.append(
                        f"rank {r} blocks at `{ev.describe()}` "
                        f"({ev.site()}){_via_text(ev)}"
                    )
                msg = (
                    f"cyclic wait among {_ranks_text(sorted(cycle))} in "
                    f"driver `{_short(fq)}`: " + "; ".join(legs) + " — each "
                    "side's matching send happens only after its own recv, "
                    "so no rank can progress (swap one side's send/recv "
                    "order or use `sendrecv`)"
                )
                yield self.finding_at(anchor.path, anchor.lineno, 0, msg)


@register
class CollectiveDivergence(ProjectRule):
    id = "MPI006"
    severity = Severity.ERROR
    summary = "ranks disagree on collective count/order (whole-program MPI001)"

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        analysis = analyze_protocols(project)
        for d in analysis.static_divergences:
            yield self.finding_at(d.path, d.lineno, d.col, d.message)
        static_fqs = {d.fq for d in analysis.static_divergences}
        for fq in sorted(analysis.outcomes):
            out = analysis.outcomes[fq]
            if not out.collective_divergence:
                continue
            # The static pass (or per-file MPI001) already explains
            # divergences rooted in this driver's call tree; the
            # simulated witness would only restate them.
            if static_fqs & analysis.reach_of_root(fq):
                continue
            coll_events = [
                ev for ev in out.blocked.values() if ev.kind == "coll"
            ]
            if any(
                (ev.path, ev.lineno) in analysis.mpi001_sites
                for ev in coll_events
            ):
                continue
            states: dict[str, list[int]] = {}
            size = analysis.roots[fq].size
            for r in range(size):
                ev = out.blocked.get(r)
                key = (
                    f"blocks at `{ev.describe()}` ({ev.site()})"
                    if ev is not None
                    else "finishes without entering it"
                )
                states.setdefault(key, []).append(r)
            detail = "; ".join(
                f"{_ranks_text(ranks)} {key}" for key, ranks in states.items()
            )
            anchor = min(coll_events, key=lambda e: (e.path, e.lineno))
            msg = (
                f"collective divergence in driver `{_short(fq)}`: {detail} — "
                "every rank of the communicator must enter the same "
                "collective in the same order"
            )
            yield self.finding_at(anchor.path, anchor.lineno, 0, msg)


@register
class PayloadContractMismatch(ProjectRule):
    id = "MPI007"
    severity = Severity.WARNING
    summary = "sent payload type cannot support the receiver's downstream use"

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        analysis = analyze_protocols(project)
        seen: set[tuple[str, int, str, str, int]] = set()
        for fq in sorted(analysis.outcomes):
            out = analysis.outcomes[fq]
            for send_ev, recv_ev in out.matched:
                if send_ev.payload is None:
                    continue
                for use in sorted(recv_ev.uses):
                    supported = _USE_SUPPORTED.get(use)
                    if supported is None or send_ev.payload in supported:
                        continue
                    key = (
                        recv_ev.path, recv_ev.lineno, use,
                        send_ev.path, send_ev.lineno,
                    )
                    if key in seen:
                        continue
                    seen.add(key)
                    nice_use = {
                        "__getitem__": "subscripting",
                        "__setitem__": "item assignment",
                        "__iter__": "iteration",
                        "__len__": "len()",
                    }.get(use, f"`.{use}()`")
                    yield self.finding_at(
                        recv_ev.path,
                        recv_ev.lineno,
                        0,
                        f"received payload is used via {nice_use}, but the "
                        f"matching `{send_ev.describe()}` at "
                        f"{send_ev.site()} ships a {send_ev.payload} — "
                        "the receiver's contract "
                        f"({'/'.join(sorted(supported))}) does not match "
                        "what the sender produces",
                    )
