"""Performance rules: PERF001 untimed compute, PERF002 scalarized hot loop.

PERF001 — in a rank function every nontrivial compute block must run
under ``with comm.timed():`` (or account itself via ``comm.advance``) —
work done outside the clock is free in model time, which silently
*inflates* the speedup curves the benchmarks exist to reproduce.  The
rule flags ``for``/``while`` loops in communicator-taking functions
that neither run under ``timed()`` nor touch the communicator in their
body (a loop that sends/receives is communication, not untimed compute).

PERF002 — the vectorized hot paths must stay vectorized.  Two kinds
of function carry the contract: the alignment engine
(``src/repro/align/``, overlap/candidate functions) and the sparse
finish engine (``src/repro/graph/sparse.py`` plus ``sparse``-named
functions under ``src/repro/distributed/``).  Iterating ``.tolist()``
output there reintroduces a per-element Python loop on the innermost
path, exactly the scalarization the vectorized engine removed.  The
scalar ``loop`` reference kernels are deliberately exempt — they are
the readable spec the sparse engine is checked against.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.context import FileContext, comm_param_name, references_name
from repro.lint.findings import Finding, Severity
from repro.lint.registry import Rule, register

__all__ = ["UntimedComputeLoop", "ScalarizedHotLoop"]


def _is_timed_with(node: ast.AST, comm: str) -> bool:
    """True for ``with comm.timed():`` (possibly among other items)."""
    if not isinstance(node, ast.With):
        return False
    for item in node.items:
        call = item.context_expr
        if (
            isinstance(call, ast.Call)
            and isinstance(call.func, ast.Attribute)
            and call.func.attr == "timed"
            and isinstance(call.func.value, ast.Name)
            and call.func.value.id == comm
        ):
            return True
    return False


@register
class UntimedComputeLoop(Rule):
    id = "PERF001"
    severity = Severity.WARNING
    summary = "compute loop in a rank function outside comm.timed()/advance()"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for func in ctx.functions():
            comm = comm_param_name(func)
            if comm is None:
                continue
            yield from self._scan(ctx, func, comm)

    def _scan(self, ctx: FileContext, node: ast.AST, comm: str) -> Iterator[Finding]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue  # nested defs are checked as their own functions
            if _is_timed_with(child, comm):
                continue  # everything under the clock is accounted for
            if isinstance(child, (ast.For, ast.AsyncFor, ast.While)):
                if not references_name(child, comm):
                    yield self.finding(
                        ctx,
                        child,
                        "loop runs compute outside the virtual clock — wrap it "
                        f"in `with {comm}.timed():` (or account it via "
                        f"`{comm}.advance`) so the speedup curves stay honest",
                    )
                    continue  # do not re-flag nested loops of the same block
            yield from self._scan(ctx, child, comm)


def _is_hot_function(name: str) -> bool:
    """Functions that sit on the overlap hot path by naming convention."""
    return name.startswith("overlap_") or name == "_candidates" or name.endswith(
        "_candidates"
    )


def _is_sparse_hot_function(name: str) -> bool:
    """Finish-engine functions that promise vectorized execution."""
    return "sparse" in name


def _iter_calls_tolist(node: ast.expr) -> bool:
    """True when the expression contains a ``.tolist()`` call."""
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Attribute)
            and sub.func.attr == "tolist"
        ):
            return True
    return False


@register
class ScalarizedHotLoop(Rule):
    id = "PERF002"
    severity = Severity.WARNING
    summary = "per-element `for ... in ....tolist()` loop on a vectorized hot path"

    def _hot_functions(self, ctx: FileContext):
        path = ctx.path.replace("\\", "/")
        if "repro/align/" in path:
            for func in ctx.functions():
                if _is_hot_function(func.name):
                    yield func
        elif "repro/graph/sparse" in path:
            # The whole module is the vectorized engine's substrate.
            yield from ctx.functions()
        elif "repro/distributed/" in path:
            # Only the sparse kernels promise vectorization; the loop
            # reference kernels are the readable spec and stay scalar.
            for func in ctx.functions():
                if _is_sparse_hot_function(func.name):
                    yield func

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for func in self._hot_functions(ctx):
            for node in ast.walk(func):
                if isinstance(node, (ast.For, ast.AsyncFor)) and _iter_calls_tolist(
                    node.iter
                ):
                    yield self.finding(
                        ctx,
                        node,
                        "hot-path function iterates `.tolist()` element by "
                        "element — batch the work with array operations (see "
                        "the vectorized overlap/sparse engines), or mark a "
                        "deliberate scalar fallback with `# noqa: PERF002`",
                    )
