"""MPI-correctness rules for the simulated-cluster programming model.

- **MPI001** collective-symmetry: a collective reachable only under a
  rank-dependent conditional deadlocks the other ranks of the
  communicator (they never enter the matching tree exchange).
- **MPI002** reserved-tag: literal tags at or below -1000 collide with
  the internal collective tag space of :class:`~repro.mpi.SimComm`.
- **MPI003** mutate-after-send: sends are *eager* — the payload object
  reference crosses rank threads immediately, so mutating it after the
  send races with the receiver (and with the sanitizer's fingerprint).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.context import (
    COLLECTIVE_METHODS,
    MUTATING_METHODS,
    P2P_TAG_POSITION,
    FileContext,
    comm_param_name,
    is_rank_dependent,
    literal_int,
    rank_alias_names,
)
from repro.lint.findings import Finding, Severity
from repro.lint.registry import Rule, register
from repro.mpi.simcomm import COLLECTIVE_TAG_BASE, COLLECTIVE_TAG_SPAN

__all__ = ["CollectiveSymmetry", "ReservedTag", "MutateAfterSend"]

#: boundary of the tag space the simulated runtime reserves for its
#: internal collective traffic — shared with the runtime itself so the
#: rule can never drift from what :class:`~repro.mpi.SimComm` claims
#: (bcast at the base down through ``base - (span - 1)`` for the
#: deepest alltoall leg).
RESERVED_TAG_CEILING = COLLECTIVE_TAG_BASE
RESERVED_TAG_FLOOR = COLLECTIVE_TAG_BASE - (COLLECTIVE_TAG_SPAN - 1)

#: kept as a module alias for the shared in-place mutator set.
_MUTATING_METHODS = MUTATING_METHODS


def _method_call(node: ast.AST, methods: frozenset[str] | dict) -> tuple[str, str] | None:
    """``(receiver, method)`` when node is ``<name>.<method>(...)``."""
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in methods
        and isinstance(node.func.value, ast.Name)
    ):
        return node.func.value.id, node.func.attr
    return None


def _own_nodes(func: ast.AST):
    """Walk ``func`` without descending into nested function defs."""
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            stack.extend(ast.iter_child_nodes(node))


@register
class CollectiveSymmetry(Rule):
    id = "MPI001"
    severity = Severity.ERROR
    summary = "collective called under a rank-dependent conditional (deadlock risk)"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for func in ctx.functions():
            comm = comm_param_name(func)
            if comm is None:
                continue
            aliases = rank_alias_names(func, comm)
            yield from self._scan(ctx, func, comm, aliases, under_rank_branch=False)

    def _scan(self, ctx, node, comm, aliases, under_rank_branch) -> Iterator[Finding]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue  # nested defs are checked as their own functions
            branch = under_rank_branch
            if isinstance(child, (ast.If, ast.While)) and is_rank_dependent(
                child.test, comm, aliases
            ):
                branch = True
            hit = _method_call(child, COLLECTIVE_METHODS)
            if branch and hit is not None and hit[0] == comm:
                yield self.finding(
                    ctx,
                    child,
                    f"collective `{comm}.{hit[1]}` is only reached by ranks "
                    f"satisfying a `{comm}.rank`-dependent condition; the other "
                    "ranks never enter the matching exchange and deadlock",
                )
            yield from self._scan(ctx, child, comm, aliases, branch)


@register
class ReservedTag(Rule):
    id = "MPI002"
    severity = Severity.ERROR
    summary = f"literal message tag in the reserved collective space (<= {RESERVED_TAG_CEILING})"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
                continue
            method = node.func.attr
            tag_expr: ast.expr | None = None
            if method in P2P_TAG_POSITION:
                pos = P2P_TAG_POSITION[method]
                if len(node.args) > pos:
                    tag_expr = node.args[pos]
                for kw in node.keywords:
                    if kw.arg == "tag":
                        tag_expr = kw.value
            elif method in COLLECTIVE_METHODS:
                for kw in node.keywords:
                    if kw.arg == "_tag":
                        tag_expr = kw.value
            if tag_expr is None:
                continue
            value = literal_int(tag_expr)
            if value is not None and value <= RESERVED_TAG_CEILING:
                window = (
                    f"[{RESERVED_TAG_FLOOR}, {RESERVED_TAG_CEILING}]"
                )
                yield self.finding(
                    ctx,
                    tag_expr,
                    f"tag {value} lies at or below the runtime's reserved "
                    f"collective tag space (window {window}, everything "
                    f"<= {RESERVED_TAG_CEILING} is off-limits); user traffic "
                    "there can interleave with internal collective messages",
                )


@register
class MutateAfterSend(Rule):
    id = "MPI003"
    severity = Severity.ERROR
    summary = "payload name mutated after an eager send in the same function"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for func in ctx.functions():
            comm = comm_param_name(func)
            if comm is None:
                continue
            sends: dict[str, int] = {}  # payload name -> first send line
            rebinds: dict[str, list[int]] = {}  # name -> plain-assignment lines
            for node in _own_nodes(func):
                hit = _method_call(node, frozenset({"send", "isend"}))
                if hit is not None and hit[0] == comm:
                    payload = node.args[0] if node.args else None
                    if isinstance(payload, ast.Name) and payload.id not in sends:
                        sends[payload.id] = node.lineno
                elif isinstance(node, ast.Assign):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            rebinds.setdefault(target.id, []).append(node.lineno)
            if not sends:
                continue
            for node in _own_nodes(func):
                name, verb = self._mutation(node)
                if name is None or name not in sends:
                    continue
                if node.lineno <= sends[name]:
                    continue
                # A plain rebinding between the send and the mutation
                # means the mutation hits a fresh object, not the sent one.
                if any(
                    sends[name] < line <= node.lineno
                    for line in rebinds.get(name, ())
                ):
                    continue
                yield self.finding(
                    ctx,
                    node,
                    f"`{name}` was sent eagerly on line {sends[name]} and is "
                    f"{verb} here; the receiver sees the same object, so this "
                    "is a cross-rank data race (copy before sending, or "
                    "mutate a fresh object)",
                )

    @staticmethod
    def _mutation(node: ast.AST) -> tuple[str | None, str]:
        """(mutated name, verb) when ``node`` mutates a name in place."""
        hit = _method_call(node, _MUTATING_METHODS)
        if hit is not None:
            return hit[0], f"mutated via `.{hit[1]}()`"
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AugAssign):
            if isinstance(node.target, ast.Name):
                return node.target.id, "augmented in place"
            targets = [node.target]
        elif isinstance(node, ast.Delete):
            targets = node.targets
        for target in targets:
            if isinstance(target, ast.Subscript) and isinstance(target.value, ast.Name):
                return target.value.id, "written through a subscript"
        return None, ""
