"""Rule base classes and the global rule registry.

A *file rule* is a small object with an ``id``, a default
``severity``, a one-line ``summary``, and a ``check(ctx)`` generator
yielding :class:`~repro.lint.findings.Finding` objects for one parsed
file.  A *project rule* (:class:`ProjectRule`) instead implements
``check_project(project)`` over the whole-program
:class:`~repro.lint.project.ProjectContext` — call graph, symbol
table, interprocedural effect summaries — and so can see a kernel in
one module calling a state-mutating helper in another.

Both kinds self-register at import time via the :func:`register`
decorator and share the id namespace; ``repro.lint.rules`` imports
every rule module so that :func:`all_rules` is complete after
``import repro.lint``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator

from repro.lint.findings import Finding, Severity

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.context import FileContext
    from repro.lint.project import ProjectContext

__all__ = [
    "Rule",
    "ProjectRule",
    "register",
    "all_rules",
    "file_rules",
    "project_rules",
    "get_rule",
]


class Rule:
    """Base class for AST checks.  Subclasses set the class attributes."""

    id: str = ""
    severity: Severity = Severity.ERROR
    summary: str = ""

    def check(self, ctx: "FileContext") -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: "FileContext", node, message: str) -> Finding:
        """Build a Finding for an AST node (1-based line, 0-based col)."""
        return Finding(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.id,
            message=message,
            severity=self.severity,
        )


class ProjectRule(Rule):
    """Base class for whole-program checks over a ProjectContext.

    Subclasses implement :meth:`check_project`; the per-file
    :meth:`check` is a no-op so a project rule passed to
    ``lint_source`` is silently inert rather than an error.
    """

    def check(self, ctx: "FileContext") -> Iterator[Finding]:
        return iter(())

    def check_project(self, project: "ProjectContext") -> Iterator[Finding]:
        raise NotImplementedError

    def finding_at(
        self, path: str, line: int, col: int, message: str
    ) -> Finding:
        return Finding(
            path=path,
            line=line,
            col=col,
            rule=self.id,
            message=message,
            severity=self.severity,
        )


_REGISTRY: dict[str, Rule] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator: instantiate and register a rule by its id."""
    if not cls.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if cls.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.id}")
    _REGISTRY[cls.id] = cls()
    return cls


def all_rules() -> list[Rule]:
    """Every registered rule (file and project), sorted by id."""
    # Importing the rules package populates the registry on first use.
    import repro.lint.rules  # noqa: F401 (import for side effect)

    return [_REGISTRY[rid] for rid in sorted(_REGISTRY)]


def file_rules() -> list[Rule]:
    """Registered per-file rules, sorted by id."""
    return [r for r in all_rules() if not isinstance(r, ProjectRule)]


def project_rules() -> list[ProjectRule]:
    """Registered whole-program rules, sorted by id."""
    return [r for r in all_rules() if isinstance(r, ProjectRule)]


def get_rule(rule_id: str) -> Rule:
    import repro.lint.rules  # noqa: F401 (import for side effect)

    return _REGISTRY[rule_id]


def select_rules(ids: Iterable[str] | None = None) -> list[Rule]:
    """Rules restricted to ``ids`` (all rules when ``ids`` is None)."""
    rules = all_rules()
    if ids is None:
        return rules
    wanted = set(ids)
    unknown = wanted - {r.id for r in rules}
    if unknown:
        raise KeyError(f"unknown rule ids: {sorted(unknown)}")
    return [r for r in rules if r.id in wanted]
