"""Rule base class and the global rule registry.

A rule is a small object with an ``id``, a default ``severity``, a
one-line ``summary``, and a ``check(ctx)`` generator yielding
:class:`~repro.lint.findings.Finding` objects for one parsed file.
Rules self-register at import time via the :func:`register` decorator;
``repro.lint.rules`` imports every rule module so that
:func:`all_rules` is complete after ``import repro.lint``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator

from repro.lint.findings import Finding, Severity

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.context import FileContext

__all__ = ["Rule", "register", "all_rules", "get_rule"]


class Rule:
    """Base class for AST checks.  Subclasses set the class attributes."""

    id: str = ""
    severity: Severity = Severity.ERROR
    summary: str = ""

    def check(self, ctx: "FileContext") -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: "FileContext", node, message: str) -> Finding:
        """Build a Finding for an AST node (1-based line, 0-based col)."""
        return Finding(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.id,
            message=message,
            severity=self.severity,
        )


_REGISTRY: dict[str, Rule] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator: instantiate and register a rule by its id."""
    if not cls.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if cls.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.id}")
    _REGISTRY[cls.id] = cls()
    return cls


def all_rules() -> list[Rule]:
    """Every registered rule, sorted by id."""
    # Importing the rules package populates the registry on first use.
    import repro.lint.rules  # noqa: F401 (import for side effect)

    return [_REGISTRY[rid] for rid in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    import repro.lint.rules  # noqa: F401 (import for side effect)

    return _REGISTRY[rule_id]


def select_rules(ids: Iterable[str] | None = None) -> list[Rule]:
    """Rules restricted to ``ids`` (all rules when ``ids`` is None)."""
    rules = all_rules()
    if ids is None:
        return rules
    wanted = set(ids)
    unknown = wanted - {r.id for r in rules}
    if unknown:
        raise KeyError(f"unknown rule ids: {sorted(unknown)}")
    return [r for r in rules if r.id in wanted]
