"""Intraprocedural control-flow graphs over function bodies.

The protocol analysis (:mod:`repro.lint.protocol`) needs more than the
guard-stack walk the per-file MPI rules use: a send inside a loop body
executes once *per iteration*, an early ``return`` under ``if rank ==
0`` removes every later event from that role's protocol, and a
``break`` cuts a loop short for one role only.  This module lowers one
``ast.FunctionDef`` body to a small CFG that makes those paths
explicit:

- a :class:`BasicBlock` holds straight-line *units* (statements and,
  for ``with`` items, their context expressions — so ``with
  comm.timed():`` bodies stay on the fall-through path);
- an ``If`` ends its block with a :class:`BranchInfo` (two successor
  blocks plus the test expression);
- ``While``/``For`` become a header block carrying a
  :class:`LoopInfo` (body entry, loop exit, iterable/test), with the
  back edge expressed as the body tail's fall-through successor;
- ``return``/``raise`` terminate their block (edge to the synthetic
  exit); ``break``/``continue`` connect to the innermost loop's exit
  or header.

``try`` blocks are lowered optimistically: the protected body and the
``finally`` suite stay on the main path, while handler suites hang off
the graph as alternative successors (``alt_succs``) that the abstract
interpreter does not execute — the protocol pass assumes exceptions
abort the whole SPMD job rather than rerouting communication, matching
how :class:`~repro.mpi.cluster.SimCluster` re-raises rank failures.

Statements after a ``return``/``raise``/``break``/``continue`` in the
same suite are dead code and are not placed in any block.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

__all__ = ["BasicBlock", "BranchInfo", "LoopInfo", "CFG", "build_cfg"]


@dataclass
class BranchInfo:
    """An ``if`` at the end of a block: test plus the two successors."""

    test: ast.expr
    node: ast.If
    true: int
    false: int


@dataclass
class LoopInfo:
    """A loop header: where the body enters and where the loop exits."""

    kind: str  # "for" | "while"
    node: ast.For | ast.While
    #: loop target expression (For) — a Name for simple loops.
    target: ast.expr | None
    #: iterable expression (For) / test expression (While).
    iter: ast.expr | None
    test: ast.expr | None
    body: int
    exit: int


@dataclass
class BasicBlock:
    """Straight-line units plus exactly one way control leaves."""

    idx: int
    units: list[ast.AST] = field(default_factory=list)
    #: two-way branch (mutually exclusive with loop/succ/terminal).
    branch: BranchInfo | None = None
    #: loop header info (successors are loop.body / loop.exit).
    loop: LoopInfo | None = None
    #: unconditional fall-through successor.
    succ: int | None = None
    #: control leaves the function after the units (return/raise/exit).
    terminal: bool = False
    #: optimistically-unexecuted successors (exception handler entries).
    alt_succs: list[int] = field(default_factory=list)


@dataclass
class CFG:
    """One function body as basic blocks; ``blocks[exit]`` is empty."""

    name: str
    blocks: list[BasicBlock]
    entry: int
    exit: int

    def block(self, idx: int) -> BasicBlock:
        return self.blocks[idx]


class _Builder:
    def __init__(self) -> None:
        self.blocks: list[BasicBlock] = []

    def new_block(self) -> BasicBlock:
        b = BasicBlock(idx=len(self.blocks))
        self.blocks.append(b)
        return b

    def build(self, func: ast.FunctionDef | ast.AsyncFunctionDef) -> CFG:
        entry = self.new_block()
        exit_b = self.new_block()
        self.exit = exit_b.idx
        end = self._suite(func.body, entry, loops=[])
        if end is not None:
            end.succ = self.exit
        return CFG(
            name=func.name, blocks=self.blocks, entry=entry.idx, exit=self.exit
        )

    # -- suites --------------------------------------------------------

    def _suite(
        self,
        stmts: list[ast.stmt],
        cur: BasicBlock,
        loops: list[tuple[int, int]],  # (header idx, exit idx) innermost last
    ) -> BasicBlock | None:
        """Lower a statement suite; returns the open tail block or None
        when every path already left the suite (dead tail dropped)."""
        for i, stmt in enumerate(stmts):
            if isinstance(stmt, (ast.Return, ast.Raise)):
                cur.units.append(stmt)
                cur.terminal = True
                cur.succ = self.exit
                return None
            if isinstance(stmt, ast.Break):
                cur.succ = loops[-1][1] if loops else self.exit
                return None
            if isinstance(stmt, ast.Continue):
                cur.succ = loops[-1][0] if loops else self.exit
                return None
            if isinstance(stmt, ast.If):
                cur = self._if(stmt, cur, loops)
                if cur is None:
                    return None
            elif isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
                cur = self._loop(stmt, cur, loops)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    cur.units.append(item.context_expr)
                tail = self._suite(stmt.body, cur, loops)
                if tail is None:
                    return None
                cur = tail
            elif isinstance(stmt, ast.Try):
                cur = self._try(stmt, cur, loops)
                if cur is None:
                    return None
            else:
                # Simple statement (incl. nested defs, which the
                # protocol pass treats as opaque values).
                cur.units.append(stmt)
        return cur

    def _if(
        self, stmt: ast.If, cur: BasicBlock, loops
    ) -> BasicBlock | None:
        then_entry = self.new_block()
        then_tail = self._suite(stmt.body, then_entry, loops)
        if stmt.orelse:
            else_entry = self.new_block()
            else_tail = self._suite(stmt.orelse, else_entry, loops)
        else:
            else_entry = else_tail = None
        join = self.new_block()
        cur.branch = BranchInfo(
            test=stmt.test,
            node=stmt,
            true=then_entry.idx,
            false=else_entry.idx if else_entry is not None else join.idx,
        )
        open_tails = 0
        if then_tail is not None:
            then_tail.succ = join.idx
            open_tails += 1
        if else_entry is None:
            open_tails += 1  # the false edge targets the join directly
        elif else_tail is not None:
            else_tail.succ = join.idx
            open_tails += 1
        return join if open_tails else None

    def _loop(self, stmt, cur: BasicBlock, loops) -> BasicBlock:
        header = self.new_block()
        cur.succ = header.idx
        body_entry = self.new_block()
        after = self.new_block()
        if isinstance(stmt, ast.While):
            info = LoopInfo(
                kind="while", node=stmt, target=None, iter=None,
                test=stmt.test, body=body_entry.idx, exit=after.idx,
            )
        else:
            info = LoopInfo(
                kind="for", node=stmt, target=stmt.target, iter=stmt.iter,
                test=None, body=body_entry.idx, exit=after.idx,
            )
        header.loop = info
        tail = self._suite(stmt.body, body_entry, loops + [(header.idx, after.idx)])
        if tail is not None:
            tail.succ = header.idx  # back edge
        if stmt.orelse:
            # the else suite runs on normal loop exit: splice it
            # between the header's exit edge and the after block.
            else_entry = self.new_block()
            info.exit = else_entry.idx
            else_tail = self._suite(stmt.orelse, else_entry, loops)
            if else_tail is not None:
                else_tail.succ = after.idx
        return after

    def _try(self, stmt: ast.Try, cur: BasicBlock, loops) -> BasicBlock | None:
        # Optimistic lowering: body -> orelse -> finally on the main
        # path; handlers are alternative entries the interpreter skips.
        for handler in stmt.handlers:
            h_entry = self.new_block()
            cur.alt_succs.append(h_entry.idx)
            h_tail = self._suite(handler.body, h_entry, loops)
            if h_tail is not None:
                h_tail.terminal = True
                h_tail.succ = self.exit
        tail = self._suite(stmt.body, cur, loops)
        if tail is not None and stmt.orelse:
            tail = self._suite(stmt.orelse, tail, loops)
        if tail is not None and stmt.finalbody:
            tail = self._suite(stmt.finalbody, tail, loops)
        return tail


def build_cfg(func: ast.FunctionDef | ast.AsyncFunctionDef) -> CFG:
    """Lower one function body to a :class:`CFG`."""
    return _Builder().build(func)
