"""Flow-sensitive communication-protocol analysis (MPI004–MPI007).

Builds, for every *root* communicator-taking function in the linted
tree (one nobody else calls with a communicator — the SPMD entry
points :class:`~repro.mpi.cluster.SimCluster` launches), the ordered
sequence of communication events each rank executes: its **protocol**.

The pipeline:

1. :mod:`repro.lint.cfg` lowers each function body to a control-flow
   graph (branches, loops, early returns, ``with comm.timed()``).
2. A concrete abstract interpreter executes the CFG once per rank of a
   small model cluster, evaluating rank/size arithmetic (``rank + 1``,
   ``(rank - 1) % comm.size``, ``comm.size - 1``, constants folded
   through local assignments), expanding ``range(comm.size)``-style
   loops, following rank-deterministic branches, and splicing callee
   protocols through the project call graph whenever the communicator
   is passed on.  ``sendrecv`` contributes a send *and* a recv event.
3. The resulting per-rank event lists are run through a protocol
   simulator with eager sends and blocking receives/collectives.  The
   terminal state classifies the findings: leftover sends and
   never-satisfiable receives (MPI004), cyclic waits between roles
   (MPI005), ranks parked at mismatched collectives (MPI006), and
   matched send/recv pairs whose payload type cannot support the
   receiver's downstream use (MPI007).

The analysis is *optimistic*: anything it cannot model — a branch on
runtime data that communicates on both sides, a peer expression it
cannot evaluate, a loop over rank-local data that sends — marks that
driver **imprecise** and exempts it from the matching rules (the
runtime sanitizer remains the dynamic backstop).  Imprecision never
silently hides a diagnosable collective hazard: the static
MPI006 scan (rank-guarded calls that transitively reach a collective,
collectives under loops whose trip count derives from rank-local
data) runs on the AST regardless.
"""

from __future__ import annotations

import ast
import time
from collections import deque
from dataclasses import dataclass, field

from repro.lint.cfg import CFG, BasicBlock, build_cfg
from repro.lint.context import (
    COLLECTIVE_METHODS,
    dotted_name,
    is_rank_dependent,
)
from repro.lint.project import FunctionInfo, ProjectContext

__all__ = [
    "CommEvent",
    "RootProtocol",
    "SimOutcome",
    "ProtocolAnalysis",
    "analyze_protocols",
    "format_protocol",
]

#: default model-cluster size; grown past any literal rank mentioned.
DEFAULT_MODEL_SIZE = 4
_MAX_MODEL_SIZE = 9
_MAX_RANGE = 128
_STEP_BUDGET = 50_000
_CALL_DEPTH = 12

_SEND_OPS = frozenset({"send", "isend"})
_RECV_OPS = frozenset({"recv", "irecv"})
#: positional index of the root argument of rooted collectives.
_ROOTED_COLLECTIVES = {"bcast": 1, "gather": 1, "scatter": 1, "reduce": 2}
#: communicator methods that are not communication.
_NEUTRAL_COMM_METHODS = frozenset(
    {"timed", "advance", "get_rank", "get_size", "Get_rank", "Get_size"}
)

#: payload types a downstream use requires (MPI007); uses outside this
#: table are never flagged.
_USE_SUPPORTED: dict[str, frozenset[str]] = {
    "append": frozenset({"list"}),
    "extend": frozenset({"list"}),
    "insert": frozenset({"list"}),
    "sort": frozenset({"list"}),
    "reverse": frozenset({"list"}),
    "keys": frozenset({"dict"}),
    "values": frozenset({"dict"}),
    "items": frozenset({"dict"}),
    "get": frozenset({"dict"}),
    "setdefault": frozenset({"dict"}),
    "update": frozenset({"dict", "set"}),
    "add": frozenset({"set"}),
    "discard": frozenset({"set"}),
    "astype": frozenset({"ndarray"}),
    "reshape": frozenset({"ndarray"}),
    "ravel": frozenset({"ndarray"}),
    "tolist": frozenset({"ndarray"}),
    "shape": frozenset({"ndarray"}),
    "dtype": frozenset({"ndarray"}),
    "split": frozenset({"str", "bytes"}),
    "strip": frozenset({"str", "bytes"}),
    "encode": frozenset({"str"}),
    "decode": frozenset({"bytes"}),
    "__iter__": frozenset({"list", "dict", "tuple", "set", "ndarray", "str", "bytes"}),
    "__len__": frozenset({"list", "dict", "tuple", "set", "ndarray", "str", "bytes"}),
    "__getitem__": frozenset({"list", "dict", "tuple", "ndarray", "str", "bytes"}),
    "__setitem__": frozenset({"list", "dict", "ndarray"}),
}

_NDARRAY_CONSTRUCTORS = frozenset(
    {"array", "asarray", "zeros", "ones", "empty", "full", "arange",
     "concatenate", "unique", "copy", "frombuffer", "linspace"}
)


@dataclass(frozen=True)
class CommEvent:
    """One concrete communication step of one rank."""

    kind: str  # "send" | "recv" | "coll"
    op: str  # method name as written (isend, sendrecv, bcast, ...)
    rank: int
    #: dest (send) / source (recv) / root (rooted collective) / None.
    peer: int | None
    tag: int
    path: str
    lineno: int
    fq: str
    #: call chain from the root driver down to the owning function.
    via: tuple[str, ...] = ()
    #: inferred payload type for sends ("list", "ndarray", "none", ...).
    payload: str | None = None
    #: downstream uses of the received object (method names, dunders).
    uses: frozenset[str] = frozenset()

    def describe(self) -> str:
        if self.kind == "send":
            return f"{self.op}(dest={self.peer}, tag={self.tag})"
        if self.kind == "recv":
            return f"{self.op}(source={self.peer}, tag={self.tag})"
        if self.peer is None:
            return f"{self.op}()"
        return f"{self.op}(root={self.peer})"

    def site(self) -> str:
        return f"{self.path}:{self.lineno}"


class _Imprecise(Exception):
    """The driver's protocol cannot be modelled statically."""

    def __init__(self, reason: str, lineno: int | None = None) -> None:
        super().__init__(reason)
        self.reason = reason
        self.lineno = lineno


@dataclass
class RootProtocol:
    """Per-rank protocols of one root driver at the model size."""

    fq: str
    path: str
    lineno: int
    size: int
    #: events per rank (len == size); empty when imprecise.
    ranks: list[list[CommEvent]] = field(default_factory=list)
    imprecise: str | None = None

    def role_groups(self) -> list[tuple[list[int], list[CommEvent]]]:
        """Ranks grouped into roles by identical event shapes."""
        groups: list[tuple[list[int], list[CommEvent]]] = []
        for rank, events in enumerate(self.ranks):
            sig = [(e.kind, e.op, e.path, e.lineno, e.tag) for e in events]
            for ranks_in, rep in groups:
                rep_sig = [(e.kind, e.op, e.path, e.lineno, e.tag) for e in rep]
                if rep_sig == sig:
                    ranks_in.append(rank)
                    break
            else:
                groups.append(([rank], events))
        return groups


@dataclass
class SimOutcome:
    """Terminal state of one protocol simulation."""

    #: events completed per rank.
    completed: list[int]
    #: (send event, recv event) pairs that matched.
    matched: list[tuple[CommEvent, CommEvent]]
    #: sends that were never received (clean-termination leftovers).
    unreceived: list[CommEvent]
    #: rank -> blocking event at the stuck state.
    blocked: dict[int, CommEvent]
    #: rank cycles (each a list of ranks) that wait on one another.
    cycles: list[list[int]]
    #: blocked receives whose matching send never materializes.
    unmatched_recvs: list[CommEvent]
    #: True when the stuck state involves mismatched collectives.
    collective_divergence: bool

    @property
    def deadlocked(self) -> bool:
        return bool(self.blocked)


# -- expression evaluation ---------------------------------------------------


class _Frame:
    """One function activation of the per-rank interpreter."""

    def __init__(self, info: FunctionInfo, comm: str, cfg: CFG) -> None:
        self.info = info
        self.comm = comm
        self.cfg = cfg
        self.env: dict[str, int] = {}
        self.types: dict[str, str] = {}
        self.tainted: set[str] = set()


def _is_comm_name(node: ast.expr, comm: str) -> bool:
    return isinstance(node, ast.Name) and node.id == comm


def _iter_own(node: ast.AST):
    """Walk a subtree without entering *nested* function definitions.

    The root is always expanded — passing a function's own def walks
    that function's body, not an empty sequence.
    """
    yield node
    stack = list(ast.iter_child_nodes(node))
    while stack:
        cur = stack.pop()
        yield cur
        if not isinstance(
            cur, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            stack.extend(ast.iter_child_nodes(cur))


def _comm_relevant(node: ast.AST, comm: str) -> bool:
    """True when the subtree communicates or passes the comm onward."""
    for sub in _iter_own(node):
        if not isinstance(sub, ast.Call):
            continue
        f = sub.func
        if (
            isinstance(f, ast.Attribute)
            and _is_comm_name(f.value, comm)
            and f.attr not in _NEUTRAL_COMM_METHODS
        ):
            return True
        if any(_is_comm_name(a, comm) for a in sub.args) or any(
            _is_comm_name(k.value, comm) for k in sub.keywords
        ):
            return True
    return False


def _has_control_flow(stmts: list[ast.stmt]) -> bool:
    for stmt in stmts:
        for sub in _iter_own(stmt):
            if isinstance(sub, (ast.Return, ast.Break, ast.Continue, ast.Raise)):
                return True
    return False


def _arm_raises(stmts: list[ast.stmt]) -> bool:
    """The suite is an error arm: it raises at its own top level."""
    return any(isinstance(s, ast.Raise) for s in stmts)


def _rank_tainted(expr: ast.expr, comm: str, tainted: set[str]) -> bool:
    return is_rank_dependent(expr, comm, tainted)


class _Evaluator:
    """Concrete evaluation of rank/size arithmetic for one rank."""

    def __init__(self, rank: int, size: int) -> None:
        self.rank = rank
        self.size = size

    def eval(self, expr: ast.expr, frame: _Frame) -> int | None:
        v = self._eval(expr, frame)
        if isinstance(v, bool):
            return int(v)
        return v if isinstance(v, int) else None

    def eval_bool(self, expr: ast.expr, frame: _Frame) -> bool | None:
        v = self._eval(expr, frame)
        return bool(v) if isinstance(v, (int, bool)) else None

    def _eval(self, expr: ast.expr, frame: _Frame):
        if isinstance(expr, ast.Constant):
            if isinstance(expr.value, bool) or type(expr.value) is int:
                return expr.value
            return None
        if isinstance(expr, ast.Name):
            return frame.env.get(expr.id)
        if isinstance(expr, ast.Attribute) and _is_comm_name(expr.value, frame.comm):
            if expr.attr == "rank":
                return self.rank
            if expr.attr == "size":
                return self.size
            return None
        if isinstance(expr, ast.Call):
            f = expr.func
            if isinstance(f, ast.Attribute) and _is_comm_name(f.value, frame.comm):
                if f.attr in ("get_rank", "Get_rank"):
                    return self.rank
                if f.attr in ("get_size", "Get_size"):
                    return self.size
                return None
            if isinstance(f, ast.Name) and f.id == "int" and len(expr.args) == 1:
                return self._eval(expr.args[0], frame)
            return None
        if isinstance(expr, ast.UnaryOp):
            v = self._eval(expr.operand, frame)
            if v is None:
                return None
            if isinstance(expr.op, ast.USub):
                return -v
            if isinstance(expr.op, ast.Not):
                return not v
            return None
        if isinstance(expr, ast.BinOp):
            lhs = self._eval(expr.left, frame)
            rhs = self._eval(expr.right, frame)
            if lhs is None or rhs is None:
                return None
            try:
                if isinstance(expr.op, ast.Add):
                    return lhs + rhs
                if isinstance(expr.op, ast.Sub):
                    return lhs - rhs
                if isinstance(expr.op, ast.Mult):
                    return lhs * rhs
                if isinstance(expr.op, ast.FloorDiv):
                    return lhs // rhs
                if isinstance(expr.op, ast.Mod):
                    return lhs % rhs
                if isinstance(expr.op, ast.Pow):
                    return lhs ** rhs
                if isinstance(expr.op, ast.BitXor):
                    return lhs ^ rhs
            except (ZeroDivisionError, ValueError, OverflowError):
                return None
            return None
        if isinstance(expr, ast.Compare):
            left = self._eval(expr.left, frame)
            if left is None:
                return None
            for op, comparator in zip(expr.ops, expr.comparators):
                right = self._eval(comparator, frame)
                if right is None:
                    return None
                ok = self._compare(op, left, right)
                if ok is None or not ok:
                    return ok
                left = right
            return True
        if isinstance(expr, ast.BoolOp):
            is_and = isinstance(expr.op, ast.And)
            for operand in expr.values:
                v = self.eval_bool(operand, frame)
                if v is None:
                    return None
                if is_and and not v:
                    return False
                if not is_and and v:
                    return True
            return is_and
        return None

    @staticmethod
    def _compare(op: ast.cmpop, lhs: int, rhs: int) -> bool | None:
        if isinstance(op, ast.Eq):
            return lhs == rhs
        if isinstance(op, ast.NotEq):
            return lhs != rhs
        if isinstance(op, ast.Lt):
            return lhs < rhs
        if isinstance(op, ast.LtE):
            return lhs <= rhs
        if isinstance(op, ast.Gt):
            return lhs > rhs
        if isinstance(op, ast.GtE):
            return lhs >= rhs
        return None


# -- payload typing / downstream uses ---------------------------------------


def _infer_type(expr: ast.expr, frame: _Frame) -> str | None:
    if isinstance(expr, ast.Constant):
        v = expr.value
        if v is None:
            return "none"
        if isinstance(v, bool):
            return "bool"
        if isinstance(v, int):
            return "int"
        if isinstance(v, float):
            return "float"
        if isinstance(v, str):
            return "str"
        if isinstance(v, bytes):
            return "bytes"
        return None
    if isinstance(expr, (ast.List, ast.ListComp)):
        return "list"
    if isinstance(expr, (ast.Dict, ast.DictComp)):
        return "dict"
    if isinstance(expr, ast.Tuple):
        return "tuple"
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return "set"
    if isinstance(expr, ast.Name):
        return frame.types.get(expr.id)
    if isinstance(expr, ast.Call):
        text = dotted_name(expr.func)
        if text is None:
            return None
        tail = text.rsplit(".", 1)[-1]
        if tail in ("list", "sorted"):
            return "list"
        if tail == "dict":
            return "dict"
        if tail == "set":
            return "set"
        if tail == "tuple":
            return "tuple"
        if tail == "len":
            return "int"
        if "." in text and tail in _NDARRAY_CONSTRUCTORS:
            return "ndarray"
        return None
    return None


def _uses_after(func_node: ast.AST, name: str, lineno: int) -> frozenset[str]:
    """Downstream uses of ``name`` after ``lineno`` in one function."""
    uses: set[str] = set()
    for node in _iter_own(func_node):
        nl = getattr(node, "lineno", 0)
        if nl <= lineno:
            continue
        if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
            if node.value.id == name:
                uses.add(node.attr)
        elif isinstance(node, ast.Subscript) and isinstance(node.value, ast.Name):
            if node.value.id == name:
                uses.add(
                    "__setitem__"
                    if isinstance(node.ctx, (ast.Store, ast.Del))
                    else "__getitem__"
                )
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            if isinstance(node.iter, ast.Name) and node.iter.id == name:
                uses.add("__iter__")
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id == "len" and any(
                isinstance(a, ast.Name) and a.id == name for a in node.args
            ):
                uses.add("__len__")
    return frozenset(uses)


# -- the per-rank interpreter ------------------------------------------------

_EXIT = -1


class _RankExecutor:
    """Executes one root driver's CFG for one concrete rank."""

    def __init__(self, analysis: "ProtocolAnalysis", rank: int, size: int) -> None:
        self.analysis = analysis
        self.ev = _Evaluator(rank, size)
        self.rank = rank
        self.size = size
        self.events: list[CommEvent] = []
        self.steps = 0
        self.chain: tuple[str, ...] = ()
        self.active: set[str] = set()

    # -- entry ---------------------------------------------------------

    def run(self, info: FunctionInfo) -> list[CommEvent]:
        self._run_function(info)
        return self.events

    def _run_function(self, info: FunctionInfo) -> None:
        if info.fq in self.active:
            raise _Imprecise(
                f"recursive communicator call through `{info.name}`",
                info.lineno,
            )
        if len(self.active) >= _CALL_DEPTH:
            raise _Imprecise("communicator call depth exceeded", info.lineno)
        comm = info.comm_param
        if comm is None or info.node is None:
            raise _Imprecise(
                f"`{info.name}` receives the communicator but has no "
                "recognizable comm parameter",
                info.lineno,
            )
        frame = _Frame(info, comm, self.analysis.cfg_for(info))
        self.active.add(info.fq)
        prev_chain = self.chain
        self.chain = prev_chain + (info.fq,)
        try:
            self._run_blocks(frame, frame.cfg.entry, frozenset())
        finally:
            self.chain = prev_chain
            self.active.discard(info.fq)

    # -- block walk ----------------------------------------------------

    def _run_blocks(self, frame: _Frame, block: int, stops: frozenset[int]) -> int:
        while True:
            if block in stops:
                return block
            if block == frame.cfg.exit:
                return _EXIT
            self.steps += 1
            if self.steps > _STEP_BUDGET:
                raise _Imprecise("protocol analysis budget exceeded")
            b = frame.cfg.blocks[block]
            for unit in b.units:
                self._unit(unit, frame)
            if b.terminal:
                return _EXIT
            if b.branch is not None:
                block = self._choose(b.branch, frame)
            elif b.loop is not None:
                res = self._loop(b, frame)
                if res == _EXIT:
                    return _EXIT
                block = res
            elif b.succ is not None:
                block = b.succ
            else:
                return _EXIT

    def _choose(self, branch, frame: _Frame) -> int:
        t = self.ev.eval_bool(branch.test, frame)
        if t is not None:
            return branch.true if t else branch.false
        node = branch.node
        if _arm_raises(node.body) and not _comm_relevant(node, frame.comm):
            return branch.false
        if node.orelse and _arm_raises(node.orelse) and not _comm_relevant(
            node, frame.comm
        ):
            return branch.true
        arms_quiet = not _comm_relevant(node, frame.comm) and not _has_control_flow(
            node.body
        ) and not _has_control_flow(node.orelse)
        if arms_quiet:
            return branch.false
        kind = (
            "rank-dependent"
            if _rank_tainted(branch.test, frame.comm, frame.tainted)
            else "data-dependent"
        )
        raise _Imprecise(
            f"{kind} branch at line {node.lineno} guards communication and "
            "cannot be resolved statically",
            node.lineno,
        )

    # -- loops ---------------------------------------------------------

    def _loop(self, header: BasicBlock, frame: _Frame) -> int:
        info = header.loop
        stops = frozenset({header.idx, info.exit})
        if info.kind == "while":
            return self._while_loop(header, frame, stops)
        plan = self._iter_plan(info, frame)
        if plan == "skip":
            return info.exit
        for value in plan:
            self._bind_target(info.target, value, frame)
            res = self._run_blocks(frame, info.body, stops)
            if res == _EXIT:
                return _EXIT
            if res == info.exit:
                return info.exit  # break
        return info.exit

    def _while_loop(self, header: BasicBlock, frame: _Frame, stops) -> int:
        info = header.loop
        cap = 4 * self.size + 16
        iterations = 0
        while True:
            t = self.ev.eval_bool(info.test, frame)
            if t is None:
                if _rank_tainted(info.test, frame.comm, frame.tainted):
                    if _comm_relevant(info.node, frame.comm):
                        raise _Imprecise(
                            f"loop at line {info.node.lineno} has a "
                            "rank-dependent condition and communicates",
                            info.node.lineno,
                        )
                    return info.exit
                if iterations:
                    return info.exit
                # Unknown but rank-symmetric condition: model one pass.
                res = self._run_blocks(frame, info.body, stops)
                if res == _EXIT:
                    return _EXIT
                return info.exit
            if not t:
                return info.exit
            iterations += 1
            if iterations > cap:
                raise _Imprecise(
                    f"loop at line {info.node.lineno} does not terminate "
                    "within the model bound",
                    info.node.lineno,
                )
            res = self._run_blocks(frame, info.body, stops)
            if res == _EXIT:
                return _EXIT
            if res == info.exit:
                return info.exit

    def _iter_plan(self, info, frame: _Frame):
        """Concrete values for a for-loop, [None] for one opaque pass,
        or "skip" for a communication-free loop we need not model."""
        it = info.iter
        if (
            isinstance(it, ast.Call)
            and isinstance(it.func, ast.Name)
            and it.func.id == "range"
            and 1 <= len(it.args) <= 3
            and not it.keywords
        ):
            vals = [self.ev.eval(a, frame) for a in it.args]
            if all(v is not None for v in vals):
                rng = range(*vals)
                if len(rng) > _MAX_RANGE:
                    raise _Imprecise(
                        f"loop at line {info.node.lineno} spans "
                        f"{len(rng)} iterations — beyond the model bound",
                        info.node.lineno,
                    )
                return list(rng)
        if _rank_tainted(it, frame.comm, frame.tainted):
            if _comm_relevant(info.node, frame.comm):
                raise _Imprecise(
                    f"loop at line {info.node.lineno} iterates over "
                    "rank-local data and communicates",
                    info.node.lineno,
                )
            return "skip"
        if not _comm_relevant(info.node, frame.comm):
            return "skip"
        # Rank-symmetric iterable of unknown length: model one pass
        # (every rank agrees on the trip count, so matching holds).
        return [None]

    def _bind_target(self, target, value, frame: _Frame) -> None:
        if isinstance(target, ast.Name):
            if value is None:
                frame.env.pop(target.id, None)
            else:
                frame.env[target.id] = value
            frame.types.pop(target.id, None)
            frame.tainted.discard(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind_target(elt, None, frame)

    # -- units ---------------------------------------------------------

    def _unit(self, unit: ast.AST, frame: _Frame) -> None:
        recv_binding: dict[int, str] = {}
        if isinstance(unit, ast.Assign) and len(unit.targets) == 1:
            target = unit.targets[0]
            if isinstance(target, ast.Name) and isinstance(unit.value, ast.Call):
                recv_binding[id(unit.value)] = target.id
        comp_calls = {
            id(n)
            for comp in _iter_own(unit)
            if isinstance(
                comp, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            )
            for n in ast.walk(comp)
            if isinstance(n, ast.Call)
        }
        calls = sorted(
            (n for n in _iter_own(unit) if isinstance(n, ast.Call)),
            key=lambda n: (n.lineno, n.col_offset),
        )
        for call in calls:
            if id(call) in comp_calls and self._touches_comm(call, frame):
                # A comprehension's trip count is runtime data: the
                # number of communication events it contributes cannot
                # be counted statically.
                raise _Imprecise(
                    f"communication inside a comprehension at line "
                    f"{call.lineno} cannot be counted statically",
                    call.lineno,
                )
            self._call(call, frame, recv_binding.get(id(call)))
        if isinstance(unit, ast.Assign):
            for target in unit.targets:
                self._assign(target, unit.value, frame)
        elif isinstance(unit, ast.AnnAssign) and unit.value is not None:
            self._assign(unit.target, unit.value, frame)
        elif isinstance(unit, ast.AugAssign):
            if isinstance(unit.target, ast.Name):
                name = unit.target.id
                frame.env.pop(name, None)
                frame.types.pop(name, None)
                if _rank_tainted(unit.value, frame.comm, frame.tainted):
                    frame.tainted.add(name)

    def _assign(self, target: ast.expr, value: ast.expr, frame: _Frame) -> None:
        if not isinstance(target, ast.Name):
            if isinstance(target, (ast.Tuple, ast.List)):
                for elt in target.elts:
                    self._bind_target(elt, None, frame)
            return
        name = target.id
        v = self.ev.eval(value, frame)
        if v is None:
            frame.env.pop(name, None)
        else:
            frame.env[name] = v
        t = _infer_type(value, frame)
        if t is None:
            frame.types.pop(name, None)
        else:
            frame.types[name] = t
        if _rank_tainted(value, frame.comm, frame.tainted):
            frame.tainted.add(name)
        else:
            frame.tainted.discard(name)

    # -- communication calls -------------------------------------------

    @staticmethod
    def _touches_comm(call: ast.Call, frame: _Frame) -> bool:
        f = call.func
        if (
            isinstance(f, ast.Attribute)
            and _is_comm_name(f.value, frame.comm)
            and f.attr not in _NEUTRAL_COMM_METHODS
        ):
            return True
        return any(_is_comm_name(a, frame.comm) for a in call.args) or any(
            _is_comm_name(k.value, frame.comm) for k in call.keywords
        )

    def _call(self, call: ast.Call, frame: _Frame, bound_name: str | None) -> None:
        f = call.func
        if isinstance(f, ast.Attribute) and _is_comm_name(f.value, frame.comm):
            self._comm_op(call, f.attr, frame, bound_name)
            return
        # Passing the communicator on: splice the callee's protocol.
        passes_comm = any(_is_comm_name(a, frame.comm) for a in call.args) or any(
            _is_comm_name(k.value, frame.comm) for k in call.keywords
        )
        if not passes_comm:
            return
        text = dotted_name(f)
        callee = (
            self.analysis.project.resolve_call(frame.info, text)
            if text is not None
            else None
        )
        if callee is None:
            raise _Imprecise(
                f"communicator escapes into unresolvable call "
                f"`{text or '<dynamic>'}` at line {call.lineno}",
                call.lineno,
            )
        self._run_function(callee)

    def _arg(self, call: ast.Call, index: int, kwname: str) -> ast.expr | None:
        if len(call.args) > index:
            return call.args[index]
        for kw in call.keywords:
            if kw.arg == kwname:
                return kw.value
        return None

    def _peer_value(self, expr: ast.expr | None, frame: _Frame, what, call) -> int:
        if expr is None:
            raise _Imprecise(
                f"`{what}` missing at line {call.lineno}", call.lineno
            )
        v = self.ev.eval(expr, frame)
        if v is None:
            raise _Imprecise(
                f"{what} expression at line {call.lineno} cannot be "
                "evaluated statically",
                call.lineno,
            )
        if not 0 <= v < self.size:
            raise _Imprecise(
                f"{what} {v} at line {call.lineno} leaves [0, {self.size}) "
                "in the model cluster",
                call.lineno,
            )
        return v

    def _tag_value(self, call: ast.Call, index: int, frame: _Frame) -> int:
        expr = self._arg(call, index, "tag")
        if expr is None:
            return 0
        v = self.ev.eval(expr, frame)
        if v is None:
            raise _Imprecise(
                f"tag expression at line {call.lineno} cannot be evaluated "
                "statically",
                call.lineno,
            )
        return v

    def _emit(self, **kw) -> None:
        info = kw.pop("info")
        self.events.append(
            CommEvent(
                rank=self.rank,
                path=info.path,
                fq=info.fq,
                via=self.chain[:-1],
                **kw,
            )
        )

    def _comm_op(
        self, call: ast.Call, op: str, frame: _Frame, bound_name: str | None
    ) -> None:
        info = frame.info
        if op in _SEND_OPS:
            dest = self._peer_value(self._arg(call, 1, "dest"), frame, "dest", call)
            tag = self._tag_value(call, 2, frame)
            payload = _infer_type(call.args[0], frame) if call.args else None
            self._emit(
                kind="send", op=op, peer=dest, tag=tag,
                lineno=call.lineno, payload=payload, info=info,
            )
        elif op in _RECV_OPS:
            source = self._peer_value(
                self._arg(call, 0, "source"), frame, "source", call
            )
            tag = self._tag_value(call, 1, frame)
            uses = frozenset()
            if bound_name is not None and op == "recv" and info.node is not None:
                uses = _uses_after(info.node, bound_name, call.lineno)
            self._emit(
                kind="recv", op=op, peer=source, tag=tag,
                lineno=call.lineno, uses=uses, info=info,
            )
        elif op == "sendrecv":
            dest = self._peer_value(self._arg(call, 1, "dest"), frame, "dest", call)
            source = self._peer_value(
                self._arg(call, 2, "source"), frame, "source", call
            )
            tag = self._tag_value(call, 3, frame)
            payload = _infer_type(call.args[0], frame) if call.args else None
            uses = frozenset()
            if bound_name is not None and info.node is not None:
                uses = _uses_after(info.node, bound_name, call.lineno)
            self._emit(
                kind="send", op=op, peer=dest, tag=tag,
                lineno=call.lineno, payload=payload, info=info,
            )
            self._emit(
                kind="recv", op=op, peer=source, tag=tag,
                lineno=call.lineno, uses=uses, info=info,
            )
        elif op in COLLECTIVE_METHODS:
            root_pos = _ROOTED_COLLECTIVES.get(op)
            root = 0
            if root_pos is not None:
                expr = self._arg(call, root_pos, "root")
                if expr is not None:
                    root = self._peer_value(expr, frame, "root", call)
                peer = root
            else:
                peer = None
            self._emit(
                kind="coll", op=op, peer=peer, tag=0,
                lineno=call.lineno, info=info,
            )


# -- protocol simulation -----------------------------------------------------


def simulate(root: RootProtocol) -> SimOutcome:
    """Run the per-rank protocols against eager-send/blocking-recv
    semantics; the terminal state carries the diagnosis."""
    size = root.size
    events = root.ranks
    pos = [0] * size
    inflight: dict[tuple[int, int, int], deque[CommEvent]] = {}
    matched: list[tuple[CommEvent, CommEvent]] = []

    def step_rank(r: int) -> bool:
        moved = False
        while pos[r] < len(events[r]):
            ev = events[r][pos[r]]
            if ev.kind == "send":
                inflight.setdefault((r, ev.peer, ev.tag), deque()).append(ev)
                pos[r] += 1
                moved = True
            elif ev.kind == "recv":
                q = inflight.get((ev.peer, r, ev.tag))
                if not q:
                    break
                matched.append((q.popleft(), ev))
                pos[r] += 1
                moved = True
            else:
                break  # collective: needs everyone
        return moved

    while True:
        progress = False
        for r in range(size):
            progress |= step_rank(r)
        heads = [
            events[r][pos[r]] if pos[r] < len(events[r]) else None
            for r in range(size)
        ]
        if all(h is not None and h.kind == "coll" for h in heads):
            sigs = {(h.op, h.peer) for h in heads}
            if len(sigs) == 1:
                for r in range(size):
                    pos[r] += 1
                progress = True
        if not progress:
            break

    blocked = {
        r: events[r][pos[r]] for r in range(size) if pos[r] < len(events[r])
    }
    unreceived: list[CommEvent] = []
    cycles: list[list[int]] = []
    unmatched_recvs: list[CommEvent] = []
    divergence = any(ev.kind == "coll" for ev in blocked.values())

    if not blocked:
        for q in inflight.values():
            unreceived.extend(q)
    elif not divergence:
        # Every blocked rank is parked at a recv.
        def has_future_send(src: int, dst: int, tag: int) -> bool:
            return any(
                e.kind == "send" and e.peer == dst and e.tag == tag
                for e in events[src][pos[src]:]
            )

        waits = {
            r: ev.peer
            for r, ev in blocked.items()
            if ev.peer in blocked
            and has_future_send(ev.peer, r, ev.tag)
        }
        seen_cycles: set[frozenset[int]] = set()
        for start in sorted(waits):
            path: list[int] = []
            cur: int | None = start
            on_path: set[int] = set()
            while cur is not None and cur in waits and cur not in on_path:
                path.append(cur)
                on_path.add(cur)
                cur = waits.get(cur)
            if cur in on_path:
                cycle = path[path.index(cur):]
                key = frozenset(cycle)
                if key not in seen_cycles:
                    seen_cycles.add(key)
                    cycles.append(cycle)
        in_cycle = {r for c in cycles for r in c}
        for r, ev in sorted(blocked.items()):
            if r in in_cycle:
                continue
            if not has_future_send(ev.peer, r, ev.tag):
                unmatched_recvs.append(ev)

    return SimOutcome(
        completed=pos,
        matched=matched,
        unreceived=unreceived,
        blocked=blocked,
        cycles=cycles,
        unmatched_recvs=unmatched_recvs,
        collective_divergence=divergence,
    )


# -- whole-program analysis --------------------------------------------------


@dataclass
class StaticDivergence:
    """One statically-detected collective-divergence hazard (MPI006)."""

    path: str
    lineno: int
    col: int
    fq: str
    message: str


class ProtocolAnalysis:
    """Protocols, simulations, and static hazards of one project."""

    def __init__(self, project: ProjectContext, size: int | None = None) -> None:
        t0 = time.perf_counter()
        self.project = project
        self._cfgs: dict[str, CFG] = {}
        self.comm_functions = {
            fq: info
            for fq, info in project.functions.items()
            if info.comm_param is not None and info.node is not None
        }
        self._comm_edges = self._build_comm_edges()
        self.size = size if size is not None else self._model_size()
        self.launch_sizes = self._launch_sizes()
        self.roots: dict[str, RootProtocol] = {}
        self.outcomes: dict[str, SimOutcome] = {}
        for fq in sorted(self._root_fqs()):
            proto = self._build_protocol(self.comm_functions[fq])
            self.roots[fq] = proto
            if proto.imprecise is None and any(proto.ranks):
                self.outcomes[fq] = simulate(proto)
        self.static_divergences = self._static_divergence_scan()
        self.seconds = time.perf_counter() - t0

    # -- structure -----------------------------------------------------

    def cfg_for(self, info: FunctionInfo) -> CFG:
        cfg = self._cfgs.get(info.fq)
        if cfg is None:
            cfg = self._cfgs[info.fq] = build_cfg(info.node)
        return cfg

    def _build_comm_edges(self) -> dict[str, list[tuple[str, int]]]:
        """fq -> [(callee fq, call lineno)] for calls passing the comm."""
        edges: dict[str, list[tuple[str, int]]] = {}
        for fq, info in self.comm_functions.items():
            out: list[tuple[str, int]] = []
            comm = info.comm_param
            for cs in info.calls:
                passes = any(
                    ref.kind == "name" and ref.text == comm for ref in cs.pos
                ) or any(
                    ref.kind == "name" and ref.text == comm
                    for _, ref in cs.kw
                )
                if not passes:
                    continue
                callee = self.project.resolve_call(info, cs.callee)
                if callee is not None and callee.fq in self.comm_functions:
                    out.append((callee.fq, cs.lineno))
            edges[fq] = out
        return edges

    def _root_fqs(self) -> list[str]:
        called = {
            callee for edges in self._comm_edges.values() for callee, _ in edges
        }
        return [fq for fq in self.comm_functions if fq not in called]

    def _model_size(self) -> int:
        """Small cluster size covering every literal rank in the tree."""
        top = 0
        for info in self.comm_functions.values():
            comm = info.comm_param
            for node in _iter_own(info.node):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and _is_comm_name(node.func.value, comm)
                ):
                    continue
                for arg in (*node.args, *(k.value for k in node.keywords)):
                    if isinstance(arg, ast.Constant) and type(arg.value) is int:
                        if 0 <= arg.value < _MAX_MODEL_SIZE:
                            top = max(top, arg.value)
        return min(max(DEFAULT_MODEL_SIZE, top + 2), _MAX_MODEL_SIZE)

    def _launch_sizes(self) -> dict[str, list[int]]:
        """Explicit cluster sizes at launch sites, per rank function.

        Test and example code launches SPMD functions at fixed world
        sizes — ``SimCluster(2).run(fn)``, or through a local helper
        whose first argument is the size.  A rank function written for
        a two-rank exchange is *correct* at its launched size and must
        be modelled there, not at the repo-wide default.
        """
        sizes: dict[str, list[int]] = {}

        def literal_first_arg(call: ast.Call) -> int | None:
            if call.args and isinstance(call.args[0], ast.Constant):
                if type(call.args[0].value) is int:
                    return call.args[0].value
            return None

        for info in self.project.functions.values():
            if info.node is None:
                continue
            ctor: dict[str, int] = {}
            runs: list[ast.Call] = []
            for node in _iter_own(info.node):
                if (
                    isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and isinstance(node.value, ast.Call)
                ):
                    k = literal_first_arg(node.value)
                    if k is not None:
                        ctor[node.targets[0].id] = k
                elif (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "run"
                    and node.args
                ):
                    runs.append(node)
            for node in runs:
                text = dotted_name(node.args[0])
                if text is None:
                    continue
                callee = self.project.resolve_call(info, text)
                if callee is None or callee.fq not in self.comm_functions:
                    continue
                recv = node.func.value
                k: int | None = None
                if isinstance(recv, ast.Call):
                    k = literal_first_arg(recv)
                elif isinstance(recv, ast.Name):
                    k = ctor.get(recv.id)
                if k is not None and 1 <= k <= 16:
                    sizes.setdefault(callee.fq, []).append(k)
        return sizes

    def _size_for(self, fq: str) -> int:
        launched = self.launch_sizes.get(fq)
        # The largest launched size exercises every role the function
        # was written for; size-generic drivers must hold at all of
        # them, so simulating the maximum only removes false alarms
        # about roles that never exist.
        return max(launched) if launched else self.size

    # -- protocol construction -----------------------------------------

    def _build_protocol(self, info: FunctionInfo) -> RootProtocol:
        size = self._size_for(info.fq)
        proto = RootProtocol(
            fq=info.fq, path=info.path, lineno=info.lineno, size=size
        )
        for rank in range(size):
            executor = _RankExecutor(self, rank, size)
            try:
                proto.ranks.append(executor.run(info))
            except _Imprecise as exc:
                proto.ranks = []
                proto.imprecise = exc.reason
                break
        return proto

    def protocol_for(self, name: str) -> RootProtocol:
        """Protocol of any comm function matched by (qualified) name."""
        hits = [
            info
            for fq, info in sorted(self.comm_functions.items())
            if fq == name or fq.endswith("." + name) or info.name == name
        ]
        if not hits:
            known = ", ".join(sorted(self.comm_functions)) or "<none>"
            raise KeyError(
                f"no communicator-taking function matches {name!r} "
                f"(known: {known})"
            )
        if len(hits) > 1:
            raise KeyError(
                f"{name!r} is ambiguous: "
                + ", ".join(i.fq for i in hits)
            )
        info = hits[0]
        existing = self.roots.get(info.fq)
        if existing is not None:
            return existing
        return self._build_protocol(info)

    # -- static collective-divergence scan (MPI006) --------------------

    def _reaches_collective(self) -> dict[str, tuple[str, str, int, tuple[str, ...]]]:
        """fq -> (op, path, lineno, chain) for the first collective a
        comm function reaches, directly or through comm-passing calls."""
        out: dict[str, tuple[str, str, int, tuple[str, ...]]] = {}
        for fq, info in self.comm_functions.items():
            comm = info.comm_param
            for node in _iter_own(info.node):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and _is_comm_name(node.func.value, comm)
                    and node.func.attr in COLLECTIVE_METHODS
                ):
                    out[fq] = (node.func.attr, info.path, node.lineno, ())
                    break
        changed = True
        while changed:
            changed = False
            for fq in self.comm_functions:
                if fq in out:
                    continue
                for callee, _ in self._comm_edges.get(fq, ()):
                    hit = out.get(callee)
                    if hit is not None:
                        op, path, lineno, chain = hit
                        out[fq] = (op, path, lineno, (callee,) + chain)
                        changed = True
                        break
        return out

    def _function_taint(self, info: FunctionInfo) -> set[str]:
        comm = info.comm_param
        tainted: set[str] = set()
        changed = True
        while changed:
            changed = False
            for node in _iter_own(info.node):
                if not isinstance(node, ast.Assign):
                    continue
                if not is_rank_dependent(node.value, comm, tainted):
                    continue
                for target in node.targets:
                    if isinstance(target, ast.Name) and target.id not in tainted:
                        tainted.add(target.id)
                        changed = True
        return tainted

    def _static_divergence_scan(self) -> list[StaticDivergence]:
        reaches = self._reaches_collective()
        self.mpi001_sites: set[tuple[str, int]] = set()
        findings: list[StaticDivergence] = []
        for fq, info in sorted(self.comm_functions.items()):
            comm = info.comm_param
            tainted = self._function_taint(info)
            self._scan_divergence(
                info, comm, tainted, reaches, info.node, None, None, findings
            )
        return findings

    def _scan_divergence(
        self, info, comm, tainted, reaches, node, guard, loop, findings
    ) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            g, l = guard, loop
            if isinstance(child, (ast.If, ast.While)) and is_rank_dependent(
                child.test, comm, tainted
            ):
                g = child
            if isinstance(child, ast.For) and is_rank_dependent(
                child.iter, comm, tainted
            ):
                l = child
            if isinstance(child, ast.Call):
                self._divergence_at_call(
                    info, comm, reaches, child, g, l, findings
                )
            self._scan_divergence(
                info, comm, tainted, reaches, child, g, l, findings
            )

    def _divergence_at_call(
        self, info, comm, reaches, call, guard, loop, findings
    ) -> None:
        f = call.func
        if (
            isinstance(f, ast.Attribute)
            and _is_comm_name(f.value, comm)
            and f.attr in COLLECTIVE_METHODS
        ):
            # Direct collectives under rank-dependent If/While are
            # MPI001's (per-file) finding; the whole-program rule adds
            # the loop-trip-count case MPI001 cannot express.
            if guard is not None:
                self.mpi001_sites.add((info.path, call.lineno))
            if loop is not None:
                findings.append(
                    StaticDivergence(
                        path=info.path,
                        lineno=call.lineno,
                        col=call.col_offset,
                        fq=info.fq,
                        message=(
                            f"collective `{comm}.{f.attr}` runs inside the "
                            f"loop at line {loop.lineno} whose trip count "
                            "derives from rank-local data; ranks disagree "
                            "on how many collectives they enter and "
                            "deadlock"
                        ),
                    )
                )
            return
        passes = any(_is_comm_name(a, comm) for a in call.args) or any(
            _is_comm_name(k.value, comm) for k in call.keywords
        )
        if not passes:
            return
        text = dotted_name(f)
        callee = (
            self.project.resolve_call(info, text) if text is not None else None
        )
        if callee is None:
            return
        hit = reaches.get(callee.fq)
        if hit is None:
            return
        op, path, lineno, chain = hit
        chain_text = " -> ".join(
            self.comm_functions[c].name if c in self.comm_functions else c
            for c in (callee.fq,) + chain
        )
        if guard is not None:
            findings.append(
                StaticDivergence(
                    path=info.path,
                    lineno=call.lineno,
                    col=call.col_offset,
                    fq=info.fq,
                    message=(
                        f"call `{callee.name}({comm})` under the "
                        f"rank-dependent condition at line {guard.lineno} "
                        f"reaches collective `{op}` at {path}:{lineno} "
                        f"(via {chain_text}); ranks that skip the branch "
                        "never enter the matching exchange and deadlock"
                    ),
                )
            )
        elif loop is not None:
            findings.append(
                StaticDivergence(
                    path=info.path,
                    lineno=call.lineno,
                    col=call.col_offset,
                    fq=info.fq,
                    message=(
                        f"call `{callee.name}({comm})` inside the loop at "
                        f"line {loop.lineno} over rank-local data reaches "
                        f"collective `{op}` at {path}:{lineno} "
                        f"(via {chain_text}); ranks disagree on the "
                        "collective count and deadlock"
                    ),
                )
            )

    # -- reachability helper for rule-level dedup ----------------------

    def reach_of_root(self, fq: str) -> set[str]:
        """Comm functions a root splices, including the root itself."""
        seen = {fq}
        stack = [fq]
        while stack:
            cur = stack.pop()
            for callee, _ in self._comm_edges.get(cur, ()):
                if callee not in seen:
                    seen.add(callee)
                    stack.append(callee)
        return seen


def analyze_protocols(project: ProjectContext) -> ProtocolAnalysis:
    """The memoized protocol analysis of one ProjectContext."""
    cached = getattr(project, "_protocol_analysis", None)
    if cached is None:
        cached = ProtocolAnalysis(project)
        project._protocol_analysis = cached
    return cached


# -- report formatting -------------------------------------------------------


def format_protocol(proto: RootProtocol, fmt: str = "text") -> str:
    """Human/JSON rendering of one driver's per-role protocol."""
    if fmt == "json":
        import json

        payload = {
            "function": proto.fq,
            "path": proto.path,
            "line": proto.lineno,
            "model_size": proto.size,
            "imprecise": proto.imprecise,
            "roles": [
                {
                    "ranks": ranks,
                    "events": [
                        {
                            "kind": e.kind,
                            "op": e.op,
                            "peer": e.peer,
                            "tag": e.tag,
                            "site": e.site(),
                            "payload": e.payload,
                        }
                        for e in events
                    ],
                }
                for ranks, events in (
                    proto.role_groups() if proto.imprecise is None else []
                )
            ],
        }
        return json.dumps(payload, indent=2)
    lines = [
        f"protocol: {proto.fq} (model size {proto.size}) "
        f"at {proto.path}:{proto.lineno}"
    ]
    if proto.imprecise is not None:
        lines.append(f"  imprecise: {proto.imprecise}")
        return "\n".join(lines)
    for ranks, events in proto.role_groups():
        label = (
            f"rank {ranks[0]}"
            if len(ranks) == 1
            else "ranks " + ",".join(str(r) for r in ranks)
        )
        lines.append(f"  {label}:")
        if not events:
            lines.append("    (no communication)")
        for i, e in enumerate(events, 1):
            lines.append(f"    {i}. {e.describe()} at {e.site()}")
    return "\n".join(lines)
