"""File and directory drivers, output formatting, exit codes.

`lint_source` / `lint_file` run every registered rule over one unit of
source and apply ``# noqa`` suppressions; `lint_paths` walks files and
directories; `run` is the CLI entry point used by ``python -m repro
lint``.

Exit codes: 0 clean, 1 findings at or above the failing severity
(errors by default, everything under ``--strict``), 2 on bad input.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Iterable, Sequence

from repro.lint.context import FileContext
from repro.lint.findings import Finding, Severity
from repro.lint.registry import Rule, all_rules

__all__ = ["lint_source", "lint_file", "lint_paths", "iter_python_files", "run"]

#: directories never descended into.
_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", "build", "dist"}


def lint_source(
    source: str, path: str = "<string>", rules: Sequence[Rule] | None = None
) -> list[Finding]:
    """Lint one source string; returns sorted, suppression-filtered findings."""
    if rules is None:
        rules = all_rules()
    try:
        ctx = FileContext.from_source(source, path=path)
    except SyntaxError as exc:
        return [
            Finding(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                rule="E999",
                message=f"syntax error: {exc.msg}",
                severity=Severity.ERROR,
            )
        ]
    findings = [
        f
        for rule in rules
        for f in rule.check(ctx)
        if not ctx.suppressed(f.line, f.rule)
    ]
    return sorted(findings)


def lint_file(path: str | Path, rules: Sequence[Rule] | None = None) -> list[Finding]:
    p = Path(path)
    return lint_source(p.read_text(encoding="utf-8"), path=str(p), rules=rules)


def iter_python_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated .py list."""
    out: set[Path] = set()
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            out.update(
                f
                for f in p.rglob("*.py")
                if not (set(f.parts) & _SKIP_DIRS)
            )
        elif p.suffix == ".py":
            out.add(p)
        elif not p.exists():
            raise FileNotFoundError(f"no such file or directory: {p}")
    return sorted(out)


def lint_paths(
    paths: Iterable[str | Path], rules: Sequence[Rule] | None = None
) -> list[Finding]:
    """Lint every python file under ``paths`` (files or directories)."""
    if rules is None:
        rules = all_rules()
    findings: list[Finding] = []
    for f in iter_python_files(paths):
        findings.extend(lint_file(f, rules=rules))
    return sorted(findings)


def format_findings(findings: Sequence[Finding], fmt: str = "text") -> str:
    if fmt == "json":
        return json.dumps([f.to_dict() for f in findings], indent=2)
    return "\n".join(f.format_text() for f in findings)


def run(
    paths: Sequence[str],
    fmt: str = "text",
    strict: bool = False,
    stream=None,
) -> int:
    """CLI driver; prints findings and returns the process exit code."""
    stream = stream if stream is not None else sys.stdout
    try:
        findings = lint_paths(paths)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if findings or fmt == "json":
        print(format_findings(findings, fmt=fmt), file=stream)
    floor = Severity.WARNING if strict else Severity.ERROR
    failing = sum(1 for f in findings if f.severity >= floor)
    if findings and fmt == "text":
        errors = sum(1 for f in findings if f.severity >= Severity.ERROR)
        print(
            f"{len(findings)} finding(s): {errors} error(s), "
            f"{len(findings) - errors} warning(s)",
            file=stream,
        )
    return 1 if failing else 0
