"""File and directory drivers, output formatting, exit codes.

`lint_source` / `lint_file` run the per-file rules over one unit of
source; `analyze_paths` is the whole-program pass — it walks files
through the content-hash cache, runs the file rules per module and the
project rules (PURE001/PURE002/ARCH002) over the resolved call graph,
and returns findings plus run statistics.  `lint_paths` is its
findings-only wrapper; `run` is the CLI entry point used by
``python -m repro lint``.

Exit codes: 0 clean, 1 findings at or above the failing severity
(errors by default, everything under ``--strict``), 2 on bad input
(missing paths, non-Python file arguments, unreadable baseline).
"""

from __future__ import annotations

import json
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.lint.cache import DEFAULT_CACHE, LintCache
from repro.lint.context import FileContext
from repro.lint.findings import Finding, Severity, finding_fingerprints
from repro.lint.project import ProjectContext
from repro.lint.registry import ProjectRule, Rule, file_rules, project_rules

__all__ = [
    "UsageError",
    "LintStats",
    "LintRun",
    "lint_source",
    "lint_file",
    "analyze_paths",
    "lint_paths",
    "build_project",
    "iter_python_files",
    "load_baseline",
    "write_baseline",
    "run",
]

#: directories never descended into.
_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", "build", "dist"}

BASELINE_VERSION = 1


class UsageError(ValueError):
    """Bad command-line input (exit code 2), e.g. a non-Python file."""


def _syntax_finding(path: str, exc: SyntaxError) -> Finding:
    return Finding(
        path=path,
        line=exc.lineno or 1,
        col=(exc.offset or 1) - 1,
        rule="E999",
        message=f"syntax error: {exc.msg}",
        severity=Severity.ERROR,
    )


def _split_rules(
    rules: Sequence[Rule] | None,
) -> tuple[list[Rule], list[ProjectRule]]:
    if rules is None:
        return file_rules(), project_rules()
    return (
        [r for r in rules if not isinstance(r, ProjectRule)],
        [r for r in rules if isinstance(r, ProjectRule)],
    )


def lint_source(
    source: str, path: str = "<string>", rules: Sequence[Rule] | None = None
) -> list[Finding]:
    """Lint one source string with the per-file rules.

    Project rules need the whole-program context and are inert here —
    use :func:`analyze_paths` / :func:`lint_paths` for them.
    """
    frules, _ = _split_rules(rules)
    try:
        ctx = FileContext.from_source(source, path=path)
    except SyntaxError as exc:
        return [_syntax_finding(path, exc)]
    findings = [
        f
        for rule in frules
        for f in rule.check(ctx)
        if not ctx.suppressed(f.line, f.rule)
    ]
    return sorted(findings)


def lint_file(path: str | Path, rules: Sequence[Rule] | None = None) -> list[Finding]:
    p = Path(path)
    return lint_source(p.read_text(encoding="utf-8"), path=str(p), rules=rules)


def iter_python_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated .py list.

    Directories are walked recursively; an explicit file argument must
    be a ``.py`` file — anything else is a :class:`UsageError` rather
    than a silently-"clean" no-op.
    """
    out: set[Path] = set()
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            out.update(
                f
                for f in p.rglob("*.py")
                if not (set(f.parts) & _SKIP_DIRS)
            )
        elif p.suffix == ".py" and p.exists():
            out.add(p)
        elif p.exists():
            raise UsageError(
                f"not a python file: {p} (arguments must be .py files or "
                "directories)"
            )
        else:
            raise FileNotFoundError(f"no such file or directory: {p}")
    return sorted(out)


@dataclass
class LintStats:
    """Statistics of one :func:`analyze_paths` run."""

    files: int = 0
    parses: int = 0
    cache_hits: int = 0
    project_functions: int = 0
    #: wall time spent building/simulating protocols (MPI004–007).
    protocol_seconds: float = 0.0
    #: root SPMD drivers whose protocols were reconstructed.
    protocol_drivers: int = 0
    rule_counts: dict[str, int] = field(default_factory=dict)

    @property
    def cache_hit_rate(self) -> float:
        total = self.parses + self.cache_hits
        return self.cache_hits / total if total else 0.0

    def report(self) -> str:
        lines = [
            f"files analyzed:    {self.files}",
            f"parsed this run:   {self.parses}",
            f"cache hits:        {self.cache_hits} "
            f"({self.cache_hit_rate:.0%} hit rate)",
            f"project functions: {self.project_functions}",
            f"protocol pass:     {self.protocol_seconds * 1000:.1f} ms "
            f"over {self.protocol_drivers} driver(s)",
        ]
        if self.rule_counts:
            lines.append("findings by rule:")
            for rid in sorted(self.rule_counts):
                lines.append(f"  {rid}: {self.rule_counts[rid]}")
        return "\n".join(lines)


@dataclass
class LintRun:
    """Findings plus run statistics from one whole-program pass."""

    findings: list[Finding]
    stats: LintStats


def analyze_paths(
    paths: Iterable[str | Path],
    rules: Sequence[Rule] | None = None,
    cache: LintCache | None = None,
) -> LintRun:
    """Whole-program lint of every python file under ``paths``.

    Per-file rules run on each parsed module; project rules run once
    over the :class:`~repro.lint.project.ProjectContext` built from
    all of them, so cross-module kernel purity is checked whenever at
    least two related files are linted together.  Parsed files and
    effect summaries come from the content-hash ``cache`` (the
    process-global default unless one is passed), so re-linting an
    unchanged tree parses nothing.
    """
    cache = cache if cache is not None else DEFAULT_CACHE
    frules, prules = _split_rules(rules)
    files = iter_python_files(paths)
    parses0, hits0 = cache.parses, cache.hits

    findings: list[Finding] = []
    contexts: dict[str, FileContext] = {}
    summaries = []
    for f in files:
        path = str(f)
        source = f.read_text(encoding="utf-8")
        try:
            entry = cache.file_entry(path, source)
        except SyntaxError as exc:
            findings.append(_syntax_finding(path, exc))
            continue
        contexts[path] = entry.ctx
        summaries.append(entry.summary)
        findings.extend(
            fd
            for rule in frules
            for fd in rule.check(entry.ctx)
            if not entry.ctx.suppressed(fd.line, fd.rule)
        )

    protocol_seconds = 0.0
    protocol_drivers = 0
    if prules and summaries:
        project = ProjectContext(summaries)
        for rule in prules:
            for fd in rule.check_project(project):
                ctx = contexts.get(fd.path)
                if ctx is not None and ctx.suppressed(fd.line, fd.rule):
                    continue
                findings.append(fd)
        analysis = getattr(project, "_protocol_analysis", None)
        if analysis is not None:
            protocol_seconds = analysis.seconds
            protocol_drivers = len(analysis.roots)

    findings.sort()
    counts: dict[str, int] = {}
    for fd in findings:
        counts[fd.rule] = counts.get(fd.rule, 0) + 1
    stats = LintStats(
        files=len(files),
        parses=cache.parses - parses0,
        cache_hits=cache.hits - hits0,
        project_functions=sum(len(s.functions) for s in summaries),
        protocol_seconds=protocol_seconds,
        protocol_drivers=protocol_drivers,
        rule_counts=counts,
    )
    return LintRun(findings=findings, stats=stats)


def lint_paths(
    paths: Iterable[str | Path],
    rules: Sequence[Rule] | None = None,
    cache: LintCache | None = None,
) -> list[Finding]:
    """Findings of a whole-program lint (see :func:`analyze_paths`)."""
    return analyze_paths(paths, rules=rules, cache=cache).findings


def build_project(
    paths: Iterable[str | Path], cache: LintCache | None = None
) -> ProjectContext:
    """ProjectContext over every python file under ``paths``.

    Used by ``--protocol-report`` (and tests) to reach the
    whole-program analyses without running any rules; files come
    through the same content-hash cache as :func:`analyze_paths`.
    Raises :class:`UsageError` when a file does not parse.
    """
    cache = cache if cache is not None else DEFAULT_CACHE
    summaries = []
    for f in iter_python_files(paths):
        try:
            entry = cache.file_entry(str(f), f.read_text(encoding="utf-8"))
        except SyntaxError as exc:
            raise UsageError(f"cannot parse {f}: {exc.msg}") from exc
        summaries.append(entry.summary)
    return ProjectContext(summaries)


# -- baselines --------------------------------------------------------------


def load_baseline(path: str | Path) -> set[str]:
    """Fingerprint set from a baseline file written by `--write-baseline`."""
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise UsageError(f"cannot read baseline {path}: {exc}") from exc
    if not isinstance(data, dict) or "fingerprints" not in data:
        raise UsageError(f"malformed baseline {path}: missing 'fingerprints'")
    return set(data["fingerprints"])


def write_baseline(path: str | Path, findings: Sequence[Finding]) -> int:
    """Adopt the current findings; returns the fingerprint count."""
    fps = sorted(set(finding_fingerprints(findings)))
    payload = {
        "version": BASELINE_VERSION,
        "count": len(fps),
        "fingerprints": fps,
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return len(fps)


def apply_baseline(
    findings: Sequence[Finding], baseline: set[str]
) -> tuple[list[Finding], int]:
    """(surviving findings, suppressed count) after baseline filtering."""
    kept: list[Finding] = []
    suppressed = 0
    ordered = sorted(findings)
    for f, fp in zip(ordered, finding_fingerprints(ordered)):
        if fp in baseline:
            suppressed += 1
        else:
            kept.append(f)
    return kept, suppressed


# -- CLI entry point --------------------------------------------------------


def format_findings(findings: Sequence[Finding], fmt: str = "text") -> str:
    if fmt == "json":
        return json.dumps([f.to_dict() for f in findings], indent=2)
    return "\n".join(f.format_text() for f in findings)


def run(
    paths: Sequence[str],
    fmt: str = "text",
    strict: bool = False,
    stream=None,
    stats: bool = False,
    baseline: str | None = None,
    update_baseline: bool = False,
    protocol_report: str | None = None,
) -> int:
    """CLI driver; prints findings and returns the process exit code."""
    stream = stream if stream is not None else sys.stdout
    if protocol_report is not None:
        from repro.lint.protocol import analyze_protocols, format_protocol

        try:
            project = build_project(paths)
            proto = analyze_protocols(project).protocol_for(protocol_report)
        except (UsageError, FileNotFoundError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
        print(format_protocol(proto, fmt=fmt), file=stream)
        return 0
    try:
        result = analyze_paths(paths)
        known = load_baseline(baseline) if baseline and not update_baseline else None
    except (UsageError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    findings = result.findings

    if update_baseline:
        if not baseline:
            print("error: --write-baseline requires --baseline PATH", file=sys.stderr)
            return 2
        n = write_baseline(baseline, findings)
        print(f"wrote {n} fingerprint(s) to {baseline}", file=stream)
        return 0

    suppressed = 0
    if known is not None:
        findings, suppressed = apply_baseline(findings, known)

    if findings or fmt == "json":
        print(format_findings(findings, fmt=fmt), file=stream)
    floor = Severity.WARNING if strict else Severity.ERROR
    failing = sum(1 for f in findings if f.severity >= floor)
    if findings and fmt == "text":
        errors = sum(1 for f in findings if f.severity >= Severity.ERROR)
        print(
            f"{len(findings)} finding(s): {errors} error(s), "
            f"{len(findings) - errors} warning(s)",
            file=stream,
        )
    if suppressed and fmt == "text":
        print(f"{suppressed} baselined finding(s) suppressed", file=stream)
    if stats and fmt == "text":
        print(result.stats.report(), file=stream)
    return 1 if failing else 0
