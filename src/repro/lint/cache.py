"""Content-hash incremental cache for parsed files and effect summaries.

Whole-program linting parses every file and derives a
:class:`~repro.lint.project.FileSummary` per module.  Both are pure
functions of the source text, so the cache keys each path by the
SHA-256 of its contents: a second lint of an unchanged tree re-parses
*zero* files (the tier-1 self-clean gate asserts this on the
:attr:`LintCache.parses` / :attr:`LintCache.hits` counters, and
``repro lint --stats`` reports the hit rate).

The default cache is process-global (:data:`DEFAULT_CACHE`) so
repeated in-process runs — the strict gate, editor integrations, the
CLI under a daemon — share it.  Pass a private :class:`LintCache` to
``analyze_paths`` for isolation.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.lint.context import FileContext
from repro.lint.project import SUMMARY_VERSION, FileSummary, summarize_file

__all__ = ["CacheEntry", "LintCache", "DEFAULT_CACHE"]


@dataclass
class CacheEntry:
    """Parsed context plus derived summary for one file version."""

    digest: str
    ctx: FileContext
    summary: FileSummary


class LintCache:
    """Maps ``path`` to its latest parsed/summarized version."""

    def __init__(self) -> None:
        self._entries: dict[str, CacheEntry] = {}
        #: files parsed (cache misses) over the cache's lifetime.
        self.parses = 0
        #: lookups served without re-parsing.
        self.hits = 0

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()

    @staticmethod
    def digest_of(source: str) -> str:
        """Cache key of one file version: summary schema + content.

        The :data:`~repro.lint.project.SUMMARY_VERSION` prefix makes a
        schema bump look like a content change, so entries summarized
        under an older :class:`~repro.lint.project.FileSummary` shape
        are re-parsed instead of served stale to long-lived processes.
        """
        h = hashlib.sha256(f"summary-v{SUMMARY_VERSION}:".encode("utf-8"))
        h.update(source.encode("utf-8"))
        return h.hexdigest()

    def file_entry(self, path: str, source: str) -> CacheEntry:
        """Parsed entry for one file, reusing an unchanged version.

        Raises :class:`SyntaxError` on unparsable source (never
        cached, so a fixed file is re-checked immediately).
        """
        digest = self.digest_of(source)
        entry = self._entries.get(path)
        if entry is not None and entry.digest == digest:
            self.hits += 1
            return entry
        self.parses += 1
        ctx = FileContext.from_source(source, path=path)
        entry = CacheEntry(digest=digest, ctx=ctx, summary=summarize_file(ctx))
        self._entries[path] = entry
        return entry


#: process-global cache shared by default across lint runs.
DEFAULT_CACHE = LintCache()
