"""Finding and severity types for the repro linter."""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field

__all__ = ["Severity", "Finding", "finding_fingerprints"]


class Severity(enum.IntEnum):
    """Finding severity; ordering lets callers filter with ``>=``."""

    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:  # "error" / "warning" in text output
        return self.name.lower()


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic: rule id, location, and a human-readable message.

    Ordering is (path, line, col, rule) so sorted output groups by file
    and reads top-to-bottom, pyflakes style.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str = field(compare=False)
    severity: Severity = field(compare=False, default=Severity.ERROR)

    def format_text(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} [{self.severity}] {self.message}"

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "severity": str(self.severity),
            "message": self.message,
        }

    def fingerprint(self, occurrence: int = 0) -> str:
        """Stable id for baseline files: line-number independent.

        Hashes (path, rule, message, occurrence-index) so pure code
        motion does not churn an adopted baseline, while the k-th
        identical finding in a file stays distinct from the first.
        """
        path = self.path.replace("\\", "/")
        key = f"{path}::{self.rule}::{self.message}::{occurrence}"
        return hashlib.sha1(key.encode("utf-8")).hexdigest()[:16]


def finding_fingerprints(findings) -> list[str]:
    """Fingerprints for a finding list, disambiguating duplicates."""
    seen: dict[tuple, int] = {}
    out: list[str] = []
    for f in sorted(findings):
        key = (f.path, f.rule, f.message)
        k = seen.get(key, 0)
        seen[key] = k + 1
        out.append(f.fingerprint(k))
    return out
