"""Per-file analysis context and shared AST helpers.

The helpers encode the project's simulated-MPI programming model:

- a *communicator-taking function* is any ``def`` whose parameter list
  contains an argument named ``comm`` or annotated ``SimComm`` — the
  SPMD rank functions that :class:`~repro.mpi.cluster.SimCluster`
  launches and the distributed-algorithm drivers that receive one;
- an expression is *rank-dependent* if it mentions ``<comm>.rank``,
  ``<comm>.get_rank()``, or a local name assigned from either.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field

__all__ = [
    "FileContext",
    "comm_param_name",
    "rank_alias_names",
    "is_rank_dependent",
    "dotted_name",
    "literal_int",
    "MUTATING_METHODS",
]

#: collective operations of the simulated runtime.
COLLECTIVE_METHODS = frozenset(
    {"bcast", "gather", "scatter", "allgather", "reduce", "allreduce", "alltoall", "barrier"}
)

#: method calls that mutate their receiver in place (shared by the
#: mutate-after-send rule and the interprocedural purity analysis).
MUTATING_METHODS = frozenset(
    {
        "append", "extend", "insert", "remove", "pop", "popitem", "clear",
        "sort", "reverse", "update", "add", "discard", "setdefault",
        "fill", "resize", "put", "itemset",
    }
)

#: point-to-point operations, mapped to the positional index of their
#: ``tag`` argument (after the implicit first ``comm.`` receiver).
P2P_TAG_POSITION = {
    "send": 2,
    "isend": 2,
    "recv": 1,
    "irecv": 1,
    "sendrecv": 3,
}

_NOQA_RE = re.compile(r"#\s*noqa(?::\s*(?P<rules>[A-Z0-9, ]+))?", re.IGNORECASE)


@dataclass
class FileContext:
    """One parsed source file plus derived lookup tables."""

    path: str
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)

    @classmethod
    def from_source(cls, source: str, path: str = "<string>") -> "FileContext":
        tree = ast.parse(source, filename=path)
        return cls(path=path, source=source, tree=tree, lines=source.splitlines())

    # -- suppressions ------------------------------------------------------

    def suppressed(self, line: int, rule_id: str) -> bool:
        """True when the physical line carries ``# noqa`` for this rule.

        Bare ``# noqa`` silences every rule on the line;
        ``# noqa: MPI001,DET001`` silences only the listed ids.
        """
        if not 1 <= line <= len(self.lines):
            return False
        m = _NOQA_RE.search(self.lines[line - 1])
        if m is None:
            return False
        rules = m.group("rules")
        if rules is None:
            return True
        return rule_id.upper() in {r.strip().upper() for r in rules.split(",") if r.strip()}

    # -- traversal ---------------------------------------------------------

    def functions(self):
        """Every function/method definition in the file, outermost first."""
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node


def _annotation_is_simcomm(annotation: ast.expr | None) -> bool:
    if annotation is None:
        return False
    if isinstance(annotation, ast.Name):
        return annotation.id == "SimComm"
    if isinstance(annotation, ast.Attribute):
        return annotation.attr == "SimComm"
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        return "SimComm" in annotation.value
    return False


def comm_param_name(func: ast.FunctionDef | ast.AsyncFunctionDef) -> str | None:
    """The communicator parameter of ``func``, or None.

    Matches an argument annotated ``SimComm`` in any position, or one
    named ``comm`` that is unannotated (rank-function closures) — a
    ``comm`` annotated with some other type is *not* a communicator.
    """
    args = func.args
    for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
        if _annotation_is_simcomm(arg.annotation):
            return arg.arg
        if arg.arg == "comm" and arg.annotation is None:
            return arg.arg
    return None


def rank_alias_names(func: ast.AST, comm: str) -> set[str]:
    """Local names assigned from ``comm.rank`` / ``comm.get_rank()``."""
    aliases: set[str] = set()
    for node in ast.walk(func):
        if not isinstance(node, ast.Assign):
            continue
        if not _is_rank_expr(node.value, comm, aliases):
            continue
        for target in node.targets:
            if isinstance(target, ast.Name):
                aliases.add(target.id)
    return aliases


def _is_rank_expr(node: ast.expr, comm: str, aliases: set[str]) -> bool:
    """True for ``comm.rank``, ``comm.get_rank()``, or a known alias."""
    if isinstance(node, ast.Attribute) and node.attr == "rank":
        return isinstance(node.value, ast.Name) and node.value.id == comm
    if isinstance(node, ast.Call):
        f = node.func
        if isinstance(f, ast.Attribute) and f.attr == "get_rank":
            return isinstance(f.value, ast.Name) and f.value.id == comm
    if isinstance(node, ast.Name):
        return node.id in aliases
    return False


def is_rank_dependent(test: ast.expr, comm: str, aliases: set[str]) -> bool:
    """True when any subexpression of ``test`` reads the rank."""
    return any(_is_rank_expr(sub, comm, aliases) for sub in ast.walk(test))


def dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def literal_int(node: ast.expr) -> int | None:
    """The value of an integer literal, handling unary minus."""
    if isinstance(node, ast.Constant) and type(node.value) is int:
        return node.value
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = literal_int(node.operand)
        if inner is not None:
            return -inner
    return None


def references_name(node: ast.AST, name: str) -> bool:
    """True when ``name`` is read anywhere under ``node``."""
    return any(
        isinstance(sub, ast.Name) and sub.id == name for sub in ast.walk(node)
    )
