"""Whole-program analysis: symbol table, call graph, effect summaries.

Per-file rules (``repro.lint.rules``) see one AST at a time; the
purity contract of the distributed stages is *interprocedural* — a
``*_kernel`` function is only safe to run on any execution backend if
nothing it calls, in any module, mutates shared state or reaches
hidden nondeterminism.  This module parses the whole linted tree once
and derives:

- a **symbol table** per module: functions (qualified by class
  nesting), module-level names, and an import map from local names to
  fully-dotted targets (``np`` → ``numpy``, ``shuffle`` →
  ``random.shuffle``);
- a **call graph** over module-level and nested functions, resolved
  through the import map (``trimming.find_dead_ends`` from another
  module resolves to that module's function);
- per-function **effect summaries**: parameters and module globals
  mutated in place, unseeded-RNG draws, wall-clock reads, filesystem
  and network I/O, and references to ``repro.mpi``;
- an **interprocedural walk**: :meth:`ProjectContext.reachable_from`
  and :meth:`ProjectContext.summary`, which propagates callee effects
  to callers across argument bindings to a fixpoint (a helper that
  mutates its second parameter taints exactly the caller expressions
  bound to it).

The analysis is deliberately *optimistic* about what it cannot see:
calls through objects (``dag.partition_nodes(...)``), dynamic
dispatch, and functions outside the linted tree are assumed pure.
That keeps the purity rules (PURE001/PURE002, ``rules/purity.py``)
free of false positives at the cost of missed exotic effects — the
runtime sanitizer remains the dynamic backstop.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.context import (
    MUTATING_METHODS,
    FileContext,
    comm_param_name,
    dotted_name,
)

__all__ = [
    "ArgRef",
    "CallSite",
    "Effect",
    "FunctionInfo",
    "FileSummary",
    "EffectSummary",
    "ProjectContext",
    "SUMMARY_VERSION",
    "module_name_for",
    "summarize_file",
]

#: schema version of :class:`FileSummary`/:class:`FunctionInfo`.  Folded
#: into every :class:`~repro.lint.cache.LintCache` digest so extending
#: the summaries (as the protocol pass did with ``comm_param``/``node``)
#: invalidates long-lived process-global caches instead of serving
#: stale shapes to daemon/editor runs.  Bump on any field change.
SUMMARY_VERSION = 2

#: RNG constructors/types that are explicitly seeded or stateless —
#: calls resolving to these are *not* hidden-global-state draws.
SEEDED_RNG_TAILS = frozenset(
    {"Random", "SystemRandom", "default_rng", "Generator", "SeedSequence",
     "PCG64", "Philox", "SFC64", "MT19937", "BitGenerator", "RandomState"}
)

#: fully-dotted calls that read the wall clock.
CLOCK_CALLS = frozenset(
    {
        "time.time", "time.time_ns", "time.perf_counter",
        "time.perf_counter_ns", "time.monotonic", "time.monotonic_ns",
        "time.process_time", "time.process_time_ns",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.date.today",
    }
)

#: top-level modules whose use is filesystem/network I/O.
IO_MODULES = frozenset(
    {"socket", "shutil", "subprocess", "urllib", "http", "requests",
     "ftplib", "smtplib"}
)

#: ``os.*`` calls that touch the filesystem or spawn processes.
OS_IO_CALLS = frozenset(
    {
        "os.open", "os.remove", "os.unlink", "os.rename", "os.replace",
        "os.mkdir", "os.makedirs", "os.rmdir", "os.removedirs",
        "os.system", "os.popen", "os.chdir", "os.truncate",
    }
)

#: method names that are file I/O on any receiver (pathlib idiom).
PATH_IO_METHODS = frozenset(
    {"write_text", "write_bytes", "read_text", "read_bytes"}
)

#: repo-specific graph mutators, added to the generic in-place set so a
#: kernel *applying* removals (instead of proposing them) is caught.
GRAPH_MUTATING_METHODS = frozenset({"remove_nodes", "remove_edges"})

_ALL_MUTATING_METHODS = MUTATING_METHODS | GRAPH_MUTATING_METHODS


def module_name_for(path: str | Path) -> str:
    """Dotted module name inferred from ``__init__.py`` package dirs."""
    p = Path(path)
    parts = [] if p.name == "__init__.py" else [p.stem]
    d = p.parent
    while (d / "__init__.py").exists():
        parts.append(d.name)
        parent = d.parent
        if parent == d:  # filesystem root
            break
        d = parent
    return ".".join(reversed(parts)) or p.stem


@dataclass(frozen=True)
class ArgRef:
    """One call argument, reduced to what effect propagation needs."""

    #: "name" / "attr" for name-or-attribute chains, "lambda", "other".
    kind: str
    #: dotted source text ("a.b.c") when kind is "name"/"attr".
    text: str | None
    #: root name of the chain ("a"), else None.
    root: str | None
    #: root is a live (not yet rebound) parameter of the caller.
    root_is_param: bool
    #: root is a module-level name (assignment, def, or import).
    root_is_global: bool


@dataclass(frozen=True)
class CallSite:
    """One syntactic call with its argument bindings."""

    lineno: int
    col: int
    #: callee as written: "helper" or "mod.helper".
    callee: str
    pos: tuple[ArgRef, ...]
    kw: tuple[tuple[str, ArgRef], ...]


@dataclass(frozen=True)
class Effect:
    """One direct effect observed in a function body."""

    #: "mutates-param" | "mutates-global" | "rng" | "clock" | "io" | "mpi"
    kind: str
    detail: str
    lineno: int
    #: parameter/global name for the mutation kinds.
    target: str | None = None


@dataclass
class FunctionInfo:
    """One analyzed function: signature, direct effects, call sites."""

    module: str
    qualname: str  # "fn", "Class.method", "outer.<locals>.inner"
    name: str
    path: str
    lineno: int
    col: int
    pos_params: tuple[str, ...]  # positional-or-keyword (incl. posonly)
    kwonly_params: tuple[str, ...]
    has_vararg: bool
    has_kwarg: bool
    is_method: bool
    effects: list[Effect] = field(default_factory=list)
    calls: list[CallSite] = field(default_factory=list)
    #: communicator parameter name (SPMD functions), else None.
    comm_param: str | None = None
    #: the function's AST node — kept for the flow-sensitive protocol
    #: pass, which needs full bodies (CFGs), not just effect summaries.
    node: ast.FunctionDef | ast.AsyncFunctionDef | None = None

    @property
    def fq(self) -> str:
        return f"{self.module}.{self.qualname}"

    @property
    def is_module_level(self) -> bool:
        return "." not in self.qualname

    def param_names(self) -> tuple[str, ...]:
        return self.pos_params + self.kwonly_params


@dataclass
class FileSummary:
    """Everything project analysis needs from one parsed file."""

    path: str
    module: str
    functions: dict[str, FunctionInfo]  # keyed by qualname
    imports: dict[str, str]  # local name -> fully dotted target
    module_globals: set[str]
    module_calls: list[CallSite]


# -- per-file summarization -------------------------------------------------


def _chain_root(expr: ast.expr) -> tuple[str, str] | None:
    """``(root, "root.b.c")`` for a Name/Attribute chain, else None."""
    text = dotted_name(expr)
    if text is None:
        return None
    return text.split(".", 1)[0], text


def _collect_imports(tree: ast.Module, module: str) -> dict[str, str]:
    out: dict[str, str] = {}
    for node in tree.body:
        if isinstance(node, ast.Import):
            for a in node.names:
                if a.asname is not None:
                    out[a.asname] = a.name
                else:
                    # `import a.b.c` binds the top package name `a`.
                    out[a.name.split(".", 1)[0]] = a.name.split(".", 1)[0]
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:  # relative import, resolved against `module`
                pkg = module.split(".")
                pkg = pkg[: len(pkg) - node.level]
                base = ".".join(pkg + ([node.module] if node.module else []))
            for a in node.names:
                if a.name == "*":
                    continue
                out[a.asname or a.name] = f"{base}.{a.name}" if base else a.name
    return out


def _module_level_names(tree: ast.Module) -> set[str]:
    """Names bound at module scope (assignments, defs, imports)."""
    names: set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for a in node.names:
                if a.name == "*":
                    continue
                names.add(a.asname or a.name.split(".", 1)[0])
        else:
            for sub in ast.walk(node):
                if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Store):
                    names.add(sub.id)
    return names


def _own_nodes(body: list[ast.stmt]):
    """Statements/expressions of one scope, not descending into defs."""
    stack: list[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)
        ):
            stack.extend(ast.iter_child_nodes(node))


class _ScopeWalker:
    """Shared effect/call extraction for a function body or module."""

    def __init__(
        self,
        summary_imports: dict[str, str],
        module_globals: set[str],
        params: tuple[str, ...] = (),
        body: list[ast.stmt] | None = None,
    ) -> None:
        self.imports = summary_imports
        self.module_globals = module_globals
        self.params = params
        self.body = body or []
        self.effects: list[Effect] = []
        self.calls: list[CallSite] = []
        # names bound in this scope (params + any Name store)
        self.locals: set[str] = set(params)
        self.declared_global: set[str] = set()
        # first line a name is *rebound* whole (plain store, not augmented)
        self.rebind_line: dict[str, int] = {}
        self._mpi_locals = {
            local
            for local, target in summary_imports.items()
            if target == "repro.mpi" or target.startswith("repro.mpi.")
        }

    # -- name classification ------------------------------------------

    def _param_live(self, name: str, lineno: int) -> bool:
        if name not in self.params:
            return False
        first = self.rebind_line.get(name)
        return first is None or lineno < first

    def _classify_root(self, root: str, lineno: int) -> tuple[bool, bool]:
        """(is live param, is module global) for a chain root name."""
        if self._param_live(root, lineno):
            return True, False
        if root in self.declared_global:
            return False, True
        if root not in self.locals and (
            root in self.module_globals or root in self.imports
        ):
            return False, True
        return False, False

    def _arg_ref(self, expr: ast.expr, lineno: int) -> ArgRef:
        if isinstance(expr, ast.Lambda):
            return ArgRef("lambda", None, None, False, False)
        hit = _chain_root(expr)
        if hit is None:
            return ArgRef("other", None, None, False, False)
        root, text = hit
        is_param, is_global = self._classify_root(root, lineno)
        kind = "name" if "." not in text else "attr"
        return ArgRef(kind, text, root, is_param, is_global)

    def resolve_text(self, text: str) -> str | None:
        """Fully-dotted name of a reference, through the import map.

        Returns None when the root is a local binding (the reference is
        dynamic, not a module-level symbol).
        """
        root = text.split(".", 1)[0]
        if root in self.locals:
            return None
        target = self.imports.get(root)
        if target is None:
            return text  # builtin or direct module-global reference
        rest = text[len(root):]
        return target + rest

    # -- scanning ------------------------------------------------------

    def scan(self) -> None:
        self._collect_bindings()
        for node in _own_nodes(self.body):
            self._scan_node(node)

    def _collect_bindings(self) -> None:
        aug_targets = set()
        for node in _own_nodes(self.body):
            if isinstance(node, ast.Global):
                self.declared_global.update(node.names)
            elif isinstance(node, ast.AugAssign) and isinstance(
                node.target, ast.Name
            ):
                aug_targets.add(id(node.target))
        for node in _own_nodes(self.body):
            if (
                isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Store)
                and id(node) not in aug_targets
            ):
                self.locals.add(node.id)
                if node.id in self.declared_global:
                    self.locals.discard(node.id)
                    self.effects.append(
                        Effect(
                            "mutates-global",
                            f"assignment to `global {node.id}`",
                            node.lineno,
                            target=node.id,
                        )
                    )
                else:
                    line = self.rebind_line.get(node.id)
                    if line is None or node.lineno < line:
                        self.rebind_line[node.id] = node.lineno

    def _record_mutation(self, root: str, lineno: int, detail: str) -> None:
        is_param, is_global = self._classify_root(root, lineno)
        if is_param:
            self.effects.append(
                Effect("mutates-param", detail, lineno, target=root)
            )
        elif is_global:
            self.effects.append(
                Effect("mutates-global", detail, lineno, target=root)
            )

    def _scan_node(self, node: ast.AST) -> None:
        # In-place stores through subscripts/attributes: `x[i] = v`,
        # `x.attr = v`, `del x[i]` — any Store/Del context chain.
        if isinstance(node, (ast.Subscript, ast.Attribute)) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            hit = _chain_root(node.value)
            if hit is not None:
                root, text = hit
                verb = "del of" if isinstance(node.ctx, ast.Del) else (
                    "item assignment through"
                    if isinstance(node, ast.Subscript)
                    else "attribute assignment through"
                )
                self._record_mutation(root, node.lineno, f"{verb} `{text}`")
        elif isinstance(node, ast.AugAssign) and isinstance(node.target, ast.Name):
            self._record_mutation(
                node.target.id,
                node.lineno,
                f"augmented assignment to `{node.target.id}`",
            )
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            if node.id in self._mpi_locals and node.id not in self.locals:
                self.effects.append(
                    Effect(
                        "mpi",
                        f"references `{self.imports[node.id]}`",
                        node.lineno,
                    )
                )
        elif isinstance(node, ast.Call):
            self._scan_call(node)

    def _scan_call(self, node: ast.Call) -> None:
        # Mutating method on a name chain: `x.append(v)`, `a.b.update(d)`.
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _ALL_MUTATING_METHODS
        ):
            hit = _chain_root(node.func.value)
            if hit is not None:
                root, text = hit
                self._record_mutation(
                    root, node.lineno, f"in-place `{text}.{node.func.attr}()`"
                )
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in PATH_IO_METHODS
        ):
            self.effects.append(
                Effect("io", f"file I/O via `.{node.func.attr}()`", node.lineno)
            )
        text = dotted_name(node.func)
        if text is None:
            return
        self.calls.append(
            CallSite(
                lineno=node.lineno,
                col=node.col_offset,
                callee=text,
                pos=tuple(self._arg_ref(a, node.lineno) for a in node.args),
                kw=tuple(
                    (k.arg, self._arg_ref(k.value, node.lineno))
                    for k in node.keywords
                    if k.arg is not None
                ),
            )
        )
        fq = self.resolve_text(text)
        if fq is None:
            return
        self._classify_call(fq, node.lineno)

    def _classify_call(self, fq: str, lineno: int) -> None:
        for prefix in ("numpy.random.", "random."):
            if fq.startswith(prefix):
                tail = fq[len(prefix):].split(".", 1)[0]
                if tail not in SEEDED_RNG_TAILS:
                    self.effects.append(
                        Effect("rng", f"unseeded `{fq}()`", lineno)
                    )
                return
        if fq in CLOCK_CALLS:
            self.effects.append(Effect("clock", f"wall clock `{fq}()`", lineno))
            return
        root = fq.split(".", 1)[0]
        if fq in ("open", "input") or fq in OS_IO_CALLS or root in IO_MODULES:
            self.effects.append(Effect("io", f"I/O call `{fq}()`", lineno))


def _function_info(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
    qualname: str,
    module: str,
    path: str,
    imports: dict[str, str],
    module_globals: set[str],
    is_method: bool,
) -> FunctionInfo:
    a = node.args
    pos = tuple(arg.arg for arg in (*a.posonlyargs, *a.args))
    kwonly = tuple(arg.arg for arg in a.kwonlyargs)
    walker = _ScopeWalker(imports, module_globals, pos + kwonly, node.body)
    walker.scan()
    return FunctionInfo(
        module=module,
        qualname=qualname,
        name=node.name,
        path=path,
        lineno=node.lineno,
        col=node.col_offset,
        pos_params=pos,
        kwonly_params=kwonly,
        has_vararg=a.vararg is not None,
        has_kwarg=a.kwarg is not None,
        is_method=is_method,
        effects=walker.effects,
        calls=walker.calls,
        comm_param=comm_param_name(node),
        node=node,
    )


def summarize_file(ctx: FileContext, module: str | None = None) -> FileSummary:
    """Symbol table, per-function effects, and call sites of one file."""
    module = module or module_name_for(ctx.path)
    imports = _collect_imports(ctx.tree, module)
    module_globals = _module_level_names(ctx.tree)
    functions: dict[str, FunctionInfo] = {}

    def visit(body: list[ast.stmt], prefix: str, in_class: bool) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{node.name}"
                functions[qual] = _function_info(
                    node, qual, module, ctx.path, imports, module_globals, in_class
                )
                visit(node.body, f"{qual}.<locals>.", False)
            elif isinstance(node, ast.ClassDef):
                visit(node.body, f"{prefix}{node.name}.", True)

    visit(ctx.tree.body, "", False)

    mod_walker = _ScopeWalker(imports, module_globals, (), ctx.tree.body)
    mod_walker.scan()
    return FileSummary(
        path=ctx.path,
        module=module,
        functions=functions,
        imports=imports,
        module_globals=module_globals,
        module_calls=mod_walker.calls,
    )


# -- project-level analysis -------------------------------------------------


@dataclass
class EffectSummary:
    """Transitive effects of one function, with witness call chains.

    Each entry maps to ``(via, effect, owner_fq)``: the chain of callee
    fq-names walked from this function to the function whose body holds
    the direct effect.
    """

    mutated_params: dict[str, tuple[tuple[str, ...], Effect, str]] = field(
        default_factory=dict
    )
    mutated_globals: dict[str, tuple[tuple[str, ...], Effect, str]] = field(
        default_factory=dict
    )
    #: "rng" / "clock" / "io" / "mpi" -> (via, effect, owner_fq)
    ambient: dict[str, tuple[tuple[str, ...], Effect, str]] = field(
        default_factory=dict
    )

    @property
    def is_pure(self) -> bool:
        return not (self.mutated_params or self.mutated_globals or self.ambient)


class ProjectContext:
    """The parsed project: modules, functions, call graph, summaries."""

    def __init__(self, summaries: list[FileSummary]) -> None:
        self.files: dict[str, FileSummary] = {}
        self.modules: dict[str, FileSummary] = {}
        self.functions: dict[str, FunctionInfo] = {}
        for s in summaries:
            self.files[s.path] = s
            # First file wins on (rare) module-name collisions outside
            # any package; resolution then targets that file.
            self.modules.setdefault(s.module, s)
            for info in s.functions.values():
                self.functions.setdefault(info.fq, info)
        self._edges: dict[str, list[tuple[str, CallSite]]] | None = None
        self._summaries: dict[str, EffectSummary] | None = None

    # -- resolution ----------------------------------------------------

    def resolve_import_target(self, module: str, text: str) -> str | None:
        """Fully-dotted target of a reference written in ``module``."""
        summary = self.modules.get(module)
        if summary is None:
            return None
        root = text.split(".", 1)[0]
        target = summary.imports.get(root)
        if target is None:
            return text
        return target + text[len(root):]

    def _function_for_dotted(self, dotted: str) -> FunctionInfo | None:
        """Project function matching a fully-dotted name, if any."""
        if dotted in self.functions:
            return self.functions[dotted]
        # Try "<module>.<func>" with the longest module prefix.
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            mod = ".".join(parts[:cut])
            if mod in self.modules:
                qual = ".".join(parts[cut:])
                return self.modules[mod].functions.get(qual)
        return None

    def resolve_call(self, caller: FunctionInfo | str, callee: str) -> FunctionInfo | None:
        """Resolve a call written as ``callee`` inside ``caller``.

        ``caller`` may be a FunctionInfo or a module name (for calls at
        module scope).  Unresolvable calls — locals, object methods,
        out-of-project imports — return None (assumed pure).
        """
        if isinstance(caller, FunctionInfo):
            module = caller.module
            summary = self.modules.get(module)
            if summary is not None and "." not in callee:
                nested = summary.functions.get(
                    f"{caller.qualname}.<locals>.{callee}"
                )
                if nested is not None:
                    return nested
        else:
            module = caller
            summary = self.modules.get(module)
        if summary is None:
            return None
        if "." not in callee and callee in summary.functions:
            return summary.functions[callee]
        dotted = self.resolve_import_target(module, callee)
        if dotted is None or dotted == callee and "." not in dotted:
            return None
        return self._function_for_dotted(dotted)

    # -- call graph ----------------------------------------------------

    def edges(self) -> dict[str, list[tuple[str, CallSite]]]:
        """Resolved call edges: caller fq -> [(callee fq, call site)]."""
        if self._edges is None:
            out: dict[str, list[tuple[str, CallSite]]] = {}
            for info in self.functions.values():
                resolved = []
                for cs in info.calls:
                    callee = self.resolve_call(info, cs.callee)
                    if callee is not None and callee.fq != info.fq:
                        resolved.append((callee.fq, cs))
                out[info.fq] = resolved
            self._edges = out
        return self._edges

    def reachable_from(self, fq: str) -> set[str]:
        """Every project function transitively callable from ``fq``."""
        edges = self.edges()
        seen: set[str] = set()
        stack = [fq]
        while stack:
            cur = stack.pop()
            for callee, _ in edges.get(cur, ()):
                if callee not in seen:
                    seen.add(callee)
                    stack.append(callee)
        return seen

    # -- effect propagation --------------------------------------------

    def summary(self, fq: str) -> EffectSummary:
        """Transitive effect summary of one function (fixpoint-cached)."""
        if self._summaries is None:
            self._summaries = self._compute_summaries()
        return self._summaries.get(fq, EffectSummary())

    def _compute_summaries(self) -> dict[str, EffectSummary]:
        sums: dict[str, EffectSummary] = {}
        for fq, info in self.functions.items():
            s = EffectSummary()
            params = set(info.param_names())
            for eff in info.effects:
                if eff.kind == "mutates-param" and eff.target in params:
                    s.mutated_params.setdefault(eff.target, ((), eff, fq))
                elif eff.kind == "mutates-global" and eff.target is not None:
                    s.mutated_globals.setdefault(eff.target, ((), eff, fq))
                elif eff.kind in ("rng", "clock", "io", "mpi"):
                    s.ambient.setdefault(eff.kind, ((), eff, fq))
            sums[fq] = s

        edges = self.edges()
        changed = True
        while changed:
            changed = False
            for fq, info in self.functions.items():
                s = sums[fq]
                for callee_fq, cs in edges.get(fq, ()):
                    callee = self.functions[callee_fq]
                    g = sums[callee_fq]
                    for kind, (via, eff, owner) in g.ambient.items():
                        if kind not in s.ambient:
                            s.ambient[kind] = ((callee_fq,) + via, eff, owner)
                            changed = True
                    for gname, (via, eff, owner) in g.mutated_globals.items():
                        if gname not in s.mutated_globals:
                            s.mutated_globals[gname] = (
                                (callee_fq,) + via, eff, owner
                            )
                            changed = True
                    for pname, (via, eff, owner) in g.mutated_params.items():
                        ref = _bound_arg(callee, cs, pname)
                        if ref is None or ref.root is None:
                            continue
                        entry = ((callee_fq,) + via, eff, owner)
                        if ref.root_is_param and ref.root not in s.mutated_params:
                            s.mutated_params[ref.root] = entry
                            changed = True
                        elif (
                            ref.root_is_global
                            and ref.root not in s.mutated_globals
                        ):
                            s.mutated_globals[ref.root] = entry
                            changed = True
        return sums


def _bound_arg(callee: FunctionInfo, cs: CallSite, param: str) -> ArgRef | None:
    """The caller ArgRef bound to ``param`` of ``callee`` at this site."""
    pos = callee.pos_params
    if param in pos:
        i = pos.index(param)
        if i < len(cs.pos):
            return cs.pos[i]
    for name, ref in cs.kw:
        if name == param:
            return ref
    return None
