"""`repro lint`: a static analyzer for the simulated-MPI programming model.

The distributed algorithms in this reproduction (recursive bisection,
per-partition trimming, master-merge traversal) run as SPMD rank
functions on :class:`~repro.mpi.SimCluster`.  The classic SPMD bug
classes — collectives under rank-dependent branches, payloads mutated
after an eager send, hidden-global RNG, compute outside the virtual
clock — survive the test suite because they corrupt *timing* and
*determinism* rather than values.  This package catches them at the
AST level:

========  ========  =====================================================
rule      severity  checks
========  ========  =====================================================
MPI001    error     collective calls under ``comm.rank``-dependent branches
MPI002    error     literal message tags in the reserved space (<= -1000)
MPI003    error     payload names mutated after an eager ``send``/``isend``
MPI004    error     point-to-point sends/recvs no peer rank ever matches
MPI005    error     cyclic send/recv waits (deadlock, with per-role witness)
MPI006    error     collective divergence across ranks (whole-program MPI001)
MPI007    warning   receiver uses a payload type the sender never ships
DET001    warning   ``random.*`` / ``np.random.*`` global-state calls
PERF001   warning   compute loops in rank functions outside ``comm.timed()``
PERF002   warning   per-element ``.tolist()`` loops on the overlap hot path
ARCH001   error     distributed kernel modules importing ``repro.mpi``
PURE001   error     kernels mutating parameters/globals (interprocedural)
PURE002   error     kernels reaching unseeded RNG, wall clock, or I/O
ARCH002   error     ``register_stage`` kernel/merge contract violations
========  ========  =====================================================

The MPI004-007 rules run a *protocol verifier*: ``repro.lint.cfg``
lowers each communicator-taking function to a control-flow graph,
``repro.lint.protocol`` abstractly interprets every root driver once
per concrete rank at a small model size (folding ``comm.rank`` /
``comm.size`` arithmetic, splicing helpers through the call graph),
and a matching simulation of the resulting per-rank event traces
yields unmatched messages, cyclic waits, and diverging collectives —
with witnesses that name each role's blocking event.  Inspect a
driver's reconstructed protocol with
``repro lint <paths> --protocol-report FUNCTION``.

The PURE/ARCH002 rules are *whole-program*: ``repro.lint.project``
parses every linted file once, resolves imports into a package-level
symbol table, builds a call graph, and propagates per-function effect
summaries (parameter/global mutation, RNG, clock, I/O, ``repro.mpi``
use) interprocedurally — a kernel calling a helper in another module
that mutates shared state is caught, which no per-file rule can do.
Parsed files and summaries are cached by content hash
(``repro.lint.cache``), so a second run over an unchanged tree
re-parses nothing.

Run it as ``python -m repro lint [paths] [--format text|json]
[--strict] [--stats] [--baseline FILE [--write-baseline]]``, or from
code via :func:`lint_paths` / :func:`analyze_paths` /
:func:`lint_source`.  Suppress a finding with a trailing
``# noqa: RULEID`` comment; adopt a legacy tree's findings with
``--baseline`` and burn them down over time.

The static pass pairs with a *runtime* sanitizer:
``SimCluster(..., sanitize=True)`` fingerprints every payload at send
and re-verifies it at receive (raising
:class:`~repro.mpi.simcomm.PayloadMutationError` on a mutate-after-send
race) and reports unconsumed mailbox messages at shutdown as
:class:`~repro.mpi.simcomm.MessageLeakError`.
"""

from repro.lint.cache import DEFAULT_CACHE, LintCache
from repro.lint.cfg import CFG, build_cfg
from repro.lint.context import FileContext
from repro.lint.driver import (
    LintRun,
    LintStats,
    UsageError,
    analyze_paths,
    build_project,
    format_findings,
    iter_python_files,
    lint_file,
    lint_paths,
    lint_source,
    run,
)
from repro.lint.findings import Finding, Severity, finding_fingerprints
from repro.lint.project import SUMMARY_VERSION, ProjectContext, summarize_file
from repro.lint.protocol import (
    CommEvent,
    ProtocolAnalysis,
    RootProtocol,
    analyze_protocols,
    format_protocol,
)
from repro.lint.registry import (
    ProjectRule,
    Rule,
    all_rules,
    file_rules,
    get_rule,
    project_rules,
    register,
    select_rules,
)

__all__ = [
    "FileContext",
    "ProjectContext",
    "SUMMARY_VERSION",
    "summarize_file",
    "CFG",
    "build_cfg",
    "CommEvent",
    "RootProtocol",
    "ProtocolAnalysis",
    "analyze_protocols",
    "format_protocol",
    "build_project",
    "Finding",
    "Severity",
    "finding_fingerprints",
    "Rule",
    "ProjectRule",
    "register",
    "all_rules",
    "file_rules",
    "project_rules",
    "get_rule",
    "select_rules",
    "lint_source",
    "lint_file",
    "lint_paths",
    "analyze_paths",
    "iter_python_files",
    "format_findings",
    "run",
    "LintCache",
    "DEFAULT_CACHE",
    "LintRun",
    "LintStats",
    "UsageError",
]
