"""`repro lint`: a static analyzer for the simulated-MPI programming model.

The distributed algorithms in this reproduction (recursive bisection,
per-partition trimming, master-merge traversal) run as SPMD rank
functions on :class:`~repro.mpi.SimCluster`.  The classic SPMD bug
classes — collectives under rank-dependent branches, payloads mutated
after an eager send, hidden-global RNG, compute outside the virtual
clock — survive the test suite because they corrupt *timing* and
*determinism* rather than values.  This package catches them at the
AST level:

========  ========  =====================================================
rule      severity  checks
========  ========  =====================================================
MPI001    error     collective calls under ``comm.rank``-dependent branches
MPI002    error     literal message tags in the reserved space (<= -1000)
MPI003    error     payload names mutated after an eager ``send``/``isend``
DET001    warning   ``random.*`` / ``np.random.*`` global-state calls
PERF001   warning   compute loops in rank functions outside ``comm.timed()``
PERF002   warning   per-element ``.tolist()`` loops on the overlap hot path
ARCH001   error     distributed kernel modules importing ``repro.mpi``
========  ========  =====================================================

Run it as ``python -m repro lint [paths] [--format text|json]
[--strict]``, or from code via :func:`lint_paths` / :func:`lint_source`.
Suppress a finding with a trailing ``# noqa: RULEID`` comment.

The static pass pairs with a *runtime* sanitizer:
``SimCluster(..., sanitize=True)`` fingerprints every payload at send
and re-verifies it at receive (raising
:class:`~repro.mpi.simcomm.PayloadMutationError` on a mutate-after-send
race) and reports unconsumed mailbox messages at shutdown as
:class:`~repro.mpi.simcomm.MessageLeakError`.
"""

from repro.lint.context import FileContext
from repro.lint.driver import (
    format_findings,
    iter_python_files,
    lint_file,
    lint_paths,
    lint_source,
    run,
)
from repro.lint.findings import Finding, Severity
from repro.lint.registry import Rule, all_rules, get_rule, register, select_rules

__all__ = [
    "FileContext",
    "Finding",
    "Severity",
    "Rule",
    "register",
    "all_rules",
    "get_rule",
    "select_rules",
    "lint_source",
    "lint_file",
    "lint_paths",
    "iter_python_files",
    "format_findings",
    "run",
]
