"""Plain-text table/series formatting for benchmark output."""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["format_table", "format_series"]


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Monospace table with a header rule, like the paper's tables."""
    cells = [[_fmt(c) for c in row] for row in rows]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    def line(row):
        return "  ".join(c.ljust(w) for c, w in zip(row, widths))
    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(r) for r in cells)
    return "\n".join(out)


def format_series(name: str, xs: Sequence, ys: Sequence, x_label: str = "x") -> str:
    """A labelled (x, y) series, one point per line (figure data)."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    lines = [f"# {name}"]
    lines.extend(f"{x_label}={_fmt(x)}  {name}={_fmt(y)}" for x, y in zip(xs, ys))
    return "\n".join(lines)
