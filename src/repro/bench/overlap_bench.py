"""Perf-trajectory benchmark for the overlap engines (``repro bench overlap``).

Times the legacy per-query engine (``loop``), the batch-vectorized
engine (``vectorized``), and the multiprocess driver (``process``) on
the standard D1–D3 datasets, asserts all engines produce identical
overlap sets, writes the machine-readable trajectory to
``BENCH_overlap.json``, and prints a human summary table.

The JSON is the repo's durable performance record: every later PR that
touches the alignment hot path re-runs this bench and extends or
replaces the file, so regressions are visible as a trajectory, not an
anecdote.  The run exits non-zero when the vectorized engine is slower
than the legacy engine on any dataset (a silent-regression guard wired
for CI) — see docs/performance.md for how to read the output.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from dataclasses import asdict, dataclass, field

import numpy as np

from repro.align.overlapper import OverlapConfig, OverlapDetector
from repro.bench.datasets import BenchDataset, standard_datasets
from repro.bench.reporting import format_table

__all__ = [
    "OverlapBenchRecord",
    "OverlapBenchReport",
    "bench_dataset",
    "run_overlap_bench",
    "regression_failures",
    "main",
]

#: schema of one record in ``BENCH_overlap.json``; bump when fields change.
SCHEMA = "repro.bench.overlap/v1"

DEFAULT_OUTPUT = "BENCH_overlap.json"


@dataclass(frozen=True)
class OverlapBenchRecord:
    """One (dataset, engine) timing measurement."""

    dataset: str
    engine: str
    wall_s: float
    reads_per_s: float
    candidates_verified: int
    overlaps_found: int
    workers: int = 1


@dataclass
class OverlapBenchReport:
    """A full bench run: records plus environment metadata."""

    records: list[OverlapBenchRecord] = field(default_factory=list)
    metadata: dict = field(default_factory=dict)

    def to_json(self) -> str:
        return json.dumps(
            {
                "schema": SCHEMA,
                "metadata": self.metadata,
                "results": [asdict(r) for r in self.records],
            },
            indent=2,
        )

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json() + "\n")

    def summary_table(self) -> str:
        loop_wall = {r.dataset: r.wall_s for r in self.records if r.engine == "loop"}
        rows = []
        for r in self.records:
            base = loop_wall.get(r.dataset)
            speedup = f"{base / r.wall_s:.2f}x" if base else "-"
            rows.append(
                [
                    r.dataset,
                    r.engine,
                    f"{r.wall_s:.3f}",
                    f"{r.reads_per_s:.0f}",
                    r.candidates_verified,
                    r.overlaps_found,
                    speedup,
                ]
            )
        return format_table(
            ["Dataset", "Engine", "Wall (s)", "Reads/s", "Candidates", "Overlaps", "vs loop"],
            rows,
        )


def _overlap_key(overlaps) -> list[tuple]:
    return sorted(
        (o.query, o.ref, o.q_start, o.r_start, o.length, o.identity, o.kind.value)
        for o in overlaps
    )


def bench_dataset(
    dataset: BenchDataset,
    workers: int = 4,
    n_subsets: int = 4,
    min_overlap: int = 50,
    repeats: int = 2,
) -> tuple[list[OverlapBenchRecord], bool]:
    """Time every engine on one dataset.

    Each engine runs ``repeats`` times and reports its best wall time
    (the standard guard against scheduler noise on shared hosts).
    Returns the records plus an all-engines-agree flag (identical
    sorted overlap sets across loop, vectorized, and process paths).
    """
    reads = dataset.reads
    records: list[OverlapBenchRecord] = []
    keys: list[list[tuple]] = []

    def measure(engine_label: str, engine: str, run_workers: int):
        config = OverlapConfig(
            min_overlap=min_overlap, n_subsets=n_subsets, engine=engine
        )
        detector = OverlapDetector(config)
        wall = float("inf")
        for _ in range(max(1, repeats)):
            t0 = time.perf_counter()
            if run_workers > 1:
                overlaps = detector.find_overlaps_processes(reads, run_workers)
            else:
                overlaps = detector.find_overlaps(reads)
            wall = min(wall, time.perf_counter() - t0)
        records.append(
            OverlapBenchRecord(
                dataset=dataset.name,
                engine=engine_label,
                wall_s=wall,
                reads_per_s=len(reads) / wall if wall > 0 else 0.0,
                candidates_verified=detector.last_candidates,
                overlaps_found=len(overlaps),
                workers=run_workers if run_workers > 1 else 1,
            )
        )
        keys.append(_overlap_key(overlaps))

    measure("loop", "loop", 1)
    measure("vectorized", "vectorized", 1)
    measure("process", "vectorized", workers)
    agree = all(k == keys[0] for k in keys[1:])
    return records, agree


def regression_failures(records: list[OverlapBenchRecord]) -> list[str]:
    """Datasets where the vectorized engine is slower than legacy."""
    walls: dict[tuple[str, str], float] = {(r.dataset, r.engine): r.wall_s for r in records}
    failures = []
    for (dataset, engine), wall in sorted(walls.items()):
        if engine != "vectorized":
            continue
        loop_wall = walls.get((dataset, "loop"))
        if loop_wall is not None and wall > loop_wall:
            failures.append(
                f"{dataset}: vectorized ({wall:.3f}s) slower than loop ({loop_wall:.3f}s)"
            )
    return failures


def run_overlap_bench(
    datasets: list[BenchDataset] | None = None,
    workers: int = 4,
    n_subsets: int = 4,
    min_overlap: int = 50,
    repeats: int = 2,
) -> tuple[OverlapBenchReport, bool]:
    """Bench all engines on all datasets; returns (report, engines_agree)."""
    if datasets is None:
        datasets = standard_datasets()
    report = OverlapBenchReport(
        metadata={
            "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpu_count": os.cpu_count(),
            "workers": workers,
            "n_subsets": n_subsets,
            "min_overlap": min_overlap,
            "repeats": repeats,
        }
    )
    agree = True
    for dataset in datasets:
        records, dataset_agree = bench_dataset(
            dataset,
            workers=workers,
            n_subsets=n_subsets,
            min_overlap=min_overlap,
            repeats=repeats,
        )
        report.records.extend(records)
        agree = agree and dataset_agree
    return report, agree


def main(
    output: str = DEFAULT_OUTPUT,
    workers: int = 4,
    n_subsets: int = 4,
    dataset_names: list[str] | None = None,
    stream=None,
) -> int:
    """CLI entry point for ``repro bench overlap``.

    Exit codes: 0 ok; 1 vectorized slower than legacy on some dataset;
    2 engines disagreed on an overlap set (results written either way).
    """
    stream = stream or sys.stdout
    datasets = standard_datasets()
    if dataset_names:
        wanted = set(dataset_names)
        unknown = wanted - {d.name for d in datasets}
        if unknown:
            print(f"error: unknown datasets {sorted(unknown)}", file=sys.stderr)
            return 2
        datasets = [d for d in datasets if d.name in wanted]
    report, agree = run_overlap_bench(datasets, workers=workers, n_subsets=n_subsets)
    report.write(output)
    print(report.summary_table(), file=stream)
    print(f"wrote {len(report.records)} records to {output}", file=stream)
    if not agree:
        print("FAIL: engines disagree on overlap sets", file=stream)
        return 2
    failures = regression_failures(report.records)
    if failures:
        print("FAIL: " + "; ".join(failures), file=stream)
        return 1
    return 0
