"""Benchmark harness: standard datasets, runners, and table formatting."""

from repro.bench.datasets import (
    BenchDataset,
    DatasetSpec,
    STANDARD_SPECS,
    build_dataset,
    standard_datasets,
)
from repro.bench.overlap_bench import (
    OverlapBenchRecord,
    OverlapBenchReport,
    regression_failures,
    run_overlap_bench,
)
from repro.bench.reporting import format_series, format_table

__all__ = [
    "DatasetSpec",
    "BenchDataset",
    "STANDARD_SPECS",
    "build_dataset",
    "standard_datasets",
    "format_table",
    "format_series",
    "OverlapBenchRecord",
    "OverlapBenchReport",
    "run_overlap_bench",
    "regression_failures",
]
