"""Standard benchmark datasets D1-D3 (Table I analogue).

The paper evaluates on three Illumina gut-microbiome SRA runs of
~5 Gbases with 100 bp reads.  Our D1-D3 are three synthetic gut
communities over the same ten genera, with distinct seeds (different
genomes *and* different abundance profiles), 100 bp reads, and sizes
scaled to what pure-Python graph assembly can process.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

from repro.io.readset import ReadSet
from repro.simulate.community import Community, CommunityConfig, build_community
from repro.simulate.reads import ReadSimConfig, ReadSimulator

__all__ = ["DatasetSpec", "BenchDataset", "STANDARD_SPECS", "build_dataset", "standard_datasets"]


@dataclass(frozen=True)
class DatasetSpec:
    """Recipe for one benchmark dataset."""

    name: str
    seed: int
    community: CommunityConfig = field(
        default_factory=lambda: CommunityConfig(
            shared_length=4000,
            private_length=3000,
            repeat_copies=1,
            repeat_length=250,
        )
    )
    reads: ReadSimConfig = field(
        default_factory=lambda: ReadSimConfig(read_length=100, coverage=8.0)
    )


@dataclass
class BenchDataset:
    """A realised dataset: community, reads, and identifying metadata."""

    spec: DatasetSpec
    community: Community
    reads: ReadSet

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def n_reads(self) -> int:
        return len(self.reads)

    @property
    def total_bases(self) -> int:
        return self.reads.total_bases

    @property
    def read_length(self) -> int:
        return self.spec.reads.read_length


#: The three standard datasets, mirroring the paper's Table I rows.
STANDARD_SPECS: tuple[DatasetSpec, ...] = (
    DatasetSpec(name="D1", seed=101),
    DatasetSpec(name="D2", seed=202),
    DatasetSpec(name="D3", seed=303),
)


def build_dataset(spec: DatasetSpec) -> BenchDataset:
    """Generate one dataset deterministically from its spec."""
    community = build_community(spec.community, seed=spec.seed)
    sim = ReadSimulator(
        ReadSimConfig(
            read_length=spec.reads.read_length,
            coverage=spec.reads.coverage,
            base_quality=spec.reads.base_quality,
            tail_quality=spec.reads.tail_quality,
            quality_jitter=spec.reads.quality_jitter,
            flat_error_rate=spec.reads.flat_error_rate,
            seed=spec.seed,
        )
    )
    reads = sim.simulate_community(community)
    return BenchDataset(spec=spec, community=community, reads=reads)


@lru_cache(maxsize=8)
def _cached(index: int) -> BenchDataset:
    return build_dataset(STANDARD_SPECS[index])


def standard_datasets() -> list[BenchDataset]:
    """D1-D3, cached per process so benches share the generation cost."""
    return [_cached(i) for i in range(len(STANDARD_SPECS))]
