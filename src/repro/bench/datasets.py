"""Standard benchmark datasets D1-D3 (Table I analogue).

The paper evaluates on three Illumina gut-microbiome SRA runs of
~5 Gbases with 100 bp reads.  Our D1-D3 are three synthetic gut
communities over the same ten genera, with distinct seeds (different
genomes *and* different abundance profiles), 100 bp reads, and sizes
scaled to what pure-Python graph assembly can process.

The finish-stage bench additionally needs *graphs* far larger than
D1-D3's hybrid graphs (a few hundred nodes) to expose the loop-vs-
sparse engine gap: :func:`finish_scale_assemblies` builds synthetic
enriched hybrid assemblies at 10^4-10^5-read-equivalent scale —
contig backbones with implanted transitive edges, containments,
error tips, and bubbles, so every finish kernel does real work —
without paying read alignment for hundreds of thousands of reads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

from repro.io.readset import ReadSet
from repro.simulate.community import Community, CommunityConfig, build_community
from repro.simulate.genome import random_genome
from repro.simulate.reads import ReadSimConfig, ReadSimulator

__all__ = [
    "DatasetSpec",
    "BenchDataset",
    "STANDARD_SPECS",
    "build_dataset",
    "standard_datasets",
    "FinishScaleSpec",
    "FINISH_SCALE_SPECS",
    "build_finish_assembly",
    "finish_scale_assemblies",
    "SCALE_SWEEP_SPECS",
    "SCALE_EQUIVALENCE_SPEC",
    "iter_scale_reads",
    "build_scale_read_store",
]


@dataclass(frozen=True)
class DatasetSpec:
    """Recipe for one benchmark dataset."""

    name: str
    seed: int
    community: CommunityConfig = field(
        default_factory=lambda: CommunityConfig(
            shared_length=4000,
            private_length=3000,
            repeat_copies=1,
            repeat_length=250,
        )
    )
    reads: ReadSimConfig = field(
        default_factory=lambda: ReadSimConfig(read_length=100, coverage=8.0)
    )


@dataclass
class BenchDataset:
    """A realised dataset: community, reads, and identifying metadata."""

    spec: DatasetSpec
    community: Community
    reads: ReadSet

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def n_reads(self) -> int:
        return len(self.reads)

    @property
    def total_bases(self) -> int:
        return self.reads.total_bases

    @property
    def read_length(self) -> int:
        return self.spec.reads.read_length


#: The three standard datasets, mirroring the paper's Table I rows.
STANDARD_SPECS: tuple[DatasetSpec, ...] = (
    DatasetSpec(name="D1", seed=101),
    DatasetSpec(name="D2", seed=202),
    DatasetSpec(name="D3", seed=303),
)


def build_dataset(spec: DatasetSpec) -> BenchDataset:
    """Generate one dataset deterministically from its spec."""
    community = build_community(spec.community, seed=spec.seed)
    sim = ReadSimulator(
        ReadSimConfig(
            read_length=spec.reads.read_length,
            coverage=spec.reads.coverage,
            base_quality=spec.reads.base_quality,
            tail_quality=spec.reads.tail_quality,
            quality_jitter=spec.reads.quality_jitter,
            flat_error_rate=spec.reads.flat_error_rate,
            seed=spec.seed,
        )
    )
    reads = sim.simulate_community(community)
    return BenchDataset(spec=spec, community=community, reads=reads)


@lru_cache(maxsize=8)
def _cached(index: int) -> BenchDataset:
    return build_dataset(STANDARD_SPECS[index])


def standard_datasets() -> list[BenchDataset]:
    """D1-D3, cached per process so benches share the generation cost."""
    return [_cached(i) for i in range(len(STANDARD_SPECS))]


# ---------------------------------------------------------------------------
# Finish-scale synthetic assemblies (S4/S5)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FinishScaleSpec:
    """Recipe for one synthetic finish-scale assembly.

    A ``backbone``-node contig chain over a random genome (consecutive
    contigs overlap by ``contig_length - step`` bases), decorated with
    one defect per backbone node in a fixed 30-cycle so every finish
    stage has real work at scale:

    * every 5th node gets a skip edge ``(i, i+2)`` — removed by
      transitive reduction (witness ``i+1``);
    * cycle offset 7: an error tip hanging off a junction — removed by
      dead-end trimming (too short to be a containment);
    * cycle offset 13: a two-branch bubble to ``i+1`` (the direct
      chain edge becomes transitive through the branches; the shorter
      branch is popped);
    * cycle offset 22: a node properly contained in its anchor —
      removed by containment with identity 1.0.
    """

    name: str
    backbone: int
    seed: int
    contig_length: int = 150
    step: int = 60
    #: mirrors the D-datasets' read simulator, for the read-equivalent.
    coverage: float = 8.0
    read_length: int = 100

    @property
    def genome_length(self) -> int:
        return self.step * (self.backbone - 1) + self.contig_length

    @property
    def read_equivalent(self) -> int:
        """Reads a D-style simulation of this genome would need."""
        return int(self.genome_length * self.coverage / self.read_length)


@dataclass
class FinishScaleAssembly:
    """A realised finish-scale assembly with block-partition anchors."""

    spec: FinishScaleSpec
    assembly: "HybridAssembly"
    #: backbone chain position per node (decorations inherit their
    #: anchor's position) — the key for locality-preserving labels.
    anchors: np.ndarray

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def n_nodes(self) -> int:
        return int(self.assembly.graph.n_nodes)

    def labels(self, k: int) -> np.ndarray:
        """Block partition labels: k contiguous backbone intervals."""
        labels = (self.anchors * k) // max(self.spec.backbone, 1)
        return np.minimum(labels, k - 1).astype(np.int64)


#: 10^4- and 10^5-read-equivalent graphs for the engine bench.
FINISH_SCALE_SPECS: tuple[FinishScaleSpec, ...] = (
    FinishScaleSpec(name="S4", backbone=2000, seed=404),
    FinishScaleSpec(name="S5", backbone=16000, seed=505),
)


def build_finish_assembly(spec: FinishScaleSpec) -> FinishScaleAssembly:
    """Deterministically realise one finish-scale assembly."""
    from repro.distributed.dgraph import HybridAssembly
    from repro.graph.overlap_graph import OverlapGraph

    rng = np.random.default_rng(spec.seed)
    genome = random_genome(spec.genome_length, rng)
    n_chain = spec.backbone
    length, step = spec.contig_length, spec.step

    contigs: list[np.ndarray] = [
        genome[i * step : i * step + length] for i in range(n_chain)
    ]
    anchors: list[int] = list(range(n_chain))
    eu: list[int] = []
    ev: list[int] = []
    deltas: list[int] = []

    def add_edge(u: int, v: int, d: int) -> None:
        eu.append(u)
        ev.append(v)
        deltas.append(d)

    def add_node(anchor: int, start: int, clen: int) -> int:
        node = len(contigs)
        contigs.append(genome[start : start + clen])
        anchors.append(anchor)
        return node

    for i in range(n_chain - 1):
        add_edge(i, i + 1, step)

    for i in range(n_chain):
        base = i * step
        if i % 5 == 2 and i + 2 < n_chain:
            add_edge(i, i + 2, 2 * step)  # transitive via i+1
        cycle = i % 30
        if cycle == 7 and 0 < i < n_chain - 1:
            # Tip past the junction contig's end: overlap exactly 50,
            # so the edge is not short and the tip is not contained.
            tip = add_node(i, base + 100, 80)
            add_edge(i, tip, 100)
        elif cycle == 13 and i + 1 < n_chain:
            long_b = add_node(i, base + 30, length)
            short_b = add_node(i, base + 35, length - 10)
            add_edge(i, long_b, 30)
            add_edge(long_b, i + 1, step - 30)
            add_edge(i, short_b, 35)
            add_edge(short_b, i + 1, step - 35)
        elif cycle == 22:
            child = add_node(i, base + 25, 100)
            add_edge(i, child, 25)  # child properly contained in i

    lengths = np.array([c.size for c in contigs], dtype=np.int64)
    eu_a = np.array(eu, dtype=np.int64)
    ev_a = np.array(ev, dtype=np.int64)
    d_a = np.array(deltas, dtype=np.int64)
    ov = np.minimum(lengths[eu_a], d_a + lengths[ev_a]) - np.maximum(0, d_a)
    weights = np.maximum(ov, 1).astype(np.float64)
    graph = OverlapGraph(len(contigs), eu_a, ev_a, weights, deltas=d_a)
    clusters = [np.array([i], dtype=np.int64) for i in range(len(contigs))]
    assembly = HybridAssembly(graph=graph, contigs=contigs, clusters=clusters)
    return FinishScaleAssembly(
        spec=spec, assembly=assembly, anchors=np.array(anchors, dtype=np.int64)
    )


@lru_cache(maxsize=4)
def _cached_scale(index: int) -> FinishScaleAssembly:
    return build_finish_assembly(FINISH_SCALE_SPECS[index])


def finish_scale_assemblies() -> list[FinishScaleAssembly]:
    """S4-S5, cached per process so benches share the build cost."""
    return [_cached_scale(i) for i in range(len(FINISH_SCALE_SPECS))]


# ---------------------------------------------------------------------------
# Out-of-core scale reads (``repro bench scale``)
# ---------------------------------------------------------------------------

#: the ``bench scale`` sweep: the S4/S5 scale points plus a
#: 10^6-read-equivalent S6 genome (~12.5 Mbp at 8x / 100 bp).
SCALE_SWEEP_SPECS: tuple[FinishScaleSpec, ...] = (
    FINISH_SCALE_SPECS[0],
    FINISH_SCALE_SPECS[1],
    FinishScaleSpec(name="S6", backbone=208_000, seed=606),
)

#: small spec for the in-RAM-vs-sharded full-assembly equivalence gate
#: (~1.4k reads — large enough to produce real contigs, small enough
#: to assemble on all three backends inside the bench).
SCALE_EQUIVALENCE_SPEC = FinishScaleSpec(name="SE", backbone=300, seed=808)


def iter_scale_reads(spec: FinishScaleSpec, chunk: int = 4096, error_rate: float = 0.005):
    """Stream D-style shotgun reads of a scale spec, never all at once.

    Yields ``spec.read_equivalent`` reads sampled uniformly from the
    spec's random genome (random strand, flat substitution-error rate,
    no quality strings), in chunks of vectorized numpy work — peak
    memory is O(genome + chunk), independent of the read count.  Feed
    the generator to :func:`repro.store.pack_reads` (or use
    :func:`build_scale_read_store`) so scale datasets go straight to
    disk instead of materializing a full read list in RAM.
    """
    from repro.io.records import Read
    from repro.sequence.dna import reverse_complement

    rng = np.random.default_rng(spec.seed)
    genome = random_genome(spec.genome_length, rng)
    total = spec.read_equivalent
    L = spec.read_length
    made = 0
    while made < total:
        n = min(chunk, total - made)
        starts = rng.integers(0, genome.size - L + 1, size=n)
        strands = rng.integers(0, 2, size=n)
        frags = genome[starts[:, None] + np.arange(L)[None, :]]
        hit = rng.random(frags.shape) < error_rate
        n_hit = int(hit.sum())
        if n_hit:
            frags = frags.copy()
            frags[hit] = (frags[hit] + rng.integers(1, 4, size=n_hit)) % 4
        for r in range(n):
            codes = frags[r]
            if strands[r]:
                codes = reverse_complement(codes)
            yield Read(f"{spec.name}:{made + r}", np.ascontiguousarray(codes))
        made += n


def build_scale_read_store(
    spec: FinishScaleSpec,
    path,
    shard_size: int = 4096,
    resume: bool = False,
):
    """Pack a scale spec's synthetic reads into a sharded store.

    Returns the store manifest.  Read synthesis is routed through
    :func:`iter_scale_reads` + :func:`repro.store.pack_reads`, so at no
    point does the full read array exist in memory — the sweep's 10^6+
    read equivalents stream genome → chunk → shard file.
    """
    from repro.store import pack_reads

    return pack_reads(
        iter_scale_reads(spec),
        path,
        shard_size=shard_size,
        resume=resume,
        meta={"spec": spec.name, "read_equivalent": spec.read_equivalent},
    )
