"""Out-of-core scale benchmark (``repro bench scale``).

Sweeps read counts across the scale specs (S4 ~10^4, S5 ~10^5, S6
~10^6 read equivalents), exercising the sharded store end to end and
writing the trajectory to ``BENCH_scale.json``:

* **pack** — stream-synthesize the spec's reads and pack them into a
  sharded store (:func:`~repro.bench.datasets.build_scale_read_store`);
  records pack seconds, store bytes, and shard count.  At no point does
  the full read array exist in RAM.
* **stream** — a shard-pair-wise candidate-generation scan over the
  packed store: each shard's k-mer table is materialized from its own
  bytes, sorted, and matched against the previous shard's, so the live
  working set is O(shard + cache), never O(reads).  Records scan
  seconds, window/match counts, LRU cache stats, and the
  tracemalloc-tracked peak.
* **equivalence** — on the small SE spec, a full assembly from the
  store versus the same reads in RAM, on every backend; contigs must
  be byte-identical.

Two gates are wired for CI:

* **Memory ceiling** (exit 1): every stream cell's tracked peak must
  stay under ``cache_budget + MEMORY_SLACK_BYTES`` — the cache budget
  is the configured memory ceiling of the streaming data path, and the
  slack covers per-shard transient arrays (the gate formula is
  recorded in the metadata).  This is what makes "10^6 reads, bounded
  RSS" a tested contract instead of a hope.  ``ru_maxrss`` is recorded
  per cell for context but not gated — it is monotonic per process, so
  later cells inherit earlier cells' high-water mark.
* **Equivalence** (exit 2): sharded-vs-in-RAM contigs must match
  byte-for-byte on serial, sim, and process backends.

See docs/performance.md for the memory-ceiling table this generates.
"""

from __future__ import annotations

import json
import os
import platform
import resource
import sys
import tempfile
import time
import tracemalloc
from dataclasses import asdict, dataclass, field

import numpy as np

from repro.bench.datasets import (
    SCALE_EQUIVALENCE_SPEC,
    SCALE_SWEEP_SPECS,
    FinishScaleSpec,
    build_scale_read_store,
    iter_scale_reads,
)
from repro.bench.reporting import format_table
from repro.core.config import AssemblyConfig
from repro.core.focus import FocusAssembler
from repro.io.readset import ReadSet

__all__ = [
    "SCHEMA",
    "ScaleBenchRecord",
    "ScaleBenchReport",
    "stream_scan",
    "bench_spec",
    "bench_equivalence",
    "run_scale_bench",
    "memory_failures",
    "main",
]

#: schema of one record in ``BENCH_scale.json``; bump when fields change.
SCHEMA = "repro.bench.scale/v1"

DEFAULT_OUTPUT = "BENCH_scale.json"
DEFAULT_CACHE_BUDGET = 64 * 1024 * 1024
DEFAULT_SHARD_SIZE = 4096
BACKENDS = ("serial", "sim", "process")

#: allowance on top of the cache budget for per-shard transient arrays
#: (k-mer tables, sort buffers) and interpreter overhead; the memory
#: gate is ``peak_tracked <= cache_budget + MEMORY_SLACK_BYTES``.
MEMORY_SLACK_BYTES = 64 * 1024 * 1024


@dataclass(frozen=True)
class ScaleBenchRecord:
    """One (dataset, cell) measurement of the scale sweep."""

    dataset: str
    #: which sweep cell: "pack", "stream", or "equivalence:<backend>".
    cell: str
    n_reads: int
    seconds: float
    #: tracemalloc-tracked peak python allocations during the cell.
    peak_tracked_bytes: int
    #: process high-water RSS after the cell (monotonic; context only).
    ru_maxrss_kb: int
    #: cell-specific extras (store bytes, cache stats, match counts...).
    extra: dict = field(default_factory=dict)


@dataclass
class ScaleBenchReport:
    """A full scale-bench run: records plus environment metadata."""

    records: list[ScaleBenchRecord] = field(default_factory=list)
    metadata: dict = field(default_factory=dict)

    def to_json(self) -> str:
        return json.dumps(
            {
                "schema": SCHEMA,
                "metadata": self.metadata,
                "results": [asdict(r) for r in self.records],
            },
            indent=2,
        )

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json() + "\n")

    def summary_table(self) -> str:
        rows = []
        for r in self.records:
            rows.append(
                [
                    r.dataset,
                    r.cell,
                    f"{r.n_reads:,}",
                    f"{r.seconds:.3f}",
                    f"{r.peak_tracked_bytes / (1 << 20):.1f}",
                    f"{r.ru_maxrss_kb / 1024:.0f}",
                ]
            )
        return format_table(
            ["Dataset", "Cell", "Reads", "Seconds", "Peak (MiB)", "RSS hwm (MiB)"],
            rows,
        )


def _ru_maxrss_kb() -> int:
    """Process peak RSS in KiB (Linux reports KiB; macOS bytes)."""
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - linux CI
        peak //= 1024
    return int(peak)


class _measured:
    """Context manager: wall seconds + tracemalloc peak for one cell."""

    def __enter__(self) -> "_measured":
        self._was_tracing = tracemalloc.is_tracing()
        if not self._was_tracing:
            tracemalloc.start()
        tracemalloc.reset_peak()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.seconds = time.perf_counter() - self._t0
        _, self.peak = tracemalloc.get_traced_memory()
        if not self._was_tracing:
            tracemalloc.stop()


def _store_bytes(path: str) -> int:
    total = 0
    for entry in os.listdir(path):
        full = os.path.join(path, entry)
        if os.path.isfile(full):
            total += os.path.getsize(full)
    return total


def stream_scan(reads, k: int = 16) -> dict:
    """Shard-pair-wise k-mer candidate scan over a sharded read set.

    The out-of-core analogue of the overlap stage's candidate
    generation: for every shard, materialize its k-mer table from that
    shard's bytes alone, sort it, and count shared k-mer values against
    the previous (adjacent) shard.  Only two shards' worth of k-mer
    arrays are ever live, so peak memory is O(shard), bounded by the
    store's cache budget plus transient sort buffers.
    """
    store = reads.store
    total_windows = 0
    total_matches = 0
    prev_sorted: np.ndarray | None = None
    for s in range(store.n_shards):
        lo = int(store.record_starts[s])
        hi = int(store.record_starts[s + 1])
        vals, _, _ = reads.kmer_table(k, np.arange(lo, hi, dtype=np.int64))
        cur = np.sort(vals[vals >= 0])
        total_windows += int(cur.size)
        if prev_sorted is not None and cur.size and prev_sorted.size:
            left = np.searchsorted(prev_sorted, cur, side="left")
            right = np.searchsorted(prev_sorted, cur, side="right")
            total_matches += int((right - left).sum())
        prev_sorted = cur
    return {
        "k": k,
        "n_shards": int(store.n_shards),
        "kmer_windows": total_windows,
        "adjacent_shard_matches": total_matches,
        "cache": reads.store.cache.stats().to_dict(),
    }


def bench_spec(
    spec: FinishScaleSpec,
    workdir: str,
    shard_size: int = DEFAULT_SHARD_SIZE,
    cache_budget: int = DEFAULT_CACHE_BUDGET,
) -> list[ScaleBenchRecord]:
    """Pack + stream cells for one scale spec."""
    store_path = os.path.join(workdir, spec.name)
    with _measured() as m:
        manifest = build_scale_read_store(spec, store_path, shard_size=shard_size)
    records = [
        ScaleBenchRecord(
            dataset=spec.name,
            cell="pack",
            n_reads=manifest.n_records,
            seconds=m.seconds,
            peak_tracked_bytes=m.peak,
            ru_maxrss_kb=_ru_maxrss_kb(),
            extra={
                "store_bytes": _store_bytes(store_path),
                "n_shards": manifest.n_shards,
                "shard_size": shard_size,
                "genome_length": spec.genome_length,
            },
        )
    ]
    with _measured() as m:
        reads = ReadSet.open(store_path, cache_budget=cache_budget)
        scan = stream_scan(reads)
    records.append(
        ScaleBenchRecord(
            dataset=spec.name,
            cell="stream",
            n_reads=len(reads),
            seconds=m.seconds,
            peak_tracked_bytes=m.peak,
            ru_maxrss_kb=_ru_maxrss_kb(),
            extra=scan,
        )
    )
    return records


def bench_equivalence(
    spec: FinishScaleSpec,
    workdir: str,
    shard_size: int = DEFAULT_SHARD_SIZE,
    cache_budget: int = DEFAULT_CACHE_BUDGET,
    backends: tuple[str, ...] = BACKENDS,
) -> tuple[list[ScaleBenchRecord], bool]:
    """Full in-RAM-vs-sharded assembly on every backend (byte-identity)."""
    store_path = os.path.join(workdir, f"{spec.name}-equiv")
    build_scale_read_store(spec, store_path, shard_size=shard_size)
    ram_reads = ReadSet(iter_scale_reads(spec))
    records: list[ScaleBenchRecord] = []
    agree = True
    for backend in backends:
        config = AssemblyConfig(
            backend=backend,
            n_partitions=2,
            store_path=store_path,
            shard_size=shard_size,
            cache_budget=cache_budget,
        )
        assembler = FocusAssembler(config)
        ram_result = assembler.assemble(ram_reads)
        with _measured() as m:
            store_result = assembler.assemble()
        identical = [c.tobytes() for c in ram_result.contigs] == [
            c.tobytes() for c in store_result.contigs
        ]
        agree = agree and identical
        records.append(
            ScaleBenchRecord(
                dataset=spec.name,
                cell=f"equivalence:{backend}",
                n_reads=len(ram_reads),
                seconds=m.seconds,
                peak_tracked_bytes=m.peak,
                ru_maxrss_kb=_ru_maxrss_kb(),
                extra={
                    "identical": identical,
                    "n_contigs": len(store_result.contigs),
                },
            )
        )
    return records, agree


def memory_failures(
    records: list[ScaleBenchRecord], cache_budget: int
) -> list[str]:
    """Stream cells whose tracked peak broke the memory ceiling."""
    ceiling = cache_budget + MEMORY_SLACK_BYTES
    failures = []
    for r in records:
        if r.cell != "stream":
            continue
        if r.peak_tracked_bytes > ceiling:
            failures.append(
                f"{r.dataset}: stream peak "
                f"{r.peak_tracked_bytes / (1 << 20):.1f} MiB over ceiling "
                f"{ceiling / (1 << 20):.1f} MiB"
            )
    return failures


def run_scale_bench(
    specs: list[FinishScaleSpec] | None = None,
    workdir: str | None = None,
    shard_size: int = DEFAULT_SHARD_SIZE,
    cache_budget: int = DEFAULT_CACHE_BUDGET,
    equivalence_spec: FinishScaleSpec | None = SCALE_EQUIVALENCE_SPEC,
) -> tuple[ScaleBenchReport, bool]:
    """Run the sweep; returns (report, equivalence-agree flag)."""
    if specs is None:
        specs = list(SCALE_SWEEP_SPECS)
    report = ScaleBenchReport(
        metadata={
            "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpu_count": os.cpu_count(),
            "shard_size": shard_size,
            "cache_budget_bytes": cache_budget,
            "memory_slack_bytes": MEMORY_SLACK_BYTES,
            "memory_gate": (
                "stream peak_tracked_bytes <= "
                "cache_budget_bytes + memory_slack_bytes"
            ),
            "specs": [
                {
                    "name": s.name,
                    "read_equivalent": s.read_equivalent,
                    "genome_length": s.genome_length,
                }
                for s in specs
            ],
        }
    )
    agree = True
    with tempfile.TemporaryDirectory(prefix="repro-scale-") as tmp:
        root = workdir or tmp
        for spec in specs:
            report.records.extend(
                bench_spec(
                    spec, root, shard_size=shard_size, cache_budget=cache_budget
                )
            )
        if equivalence_spec is not None:
            eq_records, agree = bench_equivalence(
                equivalence_spec,
                root,
                shard_size=shard_size,
                cache_budget=cache_budget,
            )
            report.records.extend(eq_records)
    report.metadata["peak_tracked_bytes_max"] = max(
        (r.peak_tracked_bytes for r in report.records), default=0
    )
    report.metadata["ru_maxrss_kb_final"] = _ru_maxrss_kb()
    return report, agree


def main(
    output: str = DEFAULT_OUTPUT,
    dataset_names: list[str] | None = None,
    shard_size: int = DEFAULT_SHARD_SIZE,
    cache_budget: int = DEFAULT_CACHE_BUDGET,
    skip_equivalence: bool = False,
    stream=None,
) -> int:
    """CLI entry point for ``repro bench scale``.

    Exit codes: 0 ok; 1 the memory ceiling broke on a stream cell;
    2 sharded-vs-in-RAM contigs disagreed on some backend (results
    are written either way).
    """
    stream = stream or sys.stdout
    available = {s.name: s for s in SCALE_SWEEP_SPECS}
    if dataset_names:
        unknown = set(dataset_names) - set(available)
        if unknown:
            print(f"error: unknown datasets {sorted(unknown)}", file=sys.stderr)
            return 2
        specs = [available[name] for name in dataset_names]
    else:
        specs = list(SCALE_SWEEP_SPECS)
    report, agree = run_scale_bench(
        specs,
        shard_size=shard_size,
        cache_budget=cache_budget,
        equivalence_spec=None if skip_equivalence else SCALE_EQUIVALENCE_SPEC,
    )
    report.write(output)
    print(report.summary_table(), file=stream)
    print(f"wrote {len(report.records)} records to {output}", file=stream)
    if not agree:
        print("FAIL: sharded and in-RAM contigs differ", file=stream)
        return 2
    failures = memory_failures(report.records, cache_budget)
    if failures:
        print("FAIL: " + "; ".join(failures), file=stream)
        return 1
    return 0
