"""Perf-trajectory benchmark for the finish stages (``repro bench finish``).

Times the distributed graph stages (transitive reduction, containment
removal, dead-end/bubble trimming, traversal) on the standard D1/D2
datasets across partition counts and all three execution backends —
``serial`` (in-process loop), ``sim`` (simulated MPI cluster, virtual
clocks), and ``process`` (real OS workers) — verifies every backend
produces byte-identical contigs, and writes the machine-readable
trajectory to ``BENCH_finish.json``.

The JSON is the repo's durable performance record for the finish
pipeline, the companion of ``BENCH_overlap.json`` for the alignment
stage.  Two gates are wired for CI:

* **Equivalence** (exit 2): the backends must agree on contigs for
  every (dataset, partitions) cell — this is the correctness contract
  of the kernel/merge split and is enforced unconditionally.
* **Process regression** (exit 1): at >= ``PROCESS_GATE_PARTITIONS``
  partitions the process backend must not be slower than the serial
  loop on the distributed stages.  Real parallel speedup needs real
  cores, so this gate is only *enforced* when the host has at least
  ``PROCESS_GATE_MIN_CORES`` CPUs; on single-core hosts (like the CI
  container that produced the checked-in trajectory — see the
  ``cpu_count`` metadata) the comparison is still recorded but the
  gate reports itself skipped, exactly as the process engine rows in
  ``BENCH_overlap.json`` are recorded but ungated.

See docs/performance.md for how to read the output.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from dataclasses import asdict, dataclass, field

import numpy as np

from repro.bench.datasets import BenchDataset, standard_datasets
from repro.bench.reporting import format_table
from repro.core.config import AssemblyConfig
from repro.core.focus import FocusAssembler

__all__ = [
    "FinishBenchRecord",
    "FinishBenchReport",
    "bench_dataset",
    "run_finish_bench",
    "regression_failures",
    "process_gate_enforced",
    "main",
]

#: schema of one record in ``BENCH_finish.json``; bump when fields change.
SCHEMA = "repro.bench.finish/v1"

DEFAULT_OUTPUT = "BENCH_finish.json"
DEFAULT_DATASETS = ("D1", "D2")
DEFAULT_PARTITIONS = (4, 8)
BACKENDS = ("serial", "sim", "process")

#: the process-vs-serial gate kicks in at this partition count ...
PROCESS_GATE_PARTITIONS = 4
#: ... but only on hosts with at least this many cores (a fork pool on
#: one core can only ever add overhead, never speedup).
PROCESS_GATE_MIN_CORES = 2


@dataclass(frozen=True)
class FinishBenchRecord:
    """One (dataset, partitions, backend) timing measurement."""

    dataset: str
    backend: str
    partitions: int
    #: distributed-stage seconds (trim + traversal), best of ``repeats``.
    stage_s: float
    #: clock of ``stage_s``: "wall" (serial/process) or "virtual" (sim).
    time_kind: str
    #: per-stage breakdown on the same clock.
    stages: dict[str, float]
    n_contigs: int
    n50: int
    workers: int = 1


@dataclass
class FinishBenchReport:
    """A full bench run: records plus environment metadata."""

    records: list[FinishBenchRecord] = field(default_factory=list)
    metadata: dict = field(default_factory=dict)

    def to_json(self) -> str:
        return json.dumps(
            {
                "schema": SCHEMA,
                "metadata": self.metadata,
                "results": [asdict(r) for r in self.records],
            },
            indent=2,
        )

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json() + "\n")

    def summary_table(self) -> str:
        serial_wall = {
            (r.dataset, r.partitions): r.stage_s
            for r in self.records
            if r.backend == "serial"
        }
        rows = []
        for r in self.records:
            base = serial_wall.get((r.dataset, r.partitions))
            speedup = f"{base / r.stage_s:.2f}x" if base and r.stage_s > 0 else "-"
            rows.append(
                [
                    r.dataset,
                    r.partitions,
                    r.backend,
                    f"{r.stage_s:.3f}",
                    r.time_kind,
                    r.n_contigs,
                    r.n50,
                    speedup,
                ]
            )
        return format_table(
            ["Dataset", "k", "Backend", "Stage (s)", "Clock", "Contigs", "N50", "vs serial"],
            rows,
        )


def _stage_total(stage_times: dict[str, float]) -> float:
    """Sum of the distributed stages, skipping the trim_total rollup."""
    return sum(v for k, v in stage_times.items() if k != "trim_total")


def _contig_key(contigs: list[np.ndarray]) -> list[bytes]:
    return sorted(c.tobytes() for c in contigs)


def bench_dataset(
    dataset: BenchDataset,
    partitions: tuple[int, ...] = DEFAULT_PARTITIONS,
    workers: int = 0,
    repeats: int = 2,
) -> tuple[list[FinishBenchRecord], bool]:
    """Time every backend on one dataset across partition counts.

    ``prepare`` (preprocess/align/graph build) runs once; each
    (partitions, backend) cell then re-runs ``finish`` ``repeats``
    times and reports its best distributed-stage time.  Returns the
    records plus an all-backends-agree flag (byte-identical sorted
    contig sets within every partition count).
    """
    config = AssemblyConfig(backend_workers=workers)
    assembler = FocusAssembler(config)
    prep = assembler.prepare(dataset.reads)

    records: list[FinishBenchRecord] = []
    agree = True
    for k in partitions:
        keys: list[list[bytes]] = []
        for backend in BACKENDS:
            best: FinishBenchRecord | None = None
            for _ in range(max(1, repeats)):
                result = assembler.finish(prep, n_partitions=k, backend=backend)
                stage_s = _stage_total(result.virtual_times)
                if best is None or stage_s < best.stage_s:
                    best = FinishBenchRecord(
                        dataset=dataset.name,
                        backend=backend,
                        partitions=k,
                        stage_s=stage_s,
                        time_kind=result.time_kind,
                        stages=dict(result.virtual_times),
                        n_contigs=result.stats.n_contigs,
                        n50=result.stats.n50,
                        workers=workers if backend == "process" else 1,
                    )
            assert best is not None
            records.append(best)
            keys.append(_contig_key(result.contigs))
        agree = agree and all(key == keys[0] for key in keys[1:])
    return records, agree


def process_gate_enforced(cpu_count: int | None) -> bool:
    """Whether the process-vs-serial gate is binding on this host."""
    return (cpu_count or 1) >= PROCESS_GATE_MIN_CORES


def regression_failures(records: list[FinishBenchRecord]) -> list[str]:
    """Cells where the process backend is slower than the serial loop.

    Pure record comparison — callers decide whether the host has
    enough cores for the result to gate (see
    :func:`process_gate_enforced`).
    """
    walls: dict[tuple[str, int, str], float] = {
        (r.dataset, r.partitions, r.backend): r.stage_s for r in records
    }
    failures = []
    for (dataset, k, backend), wall in sorted(walls.items()):
        if backend != "process" or k < PROCESS_GATE_PARTITIONS:
            continue
        serial_wall = walls.get((dataset, k, "serial"))
        if serial_wall is not None and wall > serial_wall:
            failures.append(
                f"{dataset}@k={k}: process ({wall:.3f}s) slower than "
                f"serial ({serial_wall:.3f}s)"
            )
    return failures


def run_finish_bench(
    datasets: list[BenchDataset] | None = None,
    partitions: tuple[int, ...] = DEFAULT_PARTITIONS,
    workers: int = 0,
    repeats: int = 2,
) -> tuple[FinishBenchReport, bool]:
    """Bench all backends on all datasets; returns (report, agree)."""
    if datasets is None:
        datasets = [
            d for d in standard_datasets() if d.name in DEFAULT_DATASETS
        ]
    cpu_count = os.cpu_count()
    report = FinishBenchReport(
        metadata={
            "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpu_count": cpu_count,
            "workers": workers,
            "partitions": list(partitions),
            "repeats": repeats,
            "process_gate_enforced": process_gate_enforced(cpu_count),
            "process_gate_min_cores": PROCESS_GATE_MIN_CORES,
        }
    )
    agree = True
    for dataset in datasets:
        records, dataset_agree = bench_dataset(
            dataset, partitions=partitions, workers=workers, repeats=repeats
        )
        report.records.extend(records)
        agree = agree and dataset_agree
    return report, agree


def main(
    output: str = DEFAULT_OUTPUT,
    workers: int = 0,
    partitions: tuple[int, ...] = DEFAULT_PARTITIONS,
    dataset_names: list[str] | None = None,
    stream=None,
) -> int:
    """CLI entry point for ``repro bench finish``.

    Exit codes: 0 ok; 1 process slower than serial at gated partition
    counts on a multi-core host; 2 backends disagreed on contigs
    (results written either way).  On single-core hosts the process
    gate is recorded but not enforced.
    """
    stream = stream or sys.stdout
    datasets = standard_datasets()
    wanted = set(dataset_names) if dataset_names else set(DEFAULT_DATASETS)
    unknown = wanted - {d.name for d in datasets}
    if unknown:
        print(f"error: unknown datasets {sorted(unknown)}", file=sys.stderr)
        return 2
    datasets = [d for d in datasets if d.name in wanted]
    report, agree = run_finish_bench(
        datasets, partitions=partitions, workers=workers
    )
    report.write(output)
    print(report.summary_table(), file=stream)
    print(f"wrote {len(report.records)} records to {output}", file=stream)
    if not agree:
        print("FAIL: backends disagree on contigs", file=stream)
        return 2
    failures = regression_failures(report.records)
    if failures:
        if process_gate_enforced(os.cpu_count()):
            print("FAIL: " + "; ".join(failures), file=stream)
            return 1
        print(
            "note: process gate skipped (single-core host): "
            + "; ".join(failures),
            file=stream,
        )
    return 0
