"""Perf-trajectory benchmark for the finish stages (``repro bench finish``).

Times the distributed graph stages (transitive reduction, containment
removal, dead-end/bubble trimming, traversal) across three axes:

* **dataset** — the read-simulated D1/D2 communities (full
  prepare+finish pipeline) plus the synthetic finish-scale assemblies
  S4/S5 (:mod:`repro.bench.datasets`), whose 10^4-10^5-read-equivalent
  graphs are what separate the engines;
* **backend** — ``serial`` (in-process loop), ``sim`` (simulated MPI
  cluster, virtual clocks), and ``process`` (real OS workers);
* **engine** — the ``loop`` reference kernels versus the vectorized
  ``sparse`` masked-CSR kernels (:mod:`repro.graph.sparse`).

Every (backend, engine) cell must produce byte-identical contigs, and
the machine-readable trajectory is written to ``BENCH_finish.json``
with explicit per-stage loop-vs-sparse speedup rows (the
``engine_speedups`` section).  Three gates are wired for CI:

* **Equivalence** (exit 2): all backends *and* engines must agree on
  contigs for every (dataset, partitions) cell — this is the
  correctness contract of the kernel/merge split and of the sparse
  engine, and is enforced unconditionally.
* **Process regression** (exit 1): at >= ``PROCESS_GATE_PARTITIONS``
  partitions the process backend must not be slower than the serial
  loop on the distributed stages (same engine).  Real parallel
  speedup needs real cores, so this gate is only *enforced* when the
  host has at least ``PROCESS_GATE_MIN_CORES`` CPUs; on single-core
  hosts the comparison is recorded but the gate reports itself
  skipped.
* **Sparse regression** (exit 1): on graphs with at least
  ``SPARSE_GATE_MIN_NODES`` nodes the sparse engine must not be
  slower than the loop engine on the trimming stages
  (``trim_total``).  Small graphs (D1/D2, a few hundred nodes) are
  recorded but ungated — there the vectorization constant can
  legitimately win or lose by noise.

See docs/performance.md for how to read the output.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from dataclasses import asdict, dataclass, field

import numpy as np

from repro.bench.datasets import (
    BenchDataset,
    FinishScaleAssembly,
    finish_scale_assemblies,
    standard_datasets,
)
from repro.bench.reporting import format_table
from repro.core.config import AssemblyConfig
from repro.core.focus import FocusAssembler
from repro.core.stats import AssemblyStats
from repro.distributed.dgraph import DistributedAssemblyGraph
from repro.distributed.traversal import contigs_from_paths
from repro.graph.sparse import HAVE_SCIPY
from repro.parallel.backend import create_backend

__all__ = [
    "FinishBenchRecord",
    "FinishBenchReport",
    "bench_dataset",
    "bench_finish_scale",
    "run_finish_bench",
    "regression_failures",
    "sparse_regression_failures",
    "process_gate_enforced",
    "main",
]

#: schema of one record in ``BENCH_finish.json``; bump when fields change.
#: v2 added the ``engine`` axis and per-record ``n_nodes``.
SCHEMA = "repro.bench.finish/v2"

DEFAULT_OUTPUT = "BENCH_finish.json"
DEFAULT_DATASETS = ("D1", "D2", "S4", "S5")
DEFAULT_PARTITIONS = (4, 8)
BACKENDS = ("serial", "sim", "process")
ENGINES = ("loop", "sparse")

#: the process-vs-serial gate kicks in at this partition count ...
PROCESS_GATE_PARTITIONS = 4
#: ... but only on hosts with at least this many cores (a fork pool on
#: one core can only ever add overhead, never speedup).
PROCESS_GATE_MIN_CORES = 2

#: the sparse-vs-loop gate only binds on graphs at least this large;
#: below it the constant factors dominate and the comparison is noise.
SPARSE_GATE_MIN_NODES = 1000

#: the finish trim sequence with AssemblyConfig's default parameters,
#: used to drive the synthetic S-datasets through the backends
#: directly (they have no reads to prepare).
_SCALE_TRIM_SEQUENCE = (
    ("transitive", {"tolerance": 2}),
    ("containment", {"min_overlap": 50, "min_identity": 0.9}),
    ("dead_ends", {"max_tip_bases": 150}),
    ("bubbles", {}),
)


@dataclass(frozen=True)
class FinishBenchRecord:
    """One (dataset, partitions, backend, engine) timing measurement."""

    dataset: str
    backend: str
    partitions: int
    #: distributed-stage seconds (trim + traversal), best of ``repeats``.
    stage_s: float
    #: clock of ``stage_s``: "wall" (serial/process) or "virtual" (sim).
    time_kind: str
    #: per-stage breakdown on the same clock.
    stages: dict[str, float]
    n_contigs: int
    n50: int
    workers: int = 1
    #: finish-kernel implementation: "loop" or "sparse".
    engine: str = "loop"
    #: hybrid-graph size the stages ran on (gates the sparse check).
    n_nodes: int = 0


@dataclass
class FinishBenchReport:
    """A full bench run: records plus environment metadata."""

    records: list[FinishBenchRecord] = field(default_factory=list)
    metadata: dict = field(default_factory=dict)

    def engine_speedups(self) -> list[dict]:
        """Per-stage loop-vs-sparse rows for every cell with both engines."""
        by_cell: dict[tuple[str, int, str, str], FinishBenchRecord] = {
            (r.dataset, r.partitions, r.backend, r.engine): r
            for r in self.records
        }
        rows: list[dict] = []
        for (dataset, k, backend, engine), loop_rec in sorted(by_cell.items()):
            if engine != "loop":
                continue
            sparse_rec = by_cell.get((dataset, k, backend, "sparse"))
            if sparse_rec is None:
                continue
            for stage, loop_s in loop_rec.stages.items():
                sparse_s = sparse_rec.stages.get(stage)
                if sparse_s is None:
                    continue
                rows.append(
                    {
                        "dataset": dataset,
                        "partitions": k,
                        "backend": backend,
                        "stage": stage,
                        "loop_s": loop_s,
                        "sparse_s": sparse_s,
                        "speedup": (loop_s / sparse_s) if sparse_s > 0 else None,
                    }
                )
        return rows

    def to_json(self) -> str:
        return json.dumps(
            {
                "schema": SCHEMA,
                "metadata": self.metadata,
                "results": [asdict(r) for r in self.records],
                "engine_speedups": self.engine_speedups(),
            },
            indent=2,
        )

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json() + "\n")

    def summary_table(self) -> str:
        serial_wall = {
            (r.dataset, r.partitions, r.engine): r.stage_s
            for r in self.records
            if r.backend == "serial"
        }
        loop_trim = {
            (r.dataset, r.partitions, r.backend): r.stages.get("trim_total")
            for r in self.records
            if r.engine == "loop"
        }
        rows = []
        for r in self.records:
            base = serial_wall.get((r.dataset, r.partitions, r.engine))
            speedup = f"{base / r.stage_s:.2f}x" if base and r.stage_s > 0 else "-"
            loop_s = loop_trim.get((r.dataset, r.partitions, r.backend))
            trim = r.stages.get("trim_total")
            vs_loop = "-"
            if r.engine == "sparse" and loop_s and trim and trim > 0:
                vs_loop = f"{loop_s / trim:.2f}x"
            rows.append(
                [
                    r.dataset,
                    r.partitions,
                    r.backend,
                    r.engine,
                    f"{r.stage_s:.3f}",
                    r.time_kind,
                    r.n_contigs,
                    r.n50,
                    speedup,
                    vs_loop,
                ]
            )
        return format_table(
            [
                "Dataset",
                "k",
                "Backend",
                "Engine",
                "Stage (s)",
                "Clock",
                "Contigs",
                "N50",
                "vs serial",
                "trim vs loop",
            ],
            rows,
        )


def _stage_total(stage_times: dict[str, float]) -> float:
    """Sum of the distributed stages, skipping the trim_total rollup."""
    return sum(v for k, v in stage_times.items() if k != "trim_total")


def _contig_key(contigs: list[np.ndarray]) -> list[bytes]:
    return sorted(c.tobytes() for c in contigs)


def _resolve_engines(engine: str) -> tuple[str, ...]:
    if engine == "both":
        return ENGINES
    if engine in ENGINES:
        return (engine,)
    raise ValueError(f"unknown engine {engine!r}")


def bench_dataset(
    dataset: BenchDataset,
    partitions: tuple[int, ...] = DEFAULT_PARTITIONS,
    workers: int = 0,
    repeats: int = 2,
    engines: tuple[str, ...] = ENGINES,
) -> tuple[list[FinishBenchRecord], bool]:
    """Time every backend x engine on one read dataset.

    ``prepare`` (preprocess/align/graph build) runs once; each
    (partitions, backend, engine) cell then re-runs ``finish``
    ``repeats`` times and reports its best distributed-stage time.
    Returns the records plus an all-cells-agree flag (byte-identical
    sorted contig sets within every partition count).
    """
    config = AssemblyConfig(backend_workers=workers)
    assembler = FocusAssembler(config)
    prep = assembler.prepare(dataset.reads)
    n_nodes = int(prep.assembly.graph.n_nodes)

    records: list[FinishBenchRecord] = []
    agree = True
    for k in partitions:
        keys: list[list[bytes]] = []
        for backend in BACKENDS:
            for engine in engines:
                best: FinishBenchRecord | None = None
                for _ in range(max(1, repeats)):
                    result = assembler.finish(
                        prep, n_partitions=k, backend=backend, engine=engine
                    )
                    stage_s = _stage_total(result.virtual_times)
                    if best is None or stage_s < best.stage_s:
                        best = FinishBenchRecord(
                            dataset=dataset.name,
                            backend=backend,
                            partitions=k,
                            stage_s=stage_s,
                            time_kind=result.time_kind,
                            stages=dict(result.virtual_times),
                            n_contigs=result.stats.n_contigs,
                            n50=result.stats.n50,
                            workers=workers if backend == "process" else 1,
                            engine=engine,
                            n_nodes=n_nodes,
                        )
                assert best is not None
                records.append(best)
                keys.append(_contig_key(result.contigs))
        agree = agree and all(key == keys[0] for key in keys[1:])
    return records, agree


def _run_scale_cell(
    scale: FinishScaleAssembly,
    labels: np.ndarray,
    backend: str,
    engine: str,
    workers: int,
) -> tuple[dict[str, float], str, list[np.ndarray]]:
    """One finish pass of a synthetic assembly on one backend/engine."""
    dag = DistributedAssemblyGraph(scale.assembly, labels)
    runner = create_backend(backend, dag, workers=workers, engine=engine)
    stage_times: dict[str, float] = {}
    try:
        for name, params in _SCALE_TRIM_SEQUENCE:
            out = runner.run_stage(name, **params)
            stage_times[name] = out.elapsed
        stage_times["trim_total"] = sum(
            stage_times[name] for name, _ in _SCALE_TRIM_SEQUENCE
        )
        out = runner.run_stage("traversal")
        stage_times["traversal"] = out.elapsed
        paths = out.result
    finally:
        runner.close()
    contigs = contigs_from_paths(dag, paths)
    return stage_times, runner.time_kind, contigs


def bench_finish_scale(
    scale: FinishScaleAssembly,
    partitions: tuple[int, ...] = DEFAULT_PARTITIONS,
    workers: int = 0,
    repeats: int = 2,
    engines: tuple[str, ...] = ENGINES,
) -> tuple[list[FinishBenchRecord], bool]:
    """Time every backend x engine on one synthetic finish-scale graph.

    The S-datasets have no reads, so the finish stages are driven
    through :func:`~repro.parallel.backend.create_backend` directly
    with block partition labels and the AssemblyConfig default stage
    parameters.  Semantics (records, best-of-repeats, agree flag)
    match :func:`bench_dataset`.
    """
    records: list[FinishBenchRecord] = []
    agree = True
    for k in partitions:
        labels = scale.labels(k)
        keys: list[list[bytes]] = []
        for backend in BACKENDS:
            for engine in engines:
                best: FinishBenchRecord | None = None
                for _ in range(max(1, repeats)):
                    stage_times, time_kind, contigs = _run_scale_cell(
                        scale, labels, backend, engine, workers
                    )
                    stage_s = _stage_total(stage_times)
                    if best is None or stage_s < best.stage_s:
                        stats = AssemblyStats.from_contigs(contigs)
                        best = FinishBenchRecord(
                            dataset=scale.name,
                            backend=backend,
                            partitions=k,
                            stage_s=stage_s,
                            time_kind=time_kind,
                            stages=stage_times,
                            n_contigs=stats.n_contigs,
                            n50=stats.n50,
                            workers=workers if backend == "process" else 1,
                            engine=engine,
                            n_nodes=scale.n_nodes,
                        )
                assert best is not None
                records.append(best)
                keys.append(_contig_key(contigs))
        agree = agree and all(key == keys[0] for key in keys[1:])
    return records, agree


def process_gate_enforced(cpu_count: int | None) -> bool:
    """Whether the process-vs-serial gate is binding on this host."""
    return (cpu_count or 1) >= PROCESS_GATE_MIN_CORES


def regression_failures(records: list[FinishBenchRecord]) -> list[str]:
    """Cells where the process backend is slower than the serial loop.

    Same-engine comparison.  Pure record inspection — callers decide
    whether the host has enough cores for the result to gate (see
    :func:`process_gate_enforced`).
    """
    walls: dict[tuple[str, int, str, str], float] = {
        (r.dataset, r.partitions, r.backend, r.engine): r.stage_s
        for r in records
    }
    failures = []
    for (dataset, k, backend, engine), wall in sorted(walls.items()):
        if backend != "process" or k < PROCESS_GATE_PARTITIONS:
            continue
        serial_wall = walls.get((dataset, k, "serial", engine))
        if serial_wall is not None and wall > serial_wall:
            failures.append(
                f"{dataset}@k={k}/{engine}: process ({wall:.3f}s) slower "
                f"than serial ({serial_wall:.3f}s)"
            )
    return failures


def sparse_regression_failures(records: list[FinishBenchRecord]) -> list[str]:
    """Cells where the sparse engine lost to the loop engine on trimming.

    Only graphs with at least ``SPARSE_GATE_MIN_NODES`` nodes gate —
    the engine's contract is asymptotic, not constant-factor.
    """
    trims: dict[tuple[str, int, str, str], tuple[float, int]] = {
        (r.dataset, r.partitions, r.backend, r.engine): (
            r.stages.get("trim_total", 0.0),
            r.n_nodes,
        )
        for r in records
    }
    failures = []
    for (dataset, k, backend, engine), (trim, n_nodes) in sorted(trims.items()):
        if engine != "sparse" or n_nodes < SPARSE_GATE_MIN_NODES:
            continue
        loop = trims.get((dataset, k, backend, "loop"))
        if loop is not None and trim > loop[0]:
            failures.append(
                f"{dataset}@k={k}/{backend}: sparse trim ({trim:.3f}s) "
                f"slower than loop ({loop[0]:.3f}s)"
            )
    return failures


def run_finish_bench(
    datasets: list[BenchDataset | FinishScaleAssembly] | None = None,
    partitions: tuple[int, ...] = DEFAULT_PARTITIONS,
    workers: int = 0,
    repeats: int = 2,
    engine: str = "both",
) -> tuple[FinishBenchReport, bool]:
    """Bench all backends/engines on all datasets; returns (report, agree)."""
    engines = _resolve_engines(engine)
    if datasets is None:
        datasets = [
            d
            for d in [*standard_datasets(), *finish_scale_assemblies()]
            if d.name in DEFAULT_DATASETS
        ]
    cpu_count = os.cpu_count()
    report = FinishBenchReport(
        metadata={
            "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "scipy_available": HAVE_SCIPY,
            "cpu_count": cpu_count,
            "workers": workers,
            "partitions": list(partitions),
            "repeats": repeats,
            "engines": list(engines),
            "process_gate_enforced": process_gate_enforced(cpu_count),
            "process_gate_min_cores": PROCESS_GATE_MIN_CORES,
            "sparse_gate_min_nodes": SPARSE_GATE_MIN_NODES,
        }
    )
    agree = True
    for dataset in datasets:
        if isinstance(dataset, FinishScaleAssembly):
            records, dataset_agree = bench_finish_scale(
                dataset,
                partitions=partitions,
                workers=workers,
                repeats=repeats,
                engines=engines,
            )
        else:
            records, dataset_agree = bench_dataset(
                dataset,
                partitions=partitions,
                workers=workers,
                repeats=repeats,
                engines=engines,
            )
        report.records.extend(records)
        agree = agree and dataset_agree
    return report, agree


def main(
    output: str = DEFAULT_OUTPUT,
    workers: int = 0,
    partitions: tuple[int, ...] = DEFAULT_PARTITIONS,
    dataset_names: list[str] | None = None,
    stream=None,
    engine: str = "both",
) -> int:
    """CLI entry point for ``repro bench finish``.

    Exit codes: 0 ok; 1 a perf gate failed (process slower than serial
    at gated partition counts on a multi-core host, or sparse slower
    than loop on a gate-sized graph); 2 backends/engines disagreed on
    contigs (results written either way).
    """
    stream = stream or sys.stdout
    available: list[BenchDataset | FinishScaleAssembly] = [
        *standard_datasets(),
        *finish_scale_assemblies(),
    ]
    wanted = set(dataset_names) if dataset_names else set(DEFAULT_DATASETS)
    unknown = wanted - {d.name for d in available}
    if unknown:
        print(f"error: unknown datasets {sorted(unknown)}", file=sys.stderr)
        return 2
    datasets = [d for d in available if d.name in wanted]
    report, agree = run_finish_bench(
        datasets, partitions=partitions, workers=workers, engine=engine
    )
    report.write(output)
    print(report.summary_table(), file=stream)
    print(f"wrote {len(report.records)} records to {output}", file=stream)
    if not agree:
        print("FAIL: backends/engines disagree on contigs", file=stream)
        return 2
    exit_code = 0
    failures = regression_failures(report.records)
    if failures:
        if process_gate_enforced(os.cpu_count()):
            print("FAIL: " + "; ".join(failures), file=stream)
            exit_code = 1
        else:
            print(
                "note: process gate skipped (single-core host): "
                + "; ".join(failures),
                file=stream,
            )
    sparse_failures = sparse_regression_failures(report.records)
    if sparse_failures:
        print("FAIL: " + "; ".join(sparse_failures), file=stream)
        exit_code = 1
    return exit_code
