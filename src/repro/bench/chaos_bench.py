"""Recovery-overhead benchmark under injected faults (``repro bench chaos``).

Runs the distributed finish stages on the D1 dataset fault-free and
then under seeded chaos :class:`~repro.faults.FaultPlan`s on each
execution backend, and writes the recovery record to
``BENCH_chaos.json``: slowdown versus the fault-free run of the same
backend, plus the recovery activity that produced it (retries,
respawns, fallbacks, recovered partitions).

The correctness gate is the fault-tolerance invariant itself
(docs/robustness.md): every faulted run must recover contigs
**byte-identical** to the fault-free run of the same backend, or the
harness exits 2.  Overhead is reported, never gated — injected chaos
is *supposed* to cost time; it is not supposed to cost correctness.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from dataclasses import asdict, dataclass, field, replace

import numpy as np

from repro.bench.datasets import BenchDataset, standard_datasets
from repro.bench.reporting import format_table
from repro.core.config import AssemblyConfig
from repro.core.focus import FocusAssembler
from repro.distributed.stages import all_stages
from repro.faults import FaultPlan, RetryPolicy

__all__ = [
    "ChaosBenchRecord",
    "ChaosBenchReport",
    "chaos_plan",
    "bench_backend",
    "bench_service",
    "run_chaos_bench",
    "main",
]

#: schema of one record in ``BENCH_chaos.json``; bump when fields change.
#: v2: service-axis records (scenario/kills/takeovers/owners/attempts).
SCHEMA = "repro.bench.chaos/v2"

DEFAULT_OUTPUT = "BENCH_chaos.json"
DEFAULT_DATASET = "D1"
DEFAULT_BACKENDS = ("serial", "sim", "process")
DEFAULT_SEEDS = (1, 2)
DEFAULT_PARTITIONS = 4

#: how long an injected hang sleeps inside a real process worker —
#: kept short so a leaked worker exits quickly (in-process backends
#: model hangs as immediate deadline failures and never sleep).
HANG_SECONDS = 0.3
#: retry policy used for every chaos cell: enough attempts to outlast
#: the generated plans, no backoff sleeping, and a deadline that kills
#: hung process workers quickly.
CHAOS_RETRY = RetryPolicy(
    max_attempts=3, backoff_base=0.0, backoff_cap=0.0, task_deadline=2.0
)


@dataclass(frozen=True)
class ChaosBenchRecord:
    """One (backend, fault-plan seed) recovery measurement."""

    dataset: str
    backend: str
    partitions: int
    #: fault-plan seed; -1 for the fault-free baseline cell.
    plan_seed: int
    #: distributed-stage wall seconds for this run.
    stage_s: float
    #: ``stage_s`` / fault-free ``stage_s`` on the same backend.
    slowdown: float
    #: recovered contigs byte-identical to the fault-free run.
    contigs_match: bool
    n_contigs: int
    #: fault/recovery accounting (``FaultReport.to_dict()`` subset).
    injected: int = 0
    retries: int = 0
    respawns: int = 0
    fallbacks: int = 0
    recovered_partitions: int = 0
    #: which chaos axis produced this record: ``"faultplan"`` for the
    #: in-process injected faults above, or a service scenario name
    #: (``baseline`` / ``worker-kill`` / ``supervisor-kill`` /
    #: ``takeover``) for whole-process SIGKILL recovery.
    scenario: str = "faultplan"
    #: processes SIGKILLed by a service scenario.
    kills: int = 0
    #: stale-lease requeues journaled (the takeover gate wants exactly 1).
    takeovers: int = 0
    #: distinct supervisors that leased the job.
    owners: int = 1
    #: final attempt counter (1 = never requeued).
    attempts: int = 1


@dataclass
class ChaosBenchReport:
    """A full chaos run: records plus environment metadata."""

    records: list[ChaosBenchRecord] = field(default_factory=list)
    metadata: dict = field(default_factory=dict)

    def to_json(self) -> str:
        return json.dumps(
            {
                "schema": SCHEMA,
                "metadata": self.metadata,
                "results": [asdict(r) for r in self.records],
            },
            indent=2,
        )

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json() + "\n")

    def summary_table(self) -> str:
        rows = []
        for r in self.records:
            if r.scenario != "faultplan":
                plan = r.scenario
            elif r.plan_seed < 0:
                plan = "baseline"
            else:
                plan = f"seed {r.plan_seed}"
            rows.append(
                [
                    r.backend,
                    plan,
                    f"{r.stage_s:.3f}",
                    f"{r.slowdown:.2f}x",
                    r.injected,
                    r.retries,
                    r.respawns,
                    r.fallbacks,
                    r.kills,
                    r.attempts,
                    "ok" if r.contigs_match else "MISMATCH",
                ]
            )
        return format_table(
            [
                "Backend",
                "Plan",
                "Stage (s)",
                "Slowdown",
                "Injected",
                "Retries",
                "Respawns",
                "Fallbacks",
                "Kills",
                "Attempts",
                "Contigs",
            ],
            rows,
        )


def chaos_plan(seed: int, n_parts: int) -> FaultPlan:
    """The seeded plan one chaos cell runs under.

    Generated over the real stage registry so new stages are chaos-
    tested automatically, with short hangs (see :data:`HANG_SECONDS`)
    and single-attempt faults so :data:`CHAOS_RETRY` always outlasts
    the plan.
    """
    stages = tuple(spec.name for spec in all_stages())
    plan = FaultPlan.random(seed, stages, n_parts)
    return replace(plan, hang_seconds=HANG_SECONDS)


def _stage_total(stage_times: dict[str, float]) -> float:
    return sum(v for k, v in stage_times.items() if k != "trim_total")


def _contig_key(contigs: list[np.ndarray]) -> list[bytes]:
    return sorted(c.tobytes() for c in contigs)


def bench_backend(
    assembler: FocusAssembler,
    prep,
    dataset_name: str,
    backend: str,
    seeds: tuple[int, ...],
    n_partitions: int,
) -> tuple[list[ChaosBenchRecord], bool]:
    """Fault-free baseline plus one faulted run per seed on one backend.

    Returns the records and an all-matched flag (every faulted run
    recovered the baseline contigs byte-for-byte).
    """
    base = assembler.finish(prep, n_partitions=n_partitions, backend=backend)
    base_s = _stage_total(base.virtual_times)
    base_key = _contig_key(base.contigs)
    records = [
        ChaosBenchRecord(
            dataset=dataset_name,
            backend=backend,
            partitions=n_partitions,
            plan_seed=-1,
            stage_s=base_s,
            slowdown=1.0,
            contigs_match=True,
            n_contigs=base.stats.n_contigs,
        )
    ]
    all_match = True
    for seed in seeds:
        chaos_cfg = replace(
            assembler.config,
            retry=CHAOS_RETRY,
            fault_plan=chaos_plan(seed, n_partitions),
        )
        chaos = FocusAssembler(chaos_cfg, cost_model=assembler.cost_model)
        result = chaos.finish(prep, n_partitions=n_partitions, backend=backend)
        stage_s = _stage_total(result.virtual_times)
        match = _contig_key(result.contigs) == base_key
        all_match = all_match and match
        report = result.fault_report
        records.append(
            ChaosBenchRecord(
                dataset=dataset_name,
                backend=backend,
                partitions=n_partitions,
                plan_seed=seed,
                stage_s=stage_s,
                slowdown=stage_s / base_s if base_s > 0 else 1.0,
                contigs_match=match,
                n_contigs=result.stats.n_contigs,
                injected=report.total_injected if report else 0,
                retries=report.retries if report else 0,
                respawns=report.respawns if report else 0,
                fallbacks=report.fallbacks if report else 0,
                recovered_partitions=report.recovered_partitions if report else 0,
            )
        )
    return records, all_match


def bench_service(
    workdir: str | None = None, timeout: float = 180.0
) -> tuple[list[ChaosBenchRecord], bool]:
    """The service axis: SIGKILL whole processes, gate full recovery.

    Runs the four :data:`~repro.service.chaos.SCENARIOS` on the small
    deterministic SVC dataset.  A scenario passes when the job ends
    ``done`` with contigs byte-identical to the unkilled baseline run;
    the ``takeover`` scenario additionally requires *exactly one*
    stale-lease requeue (two racing supervisors, one winner) and the
    ``supervisor-kill`` scenario requires the job to have been owned by
    two distinct supervisors.
    """
    import tempfile

    from repro.service.chaos import (
        SCENARIOS,
        run_scenario,
        write_service_reads,
    )

    records: list[ChaosBenchRecord] = []
    all_ok = True
    with tempfile.TemporaryDirectory(dir=workdir) as tmp:
        reads = write_service_reads(os.path.join(tmp, "reads.fasta"))
        base_contigs = b""
        base_wall = 0.0
        for scenario in SCENARIOS:
            res = run_scenario(
                scenario, os.path.join(tmp, scenario), reads, timeout=timeout
            )
            if scenario == "baseline":
                base_contigs = res.contigs
                base_wall = res.wall_s
                ok = res.state == "done" and bool(res.contigs)
            else:
                ok = res.state == "done" and res.contigs == base_contigs
                if scenario == "takeover":
                    ok = ok and res.takeovers == 1
                if scenario == "supervisor-kill":
                    ok = ok and res.owners >= 2
            all_ok = all_ok and ok
            records.append(
                ChaosBenchRecord(
                    dataset="SVC",
                    backend="service",
                    partitions=4,
                    plan_seed=-1,
                    stage_s=res.wall_s,
                    slowdown=res.wall_s / base_wall if base_wall > 0 else 1.0,
                    contigs_match=ok,
                    n_contigs=int(res.result.get("n_contigs", 0)),
                    scenario=scenario,
                    kills=res.kills,
                    takeovers=res.takeovers,
                    owners=res.owners,
                    attempts=res.attempts,
                )
            )
    return records, all_ok


def run_chaos_bench(
    dataset: BenchDataset | None = None,
    backends: tuple[str, ...] = DEFAULT_BACKENDS,
    seeds: tuple[int, ...] = DEFAULT_SEEDS,
    n_partitions: int = DEFAULT_PARTITIONS,
) -> tuple[ChaosBenchReport, bool]:
    """Chaos-test every backend; returns (report, all recovered)."""
    if dataset is None:
        dataset = next(
            d for d in standard_datasets() if d.name == DEFAULT_DATASET
        )
    cpu_count = os.cpu_count()
    # On a single-core host ProcessBackend needs >= 2 granted workers
    # to exercise the real pool (its fallback path is serial).
    workers = max(2, cpu_count or 1)
    config = AssemblyConfig(backend_workers=workers)
    assembler = FocusAssembler(config)
    prep = assembler.prepare(dataset.reads)
    report = ChaosBenchReport(
        metadata={
            "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpu_count": cpu_count,
            "dataset": dataset.name,
            "partitions": n_partitions,
            "seeds": list(seeds),
            "backends": list(backends),
            "workers": workers,
            "retry": CHAOS_RETRY.to_dict(),
        }
    )
    all_match = True
    for backend in backends:
        records, matched = bench_backend(
            assembler, prep, dataset.name, backend, seeds, n_partitions
        )
        report.records.extend(records)
        all_match = all_match and matched
    return report, all_match


def main(
    output: str = DEFAULT_OUTPUT,
    backends: tuple[str, ...] = DEFAULT_BACKENDS,
    seeds: tuple[int, ...] = DEFAULT_SEEDS,
    n_partitions: int = DEFAULT_PARTITIONS,
    service: bool = False,
    stream=None,
) -> int:
    """CLI entry point for ``repro bench chaos``.

    ``service=True`` appends the whole-process SIGKILL axis (worker
    kill, supervisor kill, two-supervisor takeover race) on the SVC
    dataset.  Exit codes: 0 every chaos cell recovered the fault-free
    contigs byte-for-byte (and the service gates held); 2 at least one
    did not (results written either way).
    """
    stream = stream or sys.stdout
    report, all_match = run_chaos_bench(
        backends=backends, seeds=seeds, n_partitions=n_partitions
    )
    if service:
        service_records, service_ok = bench_service()
        report.records.extend(service_records)
        report.metadata["service_scenarios"] = [
            r.scenario for r in service_records
        ]
        all_match = all_match and service_ok
    report.write(output)
    print(report.summary_table(), file=stream)
    print(f"wrote {len(report.records)} records to {output}", file=stream)
    if not all_match:
        print(
            "FAIL: a chaos run did not recover the fault-free contigs "
            "(or a service recovery gate failed)",
            file=stream,
        )
        return 2
    return 0
