"""Suffix array construction and pattern search.

Focus indexes each reference read subset with a suffix array built by
the Larsson–Sadakane faster-suffix-sorting scheme [14].  We implement
the same O(n log n) prefix-doubling idea with numpy primitives: each
round sorts suffixes by their (rank, rank+offset) pair via
``np.lexsort`` and re-ranks, doubling the compared prefix length.
"""

from __future__ import annotations

import numpy as np

__all__ = ["build_suffix_array", "lcp_array", "SuffixArraySearcher"]


def build_suffix_array(codes: np.ndarray) -> np.ndarray:
    """Suffix array of ``codes``: positions sorted by suffix.

    Shorter-prefix suffixes sort before longer ones sharing that prefix
    (the usual "end of string is smallest" convention, achieved with a
    -1 sentinel rank past the end).
    """
    codes = np.asarray(codes, dtype=np.int64)
    n = codes.size
    if n == 0:
        return np.empty(0, dtype=np.int64)
    rank = np.unique(codes, return_inverse=True)[1].astype(np.int64)
    sa = np.argsort(rank, kind="stable")
    k = 1
    while True:
        second = np.full(n, -1, dtype=np.int64)
        second[: n - k] = rank[k:]
        sa = np.lexsort((second, rank))
        first_s = rank[sa]
        second_s = second[sa]
        changed = np.ones(n, dtype=bool)
        changed[1:] = (first_s[1:] != first_s[:-1]) | (second_s[1:] != second_s[:-1])
        new_rank = np.empty(n, dtype=np.int64)
        new_rank[sa] = np.cumsum(changed) - 1
        rank = new_rank
        if rank[sa[-1]] == n - 1:
            break
        k *= 2
        if k >= n:
            break
    return sa


def lcp_array(codes: np.ndarray, sa: np.ndarray) -> np.ndarray:
    """Kasai's algorithm: lcp[i] = LCP(suffix sa[i-1], suffix sa[i]); lcp[0]=0."""
    codes = np.asarray(codes)
    sa = np.asarray(sa, dtype=np.int64)
    n = codes.size
    if sa.size != n:
        raise ValueError("suffix array length mismatch")
    lcp = np.zeros(n, dtype=np.int64)
    if n == 0:
        return lcp
    rank = np.empty(n, dtype=np.int64)
    rank[sa] = np.arange(n)
    h = 0
    for i in range(n):
        r = rank[i]
        if r > 0:
            j = sa[r - 1]
            while i + h < n and j + h < n and codes[i + h] == codes[j + h]:
                h += 1
            lcp[r] = h
            if h > 0:
                h -= 1
        else:
            h = 0
    return lcp


class SuffixArraySearcher:
    """Exact pattern search over a suffix array via binary search.

    ``find(pattern)`` returns all start positions of ``pattern`` in the
    indexed text in O(|pattern| log n).
    """

    def __init__(self, codes: np.ndarray, sa: np.ndarray | None = None) -> None:
        self.codes = np.asarray(codes, dtype=np.int64)
        self.sa = build_suffix_array(self.codes) if sa is None else np.asarray(sa, dtype=np.int64)
        if self.sa.size != self.codes.size:
            raise ValueError("suffix array does not match text length")

    def _compare(self, pos: int, pattern: np.ndarray) -> int:
        """-1/0/+1: suffix at ``pos`` vs ``pattern`` (prefix match = 0)."""
        n = self.codes.size
        m = min(pattern.size, n - pos)
        seg = self.codes[pos : pos + m]
        neq = np.flatnonzero(seg != pattern[:m])
        if neq.size:
            i = neq[0]
            return -1 if seg[i] < pattern[i] else 1
        if m < pattern.size:
            return -1  # suffix ran out first -> suffix is smaller
        return 0

    def find(self, pattern: np.ndarray) -> np.ndarray:
        """Sorted start positions of all occurrences of ``pattern``."""
        pattern = np.asarray(pattern, dtype=np.int64)
        if pattern.size == 0:
            raise ValueError("empty pattern")
        n = self.sa.size
        # Lower bound: first suffix >= pattern (as a prefix comparison).
        lo, hi = 0, n
        while lo < hi:
            mid = (lo + hi) // 2
            if self._compare(int(self.sa[mid]), pattern) < 0:
                lo = mid + 1
            else:
                hi = mid
        start = lo
        # Upper bound: first suffix whose prefix exceeds pattern.
        lo, hi = start, n
        while lo < hi:
            mid = (lo + hi) // 2
            if self._compare(int(self.sa[mid]), pattern) <= 0:
                lo = mid + 1
            else:
                hi = mid
        return np.sort(self.sa[start:lo])
