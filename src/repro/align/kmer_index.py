"""Sorted k-mer index over a ReadSet.

This is the depth-k truncation of the reference suffix array: all
packed k-mers of all reference reads, sorted, with parallel arrays
giving the read each k-mer came from and its offset within that read.
The build is one bulk :meth:`~repro.io.readset.ReadSet.kmer_table` call
(cache-backed, no per-read Python loop) plus a sort; querying a batch
of k-mers is two ``np.searchsorted`` calls plus an expansion — no
per-hit Python work.  All index arrays are ``int64`` on every platform.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.io.readset import ReadSet

__all__ = ["KmerIndex", "CompressedQueries", "compress_queries"]

#: batch size above which lookups binary-search unique query values
#: only.  High-coverage query batches repeat each genomic k-mer many
#: times; deduplicating first makes the searchsorted cost scale with
#: distinct k-mers, not total k-mers.
_UNIQUE_LOOKUP_MIN = 2048


@dataclass(frozen=True)
class CompressedQueries:
    """A query batch preprocessed for repeated lookups.

    The valid-filtering and unique-compression of a query batch depend
    only on the batch, not on the index — one overlap query subset is
    looked up against several reference indexes, so callers can compute
    this once per subset (:func:`compress_queries`) and pass it to each
    :meth:`KmerIndex.lookup`.
    """

    #: positions of valid (>= 0) entries in the original batch.
    valid: np.ndarray
    #: the valid k-mer values themselves.
    vals: np.ndarray
    #: sorted distinct values and the inverse map, or None for small
    #: batches where direct searchsorted is cheaper.
    uniq: np.ndarray | None
    inverse: np.ndarray | None


def compress_queries(query_vals: np.ndarray) -> CompressedQueries:
    """Preprocess a query batch for reuse across several indexes."""
    query_vals = np.asarray(query_vals, dtype=np.int64)
    valid = np.flatnonzero(query_vals >= 0).astype(np.int64, copy=False)
    vals = query_vals[valid]
    if vals.size >= _UNIQUE_LOOKUP_MIN:
        uniq, inverse = np.unique(vals, return_inverse=True)
        return CompressedQueries(valid, vals, uniq, inverse)
    return CompressedQueries(valid, vals, None, None)


class KmerIndex:
    """Exact k-mer lookup over the reads of a ReadSet (or a subset)."""

    def __init__(self, reads: ReadSet, k: int, read_indices: np.ndarray | None = None) -> None:
        if k < 1:
            raise ValueError("k must be positive")
        self.k = k
        self.reads = reads
        if read_indices is None:
            read_indices = np.arange(len(reads), dtype=np.int64)
        self.read_indices = np.asarray(read_indices, dtype=np.int64)

        vals, read_ids, offsets = reads.kmer_table(k, self.read_indices)
        valid = vals >= 0
        if not valid.all():
            vals, read_ids, offsets = vals[valid], read_ids[valid], offsets[valid]
        order = np.argsort(vals, kind="stable")
        self.kmers = vals[order]
        self.kmer_reads = read_ids[order]
        self.kmer_offsets = offsets[order]

    def __len__(self) -> int:
        return int(self.kmers.size)

    def lookup(
        self,
        query_vals: np.ndarray,
        compressed: CompressedQueries | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Find all occurrences of each query k-mer.

        Parameters
        ----------
        query_vals:
            Packed k-mer values (invalid entries < 0 are skipped).
        compressed:
            Optional :func:`compress_queries` result for this exact
            batch, reused when one batch is looked up against several
            indexes.

        Returns
        -------
        (query_pos, hit_reads, hit_offsets):
            parallel ``int64`` arrays, one row per (query k-mer,
            reference occurrence) pair; ``query_pos`` indexes into
            ``query_vals``.
        """
        if compressed is None:
            compressed = compress_queries(query_vals)
        valid, vals = compressed.valid, compressed.vals
        if valid.size == 0 or self.kmers.size == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy(), empty.copy()
        if compressed.inverse is not None:
            lo_u = np.searchsorted(self.kmers, compressed.uniq, side="left")
            hi_u = np.searchsorted(self.kmers, compressed.uniq, side="right")
            lo = lo_u[compressed.inverse].astype(np.int64, copy=False)
            hi = hi_u[compressed.inverse].astype(np.int64, copy=False)
        else:
            lo = np.searchsorted(self.kmers, vals, side="left").astype(np.int64, copy=False)
            hi = np.searchsorted(self.kmers, vals, side="right").astype(np.int64, copy=False)
        counts = hi - lo
        total = int(counts.sum())
        if total == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy(), empty.copy()
        query_pos = np.repeat(valid, counts)
        # Build flat indices [lo_i, hi_i) for each query k-mer i.
        starts = np.repeat(lo, counts)
        within = np.arange(total, dtype=np.int64) - np.repeat(np.cumsum(counts) - counts, counts)
        flat = starts + within
        return query_pos, self.kmer_reads[flat], self.kmer_offsets[flat]

    def hit_counts(self, query_vals: np.ndarray, exclude_read: int | None = None) -> dict[int, int]:
        """Number of shared k-mers per reference read (diagnostic helper)."""
        _, hit_reads, _ = self.lookup(query_vals)
        if exclude_read is not None:
            hit_reads = hit_reads[hit_reads != exclude_read]
        uniq, counts = np.unique(hit_reads, return_counts=True)
        return dict(zip(uniq.tolist(), counts.tolist()))
