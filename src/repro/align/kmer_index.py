"""Sorted k-mer index over a ReadSet.

This is the depth-k truncation of the reference suffix array: all
packed k-mers of all reference reads, sorted, with parallel arrays
giving the read each k-mer came from and its offset within that read.
Querying a batch of k-mers is two ``np.searchsorted`` calls plus an
expansion — no per-hit Python work.
"""

from __future__ import annotations

import numpy as np

from repro.io.readset import ReadSet
from repro.sequence.kmers import kmer_codes

__all__ = ["KmerIndex"]


class KmerIndex:
    """Exact k-mer lookup over the reads of a ReadSet (or a subset)."""

    def __init__(self, reads: ReadSet, k: int, read_indices: np.ndarray | None = None) -> None:
        if k < 1:
            raise ValueError("k must be positive")
        self.k = k
        self.reads = reads
        if read_indices is None:
            read_indices = np.arange(len(reads), dtype=np.int64)
        self.read_indices = np.asarray(read_indices, dtype=np.int64)

        vals_parts: list[np.ndarray] = []
        read_parts: list[np.ndarray] = []
        off_parts: list[np.ndarray] = []
        for ridx in self.read_indices.tolist():
            vals = kmer_codes(reads.codes_of(ridx), k)
            valid = np.flatnonzero(vals >= 0)
            if valid.size == 0:
                continue
            vals_parts.append(vals[valid])
            read_parts.append(np.full(valid.size, ridx, dtype=np.int64))
            off_parts.append(valid.astype(np.int64))
        if vals_parts:
            vals = np.concatenate(vals_parts)
            order = np.argsort(vals, kind="stable")
            self.kmers = vals[order]
            self.kmer_reads = np.concatenate(read_parts)[order]
            self.kmer_offsets = np.concatenate(off_parts)[order]
        else:
            self.kmers = np.empty(0, dtype=np.int64)
            self.kmer_reads = np.empty(0, dtype=np.int64)
            self.kmer_offsets = np.empty(0, dtype=np.int64)

    def __len__(self) -> int:
        return int(self.kmers.size)

    def lookup(self, query_vals: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Find all occurrences of each query k-mer.

        Parameters
        ----------
        query_vals:
            Packed k-mer values (invalid entries < 0 are skipped).

        Returns
        -------
        (query_pos, hit_reads, hit_offsets):
            parallel arrays, one row per (query k-mer, reference
            occurrence) pair; ``query_pos`` indexes into ``query_vals``.
        """
        query_vals = np.asarray(query_vals, dtype=np.int64)
        valid = np.flatnonzero(query_vals >= 0)
        if valid.size == 0 or self.kmers.size == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy(), empty.copy()
        vals = query_vals[valid]
        lo = np.searchsorted(self.kmers, vals, side="left")
        hi = np.searchsorted(self.kmers, vals, side="right")
        counts = hi - lo
        total = int(counts.sum())
        if total == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy(), empty.copy()
        query_pos = np.repeat(valid, counts)
        # Build flat indices [lo_i, hi_i) for each query k-mer i.
        starts = np.repeat(lo, counts)
        within = np.arange(total) - np.repeat(np.cumsum(counts) - counts, counts)
        flat = starts + within
        return query_pos, self.kmer_reads[flat], self.kmer_offsets[flat]

    def hit_counts(self, query_vals: np.ndarray, exclude_read: int | None = None) -> dict[int, int]:
        """Number of shared k-mers per reference read (diagnostic helper)."""
        _, hit_reads, _ = self.lookup(query_vals)
        if exclude_read is not None:
            hit_reads = hit_reads[hit_reads != exclude_read]
        uniq, counts = np.unique(hit_reads, return_counts=True)
        return dict(zip(uniq.tolist(), counts.tolist()))
