"""Suffix-array-backed reference read index (paper §II-B).

Focus indexes each reference read subset with a suffix array and
queries it with the query read's k-mers.  This module provides that
exact structure with the same ``lookup`` interface as
:class:`repro.align.kmer_index.KmerIndex`, so the overlap detector can
use either (``OverlapConfig.index = "suffix_array"``).

Reference reads are concatenated with single ``N`` separators; since
queries never contain code 4, no match can span a read boundary.
"""

from __future__ import annotations

import numpy as np

from repro.align.suffix_array import SuffixArraySearcher
from repro.io.readset import ReadSet
from repro.sequence.dna import N
from repro.sequence.kmers import unpack_kmer

__all__ = ["SuffixArrayReadIndex"]


class SuffixArrayReadIndex:
    """Suffix-array k-mer lookup over (a subset of) a ReadSet."""

    def __init__(self, reads: ReadSet, k: int, read_indices: np.ndarray | None = None) -> None:
        if k < 1:
            raise ValueError("k must be positive")
        self.k = k
        self.reads = reads
        if read_indices is None:
            read_indices = np.arange(len(reads), dtype=np.int64)
        self.read_indices = np.asarray(read_indices, dtype=np.int64)

        parts: list[np.ndarray] = []
        starts: list[int] = []
        pos = 0
        sep = np.array([N], dtype=np.uint8)
        for ridx in self.read_indices.tolist():
            codes = reads.codes_of(ridx)
            starts.append(pos)
            parts.append(codes)
            parts.append(sep)
            pos += codes.size + 1
        self.text = np.concatenate(parts) if parts else np.empty(0, dtype=np.uint8)
        #: concatenated-text start of each indexed read.
        self.read_starts = np.asarray(starts, dtype=np.int64)
        self.searcher = SuffixArraySearcher(self.text) if self.text.size else None

    def __len__(self) -> int:
        """Number of indexed k-mer positions (N-free windows)."""
        total = 0
        for ridx in self.read_indices.tolist():
            total += max(0, self.reads.length_of(int(ridx)) - self.k + 1)
        return total

    def _locate(self, text_positions: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Map text positions to (read id, offset within read)."""
        slot = np.searchsorted(self.read_starts, text_positions, side="right") - 1
        offsets = text_positions - self.read_starts[slot]
        return self.read_indices[slot], offsets

    def lookup(self, query_vals: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Same contract as :meth:`KmerIndex.lookup`.

        Each valid packed k-mer is unpacked and searched in the suffix
        array; matches return (query k-mer position, reference read,
        reference offset) triples.
        """
        query_vals = np.asarray(query_vals, dtype=np.int64)
        empty = np.empty(0, dtype=np.int64)
        if query_vals.size == 0 or self.searcher is None:
            return empty, empty.copy(), empty.copy()
        q_parts: list[np.ndarray] = []
        r_parts: list[np.ndarray] = []
        o_parts: list[np.ndarray] = []
        for qpos in np.flatnonzero(query_vals >= 0).tolist():
            pattern = unpack_kmer(int(query_vals[qpos]), self.k).astype(np.int64)
            hits = self.searcher.find(pattern)
            if hits.size == 0:
                continue
            hit_reads, hit_offsets = self._locate(hits)
            q_parts.append(np.full(hits.size, qpos, dtype=np.int64))
            r_parts.append(hit_reads)
            o_parts.append(hit_offsets)
        if not q_parts:
            return empty, empty.copy(), empty.copy()
        return np.concatenate(q_parts), np.concatenate(r_parts), np.concatenate(o_parts)
