"""Read overlap detection.

Implements the Focus alignment stage (paper §II-B): reference read
subsets are indexed (suffix array / k-mer index), query reads are
decomposed into k-mers, reads with enough shared k-mer hits are
verified with banded Needleman–Wunsch (or a fast ungapped check), and
overlaps passing the length/identity thresholds become overlap-graph
edges.
"""

from repro.align.banded_nw import AlignmentResult, banded_align
from repro.align.kmer_index import KmerIndex
from repro.align.overlap import Overlap, OverlapKind, classify_overlap, overlap_span
from repro.align.overlapper import OverlapConfig, OverlapDetector, subset_pairs
from repro.align.suffix_array import (
    SuffixArraySearcher,
    build_suffix_array,
    lcp_array,
)

__all__ = [
    "build_suffix_array",
    "lcp_array",
    "SuffixArraySearcher",
    "KmerIndex",
    "banded_align",
    "AlignmentResult",
    "Overlap",
    "OverlapKind",
    "classify_overlap",
    "overlap_span",
    "OverlapConfig",
    "OverlapDetector",
    "subset_pairs",
]
