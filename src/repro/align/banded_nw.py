"""Banded Needleman–Wunsch global alignment.

Used to verify candidate overlaps: once k-mer hits suggest that a
query segment matches a reference segment around a diagonal, the two
segments are globally aligned inside a band of width ``2*band + 1``
around that diagonal.  Rows are computed with numpy; the in-row gap
recurrence is solved as a running-maximum prefix scan, so there is no
per-cell Python loop.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["AlignmentResult", "banded_align"]

_NEG = np.float64(-1e18)


@dataclass(frozen=True)
class AlignmentResult:
    """Outcome of a (banded) global alignment.

    ``length`` is the number of alignment columns, ``identity`` the
    fraction of columns that are exact matches.
    """

    score: float
    length: int
    matches: int
    mismatches: int
    gaps: int

    @property
    def identity(self) -> float:
        return self.matches / self.length if self.length else 1.0


def banded_align(
    a: np.ndarray,
    b: np.ndarray,
    band: int = 5,
    match: float = 1.0,
    mismatch: float = -1.0,
    gap: float = -2.0,
) -> AlignmentResult:
    """Globally align ``a`` vs ``b`` within ``|i - j| <= band``.

    The band is widened automatically to at least ``|len(a) - len(b)|``
    so that a global path always exists.  Gap penalty must be negative
    and mismatch must not beat match, otherwise scoring is meaningless.
    """
    if gap >= 0 or mismatch > match:
        raise ValueError("need gap < 0 and mismatch <= match")
    a = np.asarray(a, dtype=np.int16)
    b = np.asarray(b, dtype=np.int16)
    n, m = a.size, b.size
    band = max(int(band), abs(n - m), 1)

    H = np.full((n + 1, m + 1), _NEG)
    js = np.arange(m + 1)
    H[0, : band + 1] = js[: band + 1] * gap
    for i in range(1, n + 1):
        lo = max(0, i - band)
        hi = min(m, i + band)
        seg = slice(lo, hi + 1)
        # Candidates from the previous row: diagonal and up moves.
        cand = np.full(hi - lo + 1, _NEG)
        prev = H[i - 1]
        # diagonal: H[i-1, j-1] + s(a[i-1], b[j-1]) for j in [lo, hi], j >= 1
        j0 = max(lo, 1)
        sub = np.where(b[j0 - 1 : hi] == a[i - 1], match, mismatch)
        cand[j0 - lo :] = prev[j0 - 1 : hi] + sub
        # up: H[i-1, j] + gap
        cand = np.maximum(cand, prev[seg] + gap)
        # left within the row: running-max prefix scan of cand + gap*offset
        t = cand - gap * js[seg]
        row = gap * js[seg] + np.maximum.accumulate(t)
        H[i, seg] = row

    score = H[n, m]
    if score <= _NEG / 2:
        raise RuntimeError("band too narrow: no global path (should not happen)")

    # Traceback, recomputing which move produced each cell.
    i, j = n, m
    matches = mismatches = gaps = 0
    while i > 0 or j > 0:
        h = H[i, j]
        if i > 0 and j > 0:
            s = match if a[i - 1] == b[j - 1] else mismatch
            if np.isclose(h, H[i - 1, j - 1] + s):
                if a[i - 1] == b[j - 1]:
                    matches += 1
                else:
                    mismatches += 1
                i -= 1
                j -= 1
                continue
        if i > 0 and np.isclose(h, H[i - 1, j] + gap):
            gaps += 1
            i -= 1
            continue
        gaps += 1
        j -= 1

    return AlignmentResult(
        score=float(score),
        length=matches + mismatches + gaps,
        matches=matches,
        mismatches=mismatches,
        gaps=gaps,
    )
