"""Overlap records and geometry.

An overlap between a *query* read and a *reference* read is described
by a diagonal ``d``: query position ``d + r`` pairs with reference
position ``r``.  From the diagonal and the two read lengths the overlap
span and its kind (suffix/prefix dovetail or containment) follow.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

__all__ = [
    "OverlapKind",
    "Overlap",
    "PackedOverlaps",
    "KIND_CODES",
    "overlap_span",
    "classify_overlap",
]


class OverlapKind(enum.Enum):
    """How two reads overlap.

    ``QUERY_LEFT``: the query's suffix matches the reference's prefix
    (query extends to the left of the reference in genome coordinates);
    ``QUERY_RIGHT`` the reverse.  Containments make one read redundant.
    """

    QUERY_LEFT = "query_left"
    QUERY_RIGHT = "query_right"
    QUERY_CONTAINED = "query_contained"
    REF_CONTAINED = "ref_contained"
    EQUAL = "equal"


@dataclass(frozen=True)
class Overlap:
    """A verified overlap relationship (one overlap-graph edge)."""

    query: int
    ref: int
    q_start: int
    r_start: int
    length: int
    identity: float
    kind: OverlapKind

    def __post_init__(self) -> None:
        if self.length < 0:
            raise ValueError("overlap length must be non-negative")
        if not 0.0 <= self.identity <= 1.0:
            raise ValueError("identity must be in [0, 1]")

    def reversed(self) -> "Overlap":
        """The same overlap seen from the reference's point of view."""
        flip = {
            OverlapKind.QUERY_LEFT: OverlapKind.QUERY_RIGHT,
            OverlapKind.QUERY_RIGHT: OverlapKind.QUERY_LEFT,
            OverlapKind.QUERY_CONTAINED: OverlapKind.REF_CONTAINED,
            OverlapKind.REF_CONTAINED: OverlapKind.QUERY_CONTAINED,
            OverlapKind.EQUAL: OverlapKind.EQUAL,
        }
        return Overlap(
            query=self.ref,
            ref=self.query,
            q_start=self.r_start,
            r_start=self.q_start,
            length=self.length,
            identity=self.identity,
            kind=flip[self.kind],
        )


#: Stable numeric encoding of :class:`OverlapKind` used by the batch
#: engine and the multiprocess wire format (index = code).
KIND_CODES: tuple[OverlapKind, ...] = (
    OverlapKind.EQUAL,
    OverlapKind.QUERY_CONTAINED,
    OverlapKind.REF_CONTAINED,
    OverlapKind.QUERY_LEFT,
    OverlapKind.QUERY_RIGHT,
)

_CODE_OF_KIND = {kind: code for code, kind in enumerate(KIND_CODES)}


@dataclass(frozen=True)
class PackedOverlaps:
    """A batch of overlaps as parallel numpy columns.

    This is the native output of the vectorized verification pass and
    the wire format of the multiprocess executor (seven flat arrays
    pickle far cheaper than thousands of :class:`Overlap` objects).
    ``to_overlaps``/``from_overlaps`` round-trip exactly.
    """

    query: np.ndarray
    ref: np.ndarray
    q_start: np.ndarray
    r_start: np.ndarray
    length: np.ndarray
    identity: np.ndarray
    kind_code: np.ndarray

    def __len__(self) -> int:
        return int(self.query.size)

    @classmethod
    def empty(cls) -> "PackedOverlaps":
        i64 = np.empty(0, dtype=np.int64)
        return cls(
            query=i64,
            ref=i64.copy(),
            q_start=i64.copy(),
            r_start=i64.copy(),
            length=i64.copy(),
            identity=np.empty(0, dtype=np.float64),
            kind_code=np.empty(0, dtype=np.uint8),
        )

    @classmethod
    def from_overlaps(cls, overlaps: list[Overlap]) -> "PackedOverlaps":
        if not overlaps:
            return cls.empty()
        return cls(
            query=np.array([o.query for o in overlaps], dtype=np.int64),
            ref=np.array([o.ref for o in overlaps], dtype=np.int64),
            q_start=np.array([o.q_start for o in overlaps], dtype=np.int64),
            r_start=np.array([o.r_start for o in overlaps], dtype=np.int64),
            length=np.array([o.length for o in overlaps], dtype=np.int64),
            identity=np.array([o.identity for o in overlaps], dtype=np.float64),
            kind_code=np.array(
                [_CODE_OF_KIND[o.kind] for o in overlaps], dtype=np.uint8
            ),
        )

    def to_overlaps(self) -> list[Overlap]:
        return [
            Overlap(
                query=q,
                ref=r,
                q_start=qs,
                r_start=rs,
                length=ln,
                identity=idt,
                kind=KIND_CODES[kc],
            )
            for q, r, qs, rs, ln, idt, kc in zip(
                self.query.tolist(),
                self.ref.tolist(),
                self.q_start.tolist(),
                self.r_start.tolist(),
                self.length.tolist(),
                self.identity.tolist(),
                self.kind_code.tolist(),
            )
        ]


def overlap_span(diagonal: int, len_q: int, len_r: int) -> tuple[int, int, int]:
    """(q_start, r_start, length) of the overlap implied by ``diagonal``.

    ``diagonal = q_pos - r_pos`` for any matched position pair.  Length
    may be zero or negative if the diagonal puts the reads apart; the
    caller must check.
    """
    q_start = max(0, diagonal)
    r_start = max(0, -diagonal)
    length = min(len_q - q_start, len_r - r_start)
    return q_start, r_start, length


def classify_overlap(q_start: int, r_start: int, length: int, len_q: int, len_r: int) -> OverlapKind:
    """Kind of a span produced by :func:`overlap_span`."""
    if length <= 0:
        raise ValueError("not an overlap (non-positive length)")
    q_full = q_start == 0 and q_start + length == len_q
    r_full = r_start == 0 and r_start + length == len_r
    if q_full and r_full:
        return OverlapKind.EQUAL
    if q_full:
        return OverlapKind.QUERY_CONTAINED
    if r_full:
        return OverlapKind.REF_CONTAINED
    if q_start > 0:
        # query suffix aligns reference prefix -> query sits to the left
        return OverlapKind.QUERY_LEFT
    return OverlapKind.QUERY_RIGHT
