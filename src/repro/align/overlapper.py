"""All-pairs read overlap detection (paper §II-B).

The read set is split into subsets; every unordered pair of subsets is
an independent work unit (this is what Focus farms out to processors).
Within a pair, the reference subset is k-mer indexed, query k-mers vote
for (query read, reference read, diagonal) candidates, and candidates
with enough votes are verified — by a fast ungapped identity check
(exact for the substitution-only error model) or by banded
Needleman–Wunsch.

Two engines process a work unit:

- ``engine="vectorized"`` (default): one bulk
  :meth:`~repro.io.readset.ReadSet.kmer_table` + ``lookup`` for *all*
  query reads of the subset, a single lexsort/group-by over
  ``(query, ref, diagonal)`` to produce every candidate at once, and a
  batched verification pass that evaluates all overlap spans and their
  ungapped Hamming identities in one numpy sweep (``banded_nw`` still
  verifies per candidate).
- ``engine="loop"``: the legacy per-query-read engine, kept for one
  release as the reference implementation and benchmark baseline.

Both engines produce identical overlap lists; so do the serial,
multiprocess (:meth:`OverlapDetector.find_overlaps_processes`) and
simulated-MPI (:meth:`OverlapDetector.find_overlaps_parallel`) drivers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.align.banded_nw import banded_align
from repro.align.kmer_index import KmerIndex, compress_queries
from repro.align.overlap import Overlap, PackedOverlaps, classify_overlap, overlap_span
from repro.io.readset import ReadSet
from repro.sequence.dna import hamming_identity

__all__ = ["OverlapConfig", "OverlapDetector", "subset_pairs"]


def subset_pairs(n_subsets: int) -> list[tuple[int, int]]:
    """All unordered subset pairs, including self-pairs."""
    if n_subsets < 1:
        raise ValueError("n_subsets must be >= 1")
    return [(i, j) for i in range(n_subsets) for j in range(i, n_subsets)]


def _argsort_keys(*keys: np.ndarray) -> np.ndarray:
    """Stable argsort by the given keys, primary key first.

    Equivalent to ``np.lexsort(tuple(reversed(keys)))`` but packs the
    keys into one composite ``int64`` when their ranges fit 62 bits —
    a single sort pass instead of one stable sort per key.  Falls back
    to ``np.lexsort`` for extreme ranges.
    """
    if keys[0].size == 0:
        return np.empty(0, dtype=np.int64)
    spans: list[tuple[int, int]] = []
    fits = True
    capacity = 1
    for k in keys:
        lo = int(k.min())
        span = int(k.max()) - lo + 1
        spans.append((lo, span))
        capacity *= span
        if capacity >= (1 << 62):
            fits = False
            break
    if not fits:
        return np.lexsort(tuple(reversed(keys)))
    composite = np.zeros(keys[0].size, dtype=np.int64)
    for k, (lo, span) in zip(keys, spans):
        composite *= span
        composite += k - lo
    return np.argsort(composite, kind="stable")


@dataclass(frozen=True)
class OverlapConfig:
    """Thresholds of the alignment stage.

    Defaults mirror the paper's evaluation settings: minimum overlap
    length 50 bp and minimum identity 90%.
    """

    k: int = 16
    min_kmer_hits: int = 3
    min_overlap: int = 50
    min_identity: float = 0.90
    method: str = "ungapped"  # "ungapped" | "banded_nw"
    #: reference index structure: "kmer" (sorted k-mer table) or
    #: "suffix_array" (the paper's structure; slower in Python).
    index: str = "kmer"
    band: int = 5
    n_subsets: int = 1
    #: work-unit engine: "vectorized" (batched, default) or "loop"
    #: (legacy per-query engine, kept for one release).
    engine: str = "vectorized"

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError("k must be positive")
        if self.min_kmer_hits < 1:
            raise ValueError("min_kmer_hits must be positive")
        if self.min_overlap < 1:
            raise ValueError("min_overlap must be positive")
        if not 0.0 <= self.min_identity <= 1.0:
            raise ValueError("min_identity must be in [0, 1]")
        if self.method not in ("ungapped", "banded_nw"):
            raise ValueError(f"unknown verification method {self.method!r}")
        if self.index not in ("kmer", "suffix_array"):
            raise ValueError(f"unknown index structure {self.index!r}")
        if self.n_subsets < 1:
            raise ValueError("n_subsets must be >= 1")
        if self.engine not in ("vectorized", "loop"):
            raise ValueError(f"unknown overlap engine {self.engine!r}")


class OverlapDetector:
    """Finds all pairwise overlaps in a ReadSet."""

    def __init__(self, config: OverlapConfig | None = None) -> None:
        self.config = config or OverlapConfig()
        #: candidates sent to verification by the most recent
        #: ``find_overlaps``/``find_overlaps_processes`` call (serial
        #: accounting only; the sim-MPI driver does not update it).
        self.last_candidates = 0

    # -- legacy per-query engine (engine="loop") ---------------------------

    def _candidates(
        self, reads: ReadSet, query: int, index: KmerIndex, same_subset: bool
    ) -> list[tuple[int, int, int]]:
        """(ref_read, diagonal, votes) candidates for one query read.

        In same-subset mode only references with a larger index are
        considered, so each unordered read pair is evaluated once.
        """
        cfg = self.config
        vals = reads.kmer_codes_of(query, cfg.k)
        qpos, hit_reads, hit_offsets = index.lookup(vals)
        if qpos.size == 0:
            return []
        keep = hit_reads > query if same_subset else hit_reads != query
        qpos, hit_reads, hit_offsets = qpos[keep], hit_reads[keep], hit_offsets[keep]
        if qpos.size == 0:
            return []
        diag = qpos - hit_offsets
        order = np.lexsort((diag, hit_reads))
        r, d = hit_reads[order], diag[order]
        boundary = np.ones(r.size, dtype=bool)
        boundary[1:] = (r[1:] != r[:-1]) | (d[1:] != d[:-1])
        starts = np.flatnonzero(boundary)
        counts = np.diff(np.append(starts, r.size))
        g_reads, g_diags = r[starts], d[starts]
        strong = counts >= cfg.min_kmer_hits
        if not strong.any():
            return []
        g_reads, g_diags, counts = g_reads[strong], g_diags[strong], counts[strong]
        # Keep the best-supported diagonal per reference read.
        order = np.lexsort((counts, g_reads))
        g_reads, g_diags, counts = g_reads[order], g_diags[order], counts[order]
        last = np.ones(g_reads.size, dtype=bool)
        last[:-1] = g_reads[1:] != g_reads[:-1]
        return list(
            zip(g_reads[last].tolist(), g_diags[last].tolist(), counts[last].tolist())
        )

    def _verify(
        self, reads: ReadSet, query: int, ref: int, diagonal: int
    ) -> Overlap | None:
        cfg = self.config
        len_q, len_r = reads.length_of(query), reads.length_of(ref)
        q_start, r_start, length = overlap_span(diagonal, len_q, len_r)
        if length < cfg.min_overlap:
            return None
        q_seg = reads.codes_of(query)[q_start : q_start + length]
        r_seg = reads.codes_of(ref)[r_start : r_start + length]
        if cfg.method == "ungapped":
            identity = hamming_identity(q_seg, r_seg)
            aln_length = length
        else:
            result = banded_align(q_seg, r_seg, band=cfg.band)
            identity = result.identity
            aln_length = result.length
        if identity < cfg.min_identity or aln_length < cfg.min_overlap:
            return None
        kind = classify_overlap(q_start, r_start, length, len_q, len_r)
        return Overlap(
            query=query,
            ref=ref,
            q_start=q_start,
            r_start=r_start,
            length=length,
            identity=identity,
            kind=kind,
        )

    def overlap_subset_pair_loop(
        self,
        reads: ReadSet,
        query_indices: np.ndarray,
        ref_indices: np.ndarray,
        same_subset: bool,
        index=None,
    ) -> tuple[list[Overlap], int]:
        """Legacy work-unit engine: one Python iteration per query read."""
        if index is None:
            index = self._build_index(reads, ref_indices)
        overlaps: list[Overlap] = []
        n_candidates = 0
        for q in np.asarray(query_indices).tolist():  # noqa: PERF002 - legacy engine
            for ref, diag, _votes in self._candidates(reads, q, index, same_subset):
                n_candidates += 1
                ov = self._verify(reads, q, ref, diag)
                if ov is not None:
                    overlaps.append(ov)
        return overlaps, n_candidates

    # -- vectorized engine (engine="vectorized") ---------------------------

    def _pair_candidates_vectorized(
        self,
        reads: ReadSet,
        query_indices: np.ndarray,
        ref_indices: np.ndarray,
        same_subset: bool,
        index=None,
        query_batch=None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """All (query, ref, diagonal) candidates of a work unit at once.

        One concatenated index lookup for every query read's k-mers,
        then a single sort/group-by over ``(query, ref, diagonal)``
        replaces the per-query voting loop.  Selection is identical to
        the legacy engine: candidates need ``min_kmer_hits`` votes and
        only the best-supported diagonal per read pair survives (ties
        resolved toward the larger diagonal, matching the legacy
        stable-sort behaviour).  ``query_batch`` optionally supplies a
        prebuilt :meth:`_query_batch` for the query subset, reused
        across the work units that share it.
        """
        cfg = self.config
        if index is None:
            index = self._build_index(reads, ref_indices)
        if query_batch is None:
            query_batch = self._query_batch(reads, query_indices)
        vals, kmer_read, kmer_off, compressed = query_batch
        if isinstance(index, KmerIndex):
            qpos, hit_reads, hit_offsets = index.lookup(vals, compressed=compressed)
        else:
            qpos, hit_reads, hit_offsets = index.lookup(vals)
        empty = np.empty(0, dtype=np.int64)
        if qpos.size == 0:
            return empty, empty.copy(), empty.copy()
        q_reads = kmer_read[qpos]
        keep = hit_reads > q_reads if same_subset else hit_reads != q_reads
        if not keep.all():
            qpos, hit_reads, hit_offsets = qpos[keep], hit_reads[keep], hit_offsets[keep]
            q_reads = q_reads[keep]
        if qpos.size == 0:
            return empty, empty.copy(), empty.copy()
        diag = kmer_off[qpos] - hit_offsets
        # Group votes by (query, ref, diagonal).
        order = _argsort_keys(q_reads, hit_reads, diag)
        q_s, r_s, d_s = q_reads[order], hit_reads[order], diag[order]
        boundary = np.ones(q_s.size, dtype=bool)
        boundary[1:] = (
            (q_s[1:] != q_s[:-1]) | (r_s[1:] != r_s[:-1]) | (d_s[1:] != d_s[:-1])
        )
        starts = np.flatnonzero(boundary)
        counts = np.diff(np.append(starts, q_s.size))
        g_q, g_r, g_d = q_s[starts], r_s[starts], d_s[starts]
        strong = counts >= cfg.min_kmer_hits
        if not strong.any():
            return empty, empty.copy(), empty.copy()
        g_q, g_r, g_d, counts = g_q[strong], g_r[strong], g_d[strong], counts[strong]
        # Best-supported diagonal per (query, ref) pair.
        order = _argsort_keys(g_q, g_r, counts, g_d)
        g_q, g_r, g_d = g_q[order], g_r[order], g_d[order]
        last = np.ones(g_q.size, dtype=bool)
        last[:-1] = (g_q[1:] != g_q[:-1]) | (g_r[1:] != g_r[:-1])
        return g_q[last], g_r[last], g_d[last]

    def _batch_hamming_identity(
        self,
        reads: ReadSet,
        abs_q_start: np.ndarray,
        abs_r_start: np.ndarray,
        length: np.ndarray,
    ) -> np.ndarray:
        """Ungapped identity of many spans in one flat numpy pass.

        Gathers both sides of every span into two flat arrays via the
        CSR offsets (through :meth:`ReadSet.gather_bases`, so a
        shard-backed set serves the gather per shard), compares
        elementwise, and segment-sums the matches with a
        cumulative-sum difference (no ``reduceat`` dtype traps).
        """
        total = int(length.sum())
        seg_starts = np.cumsum(length) - length
        within = np.arange(total, dtype=np.int64) - np.repeat(seg_starts, length)
        q_flat = np.repeat(abs_q_start, length) + within
        r_flat = np.repeat(abs_r_start, length) + within
        eq = reads.gather_bases(q_flat) == reads.gather_bases(r_flat)
        cum = np.zeros(total + 1, dtype=np.int64)
        np.cumsum(eq, out=cum[1:])
        matches = cum[seg_starts + length] - cum[seg_starts]
        return matches / length

    def _verify_batch(
        self,
        reads: ReadSet,
        cand_q: np.ndarray,
        cand_r: np.ndarray,
        cand_d: np.ndarray,
    ) -> PackedOverlaps:
        """Batched span computation + identity verification.

        The overlap span implied by each candidate diagonal is computed
        vectorized (:func:`~repro.align.overlap.overlap_span` semantics),
        short spans are dropped, and — for the ``ungapped`` method —
        every surviving span's Hamming identity is evaluated in one
        numpy pass.  ``banded_nw`` falls back to per-candidate dynamic
        programming on the batch-computed spans.
        """
        cfg = self.config
        lengths = reads.lengths
        len_q = lengths[cand_q]
        len_r = lengths[cand_r]
        q_start = np.maximum(cand_d, 0)
        r_start = np.maximum(-cand_d, 0)
        length = np.minimum(len_q - q_start, len_r - r_start)
        long_enough = length >= cfg.min_overlap
        if not long_enough.any():
            return PackedOverlaps.empty()
        cand_q, cand_r = cand_q[long_enough], cand_r[long_enough]
        q_start, r_start = q_start[long_enough], r_start[long_enough]
        length = length[long_enough]
        len_q, len_r = len_q[long_enough], len_r[long_enough]

        abs_q = reads.offsets[cand_q] + q_start
        abs_r = reads.offsets[cand_r] + r_start
        if cfg.method == "ungapped":
            identity = self._batch_hamming_identity(reads, abs_q, abs_r, length)
            accepted = identity >= cfg.min_identity
        else:
            identity = np.empty(length.size, dtype=np.float64)
            aln_length = np.empty(length.size, dtype=np.int64)
            for c, (lo_q, lo_r, ln) in enumerate(
                zip(abs_q.tolist(), abs_r.tolist(), length.tolist())
            ):
                result = banded_align(
                    reads.base_span(lo_q, ln),
                    reads.base_span(lo_r, ln),
                    band=cfg.band,
                )
                identity[c] = result.identity
                aln_length[c] = result.length
            accepted = (identity >= cfg.min_identity) & (aln_length >= cfg.min_overlap)
        if not accepted.any():
            return PackedOverlaps.empty()
        cand_q, cand_r = cand_q[accepted], cand_r[accepted]
        q_start, r_start = q_start[accepted], r_start[accepted]
        length, identity = length[accepted], identity[accepted]
        len_q, len_r = len_q[accepted], len_r[accepted]

        # Vectorized overlap classification (classify_overlap semantics;
        # KIND_CODES order: EQUAL, QUERY_CONTAINED, REF_CONTAINED,
        # QUERY_LEFT, QUERY_RIGHT).
        q_full = (q_start == 0) & (length == len_q)
        r_full = (r_start == 0) & (length == len_r)
        kind_code = np.full(length.size, 4, dtype=np.uint8)  # QUERY_RIGHT
        kind_code[q_start > 0] = 3  # QUERY_LEFT
        kind_code[r_full] = 2  # REF_CONTAINED
        kind_code[q_full] = 1  # QUERY_CONTAINED
        kind_code[q_full & r_full] = 0  # EQUAL
        return PackedOverlaps(
            query=cand_q,
            ref=cand_r,
            q_start=q_start,
            r_start=r_start,
            length=length,
            identity=identity,
            kind_code=kind_code,
        )

    def overlap_subset_pair_packed(
        self,
        reads: ReadSet,
        query_indices: np.ndarray,
        ref_indices: np.ndarray,
        same_subset: bool,
        index=None,
        query_batch=None,
    ) -> tuple[PackedOverlaps, int]:
        """One work unit in columnar form: (packed overlaps, candidates).

        This is the multiprocess wire format — seven flat arrays
        instead of thousands of :class:`Overlap` objects.  ``index``
        and ``query_batch`` optionally supply a prebuilt
        reference-subset index / query-subset k-mer batch so drivers
        that touch one subset in several work units prepare it only
        once.
        """
        if self.config.engine == "loop":
            overlaps, n_candidates = self.overlap_subset_pair_loop(
                reads, query_indices, ref_indices, same_subset, index=index
            )
            return PackedOverlaps.from_overlaps(overlaps), n_candidates
        cand_q, cand_r, cand_d = self._pair_candidates_vectorized(
            reads, query_indices, ref_indices, same_subset,
            index=index, query_batch=query_batch,
        )
        if cand_q.size == 0:
            return PackedOverlaps.empty(), 0
        return self._verify_batch(reads, cand_q, cand_r, cand_d), int(cand_q.size)

    # -- public API ---------------------------------------------------------

    def _build_index(self, reads: ReadSet, ref_indices: np.ndarray):
        if self.config.index == "suffix_array":
            from repro.align.sa_index import SuffixArrayReadIndex

            return SuffixArrayReadIndex(reads, self.config.k, ref_indices)
        return KmerIndex(reads, self.config.k, ref_indices)

    def _query_batch(self, reads: ReadSet, query_indices: np.ndarray):
        """The query side of a work unit, prepared for repeated lookups."""
        q_idx = np.asarray(query_indices, dtype=np.int64)
        vals, kmer_read, kmer_off = reads.kmer_table(self.config.k, q_idx)
        return vals, kmer_read, kmer_off, compress_queries(vals)

    def _pair_with_stats(
        self,
        reads: ReadSet,
        query_indices: np.ndarray,
        ref_indices: np.ndarray,
        same_subset: bool,
        index=None,
        query_batch=None,
    ) -> tuple[list[Overlap], int]:
        if self.config.engine == "loop":
            return self.overlap_subset_pair_loop(
                reads, query_indices, ref_indices, same_subset, index=index
            )
        packed, n_candidates = self.overlap_subset_pair_packed(
            reads, query_indices, ref_indices, same_subset,
            index=index, query_batch=query_batch,
        )
        return packed.to_overlaps(), n_candidates

    def overlap_subset_pair(
        self,
        reads: ReadSet,
        query_indices: np.ndarray,
        ref_indices: np.ndarray,
        same_subset: bool,
    ) -> list[Overlap]:
        """All overlaps between two read subsets (one work unit)."""
        return self._pair_with_stats(reads, query_indices, ref_indices, same_subset)[0]

    def find_overlaps(self, reads: ReadSet) -> list[Overlap]:
        """All pairwise overlaps of a ReadSet (serial over subset pairs).

        Reference-subset indexes are built once and reused across the
        work units that share them (subset ``j`` serves ``j + 1``
        pairs).
        """
        subsets = reads.split(self.config.n_subsets)
        overlaps: list[Overlap] = []
        n_candidates = 0
        vectorized = self.config.engine != "loop"
        ref_indexes: dict[int, object] = {}
        query_batches: dict[int, tuple] = {}
        for i, j in subset_pairs(len(subsets)):
            index = ref_indexes.get(j)
            if index is None:
                index = ref_indexes[j] = self._build_index(reads, subsets[j])
            batch = None
            if vectorized:
                batch = query_batches.get(i)
                if batch is None:
                    batch = query_batches[i] = self._query_batch(reads, subsets[i])
            part, nc = self._pair_with_stats(
                reads, subsets[i], subsets[j], same_subset=(i == j),
                index=index, query_batch=batch,
            )
            overlaps.extend(part)
            n_candidates += nc
        self.last_candidates = n_candidates
        return overlaps

    def find_overlaps_processes(
        self, reads: ReadSet, n_workers: int
    ) -> list[Overlap]:
        """All pairwise overlaps using real OS processes (paper §II-B).

        Subset pairs are farmed out to a ``ProcessPoolExecutor`` with
        ``n_workers`` workers, assigned largest-first so big work units
        start early.  Result-identical (including list order) to
        :meth:`find_overlaps`.
        """
        from repro.parallel.executor import run_subset_pairs

        overlaps, stats = run_subset_pairs(self.config, reads, n_workers)
        self.last_candidates = stats.candidates
        return overlaps

    def find_overlaps_parallel(
        self, comm, reads: ReadSet, schedule: str = "lpt"
    ) -> list[Overlap]:
        """Parallel read alignment (paper §II-B) on a simulated cluster.

        Subset pairs are the independent work units.  ``schedule="lpt"``
        (default) assigns them largest-first by estimated cost
        ``|Q|·|R|`` (self-pairs halved) to the least-loaded rank;
        ``schedule="round_robin"`` reproduces the legacy blind striping.
        Every rank receives the merged overlap list.  Run via
        ``SimCluster(p).run(detector.find_overlaps_parallel, reads)``.
        Results match :meth:`find_overlaps` exactly (order aside) for
        any rank count and either schedule.
        """
        from repro.parallel.schedule import (
            lpt_assignment,
            round_robin_assignment,
            subset_pair_costs,
        )

        subsets = reads.split(self.config.n_subsets)
        pairs = subset_pairs(len(subsets))
        if schedule == "lpt":
            costs = subset_pair_costs(pairs, np.array([s.size for s in subsets]))
            owner = lpt_assignment(costs, comm.size)
        elif schedule == "round_robin":
            owner = round_robin_assignment(len(pairs), comm.size)
        else:
            raise ValueError(f"unknown schedule {schedule!r}")
        local: list[Overlap] = []
        vectorized = self.config.engine != "loop"
        ref_indexes: dict[int, object] = {}
        query_batches: dict[int, tuple] = {}
        with comm.timed():
            for task, (i, j) in enumerate(pairs):
                if owner[task] != comm.rank:
                    continue
                index = ref_indexes.get(j)
                if index is None:
                    index = ref_indexes[j] = self._build_index(reads, subsets[j])
                batch = None
                if vectorized:
                    batch = query_batches.get(i)
                    if batch is None:
                        batch = query_batches[i] = self._query_batch(
                            reads, subsets[i]
                        )
                local.extend(
                    self._pair_with_stats(
                        reads, subsets[i], subsets[j], same_subset=(i == j),
                        index=index, query_batch=batch,
                    )[0]
                )
        gathered = comm.gather(local, root=0)
        merged = None
        if comm.rank == 0:
            merged = [ov for part in gathered for ov in part]
        return comm.bcast(merged, root=0)
