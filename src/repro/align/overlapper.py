"""All-pairs read overlap detection (paper §II-B).

The read set is split into subsets; every unordered pair of subsets is
an independent work unit (this is what Focus farms out to processors).
Within a pair, the reference subset is k-mer indexed, each query read's
k-mers vote for (reference read, diagonal) candidates, and candidates
with enough votes are verified — by a fast ungapped identity check
(exact for the substitution-only error model) or by banded
Needleman–Wunsch.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.align.banded_nw import banded_align
from repro.align.kmer_index import KmerIndex
from repro.align.overlap import Overlap, classify_overlap, overlap_span
from repro.io.readset import ReadSet
from repro.sequence.dna import hamming_identity
from repro.sequence.kmers import kmer_codes

__all__ = ["OverlapConfig", "OverlapDetector", "subset_pairs"]


def subset_pairs(n_subsets: int) -> list[tuple[int, int]]:
    """All unordered subset pairs, including self-pairs."""
    if n_subsets < 1:
        raise ValueError("n_subsets must be >= 1")
    return [(i, j) for i in range(n_subsets) for j in range(i, n_subsets)]


@dataclass(frozen=True)
class OverlapConfig:
    """Thresholds of the alignment stage.

    Defaults mirror the paper's evaluation settings: minimum overlap
    length 50 bp and minimum identity 90%.
    """

    k: int = 16
    min_kmer_hits: int = 3
    min_overlap: int = 50
    min_identity: float = 0.90
    method: str = "ungapped"  # "ungapped" | "banded_nw"
    #: reference index structure: "kmer" (sorted k-mer table) or
    #: "suffix_array" (the paper's structure; slower in Python).
    index: str = "kmer"
    band: int = 5
    n_subsets: int = 1

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError("k must be positive")
        if self.min_kmer_hits < 1:
            raise ValueError("min_kmer_hits must be positive")
        if self.min_overlap < 1:
            raise ValueError("min_overlap must be positive")
        if not 0.0 <= self.min_identity <= 1.0:
            raise ValueError("min_identity must be in [0, 1]")
        if self.method not in ("ungapped", "banded_nw"):
            raise ValueError(f"unknown verification method {self.method!r}")
        if self.index not in ("kmer", "suffix_array"):
            raise ValueError(f"unknown index structure {self.index!r}")
        if self.n_subsets < 1:
            raise ValueError("n_subsets must be >= 1")


class OverlapDetector:
    """Finds all pairwise overlaps in a ReadSet."""

    def __init__(self, config: OverlapConfig | None = None) -> None:
        self.config = config or OverlapConfig()

    # -- candidate generation ---------------------------------------------

    def _candidates(
        self, reads: ReadSet, query: int, index: KmerIndex, same_subset: bool
    ) -> list[tuple[int, int, int]]:
        """(ref_read, diagonal, votes) candidates for one query read.

        In same-subset mode only references with a larger index are
        considered, so each unordered read pair is evaluated once.
        """
        cfg = self.config
        vals = kmer_codes(reads.codes_of(query), cfg.k)
        qpos, hit_reads, hit_offsets = index.lookup(vals)
        if qpos.size == 0:
            return []
        keep = hit_reads > query if same_subset else hit_reads != query
        qpos, hit_reads, hit_offsets = qpos[keep], hit_reads[keep], hit_offsets[keep]
        if qpos.size == 0:
            return []
        diag = qpos - hit_offsets
        order = np.lexsort((diag, hit_reads))
        r, d = hit_reads[order], diag[order]
        boundary = np.ones(r.size, dtype=bool)
        boundary[1:] = (r[1:] != r[:-1]) | (d[1:] != d[:-1])
        starts = np.flatnonzero(boundary)
        counts = np.diff(np.append(starts, r.size))
        g_reads, g_diags = r[starts], d[starts]
        strong = counts >= cfg.min_kmer_hits
        if not strong.any():
            return []
        g_reads, g_diags, counts = g_reads[strong], g_diags[strong], counts[strong]
        # Keep the best-supported diagonal per reference read.
        order = np.lexsort((counts, g_reads))
        g_reads, g_diags, counts = g_reads[order], g_diags[order], counts[order]
        last = np.ones(g_reads.size, dtype=bool)
        last[:-1] = g_reads[1:] != g_reads[:-1]
        return list(
            zip(g_reads[last].tolist(), g_diags[last].tolist(), counts[last].tolist())
        )

    # -- verification -------------------------------------------------------

    def _verify(
        self, reads: ReadSet, query: int, ref: int, diagonal: int
    ) -> Overlap | None:
        cfg = self.config
        len_q, len_r = reads.length_of(query), reads.length_of(ref)
        q_start, r_start, length = overlap_span(diagonal, len_q, len_r)
        if length < cfg.min_overlap:
            return None
        q_seg = reads.codes_of(query)[q_start : q_start + length]
        r_seg = reads.codes_of(ref)[r_start : r_start + length]
        if cfg.method == "ungapped":
            identity = hamming_identity(q_seg, r_seg)
            aln_length = length
        else:
            result = banded_align(q_seg, r_seg, band=cfg.band)
            identity = result.identity
            aln_length = result.length
        if identity < cfg.min_identity or aln_length < cfg.min_overlap:
            return None
        kind = classify_overlap(q_start, r_start, length, len_q, len_r)
        return Overlap(
            query=query,
            ref=ref,
            q_start=q_start,
            r_start=r_start,
            length=length,
            identity=identity,
            kind=kind,
        )

    # -- public API ---------------------------------------------------------

    def _build_index(self, reads: ReadSet, ref_indices: np.ndarray):
        if self.config.index == "suffix_array":
            from repro.align.sa_index import SuffixArrayReadIndex

            return SuffixArrayReadIndex(reads, self.config.k, ref_indices)
        return KmerIndex(reads, self.config.k, ref_indices)

    def overlap_subset_pair(
        self,
        reads: ReadSet,
        query_indices: np.ndarray,
        ref_indices: np.ndarray,
        same_subset: bool,
    ) -> list[Overlap]:
        """All overlaps between two read subsets (one work unit)."""
        index = self._build_index(reads, ref_indices)
        overlaps: list[Overlap] = []
        for q in np.asarray(query_indices).tolist():
            for ref, diag, _votes in self._candidates(reads, q, index, same_subset):
                ov = self._verify(reads, q, ref, diag)
                if ov is not None:
                    overlaps.append(ov)
        return overlaps

    def find_overlaps(self, reads: ReadSet) -> list[Overlap]:
        """All pairwise overlaps of a ReadSet (serial over subset pairs)."""
        subsets = reads.split(self.config.n_subsets)
        overlaps: list[Overlap] = []
        for i, j in subset_pairs(len(subsets)):
            overlaps.extend(
                self.overlap_subset_pair(reads, subsets[i], subsets[j], same_subset=(i == j))
            )
        return overlaps

    def find_overlaps_parallel(self, comm, reads: ReadSet) -> list[Overlap]:
        """Parallel read alignment (paper §II-B) on a simulated cluster.

        Subset pairs are the independent work units, distributed
        round-robin over ranks; every rank receives the merged overlap
        list.  Run via ``SimCluster(p).run(detector.find_overlaps_parallel,
        reads)``.  Results match :meth:`find_overlaps` exactly (order
        aside) for any rank count.
        """
        subsets = reads.split(self.config.n_subsets)
        pairs = subset_pairs(len(subsets))
        local: list[Overlap] = []
        with comm.timed():
            for task, (i, j) in enumerate(pairs):
                if task % comm.size != comm.rank:
                    continue
                local.extend(
                    self.overlap_subset_pair(
                        reads, subsets[i], subsets[j], same_subset=(i == j)
                    )
                )
        gathered = comm.gather(local, root=0)
        merged = None
        if comm.rank == 0:
            merged = [ov for part in gathered for ov in part]
        return comm.bcast(merged, root=0)
