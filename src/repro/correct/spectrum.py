"""The k-mer spectrum: canonical k-mer multiplicities of a read set."""

from __future__ import annotations

import numpy as np

from repro.io.readset import ReadSet

__all__ = ["KmerSpectrum"]


class KmerSpectrum:
    """Sorted canonical k-mer counts with a solidity threshold.

    A k-mer is *solid* if it occurs at least ``threshold`` times.  The
    default threshold is estimated from the count histogram: the valley
    between the error peak (count 1-2) and the coverage peak.
    """

    def __init__(self, reads: ReadSet, k: int = 21, threshold: int | None = None) -> None:
        if k < 1:
            raise ValueError("k must be positive")
        self.k = k
        # One bulk pass over the set's cached canonical k-mer codes
        # (shared with any alignment pass over the same ReadSet).
        vals, _, _ = reads.kmer_table(k, canonical=True)
        allvals = vals[vals >= 0]
        self.kmers, self.counts = (
            np.unique(allvals, return_counts=True)
            if allvals.size
            else (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
        )
        self.threshold = self.estimate_threshold() if threshold is None else int(threshold)
        if self.threshold < 1:
            raise ValueError("threshold must be positive")

    # -- statistics ----------------------------------------------------------

    def histogram(self, max_count: int = 64) -> np.ndarray:
        """h[c] = number of distinct k-mers with multiplicity c (c <= max)."""
        h = np.zeros(max_count + 1, dtype=np.int64)
        if self.counts.size:
            clipped = np.minimum(self.counts, max_count)
            np.add.at(h, clipped, 1)
        return h

    def estimate_threshold(self) -> int:
        """First local minimum of the histogram after count 1.

        Falls back to 2 when the histogram is too flat to show a valley
        (very low or very uniform coverage).
        """
        h = self.histogram()
        for c in range(2, h.size - 1):
            if h[c] <= h[c - 1] and h[c] <= h[c + 1]:
                return max(2, c)
        return 2

    # -- queries ----------------------------------------------------------------

    def count(self, value: int) -> int:
        """Multiplicity of one canonical k-mer value."""
        idx = np.searchsorted(self.kmers, value)
        if idx < self.kmers.size and self.kmers[idx] == value:
            return int(self.counts[idx])
        return 0

    def counts_of(self, values: np.ndarray) -> np.ndarray:
        """Vectorised multiplicities (invalid entries < 0 count 0)."""
        values = np.asarray(values, dtype=np.int64)
        out = np.zeros(values.size, dtype=np.int64)
        if self.kmers.size == 0 or values.size == 0:
            return out
        valid = values >= 0
        idx = np.searchsorted(self.kmers, values[valid])
        idx = np.clip(idx, 0, self.kmers.size - 1)
        hit = self.kmers[idx] == values[valid]
        found = np.zeros(int(valid.sum()), dtype=np.int64)
        found[hit] = self.counts[idx[hit]]
        out[valid] = found
        return out

    def is_solid(self, values: np.ndarray) -> np.ndarray:
        """Boolean solidity per (canonical) k-mer value."""
        return self.counts_of(values) >= self.threshold

    @property
    def n_distinct(self) -> int:
        return int(self.kmers.size)

    @property
    def n_solid(self) -> int:
        return int((self.counts >= self.threshold).sum())
