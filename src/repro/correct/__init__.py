"""Spectral read error correction.

Sequencing errors produce rare ("weak") k-mers; true genomic k-mers
recur ~coverage times ("solid").  The classic spectral-alignment idea
(Pevzner et al.; Quake; Musket) corrects a read by substituting bases
so that every k-mer it contains becomes solid.  Correcting reads before
overlap detection sharpens overlap identities and reduces dead-end /
bubble load downstream — the ablation bench quantifies the effect on
the Focus pipeline.
"""

from repro.correct.corrector import CorrectionStats, ReadCorrector
from repro.correct.spectrum import KmerSpectrum

__all__ = ["KmerSpectrum", "ReadCorrector", "CorrectionStats"]
