"""Spectral-alignment read correction.

For each read, the corrector finds *weak* k-mer windows (multiplicity
below the spectrum threshold).  Every base covered exclusively by weak
windows is an error candidate; candidates are tried left to right, and
a substitution is accepted if it turns every k-mer spanning that base
solid.  Reads whose weak windows survive all attempts are reported
uncorrectable (and can be dropped by the caller).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.correct.spectrum import KmerSpectrum
from repro.io.records import Read
from repro.io.readset import ReadSet
from repro.sequence.kmers import canonical_kmer_codes

__all__ = ["CorrectionStats", "ReadCorrector"]


@dataclass
class CorrectionStats:
    """Aggregate outcome of correcting a read set."""

    n_reads: int = 0
    n_clean: int = 0
    n_corrected: int = 0
    n_uncorrectable: int = 0
    n_bases_changed: int = 0


class ReadCorrector:
    """Corrects substitution errors against a k-mer spectrum."""

    def __init__(
        self,
        spectrum: KmerSpectrum,
        max_corrections_per_read: int = 4,
    ) -> None:
        if max_corrections_per_read < 1:
            raise ValueError("max_corrections_per_read must be positive")
        self.spectrum = spectrum
        self.max_corrections = max_corrections_per_read

    # -- single-read machinery ------------------------------------------------

    def _weak_windows(self, codes: np.ndarray) -> np.ndarray:
        """Boolean per k-mer window: True where the window is weak."""
        vals = canonical_kmer_codes(codes, self.spectrum.k)
        solid = self.spectrum.is_solid(vals)
        # windows containing N (vals < 0) count as weak
        return ~(solid & (vals >= 0))

    def _error_candidates(self, weak: np.ndarray, read_len: int) -> list[int]:
        """Positions covered only by weak windows, most-covered first.

        A single substitution error at position p makes exactly the
        windows overlapping p weak, so p is covered by weak windows
        only.
        """
        k = self.spectrum.k
        n_windows = weak.size
        cover_weak = np.zeros(read_len, dtype=np.int64)
        cover_total = np.zeros(read_len, dtype=np.int64)
        for w in range(n_windows):
            cover_total[w : w + k] += 1
            if weak[w]:
                cover_weak[w : w + k] += 1
        only_weak = (cover_weak == cover_total) & (cover_total > 0)
        candidates = np.flatnonzero(only_weak)
        order = np.argsort(-cover_weak[candidates], kind="stable")
        return candidates[order].tolist()

    def _try_fix(self, codes: np.ndarray, pos: int) -> int | None:
        """Best substitute base at ``pos`` that solidifies its windows."""
        k = self.spectrum.k
        lo = max(0, pos - k + 1)
        hi = min(codes.size - k + 1, pos + 1)
        if hi <= lo:
            return None
        original = int(codes[pos])
        best: tuple[int, int] | None = None  # (total count, base)
        for base in range(4):
            if base == original:
                continue
            trial = codes.copy()
            trial[pos] = base
            vals = canonical_kmer_codes(trial[lo : hi + k - 1], k)
            if bool(self.spectrum.is_solid(vals).all()):
                score = int(self.spectrum.counts_of(vals).sum())
                if best is None or score > best[0]:
                    best = (score, base)
        return None if best is None else best[1]

    def correct_read(self, codes: np.ndarray) -> tuple[np.ndarray, int, bool]:
        """(corrected codes, bases changed, fully clean?)."""
        codes = np.asarray(codes, dtype=np.uint8).copy()
        if codes.size < self.spectrum.k:
            return codes, 0, True  # too short to judge; leave alone
        changed = 0
        for _ in range(self.max_corrections):
            weak = self._weak_windows(codes)
            if not weak.any():
                return codes, changed, True
            fixed_one = False
            for pos in self._error_candidates(weak, codes.size):
                base = self._try_fix(codes, pos)
                if base is not None:
                    codes[pos] = base
                    changed += 1
                    fixed_one = True
                    break
            if not fixed_one:
                break
        clean = not self._weak_windows(codes).any()
        return codes, changed, clean

    # -- read-set API --------------------------------------------------------------

    def correct_readset(
        self, reads: ReadSet, drop_uncorrectable: bool = False
    ) -> tuple[ReadSet, CorrectionStats]:
        """Correct every read; optionally drop reads that stay weak."""
        stats = CorrectionStats(n_reads=len(reads))
        out: list[Read] = []
        for i in range(len(reads)):
            codes, changed, clean = self.correct_read(reads.codes_of(i))
            if changed == 0 and clean:
                stats.n_clean += 1
            elif changed > 0 and clean:
                stats.n_corrected += 1
                stats.n_bases_changed += changed
            else:
                stats.n_uncorrectable += 1
                if drop_uncorrectable:
                    continue
            out.append(Read(reads.ids[i], codes, reads.quals_of(i), reads.meta[i]))
        return ReadSet(out), stats
