"""Naive graph partitioners (context for Table II).

``hash_partition`` is what de Bruijn assemblers such as AbySS and
SWAP effectively do: assign nodes to processors by hash, ignoring
structure entirely.  ``bfs_block_partition`` is the cheapest
structure-aware heuristic: chunk a BFS order into equal blocks.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.graph.overlap_graph import OverlapGraph

__all__ = ["hash_partition", "bfs_block_partition"]


def hash_partition(n_nodes: int, k: int, seed: int = 0) -> np.ndarray:
    """Uniform pseudo-random node-to-part assignment."""
    if k < 1:
        raise ValueError("k must be >= 1")
    if n_nodes < 0:
        raise ValueError("n_nodes must be non-negative")
    rng = np.random.default_rng(seed)
    return rng.integers(0, k, size=n_nodes).astype(np.int64)


def bfs_block_partition(graph: OverlapGraph, k: int) -> np.ndarray:
    """Chunk a BFS traversal order into k equal-node-weight blocks."""
    if k < 1:
        raise ValueError("k must be >= 1")
    n = graph.n_nodes
    labels = np.zeros(n, dtype=np.int64)
    if n == 0:
        return labels
    order: list[int] = []
    seen = np.zeros(n, dtype=bool)
    for start in range(n):
        if seen[start]:
            continue
        seen[start] = True
        queue = deque([start])
        while queue:
            v = queue.popleft()
            order.append(v)
            for u in graph.neighbors(v).tolist():
                if not seen[u]:
                    seen[u] = True
                    queue.append(u)
    target = graph.total_node_weight / k
    part = 0
    acc = 0.0
    for v in order:
        labels[v] = part
        acc += graph.node_weights[v]
        if acc >= target * (part + 1) and part < k - 1:
            part += 1
    return labels
