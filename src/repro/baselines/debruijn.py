"""A compact de Bruijn graph assembler (the competing model).

Reads are shredded into k-mers; nodes are (k-1)-mers, edges are
observed k-mers with multiplicities.  Low-coverage k-mers (sequencing
errors) are dropped, then maximal non-branching paths (unitigs) become
contigs.  This mirrors the algorithmic core of Velvet/AbySS minus
their scaffolding, giving a fair cross-model contiguity comparison for
the overlap-based Focus.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.stats import AssemblyStats
from repro.io.readset import ReadSet
from repro.sequence.kmers import kmer_codes, unpack_kmer

__all__ = ["DeBruijnConfig", "DeBruijnAssembler"]


@dataclass(frozen=True)
class DeBruijnConfig:
    k: int = 31
    #: k-mers observed fewer times are treated as sequencing errors.
    min_count: int = 2
    #: contigs shorter than this are suppressed from the output.
    min_contig_length: int = 63

    def __post_init__(self) -> None:
        if not 2 <= self.k <= 31:
            raise ValueError("k must be in 2..31")
        if self.min_count < 1:
            raise ValueError("min_count must be positive")


class DeBruijnAssembler:
    """Unitig assembler over the compact de Bruijn graph."""

    def __init__(self, config: DeBruijnConfig | None = None) -> None:
        self.config = config or DeBruijnConfig()

    def count_kmers(self, reads: ReadSet) -> dict[int, int]:
        """Multiplicity of every k-mer across the read set."""
        counts: dict[int, int] = {}
        k = self.config.k
        for i in range(len(reads)):
            vals = kmer_codes(reads.codes_of(i), k)
            for v in vals[vals >= 0].tolist():
                counts[v] = counts.get(v, 0) + 1
        return counts

    @staticmethod
    def _split_kmer(value: int, k: int) -> tuple[int, int, int]:
        """(left (k-1)-mer, right (k-1)-mer, last base) of a packed k-mer."""
        mask = (1 << (2 * (k - 1))) - 1
        left = value >> 2
        right = value & mask
        return left, right, value & 3

    def build_graph(self, counts: dict[int, int]) -> dict[int, list[int]]:
        """Adjacency: (k-1)-mer -> outgoing solid k-mers."""
        k = self.config.k
        adj: dict[int, list[int]] = {}
        for kmer, count in counts.items():
            if count < self.config.min_count:
                continue
            left, _, _ = self._split_kmer(kmer, k)
            adj.setdefault(left, []).append(kmer)
        return adj

    def _in_degrees(self, adj: dict[int, list[int]]) -> dict[int, int]:
        indeg: dict[int, int] = {}
        k = self.config.k
        for kmers in adj.values():
            for kmer in kmers:
                _, right, _ = self._split_kmer(kmer, k)
                indeg[right] = indeg.get(right, 0) + 1
        return indeg

    def unitigs(self, adj: dict[int, list[int]]) -> list[np.ndarray]:
        """Maximal non-branching paths as code arrays."""
        k = self.config.k
        indeg = self._in_degrees(adj)
        used: set[int] = set()
        contigs: list[np.ndarray] = []

        def is_junction(node: int) -> bool:
            return len(adj.get(node, [])) != 1 or indeg.get(node, 0) != 1

        def walk(start_kmer: int) -> np.ndarray:
            path = [start_kmer]
            used.add(start_kmer)
            _, right, _ = self._split_kmer(start_kmer, k)
            while not is_junction(right):
                nxt = adj[right][0]
                if nxt in used:
                    break
                path.append(nxt)
                used.add(nxt)
                _, right, _ = self._split_kmer(nxt, k)
            first = unpack_kmer(path[0], k)
            tail = np.array([p & 3 for p in path[1:]], dtype=np.uint8)
            return np.concatenate([first, tail])

        # Paths starting at junction exits first, then leftover cycles.
        for node in list(adj):
            if is_junction(node):
                for kmer in adj[node]:
                    if kmer not in used:
                        contigs.append(walk(kmer))
        for node in list(adj):
            for kmer in adj[node]:
                if kmer not in used:
                    contigs.append(walk(kmer))
        return contigs

    def assemble(self, reads: ReadSet) -> tuple[list[np.ndarray], AssemblyStats]:
        """Full run: count, filter, unitig; returns (contigs, stats)."""
        counts = self.count_kmers(reads)
        adj = self.build_graph(counts)
        contigs = [
            c for c in self.unitigs(adj) if c.size >= self.config.min_contig_length
        ]
        return contigs, AssemblyStats.from_contigs(contigs)
