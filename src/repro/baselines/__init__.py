"""Baselines: naive partitioners and a de Bruijn graph assembler.

The naive partitioners give Table II context (what edge cut you get
with no multilevel machinery at all); the de Bruijn assembler is the
dominant competing assembly model the paper positions itself against
(AbySS/Ray/SWAP all build on it) and serves as a cross-model
comparison point for contiguity.
"""

from repro.baselines.debruijn import DeBruijnAssembler, DeBruijnConfig
from repro.baselines.naive_partition import bfs_block_partition, hash_partition

__all__ = [
    "hash_partition",
    "bfs_block_partition",
    "DeBruijnAssembler",
    "DeBruijnConfig",
]
