"""repro — reproduction of the Focus parallel NGS assembler.

Warnke-Sommer & Ali, *Parallel NGS Assembly Using Distributed Assembly
Graphs Enriched with Biological Knowledge*, IPDPSW 2017.

Public API highlights:

- :class:`repro.FocusAssembler` / :class:`repro.AssemblyConfig` — the
  end-to-end assembler;
- :mod:`repro.simulate` — synthetic genomes, communities, reads;
- :mod:`repro.partition` — multilevel / hybrid graph partitioning;
- :mod:`repro.mpi` — the simulated MPI runtime;
- :mod:`repro.analysis` — community structure from partitions;
- :mod:`repro.baselines` — naive partitioners, de Bruijn assembler.
"""

from repro.core.config import AssemblyConfig
from repro.core.focus import AssemblyResult, FocusAssembler, PreparedAssembly
from repro.core.stats import AssemblyStats, n50
from repro.io.readset import ReadSet
from repro.io.records import Read

__version__ = "1.0.0"

__all__ = [
    "AssemblyConfig",
    "FocusAssembler",
    "AssemblyResult",
    "PreparedAssembly",
    "AssemblyStats",
    "n50",
    "Read",
    "ReadSet",
    "__version__",
]
