"""FaultPlan: a seeded, serializable description of faults to inject.

A plan is a list of *concrete* fault specs — which stage, which
partition or rank pair, which attempt numbers — rather than live
probabilities, so the same plan object always injects exactly the same
faults.  :meth:`FaultPlan.random` bridges the two worlds: it expands a
seed into explicit specs with a seeded generator, giving "random
chaos" that is still fully reproducible and serializable.

Every spec carries an ``attempts`` budget: the fault fires while the
executing attempt number is ``<= attempts`` and then stops, so a
retry policy whose ``max_attempts`` exceeds the deepest budget is
guaranteed to converge (the contract the chaos equivalence suite
leans on).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace

import numpy as np

__all__ = [
    "KERNEL_FAULT_KINDS",
    "MESSAGE_FAULT_KINDS",
    "KernelFault",
    "MessageFault",
    "FaultPlan",
]

#: kernel-level fault kinds: kill the worker, stall past the deadline,
#: raise a transient exception.
KERNEL_FAULT_KINDS = ("crash", "hang", "error")

#: message-level fault kinds (simulated cluster only).
MESSAGE_FAULT_KINDS = ("drop", "duplicate", "delay")


@dataclass(frozen=True)
class KernelFault:
    """One injected kernel failure.

    Fires when partition ``part`` of stage ``stage`` executes with an
    attempt number ``<= attempts``.  ``stage`` may be ``"*"`` to match
    any stage (the first matching spec wins).
    """

    kind: str
    stage: str
    part: int
    attempts: int = 1

    def __post_init__(self) -> None:
        if self.kind not in KERNEL_FAULT_KINDS:
            raise ValueError(
                f"unknown kernel fault kind {self.kind!r}; "
                f"expected one of {KERNEL_FAULT_KINDS}"
            )
        if self.part < 0:
            raise ValueError("part must be non-negative")
        if self.attempts < 1:
            raise ValueError("attempts must be >= 1")

    def matches(self, stage: str, part: int, attempt: int) -> bool:
        return (
            (self.stage == "*" or self.stage == stage)
            and self.part == part
            and attempt <= self.attempts
        )


@dataclass(frozen=True)
class MessageFault:
    """One injected message fault on the simulated cluster.

    Affects up to ``count`` messages from rank ``src`` to rank ``dst``
    during stage ``stage`` (``"*"`` = any), on attempts ``<= attempts``.
    ``delay`` is the extra virtual seconds added by the "delay" kind.
    """

    kind: str
    stage: str
    src: int
    dst: int
    count: int = 1
    attempts: int = 1
    delay: float = 0.05

    def __post_init__(self) -> None:
        if self.kind not in MESSAGE_FAULT_KINDS:
            raise ValueError(
                f"unknown message fault kind {self.kind!r}; "
                f"expected one of {MESSAGE_FAULT_KINDS}"
            )
        if self.src < 0 or self.dst < 0:
            raise ValueError("src/dst ranks must be non-negative")
        if self.src == self.dst:
            raise ValueError("src and dst must differ")
        if self.count < 1:
            raise ValueError("count must be >= 1")
        if self.attempts < 1:
            raise ValueError("attempts must be >= 1")
        if self.delay < 0:
            raise ValueError("delay must be non-negative")

    def matches_attempt(self, stage: str, attempt: int) -> bool:
        return (self.stage == "*" or self.stage == stage) and attempt <= self.attempts


@dataclass(frozen=True)
class FaultPlan:
    """A complete, deterministic fault-injection schedule.

    ``hang_seconds`` is how long an injected hang actually sleeps in a
    real worker process — long enough to trip any sane per-task
    deadline, short enough that a leaked worker eventually exits on
    its own.  The in-process backends never sleep: they model a hang
    as an immediate deadline failure.
    """

    seed: int = 0
    kernel_faults: tuple[KernelFault, ...] = ()
    message_faults: tuple[MessageFault, ...] = ()
    hang_seconds: float = 30.0

    def __post_init__(self) -> None:
        # Tolerate lists in hand-written plans; store tuples.
        object.__setattr__(self, "kernel_faults", tuple(self.kernel_faults))
        object.__setattr__(self, "message_faults", tuple(self.message_faults))
        if self.hang_seconds <= 0:
            raise ValueError("hang_seconds must be positive")

    # -- lookup ----------------------------------------------------------

    def kernel_fault(self, stage: str, part: int, attempt: int) -> KernelFault | None:
        """The kernel fault to fire for this execution, if any."""
        for spec in self.kernel_faults:
            if spec.matches(stage, part, attempt):
                return spec
        return None

    def message_faults_for(self, stage: str, attempt: int) -> tuple[MessageFault, ...]:
        """Message faults active during one attempt of one stage."""
        return tuple(
            spec
            for spec in self.message_faults
            if spec.matches_attempt(stage, attempt)
        )

    @property
    def max_fault_attempts(self) -> int:
        """The deepest attempt budget in the plan (0 when empty).

        A retry policy with ``max_attempts > max_fault_attempts`` is
        guaranteed to outlast every injected fault.
        """
        budgets = [s.attempts for s in self.kernel_faults]
        budgets += [s.attempts for s in self.message_faults]
        return max(budgets, default=0)

    @property
    def empty(self) -> bool:
        return not self.kernel_faults and not self.message_faults

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "hang_seconds": self.hang_seconds,
            "kernel_faults": [
                {
                    "kind": s.kind,
                    "stage": s.stage,
                    "part": s.part,
                    "attempts": s.attempts,
                }
                for s in self.kernel_faults
            ],
            "message_faults": [
                {
                    "kind": s.kind,
                    "stage": s.stage,
                    "src": s.src,
                    "dst": s.dst,
                    "count": s.count,
                    "attempts": s.attempts,
                    "delay": s.delay,
                }
                for s in self.message_faults
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        try:
            kernel = tuple(KernelFault(**d) for d in data.get("kernel_faults", ()))
            message = tuple(MessageFault(**d) for d in data.get("message_faults", ()))
            return cls(
                seed=int(data.get("seed", 0)),
                kernel_faults=kernel,
                message_faults=message,
                hang_seconds=float(data.get("hang_seconds", 30.0)),
            )
        except TypeError as exc:
            raise ValueError(f"malformed fault plan: {exc}") from exc

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"fault plan is not valid JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise ValueError("fault plan JSON must be an object")
        return cls.from_dict(data)

    # -- random generation ----------------------------------------------

    @classmethod
    def random(
        cls,
        seed: int,
        stages: tuple[str, ...],
        n_parts: int,
        n_kernel_faults: int = 2,
        n_message_faults: int = 1,
        max_fail_attempts: int = 1,
        kinds: tuple[str, ...] = KERNEL_FAULT_KINDS,
        message_kinds: tuple[str, ...] = MESSAGE_FAULT_KINDS,
    ) -> "FaultPlan":
        """Expand a seed into a concrete plan with explicit specs.

        The generated specs are drawn with a seeded generator and then
        frozen into the plan, so the result is deterministic in
        ``seed`` and fully serializable.  Message faults need at least
        two ranks; with ``n_parts < 2`` none are generated.
        """
        if n_parts < 1:
            raise ValueError("n_parts must be >= 1")
        if not stages:
            raise ValueError("stages must be non-empty")
        rng = np.random.default_rng(seed)
        kernel = tuple(
            KernelFault(
                kind=str(rng.choice(list(kinds))),
                stage=str(rng.choice(list(stages))),
                part=int(rng.integers(n_parts)),
                attempts=int(rng.integers(1, max_fail_attempts + 1)),
            )
            for _ in range(n_kernel_faults)
        )
        message: tuple[MessageFault, ...] = ()
        if n_parts >= 2:
            specs = []
            for _ in range(n_message_faults):
                src, dst = rng.choice(n_parts, size=2, replace=False)
                specs.append(
                    MessageFault(
                        kind=str(rng.choice(list(message_kinds))),
                        stage=str(rng.choice(list(stages))),
                        src=int(src),
                        dst=int(dst),
                        attempts=int(rng.integers(1, max_fail_attempts + 1)),
                    )
                )
            message = tuple(specs)
        return cls(seed=seed, kernel_faults=kernel, message_faults=message)

    def scaled_to(self, n_parts: int) -> "FaultPlan":
        """A copy with every partition/rank index folded into range.

        Lets one plan be reused across partition counts in sweeps:
        indices are taken modulo ``n_parts`` (message faults whose
        ``src``/``dst`` collide after folding are dropped).
        """
        kernel = tuple(
            replace(s, part=s.part % n_parts) for s in self.kernel_faults
        )
        message = tuple(
            replace(s, src=s.src % n_parts, dst=s.dst % n_parts)
            for s in self.message_faults
            if s.src % n_parts != s.dst % n_parts
        )
        return replace(self, kernel_faults=kernel, message_faults=message)
