"""FaultInjector: evaluates a FaultPlan during stage execution.

Two execution contexts share the same plan:

- the **master / in-process** context (serial loop, sim rank threads)
  holds a :class:`FaultInjector` and calls
  :meth:`FaultInjector.fire_kernel_fault` before each kernel — faults
  surface as exceptions (a crash or hang cannot take down the
  interpreter that is also running the master);
- **worker processes** never hold the injector: the process backend
  ships the (picklable) plan to the pool and each task calls
  :func:`apply_kernel_fault_in_worker`, where "crash" really SIGKILLs
  the worker and "hang" really sleeps past the deadline.

Message faults only exist on the simulated cluster: the sim backend
installs the injector as the cluster's fault hook and brackets each
stage attempt with :meth:`begin_attempt`, giving every
``SimComm.send`` a thread-safe drop/duplicate/delay decision.
"""

from __future__ import annotations

import os
import signal
import threading
import time

from repro.faults.errors import (
    DeadlineExceededError,
    InjectedCrashError,
    InjectedKernelError,
)
from repro.faults.plan import FaultPlan, KernelFault, MessageFault

__all__ = ["FaultInjector", "apply_kernel_fault_in_worker"]


def apply_kernel_fault_in_worker(
    plan: FaultPlan, stage: str, part: int, attempt: int
) -> None:
    """Execute a matching kernel fault inside a real worker process.

    "crash" is a genuine ``kill -9`` of the live worker; "hang" sleeps
    ``plan.hang_seconds`` (long enough to trip any sane deadline,
    bounded so a leaked worker exits on its own); "error" raises a
    transient :class:`InjectedKernelError`.
    """
    fault = plan.kernel_fault(stage, part, attempt)
    if fault is None:
        return
    if fault.kind == "crash":
        os.kill(os.getpid(), signal.SIGKILL)
    elif fault.kind == "hang":
        time.sleep(plan.hang_seconds)
        raise DeadlineExceededError(
            f"injected hang in stage {stage!r} partition {part} outlived "
            f"its {plan.hang_seconds}s sleep without being killed"
        )
    else:  # "error"
        raise InjectedKernelError(
            f"injected transient kernel error in stage {stage!r} "
            f"partition {part} (attempt {attempt})"
        )


class FaultInjector:
    """Runtime evaluation of one :class:`FaultPlan`.

    Thread-safe: sim rank threads consult :meth:`message_action`
    concurrently, and the per-spec message budgets are decremented
    under a lock.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._lock = threading.Lock()
        # Per-attempt message-fault state, set by begin_attempt().
        self._active: list[tuple[MessageFault, int]] = []
        self._stage = ""
        self._attempt = 0
        # Message faults that actually fired, drained by the backend
        # after each attempt for the fault report.
        self._fired: list[tuple[str, int, int]] = []

    # -- kernel faults (in-process contexts) -----------------------------

    def kernel_fault(self, stage: str, part: int, attempt: int) -> KernelFault | None:
        """The fault that will fire for this execution, if any."""
        return self.plan.kernel_fault(stage, part, attempt)

    def fire_kernel_fault(self, stage: str, part: int, attempt: int) -> None:
        """Raise the in-process stand-in for a matching kernel fault.

        "crash" raises :class:`InjectedCrashError` and "hang" raises
        :class:`DeadlineExceededError` immediately — in-process
        backends model the worker death / missed deadline without
        killing the interpreter or sleeping.
        """
        fault = self.kernel_fault(stage, part, attempt)
        if fault is None:
            return
        if fault.kind == "crash":
            raise InjectedCrashError(
                f"injected worker crash in stage {stage!r} partition {part} "
                f"(attempt {attempt})"
            )
        if fault.kind == "hang":
            raise DeadlineExceededError(
                f"injected hang in stage {stage!r} partition {part} "
                f"(attempt {attempt}) exceeded the task deadline"
            )
        raise InjectedKernelError(
            f"injected transient kernel error in stage {stage!r} "
            f"partition {part} (attempt {attempt})"
        )

    # -- message faults (simulated cluster) ------------------------------

    def begin_attempt(self, stage: str, attempt: int) -> None:
        """Arm the message faults of one stage attempt."""
        with self._lock:
            self._stage = stage
            self._attempt = attempt
            self._active = [
                (spec, spec.count)
                for spec in self.plan.message_faults_for(stage, attempt)
            ]

    def end_attempt(self) -> None:
        """Disarm message faults (between attempts / after the stage)."""
        with self._lock:
            self._active = []
            self._stage = ""
            self._attempt = 0

    def message_action(self, src: int, dst: int) -> tuple[str | None, float]:
        """Decide the fate of one message: ``(kind or None, delay_s)``.

        Decrements the matching spec's budget; once a spec's ``count``
        messages have been affected it goes quiet for the attempt.
        """
        with self._lock:
            for i, (spec, remaining) in enumerate(self._active):
                if remaining <= 0 or spec.src != src or spec.dst != dst:
                    continue
                self._active[i] = (spec, remaining - 1)
                self._fired.append((spec.kind, src, dst))
                delay = spec.delay if spec.kind == "delay" else 0.0
                return spec.kind, delay
        return None, 0.0

    def drain_fired(self) -> list[tuple[str, int, int]]:
        """Message faults fired since the last drain: (kind, src, dst)."""
        with self._lock:
            fired = self._fired
            self._fired = []
            return fired
