"""Deterministic fault injection and fault tolerance for stage execution.

The paper's master/worker merge model assumes every rank finishes every
stage; at production scale worker loss, stragglers, and half-written
files are routine.  This package provides the pieces the execution
backends (:mod:`repro.parallel.backend`, :mod:`repro.mpi.stage_backend`)
use to degrade gracefully instead of dying on the first failure:

- :class:`FaultPlan` — a seeded, serializable description of the
  faults to inject: worker crashes, task hangs, transient kernel
  exceptions, and (on the simulated cluster) message drop /
  duplication / delay.  Plans are concrete — ``FaultPlan.random``
  expands a seed into explicit specs — so a run is exactly
  reproducible from its plan.
- :class:`RetryPolicy` — max attempts, capped exponential backoff,
  and a per-task deadline; shared by every backend.
- :class:`FaultInjector` — the runtime that evaluates a plan during
  execution (thread-safe; shippable to worker processes as the plan).
- :class:`FaultReport` — what actually happened: injected faults,
  retries, pool respawns, serial fallbacks, recovered partitions.

The invariant the whole package is built around: under any seeded
``FaultPlan``, with retries enabled, final contigs are byte-identical
to the fault-free serial run (see docs/robustness.md and
``tests/faults/test_chaos_equivalence.py``).
"""

from repro.faults.errors import (
    DeadlineExceededError,
    InjectedCrashError,
    InjectedFaultError,
    InjectedKernelError,
    StageExecutionError,
)
from repro.faults.injector import FaultInjector, apply_kernel_fault_in_worker
from repro.faults.plan import (
    KERNEL_FAULT_KINDS,
    MESSAGE_FAULT_KINDS,
    FaultPlan,
    KernelFault,
    MessageFault,
)
from repro.faults.policy import RetryPolicy
from repro.faults.report import FaultReport

__all__ = [
    "KERNEL_FAULT_KINDS",
    "MESSAGE_FAULT_KINDS",
    "KernelFault",
    "MessageFault",
    "FaultPlan",
    "RetryPolicy",
    "FaultReport",
    "FaultInjector",
    "apply_kernel_fault_in_worker",
    "InjectedFaultError",
    "InjectedCrashError",
    "InjectedKernelError",
    "DeadlineExceededError",
    "StageExecutionError",
]
