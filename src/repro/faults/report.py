"""FaultReport: what the fault-tolerance machinery actually did.

Backends accumulate one report per run; the assembler surfaces it on
:class:`~repro.core.focus.AssemblyResult`, ``repro assemble --timings``
embeds it in the JSON, and ``repro bench chaos`` records it per cell.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["FaultReport"]

#: cap on the per-event log so a pathological run cannot balloon memory.
_MAX_EVENTS = 200


@dataclass
class FaultReport:
    """Counters plus a bounded event log for one backend run."""

    #: injected faults by kind ("crash", "hang", "error", "drop", ...).
    injected: dict[str, int] = field(default_factory=dict)
    #: re-executions of a kernel/stage after a failed attempt.
    retries: int = 0
    #: process-pool respawns after a dead pool or deadline kill.
    respawns: int = 0
    #: partitions finished by the in-process serial fallback.
    fallbacks: int = 0
    #: attempts that ran past the per-task deadline.
    deadline_exceeded: int = 0
    #: (stage, partition) executions that failed at least once and
    #: then completed.
    recovered_partitions: int = 0
    #: bounded chronological log of fault events.
    events: list[dict] = field(default_factory=list)
    #: events dropped once the log hit its cap.
    events_dropped: int = 0

    # -- recording -------------------------------------------------------

    def _event(self, **data) -> None:
        if len(self.events) >= _MAX_EVENTS:
            self.events_dropped += 1
            return
        self.events.append(data)

    def record_injected(self, kind: str, stage: str, where: str) -> None:
        """An injected fault fired (``where`` = partition or rank pair)."""
        self.injected[kind] = self.injected.get(kind, 0) + 1
        self._event(what="injected", kind=kind, stage=stage, where=where)

    def record_retry(self, stage: str, where: str, reason: str) -> None:
        self.retries += 1
        self._event(what="retry", stage=stage, where=where, reason=reason)

    def record_respawn(self, stage: str, reason: str) -> None:
        self.respawns += 1
        self._event(what="respawn", stage=stage, reason=reason)

    def record_fallback(self, stage: str, where: str) -> None:
        self.fallbacks += 1
        self._event(what="fallback", stage=stage, where=where)

    def record_deadline(self, stage: str, where: str) -> None:
        self.deadline_exceeded += 1
        self._event(what="deadline", stage=stage, where=where)

    def record_recovery(self, stage: str, where: str) -> None:
        self.recovered_partitions += 1
        self._event(what="recovered", stage=stage, where=where)

    # -- reading ---------------------------------------------------------

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    @property
    def has_activity(self) -> bool:
        """True when anything fault-related happened at all."""
        return bool(
            self.injected
            or self.retries
            or self.respawns
            or self.fallbacks
            or self.deadline_exceeded
            or self.recovered_partitions
        )

    def merge(self, other: "FaultReport") -> None:
        """Fold another report's counters and events into this one."""
        for kind, n in other.injected.items():
            self.injected[kind] = self.injected.get(kind, 0) + n
        self.retries += other.retries
        self.respawns += other.respawns
        self.fallbacks += other.fallbacks
        self.deadline_exceeded += other.deadline_exceeded
        self.recovered_partitions += other.recovered_partitions
        for event in other.events:
            self._event(**event)
        self.events_dropped += other.events_dropped

    def to_dict(self) -> dict:
        return {
            "injected": dict(self.injected),
            "total_injected": self.total_injected,
            "retries": self.retries,
            "respawns": self.respawns,
            "fallbacks": self.fallbacks,
            "deadline_exceeded": self.deadline_exceeded,
            "recovered_partitions": self.recovered_partitions,
            "events": list(self.events),
            "events_dropped": self.events_dropped,
        }

    def summary(self) -> str:
        """One-line human summary for CLI output."""
        if not self.has_activity:
            return "no faults"
        parts = [f"{self.total_injected} injected"]
        if self.retries:
            parts.append(f"{self.retries} retries")
        if self.respawns:
            parts.append(f"{self.respawns} respawns")
        if self.deadline_exceeded:
            parts.append(f"{self.deadline_exceeded} deadline")
        if self.fallbacks:
            parts.append(f"{self.fallbacks} serial-fallback")
        if self.recovered_partitions:
            parts.append(f"{self.recovered_partitions} recovered")
        return ", ".join(parts)
