"""Exception types of the fault-tolerance layer.

Injected faults raise dedicated types so retry loops can tell a
deliberately injected failure from a genuine defect in a kernel, and
so the chaos suites can assert on exactly what fired.
"""

from __future__ import annotations

__all__ = [
    "InjectedFaultError",
    "InjectedCrashError",
    "InjectedKernelError",
    "DeadlineExceededError",
    "StageExecutionError",
]


class InjectedFaultError(RuntimeError):
    """Base class for failures raised by the fault injector."""


class InjectedCrashError(InjectedFaultError):
    """In-process stand-in for a worker crash.

    On the ``process`` backend a "crash" fault SIGKILLs the worker (a
    real ``kill -9``); on the in-process backends (serial, sim) the
    same plan entry raises this instead so the retry path is exercised
    without taking down the interpreter.
    """


class InjectedKernelError(InjectedFaultError):
    """A transient kernel exception (the "error" fault kind)."""


class DeadlineExceededError(RuntimeError):
    """A task ran past the retry policy's per-task deadline.

    Raised by the ``process`` backend when a worker (hung or genuinely
    stuck) misses the deadline, and by the in-process backends when a
    "hang" fault is injected (they model the deadline without
    sleeping).  Deliberately *not* an :class:`InjectedFaultError`:
    a real straggler produces the same failure.
    """


class StageExecutionError(RuntimeError):
    """A stage failed after the whole retry budget was exhausted.

    Carries the stage name and the per-attempt failures so callers
    (and the checkpoint/resume workflow) can report exactly where the
    pipeline stopped.
    """

    def __init__(self, stage: str, attempts: int, failures: list[str]):
        self.stage = stage
        self.attempts = attempts
        self.failures = list(failures)
        detail = "; ".join(self.failures[-3:])
        super().__init__(
            f"stage {stage!r} failed after {attempts} attempt(s): {detail}"
        )
