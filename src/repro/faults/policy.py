"""RetryPolicy: attempts, capped exponential backoff + jitter, deadlines.

One policy object is shared by every execution backend; only the
*granularity* of a retry differs per backend (per-partition kernel on
serial/process, whole stage on the simulated cluster — see
docs/robustness.md).  The job service (:mod:`repro.service`) reuses the
same policy for lease requeue escalation, which is where the bounded
*jitter* matters: when one dead supervisor strands dozens of leased
jobs, their retries must not all fire on the same tick (the classic
thundering herd), so each retry site passes a ``token`` and receives a
deterministic, bounded perturbation of the shared backoff curve.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """How a backend responds to a failed kernel execution.

    ``max_attempts`` counts the first try: ``max_attempts=1`` disables
    retrying entirely.  ``backoff(attempt)`` grows exponentially from
    ``backoff_base`` and is capped at ``backoff_cap``.
    ``task_deadline`` bounds one attempt in real seconds (``process``
    backend: ``future.result`` timeout; ``sim`` backend: the recv
    deadlock timeout while faults are injected).  When
    ``fallback_serial`` is set, a backend that exhausts the budget
    re-runs the failed partitions in-process (without fault injection
    — the master itself is the fallback worker) instead of raising.

    ``jitter`` adds a bounded random fraction of the capped backoff on
    top of it: ``backoff(attempt, token)`` returns a value in
    ``[base, base * (1 + jitter)]`` where ``base`` is the deterministic
    capped-exponential term.  The perturbation is a pure function of
    ``(jitter_seed, token, attempt)`` — seeded and reproducible under
    test — so two retry sites passing different tokens (partition ids,
    job ids) de-synchronise while one site replays identically.
    ``jitter=0`` (the default) preserves the exact historical curve.
    """

    max_attempts: int = 3
    backoff_base: float = 0.05
    backoff_cap: float = 1.0
    task_deadline: float | None = 30.0
    fallback_serial: bool = True
    #: bounded jitter fraction in [0, 1]: the extra wait is at most
    #: ``jitter * backoff`` (thundering-herd de-synchronisation).
    jitter: float = 0.0
    #: seed of the deterministic jitter stream.
    jitter_seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base < 0:
            raise ValueError("backoff_base must be non-negative")
        if self.backoff_cap < self.backoff_base:
            raise ValueError("backoff_cap must be >= backoff_base")
        if self.task_deadline is not None and self.task_deadline <= 0:
            raise ValueError("task_deadline must be positive (or None)")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be a fraction in [0, 1]")

    def allows(self, attempt: int) -> bool:
        """Whether attempt number ``attempt`` (1-based) may run."""
        return attempt <= self.max_attempts

    def backoff(self, attempt: int, token: object = 0) -> float:
        """Seconds to wait before attempt ``attempt + 1``.

        ``token`` names the retry site (partition id, job id, ...):
        with ``jitter`` enabled, different tokens spread over the
        jitter window while one token always waits the same time.
        """
        if attempt < 1:
            raise ValueError("attempt numbers are 1-based")
        base = min(self.backoff_cap, self.backoff_base * (2 ** (attempt - 1)))
        if self.jitter == 0.0 or base == 0.0:
            return base
        # str-seeded Random uses a stable hash (PYTHONHASHSEED-proof),
        # so the perturbation is reproducible across processes/runs.
        unit = random.Random(
            f"{self.jitter_seed}:{token}:{attempt}"
        ).random()
        return base * (1.0 + self.jitter * unit)

    def to_dict(self) -> dict:
        return {
            "max_attempts": self.max_attempts,
            "backoff_base": self.backoff_base,
            "backoff_cap": self.backoff_cap,
            "task_deadline": self.task_deadline,
            "fallback_serial": self.fallback_serial,
            "jitter": self.jitter,
            "jitter_seed": self.jitter_seed,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RetryPolicy":
        """Inverse of :meth:`to_dict`.

        Dicts written before the jitter fields existed load with
        ``jitter=0`` — the historical behaviour.
        """
        try:
            return cls(**data)
        except TypeError as exc:
            raise ValueError(f"malformed retry policy: {exc}") from exc
