"""RetryPolicy: attempts, capped exponential backoff, per-task deadline.

One policy object is shared by every execution backend; only the
*granularity* of a retry differs per backend (per-partition kernel on
serial/process, whole stage on the simulated cluster — see
docs/robustness.md).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """How a backend responds to a failed kernel execution.

    ``max_attempts`` counts the first try: ``max_attempts=1`` disables
    retrying entirely.  ``backoff(attempt)`` grows exponentially from
    ``backoff_base`` and is capped at ``backoff_cap``.
    ``task_deadline`` bounds one attempt in real seconds (``process``
    backend: ``future.result`` timeout; ``sim`` backend: the recv
    deadlock timeout while faults are injected).  When
    ``fallback_serial`` is set, a backend that exhausts the budget
    re-runs the failed partitions in-process (without fault injection
    — the master itself is the fallback worker) instead of raising.
    """

    max_attempts: int = 3
    backoff_base: float = 0.05
    backoff_cap: float = 1.0
    task_deadline: float | None = 30.0
    fallback_serial: bool = True

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base < 0:
            raise ValueError("backoff_base must be non-negative")
        if self.backoff_cap < self.backoff_base:
            raise ValueError("backoff_cap must be >= backoff_base")
        if self.task_deadline is not None and self.task_deadline <= 0:
            raise ValueError("task_deadline must be positive (or None)")

    def allows(self, attempt: int) -> bool:
        """Whether attempt number ``attempt`` (1-based) may run."""
        return attempt <= self.max_attempts

    def backoff(self, attempt: int) -> float:
        """Seconds to wait before attempt ``attempt + 1``."""
        if attempt < 1:
            raise ValueError("attempt numbers are 1-based")
        return min(self.backoff_cap, self.backoff_base * (2 ** (attempt - 1)))

    def to_dict(self) -> dict:
        return {
            "max_attempts": self.max_attempts,
            "backoff_base": self.backoff_base,
            "backoff_cap": self.backoff_cap,
            "task_deadline": self.task_deadline,
            "fallback_serial": self.fallback_serial,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RetryPolicy":
        try:
            return cls(**data)
        except TypeError as exc:
            raise ValueError(f"malformed retry policy: {exc}") from exc
