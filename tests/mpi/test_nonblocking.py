"""Tests for nonblocking operations and alltoall."""

import time

import pytest

from repro.mpi.cluster import SimCluster
from repro.mpi.timing import CommCostModel

FAST = CommCostModel(alpha=1e-6, beta=1e-9)


def cluster(n):
    return SimCluster(n, cost_model=FAST, deadlock_timeout=20.0)


class TestNonblocking:
    def test_isend_irecv_roundtrip(self):
        def fn(comm):
            if comm.rank == 0:
                req = comm.isend({"a": 7}, dest=1)
                req.wait()
                return None
            req = comm.irecv(source=0)
            return req.wait()

        results, _ = cluster(2).run(fn)
        assert results[1] == {"a": 7}

    def test_irecv_posted_before_send(self):
        def fn(comm):
            if comm.rank == 1:
                req = comm.irecv(source=0)
                # do other work before the message exists
                comm.advance(0.01)
                return req.wait()
            time.sleep(0.02)
            comm.send("late", dest=1)
            return None

        results, _ = cluster(2).run(fn)
        assert results[1] == "late"

    def test_request_test_reflects_arrival(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send("x", dest=1)
                return None
            req = comm.irecv(source=0)
            # Poll-while-computing: test() only reports completion once
            # the receiver's virtual clock reaches the message's
            # available_at, so each poll interleaves model-time work.
            for _ in range(200):
                if req.test():
                    break
                comm.advance(0.001)
                time.sleep(0.005)
            assert req.test()
            return req.wait()

        results, _ = cluster(2).run(fn)
        assert results[1] == "x"

    def test_request_test_honors_virtual_arrival_time(self):
        import threading

        sent = threading.Event()
        slow = CommCostModel(alpha=1.0, beta=0.0)  # 1 virtual second latency

        def fn(comm):
            if comm.rank == 0:
                comm.send("x", dest=1)
                sent.set()
                return None
            req = comm.irecv(source=0)
            assert sent.wait(timeout=10.0)
            # The message is physically enqueued but, in model time,
            # still in flight: available_at ~= 1.0 > clock 0.0.
            assert not req.test()
            comm.advance(2.0)
            assert req.test()
            return req.wait()

        results, _ = SimCluster(2, cost_model=slow, deadlock_timeout=20.0).run(fn)
        assert results[1] == "x"

    def test_wait_idempotent(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send(5, dest=1)
                return None
            req = comm.irecv(source=0)
            return (req.wait(), req.wait())

        results, _ = cluster(2).run(fn)
        assert results[1] == (5, 5)

    def test_send_request_completes_immediately(self):
        def fn(comm):
            if comm.rank == 0:
                req = comm.isend(1, dest=1)
                assert req.test()
                req.wait()
            else:
                comm.recv(source=0)

        cluster(2).run(fn)


class TestSendrecvAlltoall:
    def test_sendrecv_ring(self):
        def fn(comm):
            nxt = (comm.rank + 1) % comm.size
            prv = (comm.rank - 1) % comm.size
            return comm.sendrecv(comm.rank, dest=nxt, source=prv)

        results, _ = cluster(6).run(fn)
        assert results == [(r - 1) % 6 for r in range(6)]

    @pytest.mark.parametrize("size", [1, 2, 4, 7])
    def test_alltoall_transpose(self, size):
        def fn(comm):
            objs = [f"{comm.rank}->{dst}" for dst in range(comm.size)]
            return comm.alltoall(objs)

        results, _ = cluster(size).run(fn)
        for dst in range(size):
            assert results[dst] == [f"{src}->{dst}" for src in range(size)]

    def test_alltoall_wrong_count(self):
        def fn(comm):
            comm.alltoall([1])

        with pytest.raises(RuntimeError):
            cluster(3).run(fn)
