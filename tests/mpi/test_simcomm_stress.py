"""Stress and property tests for the simulated MPI runtime."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpi.cluster import SimCluster
from repro.mpi.timing import CommCostModel

FAST = CommCostModel(alpha=1e-6, beta=1e-9)


def cluster(n):
    return SimCluster(n, cost_model=FAST, deadlock_timeout=20.0)


class TestManyRanks:
    def test_sixteen_rank_allreduce(self):
        def fn(comm):
            return comm.allreduce(comm.rank)

        results, _ = cluster(16).run(fn)
        assert results == [sum(range(16))] * 16

    def test_large_array_bcast(self):
        def fn(comm):
            data = np.arange(100_000, dtype=np.int64) if comm.rank == 0 else None
            out = comm.bcast(data, root=0)
            return int(out.sum())

        results, stats = cluster(8).run(fn)
        assert len(set(results)) == 1
        # 800 KB payload: beta term must register on the clocks.
        assert stats.elapsed > 0

    def test_chained_collectives(self):
        def fn(comm):
            x = comm.bcast(comm.rank if comm.rank == 0 else None, root=0)
            y = comm.allgather(x + comm.rank)
            z = comm.reduce(sum(y), root=0)
            comm.barrier()
            return z

        results, _ = cluster(6).run(fn)
        expect = sum(range(6)) * 6
        assert results[0] == expect
        assert all(r is None for r in results[1:])

    def test_ring_communication(self):
        def fn(comm):
            nxt = (comm.rank + 1) % comm.size
            prv = (comm.rank - 1) % comm.size
            comm.send(comm.rank, dest=nxt)
            return comm.recv(source=prv)

        results, _ = cluster(8).run(fn)
        assert results == [(r - 1) % 8 for r in range(8)]

    def test_all_to_one_funnel(self):
        def fn(comm):
            if comm.rank == 0:
                return sorted(comm.recv(source=src) for src in range(1, comm.size))
            comm.send(comm.rank * 10, dest=0)
            return None

        results, _ = cluster(10).run(fn)
        assert results[0] == [r * 10 for r in range(1, 10)]


class TestClockProperties:
    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.floats(min_value=0.0, max_value=2.0), min_size=2, max_size=6))
    def test_barrier_clock_is_max(self, works):
        def fn(comm):
            comm.advance(works[comm.rank])
            comm.barrier()
            return comm.clock

        results, _ = SimCluster(len(works), cost_model=FAST, deadlock_timeout=20.0).run(fn)
        assert all(c >= max(works) - 1e-12 for c in results)

    def test_clock_monotone_through_operations(self):
        def fn(comm):
            marks = [comm.clock]
            comm.advance(0.1)
            marks.append(comm.clock)
            comm.barrier()
            marks.append(comm.clock)
            x = comm.allgather(comm.rank)
            marks.append(comm.clock)
            assert x == list(range(comm.size))
            return marks

        results, _ = cluster(4).run(fn)
        for marks in results:
            assert marks == sorted(marks)

    def test_compute_time_excludes_comm_wait(self):
        def fn(comm):
            if comm.rank == 0:
                comm.advance(1.0)
                comm.send("x", dest=1)
            else:
                comm.recv(source=0)  # waits a virtual second
            return comm.compute_time

        results, _ = cluster(2).run(fn)
        assert results[0] == pytest.approx(1.0)
        assert results[1] == pytest.approx(0.0)  # waiting is not compute

    def test_elapsed_at_least_per_rank_compute(self):
        def fn(comm):
            comm.advance(0.2 * (comm.rank + 1))
            comm.barrier()

        _, stats = cluster(5).run(fn)
        assert stats.elapsed >= 1.0 - 1e-9  # slowest rank did 1.0s
        assert stats.total_compute == pytest.approx(0.2 * (1 + 2 + 3 + 4 + 5))
